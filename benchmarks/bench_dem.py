"""Periodic DEM extraction vs the full instruction walk: the tentpole bench.

Acceptance target for the rounds-independent extraction path: at d=7 with
``rounds = 10 d``, tiling a cached round template onto the target circuit
must be at least **10x** faster than walking every instruction, and the
extraction time must stay flat — at most **1.2x** — when the round count
doubles (the path is O(prologue + one bulk round + epilogue) plus a
rate-independent structural verification that is memoized per compile).
The bench times both extraction regimes:

* **cold** — first extraction for a compile: runs the full structural
  verification (geometry, bitwise head/tail equality, detector/label
  translation) before tiling; this is what the speedup gate measures.
* **warm** — any later extraction for the same compile (e.g. another noise
  preset with the same structure key): the memoized verdict is reused and
  the cost is one lazy table construction; this is what the flatness gate
  measures, since it is the steady-state cost the estimator pays.

The bench also re-verifies on the spot that the tiled table is bit-identical
to the full walk.  Both round counts are timed *interleaved* in the same
process so slow-container noise hits both sides equally.

Run directly::

    python benchmarks/bench_dem.py                     # full: d=7, rounds=70 vs 140
    python benchmarks/bench_dem.py --quick             # CI smoke: d=5, rounds=25 vs 50
    python benchmarks/bench_dem.py --min-speedup 10 --json BENCH_dem.json

or via pytest (quick scale): ``pytest benchmarks/bench_dem.py -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.decode import MemoryExperiment
from repro.decode.memory import _periodic_template
from repro.sim.dem import dem_structure_key, extract_fault_table
from repro.sim.noise import NoiseModel

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table

#: Noise preset for the headline comparison (dephasing on, so the idle-gap
#: verification — the most expensive periodic precondition — is exercised).
PRESET = "near_term"

#: Interleaved timing repetitions per round count (cold / warm).
COLD_REPS = 7
WARM_REPS = 100

#: Required flatness: warm extraction time ratio under a 2x rounds doubling
#: (full scale only; quick scale reports it without gating).
FLATNESS_LIMIT = 1.2


def _time_extraction(experiment: MemoryExperiment, model: NoiseModel, cold: bool) -> float:
    """One extraction through the public path, in seconds.

    ``cold`` also evicts the memoized structural-verification verdict, so
    the timed call re-proves the periodic preconditions from scratch.
    """
    experiment._fault_tables.pop(dem_structure_key(model.params), None)
    if cold:
        cols = experiment.compiled.circuit.sorted_columns()
        if hasattr(cols, "_periodic_check"):
            del cols._periodic_check
    t0 = time.perf_counter()
    table = experiment.fault_table(model)
    dt = time.perf_counter() - t0
    if table.method != "periodic":
        raise RuntimeError(
            f"expected the periodic path at rounds={experiment.rounds}, "
            f"got method={table.method!r}"
        )
    return dt


def run_comparison(d: int = 7, rounds: int | None = None, verify: bool = True) -> dict:
    """Time both extraction paths on one memory patch at R and 2R rounds."""
    rounds = rounds if rounds is not None else 10 * d
    model = NoiseModel.preset(PRESET)

    t0 = time.perf_counter()
    exp_r = MemoryExperiment(distance=d, rounds=rounds, basis="Z")
    exp_2r = MemoryExperiment(distance=d, rounds=2 * rounds, basis="Z")
    t_compile = time.perf_counter() - t0

    # One-time template build (a small-rounds compile + full walk), shared
    # by every later periodic extraction of this patch/basis/noise shape.
    t0 = time.perf_counter()
    template = _periodic_template(d, d, "Z", exp_r.profile, model.params)
    t_template = time.perf_counter() - t0
    if template is None or not template.usable:
        raise RuntimeError("periodic template unavailable for this configuration")

    # Reference: the full instruction walk at R rounds (the oracle).
    t0 = time.perf_counter()
    full = extract_fault_table(
        exp_r.compiled.circuit,
        exp_r.compiled.initial_occupancy,
        model.params,
        exp_r.detector_labels,
        [exp_r.observable_labels],
        method="full",
    )
    t_full = time.perf_counter() - t0

    # Fast path, interleaved at R and 2R rounds.
    for exp in (exp_r, exp_2r):
        _time_extraction(exp, model, cold=True)  # warm-up (allocator, caches)
    cold = {rounds: [], 2 * rounds: []}
    for _ in range(COLD_REPS):
        for exp in (exp_r, exp_2r):
            cold[exp.rounds].append(_time_extraction(exp, model, cold=True))
    warm = {rounds: [], 2 * rounds: []}
    for _ in range(WARM_REPS):
        for exp in (exp_r, exp_2r):
            warm[exp.rounds].append(_time_extraction(exp, model, cold=False))
    t_cold = sum(cold[rounds]) / COLD_REPS
    t_cold_2x = sum(cold[2 * rounds]) / COLD_REPS
    t_warm = sum(warm[rounds]) / WARM_REPS
    t_warm_2x = sum(warm[2 * rounds]) / WARM_REPS

    periodic = exp_r.fault_table(model)
    identical = None
    if verify:
        kp, dp = periodic.site_columns()
        kf, df = full.site_columns()
        identical = bool(
            np.array_equal(kp, kf)
            and np.array_equal(dp, df)
            and periodic.sites == full.sites
            and periodic.footprints == full.footprints
            and np.array_equal(periodic.observables, full.observables)
        )

    return {
        "preset": PRESET,
        "d": d,
        "rounds": rounds,
        "rounds_2x": 2 * rounds,
        "n_sites": full.n_sites,
        "sites_per_round": periodic.sites_per_round,
        "n_bulk_rounds": periodic.n_bulk_rounds,
        "detector_period": periodic.detector_period,
        "compile_seconds": t_compile,
        "template_seconds": t_template,
        "full_seconds": t_full,
        "cold_seconds": t_cold,
        "cold_seconds_2x": t_cold_2x,
        "warm_seconds": t_warm,
        "warm_seconds_2x": t_warm_2x,
        "speedup": t_full / t_cold,
        "flatness": t_warm_2x / t_warm,
        "flatness_cold": t_cold_2x / t_cold,
        "bit_identical": identical,
    }


def report(res: dict) -> None:
    print_table(
        f"periodic tiling vs full walk (d={res['d']}, {res['preset']}, "
        f"{res['n_sites']} fault sites, {res['sites_per_round']} per round)",
        ["extraction", "rounds", "seconds"],
        [
            ["full walk", str(res["rounds"]), f"{res['full_seconds']:.3f}"],
            ["periodic cold", str(res["rounds"]), f"{res['cold_seconds']:.4f}"],
            ["periodic cold", str(res["rounds_2x"]), f"{res['cold_seconds_2x']:.4f}"],
            ["periodic warm", str(res["rounds"]), f"{res['warm_seconds']:.6f}"],
            ["periodic warm", str(res["rounds_2x"]), f"{res['warm_seconds_2x']:.6f}"],
        ],
    )
    print(
        f"speedup: {res['speedup']:.0f}x cold at rounds={res['rounds']} "
        f"(one-time template build: {res['template_seconds']:.2f} s)"
    )
    print(
        f"flatness: {res['flatness']:.2f}x warm / {res['flatness_cold']:.2f}x cold "
        f"under a 2x rounds doubling (warm limit {FLATNESS_LIMIT:g}x)"
    )
    if res["bit_identical"] is not None:
        print(f"bit-identical to the full walk: {res['bit_identical']}")


def test_dem_extraction_speedup():
    """Quick-scale pytest entry: tiling must win and stay bit-identical."""
    res = run_comparison(d=5, rounds=25)
    report(res)
    assert res["bit_identical"]
    assert res["speedup"] >= 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (d=5, rounds=25, >=3x)"
    )
    parser.add_argument("--d", type=int, default=None, help="code distance override")
    parser.add_argument("--rounds", type=int, default=None, help="round count override")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="required full-walk / cold periodic extraction ratio (default 10, quick 3)",
    )
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    d = args.d if args.d is not None else (5 if args.quick else 7)
    rounds = args.rounds if args.rounds is not None else (25 if args.quick else 10 * d)
    target = args.min_speedup if args.min_speedup is not None else (3.0 if args.quick else 10.0)
    res = run_comparison(d=d, rounds=rounds)
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    ok = res["bit_identical"] and res["speedup"] >= target
    if not args.quick:
        ok = ok and res["flatness"] <= FLATNESS_LIMIT
    if not ok:
        print(
            f"FAIL: need bit-identical tables, >= {target:g}x speedup"
            + ("" if args.quick else f", and warm flatness <= {FLATNESS_LIMIT:g}x")
            + f" (got identical = {res['bit_identical']}, {res['speedup']:.1f}x, "
            f"flatness {res['flatness']:.2f}x)"
        )
        return 1
    print(
        f"OK: bit-identical, >= {target:g}x extraction speedup"
        + ("" if args.quick else ", flat under rounds doubling")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
