"""Table 3: the derived instruction set (Bell ops, Move, fusions)."""


from benchmarks.conftest import print_table
from repro.core.compiler import TISCC
from repro.core.derived import TABLE3
from repro.hardware.circuit import HardwareCircuit

CASES = [
    ("BellPrepare", "2/2", 1, lambda ops, c: ops.bell_prepare(c, (0, 0), (0, 1)), None),
    ("BellMeasure", "2/2", 1,
     lambda ops, c: ops.bell_prepare(c, (0, 0), (0, 1)),
     lambda ops, c: ops.bell_measure(c, (0, 0), (0, 1))),
    ("ExtendSplit", "2/2", 1,
     lambda ops, c: ops.prepare_x(c, (0, 0)),
     lambda ops, c: ops.extend_split(c, (0, 0))),
    ("MergeContract", "2/2", 1,
     lambda ops, c: (ops.prepare_x(c, (0, 0)), ops.prepare_x(c, (0, 1))),
     lambda ops, c: ops.merge_contract(c, (0, 0), (0, 1))),
    ("Move", "2/2", 1,
     lambda ops, c: ops.prepare_z(c, (0, 0)),
     lambda ops, c: ops.move(c, (0, 0))),
    ("PatchExtension", "1/2", 1,
     lambda ops, c: ops.prepare_z(c, (0, 0)),
     lambda ops, c: ops.patch_extension(c, (0, 0))),
]


def test_table3_derived_instruction_costs():
    rows = []
    for name, tiles, steps, setup, op in CASES:
        compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=2, rounds=1)
        circuit = HardwareCircuit()
        setup(compiler.ops, circuit)
        n0 = len(circuit)
        result = op(compiler.ops, circuit) if op else None
        if op is None:
            result_steps = steps
        else:
            result_steps = result.logical_timesteps
        assert result_steps == steps, f"{name}: {result_steps} != {steps}"
        assert TABLE3[name] == (tiles, steps)
        rows.append([name, tiles, steps, len(circuit) - n0,
                     f"{circuit.makespan/1000:.2f} ms"])
    # PatchContraction: 0 steps.
    compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=2, rounds=1)
    circuit = HardwareCircuit()
    compiler.ops.prepare_z(circuit, (0, 0))
    ext = compiler.ops.patch_extension(circuit, (0, 0))
    n0 = len(circuit)
    contraction = compiler.ops.patch_contraction(circuit, ext, keep="near")
    assert contraction.logical_timesteps == 0
    rows.append(["PatchContraction", "2/1", 0, len(circuit) - n0,
                 f"{circuit.makespan/1000:.2f} ms"])
    print_table(
        "Table 3 — derived instruction set (d=3, 1 round/step)",
        ["operation", "tiles in/out", "logical steps", "native instrs", "makespan"],
        rows,
    )


def test_bench_bell_prepare(benchmark):
    def bell():
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        c = HardwareCircuit()
        return compiler.ops.bell_prepare(c, (0, 0), (0, 1))

    res = benchmark(bell)
    assert res.name == "BellPrepare"


def test_bench_move(benchmark):
    def mv():
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        c = HardwareCircuit()
        compiler.ops.prepare_z(c, (0, 0))
        return compiler.ops.move(c, (0, 0))

    res = benchmark(mv)
    assert res.name == "Move"
