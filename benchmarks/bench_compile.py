"""Compile-path benchmark: columnar compiler core vs the pre-refactor path.

Acceptance target for the columnar refactor (structure-of-arrays
``HardwareCircuit``, QEC-round template replay, vectorized validity and
resource estimation): at d=11 the compile + validate + estimate pipeline
must run at least **10x** faster than the pre-refactor path for both the
single-tile memory program and the multi-tile lattice-surgery CNOT, and
the columnar circuit must serialize **byte-identically** to the legacy
one (with equal validity reports and resource figures).

The legacy leg reproduces the pre-refactor behavior exactly, the same way
``bench_decode.py`` keeps the PR 2 decoder: QEC rounds compiled one by one
(template replay off), the instruction-by-instruction reference validity
replay, the object-iterating resource estimator kept verbatim below, and
the original uncached per-call grid geometry scans monkeypatched back in.

Run directly::

    python benchmarks/bench_compile.py            # full: d=7/11, >=10x at d=11
    python benchmarks/bench_compile.py --quick    # CI smoke: d=3/5, >=3x
    python benchmarks/bench_compile.py --json BENCH_compile.json
    python benchmarks/bench_compile.py --min-speedup 2   # nightly regression gate

or via pytest (quick scale): ``pytest benchmarks/bench_compile.py -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager

import repro.core.compiler as compiler_module
from repro.code.stabilizer_circuits import SyndromeScheduler
from repro.core.compiler import TISCC
from repro.core.router import lattice_surgery_cnot_program
from repro.hardware.circuit import Instruction
from repro.hardware.grid import (
    GridManager,
    JUNCTION_HOP_US,
    MOVE_US,
    SiteBlockedError,
    _earliest_slot,
)
from repro.hardware.resources import ResourceReport, estimate_resources
from repro.hardware.validity import check_circuit, check_circuit_reference
from repro.util.geometry import SiteType, ZONE_PITCH_M, site_exists

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table

#: (program builder, tile grid shape) — the two acceptance workloads.
PROGRAMS = {
    "ZMemory": (lambda: [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))], (1, 1)),
    "CNOT": (lattice_surgery_cnot_program, (2, 2)),
}


# --------------------------------------------------------------------------
# The pre-refactor path, kept verbatim (not in the library) so the benchmark
# always measures the new hot path against exactly what it replaced.
# --------------------------------------------------------------------------


class LegacyHardwareCircuit:
    """The pre-refactor circuit container, verbatim: one Instruction object
    per append, Python ``sorted`` with a tuple key per consumer pass."""

    def __init__(self) -> None:
        self._instructions: list[Instruction] = []
        self._measure_count = 0

    def append(self, name, sites, t, duration, label=None) -> Instruction:
        inst = Instruction(name, tuple(int(s) for s in sites), float(t), float(duration), label)
        self._instructions.append(inst)
        return inst

    def new_measure_label(self) -> str:
        label = f"m{self._measure_count}"
        self._measure_count += 1
        return label

    def extend(self, other) -> None:
        self._instructions.extend(other._instructions)
        self._measure_count = max(self._measure_count, other._measure_count)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self):
        return iter(self.sorted_instructions())

    @property
    def instructions(self) -> list[Instruction]:
        return list(self._instructions)

    def sorted_instructions(self) -> list[Instruction]:
        return sorted(
            self._instructions,
            key=lambda i: (i.t, 0 if i.name == "Load" else 1, i.sites, i.name),
        )

    @property
    def makespan(self) -> float:
        if not self._instructions:
            return 0.0
        return max(i.t_end for i in self._instructions)

    @property
    def t_start(self) -> float:
        if not self._instructions:
            return 0.0
        return min(i.t for i in self._instructions)

    def used_sites(self) -> set[int]:
        sites: set[int] = set()
        for inst in self._instructions:
            sites.update(inst.sites)
        return sites

    def count(self, name: str) -> int:
        return sum(1 for i in self._instructions if i.name == name)

    def gate_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for inst in self._instructions:
            hist[inst.name] = hist.get(inst.name, 0) + 1
        return dict(sorted(hist.items()))

    def measurements(self) -> list[Instruction]:
        return [i for i in self.sorted_instructions() if i.label is not None]

    def to_text(self, header=None) -> str:
        lines = []
        if header:
            lines.append(f"# {header}")
        lines += [inst.to_text() for inst in self.sorted_instructions()]
        return "\n".join(lines) + "\n"


def _legacy_neighbors(self, site):
    """Pre-refactor GridManager.neighbors: a fresh geometry scan per call."""
    r, c = self.coords(site)
    out = []
    for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
        if 0 <= rr < self.height and 0 <= cc < self.width and site_exists(rr, cc):
            out.append(rr * self.width + cc)
    return out


def _legacy_is_zone(self, site):
    return self.site_type(site) is not SiteType.JUNCTION


def _legacy_adjacent_zones(self, site):
    return [s for s in self.neighbors(site) if self.is_zone(s)]


def _legacy_junction_between(self, a, b):
    if not (self.is_zone(a) and self.is_zone(b)):
        return None
    for j in self.neighbors(a):
        if self.site_type(j) is SiteType.JUNCTION and b in self.neighbors(j):
            return j
    return None


def _legacy_reserve_site(self, site, t, dur):
    """Pre-refactor _reserve_site: always scans the full interval list."""
    intervals = self._site_busy.setdefault(site, [])
    return _earliest_slot(intervals, t, dur)


def _legacy_schedule_move(self, circuit, ion, dst, t_min=0.0):
    """Pre-refactor schedule_move: no calendar-horizon fast paths."""
    src = self._site_of[ion]
    if dst == src:
        return (self._ion_ready[ion], self._ion_ready[ion])
    if not self.is_zone(dst):
        raise ValueError(f"ion cannot stop on junction site {dst}")
    junction = None
    if dst in self.neighbors(src):
        dur = MOVE_US
    else:
        junction = self.junction_between(src, dst)
        if junction is None:
            raise ValueError(f"sites {src} and {dst} are not one hop apart")
        dur = JUNCTION_HOP_US
    occupant = self._occupant.get(dst)
    if occupant is not None:
        raise SiteBlockedError(dst, occupant)
    t = max(t_min, self._ion_ready[ion])
    t_site = self._reserve_site(dst, t, dur)
    if t_site > t:
        self.site_delays += 1
    t = t_site
    if junction is not None:
        intervals = self._junction_busy.setdefault(junction, [])
        t_junction = _earliest_slot(intervals, t, dur)
        if t_junction > t:
            self.junction_conflicts += 1
            t_junction = self._reserve_site(dst, t_junction, dur)
        t = t_junction
        intervals.append((t, t + dur))
    since = self._occupied_since.pop(src)
    self._commit_site(src, since, t + dur)
    del self._occupant[src]
    self._occupant[dst] = ion
    self._occupied_since[dst] = t
    self._site_of[ion] = dst
    self._ion_ready[ion] = t + dur
    circuit.append("Move", (src, dst), t, dur)
    return (t, t + dur)


def legacy_estimate_resources(grid, circuit, operation="", dx=0, dz=0):
    """The pre-refactor estimator: per-Instruction Python iteration."""
    instructions = circuit.instructions
    if instructions:
        t0 = min(i.t for i in instructions)
        t1 = max(i.t_end for i in instructions)
        time_s = (t1 - t0) * 1e-6
    else:
        time_s = 0.0
    sites = circuit.used_sites()
    if sites:
        coords = [grid.coords(s) for s in sites]
        r0 = min(r for r, _ in coords)
        r1 = max(r for r, _ in coords)
        c0 = min(c for _, c in coords)
        c1 = max(c for _, c in coords)
        area = ((r1 - r0 + 1) * ZONE_PITCH_M) * ((c1 - c0 + 1) * ZONE_PITCH_M)
        zones = grid.zones_in_bbox(r0, c0, r1, c1)
    else:
        area = 0.0
        zones = 0
    active = sum(i.duration * len(i.sites) for i in instructions) * 1e-6
    return ResourceReport(
        operation=operation,
        dx=dx,
        dz=dz,
        computation_time_s=time_s,
        grid_area_m2=area,
        spacetime_volume_s_m2=time_s * area,
        n_trapping_zones=zones,
        zone_seconds=zones * time_s,
        active_zone_seconds=active,
        n_instructions=len(instructions),
        gate_histogram=circuit.gate_histogram(),
    )


@contextmanager
def legacy_compiler_path():
    """Run the exact pre-refactor pipeline: list-of-Instruction circuits,
    round-by-round scheduling, and uncached per-call geometry scans."""
    saved = (
        GridManager.neighbors,
        GridManager.is_zone,
        GridManager.adjacent_zones,
        GridManager.junction_between,
        GridManager._reserve_site,
        GridManager.schedule_move,
        SyndromeScheduler.template_replay,
        compiler_module.HardwareCircuit,
    )
    GridManager.neighbors = _legacy_neighbors
    GridManager.is_zone = _legacy_is_zone
    GridManager.adjacent_zones = _legacy_adjacent_zones
    GridManager.junction_between = _legacy_junction_between
    GridManager._reserve_site = _legacy_reserve_site
    GridManager.schedule_move = _legacy_schedule_move
    SyndromeScheduler.template_replay = False
    compiler_module.HardwareCircuit = LegacyHardwareCircuit
    try:
        yield
    finally:
        (
            GridManager.neighbors,
            GridManager.is_zone,
            GridManager.adjacent_zones,
            GridManager.junction_between,
            GridManager._reserve_site,
            GridManager.schedule_move,
            SyndromeScheduler.template_replay,
            compiler_module.HardwareCircuit,
        ) = saved


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------


def _run_leg(op: str, d: int, legacy: bool, repeat: int = 1) -> dict:
    """Compile + validate + estimate one program, timing each phase.

    With ``repeat > 1`` the whole pipeline runs that many times on fresh
    compiler instances and the fastest total is kept — the standard
    noise-robust estimator; both legs are treated identically.
    """
    best = None
    for _ in range(max(1, repeat)):
        leg = _run_leg_once(op, d, legacy)
        if best is None or leg["total_seconds"] < best["total_seconds"]:
            best = leg
    assert best is not None
    return best


def _run_leg_once(op: str, d: int, legacy: bool) -> dict:
    build, shape = PROGRAMS[op]
    checker = check_circuit_reference if legacy else check_circuit
    estimator = legacy_estimate_resources if legacy else estimate_resources

    compiler = TISCC(dx=d, dz=d, tile_rows=shape[0], tile_cols=shape[1])
    t0 = time.perf_counter()
    compiled = compiler.compile(build(), operation=op, validate=False, estimate=False)
    t_compile = time.perf_counter() - t0

    t0 = time.perf_counter()
    validity = checker(compiler.grid, compiled.circuit, compiled.initial_occupancy)
    t_validate = time.perf_counter() - t0

    t0 = time.perf_counter()
    resources = estimator(compiler.grid, compiled.circuit, op, d, d)
    t_estimate = time.perf_counter() - t0

    return {
        "op": op,
        "d": d,
        "path": "legacy" if legacy else "columnar",
        "n_instructions": len(compiled.circuit),
        "compile_seconds": t_compile,
        "validate_seconds": t_validate,
        "estimate_seconds": t_estimate,
        "total_seconds": t_compile + t_validate + t_estimate,
        "text": compiled.circuit.to_text(),
        "validity": validity,
        "resources": resources,
    }


def run_bench(distances: list[int], repeat: int = 2) -> dict:
    """Time both paths on both programs, asserting exact equivalence."""
    # Warm up imports/JIT-ish caches outside the timed region.
    TISCC(dx=2, dz=2, rounds=1).compile([("PrepareZ", (0, 0))])

    rows = []
    speedups: dict[tuple[str, int], float] = {}
    equivalent = True
    for op in PROGRAMS:
        for d in distances:
            with legacy_compiler_path():
                legacy = _run_leg(op, d, legacy=True, repeat=repeat)
            new = _run_leg(op, d, legacy=False, repeat=repeat)
            same = (
                new["text"] == legacy["text"]
                and new["validity"] == legacy["validity"]
                and new["resources"] == legacy["resources"]
            )
            equivalent &= same
            speedup = legacy["total_seconds"] / new["total_seconds"]
            speedups[(op, d)] = speedup
            for leg in (legacy, new):
                rows.append(
                    {
                        k: leg[k]
                        for k in (
                            "op",
                            "d",
                            "path",
                            "n_instructions",
                            "compile_seconds",
                            "validate_seconds",
                            "estimate_seconds",
                            "total_seconds",
                        )
                    }
                )
            rows[-1]["speedup"] = speedup
            rows[-1]["equivalent"] = same

    d_max = max(distances)
    return {
        "distances": distances,
        "programs": list(PROGRAMS),
        "rows": rows,
        "speedups": {f"{op}@d{d}": s for (op, d), s in speedups.items()},
        "speedup": min(speedups[(op, d_max)] for op in PROGRAMS),
        "equivalent": equivalent,
    }


def report(res: dict) -> None:
    print_table(
        "compile + validate + estimate (columnar vs pre-refactor)",
        ["program", "d", "path", "instr", "compile [s]", "validate [s]",
         "estimate [s]", "total [s]", "speedup"],
        [
            [
                r["op"],
                str(r["d"]),
                r["path"],
                str(r["n_instructions"]),
                f"{r['compile_seconds']:.3f}",
                f"{r['validate_seconds']:.3f}",
                f"{r['estimate_seconds']:.3f}",
                f"{r['total_seconds']:.3f}",
                f"{r['speedup']:.1f}x" if "speedup" in r else "",
            ]
            for r in res["rows"]
        ],
    )
    print(
        f"worst speedup at d={max(res['distances'])}: {res['speedup']:.1f}x; "
        f"byte-identical circuits, equal validity/resource reports: "
        f"{res['equivalent']}"
    )


def test_compile_speedup():
    """Quick-scale pytest entry: the columnar path must win clearly."""
    res = run_bench(distances=[3, 5])
    report(res)
    assert res["equivalent"]
    assert res["speedup"] >= 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (d=3/5, >=3x)"
    )
    parser.add_argument(
        "--distances", type=int, nargs="+", default=None, help="distance override"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="repetitions per leg; the fastest run is kept (noise floor)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this compile+validate+estimate speedup at the largest "
        "distance (default: 10 full, 3 quick; nightly passes 2 as a "
        ">5x-regression-from-10x gate)",
    )
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    distances = args.distances or ([3, 5] if args.quick else [7, 11])
    target = args.min_speedup if args.min_speedup is not None else (3.0 if args.quick else 10.0)
    res = run_bench(distances=distances, repeat=args.repeat)
    res["min_speedup"] = target
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    if not res["equivalent"]:
        print("FAIL: columnar path is not byte-identical to the legacy path")
        return 1
    if res["speedup"] < target:
        print(
            f"FAIL: need >= {target:.1f}x at d={max(distances)}, "
            f"got {res['speedup']:.1f}x"
        )
        return 1
    print(f"OK: >= {target:.1f}x at d={max(distances)}, outputs byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
