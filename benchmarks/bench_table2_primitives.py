"""Table 2: the surface-code primitive operations.

Each primitive's patch count and logical time-step cost, compiled and timed.
"""


from benchmarks.conftest import fresh_patch, print_table
from repro.code.patch_ops import merge, split
from repro.code.logical_qubit import LogicalQubit
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel


def _merge_pair():
    grid = GridManager(4, 8)
    model = HardwareModel(grid)
    a = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
    b = LogicalQubit(grid, model, 3, 3, (0, 4), name="B")
    c = HardwareCircuit()
    a.prepare(c, basis="Z", rounds=1)
    b.prepare(c, basis="Z", rounds=1)
    return grid, a, b, c


def test_table2_primitive_costs():
    rows = []
    # One-patch transversal primitives: 0 logical time-steps.
    for name, emit in [
        ("Prepare Z", lambda lq, c: lq.transversal_prepare(c, "Z")),
        ("Measure Z", lambda lq, c: (setattr(lq, "initialized", True),
                                     lq.transversal_measure(c, "Z"))),
        ("Hadamard", lambda lq, c: lq.transversal_hadamard(c)),
        ("Pauli X/Y/Z", lambda lq, c: lq.apply_pauli(c, "X")),
    ]:
        _, _, lq, c, _ = fresh_patch(3, 3)
        emit(lq, c)
        rows.append([name, 1, 0, len(c), f"{c.makespan/1000:.3f} ms"])

    # Inject: transversal preps plus one (uncounted, non-FT) round.
    _, _, lq, c, _ = fresh_patch(3, 3)
    lq.inject_state(c, "Y", rounds=1)
    rows.append(["Inject Y/T", 1, 0, len(c), f"{c.makespan/1000:.3f} ms"])

    # Idle: one logical time-step of dt rounds.
    _, _, lq, c, _ = fresh_patch(3, 3)
    lq.idle(c, rounds=3)
    rows.append(["Idle (dt=3)", 1, 1, len(c), f"{c.makespan/1000:.3f} ms"])

    # Merge: 2 patches -> 1, one time-step; Split: 0 further steps.
    grid, a, b, c = _merge_pair()
    n0 = len(c)
    mr = merge(c, a, b, "horizontal", rounds=3)
    rows.append(["Merge", 2, 1, len(c) - n0, f"{c.makespan/1000:.3f} ms"])
    n0 = len(c)
    split(c, mr)
    rows.append(["Split", "2/2", 0, len(c) - n0, f"{c.makespan/1000:.3f} ms"])
    print_table(
        "Table 2 — primitive surface-code operations (d=3)",
        ["primitive", "patches", "logical steps", "native instrs", "makespan"],
        rows,
    )


def test_bench_idle_round(benchmark):
    def one_round():
        _, _, lq, c, _ = fresh_patch(3, 3)
        lq.idle(c, rounds=1)
        return c

    c = benchmark(one_round)
    assert c.count("ZZ") > 0


def test_bench_merge(benchmark):
    def do_merge():
        grid, a, b, c = _merge_pair()
        return merge(c, a, b, "horizontal", rounds=1)

    mr = benchmark(do_merge)
    assert mr.merged.dx == 7
