"""Fig 3: Flip Patch — four clockwise corner movements, verified identity."""

from benchmarks.conftest import fresh_patch, print_table, simulate
from repro.code.arrangements import Arrangement
from repro.code.corner import DeformationSession, extend_logical_operator_clockwise, flip_patch


def test_fig3_intermediate_states():
    """The inset of Fig 3: patch state after each corner movement."""
    grid, _, lq, c, occ0 = fresh_patch(3, 3)
    lq.prepare(c, basis="Z", rounds=1)
    session = DeformationSession(lq)
    rows = []
    for k, edge in enumerate(("top", "right", "bottom", "left"), start=1):
        added = extend_logical_operator_clockwise(session, c, edge)
        rows.append([
            f"after movement {k} ({edge})",
            len(lq.stabilizers),
            lq.logical_z.pauli.weight,
            lq.logical_x.pauli.weight,
            len(added),
        ])
    print_table(
        "Fig 3 — Flip Patch corner-movement sequence (d=3, |0>_L)",
        ["state", "stabilizers", "w(Z_L)", "w(X_L)", "faces measured"],
        rows,
    )
    assert all(r[1] == 8 for r in rows)  # generator count preserved throughout
    res = simulate(grid, c, occ0, seed=2)
    v = res.expectation(lq.logical_z.pauli)
    for lab in lq.logical_z.corrections:
        v *= res.sign(lab)
    assert v == 1


def test_fig3_verified_distances():
    """§4.3: flip verified for odd and mixed-odd distances; even-distance
    flips need a corner protocol beyond the paper's text (EXPERIMENTS.md)."""
    rows = []
    for dx, dz in [(3, 3), (5, 3), (3, 5)]:
        grid, _, lq, c, occ0 = fresh_patch(dx, dz)
        lq.prepare(c, basis="Z", rounds=1)
        flip_patch(lq, c)
        res = simulate(grid, c, occ0, seed=3)
        v = res.expectation(lq.logical_z.pauli)
        for lab in lq.logical_z.corrections:
            v *= res.sign(lab)
        rows.append([f"dx={dx}, dz={dz}", lq.arrangement.name, v])
        assert v == 1
    print_table("Fig 3 — flip patch identity check", ["distances", "final", "<Z_L>"], rows)


def test_bench_flip_patch(benchmark):
    def flip():
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        flip_patch(lq, c)
        return lq

    lq = benchmark(flip)
    assert lq.arrangement is Arrangement.FLIPPED
