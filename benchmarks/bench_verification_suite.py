"""§4: the verification matrix — tomography fidelities for the instruction set.

Reproduces the paper's verification claims: preparation circuits (§4.2),
one-tile processes (§4.3), two-tile branch verification (§4.4), and the
quasi-Clifford Monte Carlo for T injection (§4.1).
"""

import numpy as np
import pytest

from benchmarks.conftest import fresh_patch, print_table, simulate
from repro.code.arrangements import Arrangement
from repro.sim.quasi import estimate_expectation
from repro.verify.protocols import verify_one_tile_identity, verify_preparation, verify_process


def test_sec42_preparation_matrix():
    rows = []
    for arr in Arrangement:
        for state in ("0", "+", "+i"):
            f = verify_preparation(3, 3, arr, state)
            rows.append([arr.name, state, f"{f:.6f}"])
            assert f == pytest.approx(1.0)
    print_table(
        "§4.2 — state-tomography fidelities (d=3)", ["arrangement", "state", "fidelity"], rows
    )


def test_sec43_one_tile_processes():
    rows = []
    for name, fn, ideal in [
        ("Idle", lambda lq, c: lq.idle(c, rounds=1) and None, "I"),
        ("Pauli X", lambda lq, c: lq.apply_pauli(c, "X"), "X"),
        ("Pauli Y", lambda lq, c: lq.apply_pauli(c, "Y"), "Y"),
        ("Pauli Z", lambda lq, c: lq.apply_pauli(c, "Z"), "Z"),
    ]:
        f = verify_process(3, 3, Arrangement.STANDARD, fn, ideal=ideal)
        rows.append([name, ideal, f"{f:.6f}"])
        assert f == pytest.approx(1.0)

    def hadamard(lq, c):
        lq.transversal_hadamard(c)
        lq.idle(c, rounds=1)

    f = verify_process(3, 3, Arrangement.STANDARD, hadamard, ideal="H")
    rows.append(["Hadamard", "H", f"{f:.6f}"])
    assert f == pytest.approx(1.0)
    print_table(
        "§4.3 — process-tomography fidelities (d=3)", ["operation", "ideal", "fidelity"], rows
    )


def test_sec44_two_tile_branches():
    """Measure ZZ verified per outcome branch (statistical, §4.4)."""
    from repro.core.compiler import TISCC

    branches = {1: 0, -1: 0}
    for seed in range(10):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([
            ("PrepareX", (0, 0)), ("PrepareX", (0, 1)),
            ("MeasureZZ", (0, 0), (0, 1)),
            ("MeasureZ", (0, 0)), ("MeasureZ", (0, 1)),
        ])
        res = compiler.simulate(compiled, seed=seed)
        m = compiled.results[2].value(res)
        assert compiled.results[3].value(res) * compiled.results[4].value(res) == m
        branches[m] += 1
    print_table(
        "§4.4 — MeasureZZ branch verification on |++> (10 shots)",
        ["branch", "shots", "ZZ consistency"],
        [[m, n, "all pass"] for m, n in branches.items()],
    )
    assert branches[1] + branches[-1] == 10


def test_sec41_t_injection_monte_carlo():
    grid, _, lq, c, occ0 = fresh_patch(2, 2)
    lq.inject_state(c, "T", rounds=1)
    x = lq.logical_x

    def shot(k):
        res = simulate(grid, c, occ0, seed=50_000 + k)
        v = res.expectation(x.pauli)
        for lab in x.corrections:
            v *= res.sign(lab)
        return v, res.weight

    mean, err = estimate_expectation(shot, 600)
    print(f"\n§4.1 — T injection: <X_L> = {mean:.3f} ± {err:.3f} "
          f"(ideal 1/sqrt2 = {1/np.sqrt(2):.3f})")
    assert mean == pytest.approx(1 / np.sqrt(2), abs=5 * err)


def test_bench_tomography_throughput(benchmark):
    f = benchmark(lambda: verify_one_tile_identity(
        2, 2, Arrangement.STANDARD, lambda lq, c: lq.idle(c, rounds=1) and None
    ))
    assert f == pytest.approx(1.0)
