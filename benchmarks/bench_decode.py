"""Decode-throughput benchmark: batched weighted union-find vs the PR 2 decoder.

Acceptance target for the pluggable decoder subsystem: at d=7 with 20 000
near-term shots the rewritten union-find hot path (CSR adjacency,
preallocated state, event-driven weighted growth, batch dedup + fast
paths) must decode at least **10x** faster than the pre-refactor decoder
(which re-scanned every graph edge per growth round, shot by shot), and a
``logical_error_sweep(engine="frame")`` at that scale must run at least
**5x** faster end-to-end, with decode no longer dominating the profile.
The weighted decoder's LER must also not exceed the unweighted one's on
the same syndromes.

Run directly::

    python benchmarks/bench_decode.py            # full: d=7, 20000 shots, >=10x
    python benchmarks/bench_decode.py --quick    # CI smoke: d=5, 2000 shots, >=3x
    python benchmarks/bench_decode.py --json BENCH_decode.json
    python benchmarks/bench_decode.py --min-speedup 2   # nightly regression gate
    python benchmarks/bench_decode.py --window --quick  # sliding-window gates
    python benchmarks/bench_decode.py --window --json BENCH_decode.json

or via pytest (quick scale): ``pytest benchmarks/bench_decode.py -s``.

``--window`` switches to the sliding-window acceptance gates: at every
standard sweep point the windowed decoder's LER must lie inside the
whole-block decoder's Wilson 95% interval (and vice versa — same
syndromes, so any real divergence shows immediately); the windowed
decoder's per-window state must stay *constant* as rounds grow from
``10·d`` to ``20·d`` while whole-block state doubles (array-size
accounting — the O(window) memory claim); and windowed throughput must
clear a shots/s floor.  With ``--json`` pointing at an existing results
file the window section is merged in under a ``"window"`` key, extending
BENCH_decode.json rather than replacing it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.decode import MemoryExperiment
from repro.decode.graph import BOUNDARY, MatchingGraph
from repro.estimator.sweep import logical_error_sweep
from repro.sim.noise import NoiseModel

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table


class LegacyUnionFindDecoder:
    """The PR 2 union-find decoder, verbatim: the pre-refactor baseline.

    Kept here (not in the library) so the benchmark always measures the new
    hot path against the exact decoder it replaced: Python-list adjacency,
    unweighted half-step growth that re-scans every ungrown edge each
    round, and shot-by-shot decoding behind a syndrome dedup.
    """

    def __init__(self, graph: MatchingGraph):
        self.graph = graph
        self.n = graph.n_detectors
        self._eu = np.empty(graph.n_edges, dtype=np.int64)
        self._ev = np.empty(graph.n_edges, dtype=np.int64)
        self._frame = np.empty(graph.n_edges, dtype=np.uint8)
        for k, e in enumerate(graph.edges):
            self._eu[k] = self.n if e.u == BOUNDARY else e.u
            self._ev[k] = self.n if e.v == BOUNDARY else e.v
            self._frame[k] = e.frame
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(self.n + 1)]
        for k in range(graph.n_edges):
            u, v = int(self._eu[k]), int(self._ev[k])
            self._adj[u].append((k, v))
            self._adj[v].append((k, u))

    @staticmethod
    def _find(parent: list, a: int) -> int:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    def decode(self, syndrome: np.ndarray) -> int:
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        defects = np.nonzero(syndrome)[0].tolist()
        if not defects:
            return 0
        support = self._grow(defects, syndrome)
        return self._peel(support, syndrome)

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        unique, inverse = np.unique(syndromes, axis=0, return_inverse=True)
        verdicts = np.array([self.decode(row) for row in unique], dtype=np.uint8)
        return verdicts[inverse.reshape(-1)]

    def _grow(self, defects: list, syndrome: np.ndarray) -> np.ndarray:
        n, b = self.n, self.n
        parent = list(range(n + 1))
        parity = syndrome.astype(np.int8).tolist() + [0]
        growth = np.zeros(self.graph.n_edges, dtype=np.int8)
        eu, ev = self._eu, self._ev
        find = self._find
        for _ in range(2 * (self.graph.n_edges + 1)):
            boundary_root = find(parent, b)
            active = {
                r
                for r in {find(parent, d) for d in defects}
                if parity[r] % 2 == 1 and r != boundary_root
            }
            if not active:
                return growth >= 2
            for k in np.nonzero(growth < 2)[0]:
                u, v = int(eu[k]), int(ev[k])
                ru, rv = find(parent, u), find(parent, v)
                step = (ru in active) + (rv in active)
                if step == 0:
                    continue
                growth[k] += step
                if growth[k] >= 2 and ru != rv:
                    parent[ru] = rv
                    parity[rv] += parity[ru]
        raise RuntimeError("union-find growth failed to converge")

    def _peel(self, support: np.ndarray, syndrome: np.ndarray) -> int:
        n, b = self.n, self.n
        visited = [False] * (n + 1)
        defect = syndrome.astype(np.int8).tolist() + [0]
        parent_edge = [-1] * (n + 1)
        parent_node = [-1] * (n + 1)
        flip = 0
        order: list[int] = []
        for root in [b] + list(range(n)):
            if visited[root]:
                continue
            if root != b and not any(support[k] for k, _ in self._adj[root]):
                continue
            visited[root] = True
            queue = [root]
            while queue:
                cur = queue.pop(0)
                order.append(cur)
                for k, other in self._adj[cur]:
                    if not support[k] or visited[other]:
                        continue
                    visited[other] = True
                    parent_edge[other] = k
                    parent_node[other] = cur
                    queue.append(other)
        for v in reversed(order):
            if parent_edge[v] < 0 or not defect[v]:
                continue
            flip ^= int(self._frame[parent_edge[v]])
            defect[v] = 0
            defect[parent_node[v]] ^= 1
        defect[b] = 0
        return flip


def run_bench(d: int = 7, shots: int = 20000, seed: int = 0) -> dict:
    """Time legacy vs rewritten decoders on one near-term syndrome batch."""
    model = NoiseModel.preset("near_term")
    t0 = time.perf_counter()
    experiment = MemoryExperiment(distance=d, basis="Z")
    t_compile = time.perf_counter() - t0

    t0 = time.perf_counter()
    samples = experiment.sample_frame(shots, noise=model, seed=seed)
    t_sample = time.perf_counter() - t0
    dets, raw = samples.detectors, samples.observables[:, 0]

    rows = []

    def time_decoder(label, decoder):
        t0 = time.perf_counter()
        predicted = decoder.decode_batch(dets)
        elapsed = time.perf_counter() - t0
        rows.append(
            {
                "decoder": label,
                "seconds": elapsed,
                "shots_per_second": shots / elapsed,
                "ler": float((raw ^ predicted).mean()),
            }
        )
        return elapsed

    t_legacy = time_decoder("legacy (PR 2)", LegacyUnionFindDecoder(experiment.graph))
    t_weighted = time_decoder("union_find", experiment.decoder_for(model))
    t_unweighted = time_decoder(
        "union_find_unweighted", experiment.decoder_for(model, "union_find_unweighted")
    )

    # End-to-end sweep profile on the frame engine (one distance, one rate).
    t0 = time.perf_counter()
    report = logical_error_sweep(
        [d], noise_models=[model], shots=shots, seed=seed, engine="frame"
    )[0]
    t_sweep = time.perf_counter() - t0
    legacy_sweep = report.sim_seconds + t_legacy  # same samples, legacy decode

    by = {r["decoder"]: r for r in rows}
    return {
        "d": d,
        "shots": shots,
        "noise": model.name,
        "detectors": experiment.n_detectors,
        "schedule_edges": experiment.graph.n_edges,
        "dem_edges": experiment.matching_graph(model).n_edges,
        "compile_seconds": t_compile,
        "sample_seconds": t_sample,
        "decoders": rows,
        "speedup": t_legacy / t_weighted,
        "speedup_unweighted": t_legacy / t_unweighted,
        "sweep_seconds": t_sweep,
        "sweep_sim_seconds": report.sim_seconds,
        "sweep_decode_seconds": report.decode_seconds,
        "sweep_decode_fraction": report.decode_seconds / t_sweep,
        "legacy_sweep_seconds": legacy_sweep,
        "sweep_speedup": legacy_sweep / t_sweep,
        "weighted_not_worse": by["union_find"]["ler"] <= by["union_find_unweighted"]["ler"],
    }


#: Standard sweep points of the windowed-vs-whole-block parity gate:
#: (distance, noise spec) with a shots budget per scale.  ``"near_term"``
#: is the calibrated preset; floats become single-knob uniform models.
WINDOW_SWEEP_POINTS = [
    (3, 3e-4),
    (3, 1e-3),
    (3, 5e-3),
    (3, "near_term"),
    (5, 1e-3),
    (5, 5e-3),
    (5, "near_term"),
]
WINDOW_SWEEP_POINTS_QUICK = [(3, 1e-3), (3, 5e-3), (3, "near_term"), (5, 5e-3)]


def _window_model(spec) -> NoiseModel:
    return NoiseModel.preset(spec) if isinstance(spec, str) else NoiseModel.uniform(spec)


def run_window_bench(quick: bool = False, seed: int = 0) -> dict:
    """Sliding-window acceptance run: LER parity, O(window) memory, throughput.

    Every point decodes the *same* syndrome batch whole-block and windowed
    (default window ``2d``/commit ``d``), so the Wilson-interval parity
    check compares decoders, not sampling noise.  Points run at
    ``rounds = 10·d`` — long enough that the window genuinely slides
    (at the default ``rounds = d`` a ``2d`` window would degenerate to a
    single whole-block window and the parity gate would test nothing).
    """
    from repro.util.stats import intervals_overlap, wilson_interval

    shots = 2000 if quick else 10000
    points = WINDOW_SWEEP_POINTS_QUICK if quick else WINDOW_SWEEP_POINTS
    rows = []
    parity_ok = True
    worst_throughput = float("inf")
    for d, spec in points:
        model = _window_model(spec)
        experiment = MemoryExperiment(distance=d, rounds=10 * d, basis="Z")
        samples = experiment.sample_frame(shots, noise=model, seed=seed)
        dets, raw = samples.detectors, samples.observables[:, 0]

        whole = experiment.decoder_for(model)
        t0 = time.perf_counter()
        fail_whole = int((raw ^ whole.decode_batch(dets)).sum())
        t_whole = time.perf_counter() - t0

        win = experiment.decoder_for(model, "union_find_windowed")
        t0 = time.perf_counter()
        fail_win = int((raw ^ win.decode_batch(dets)).sum())
        t_win = time.perf_counter() - t0

        iv_whole = wilson_interval(fail_whole, shots)
        iv_win = wilson_interval(fail_win, shots)
        overlap = intervals_overlap(iv_whole, iv_win)
        parity_ok = parity_ok and overlap
        worst_throughput = min(worst_throughput, shots / t_win)
        rows.append(
            {
                "d": d,
                "noise": model.name,
                "shots": shots,
                "window": win.window,
                "commit": win.commit,
                "ler_whole": fail_whole / shots,
                "ler_windowed": fail_win / shots,
                "wilson_whole": list(iv_whole),
                "wilson_windowed": list(iv_win),
                "wilson_overlap": overlap,
                "whole_shots_per_second": shots / t_whole,
                "windowed_shots_per_second": shots / t_win,
            }
        )

    # O(window) memory: stretching the experiment from rounds=10d to 20d
    # doubles the whole-block decoder's detector state but must leave the
    # windowed decoder's per-window state untouched (array-size accounting;
    # the streaming buffer is likewise window-bound by construction).
    memory_rows = []
    memory_ok = True
    d_mem = 3 if quick else 5
    model = _window_model(1e-3)
    peaks = {}
    for rounds in (10 * d_mem, 20 * d_mem):
        experiment = MemoryExperiment(distance=d_mem, rounds=rounds, basis="Z")
        win = experiment.decoder_for(model, "union_find_windowed")
        peaks[rounds] = win.peak_window_detectors
        memory_rows.append(
            {
                "d": d_mem,
                "rounds": rounds,
                "whole_block_detectors": experiment.n_detectors,
                "peak_window_detectors": win.peak_window_detectors,
                "window_kinds": win.n_window_kinds,
            }
        )
    memory_ok = (
        peaks[10 * d_mem] == peaks[20 * d_mem]
        and peaks[20 * d_mem] < memory_rows[-1]["whole_block_detectors"]
    )

    return {
        "mode": "window",
        "quick": quick,
        "shots": shots,
        "points": rows,
        "parity_ok": parity_ok,
        "memory": memory_rows,
        "memory_ok": memory_ok,
        "min_windowed_shots_per_second": worst_throughput,
    }


def report_window(res: dict) -> None:
    print_table(
        f"sliding-window vs whole-block union-find ({res['shots']} shots/point)",
        ["d", "noise", "w/c", "LER whole", "LER windowed", "overlap", "win shots/s"],
        [
            [
                str(r["d"]),
                r["noise"],
                f"{r['window']}/{r['commit']}",
                f"{r['ler_whole']:.5f}",
                f"{r['ler_windowed']:.5f}",
                "yes" if r["wilson_overlap"] else "NO",
                f"{r['windowed_shots_per_second']:.0f}",
            ]
            for r in res["points"]
        ],
    )
    for m in res["memory"]:
        print(
            f"d={m['d']} rounds={m['rounds']}: whole-block state "
            f"{m['whole_block_detectors']} detectors vs windowed peak "
            f"{m['peak_window_detectors']} ({m['window_kinds']} window kinds)"
        )
    print(
        f"parity_ok={res['parity_ok']} memory_ok={res['memory_ok']} "
        f"worst windowed throughput {res['min_windowed_shots_per_second']:.0f} shots/s"
    )


def report(res: dict) -> None:
    print_table(
        f"batched decode throughput (d={res['d']}, {res['shots']} shots, "
        f"{res['noise']}, {res['detectors']} detectors, "
        f"{res['dem_edges']} DEM edges)",
        ["decoder", "decode [s]", "shots/s", "LER"],
        [
            [
                r["decoder"],
                f"{r['seconds']:.3f}",
                f"{r['shots_per_second']:.0f}",
                f"{r['ler']:.5f}",
            ]
            for r in res["decoders"]
        ],
    )
    print(
        f"decode speedup over the PR 2 decoder: {res['speedup']:.1f}x weighted, "
        f"{res['speedup_unweighted']:.1f}x unweighted"
    )
    print(
        f"end-to-end frame sweep: {res['sweep_seconds']:.2f} s "
        f"(decode {res['sweep_decode_seconds']:.2f} s = "
        f"{100 * res['sweep_decode_fraction']:.0f}% of wall time) vs "
        f"{res['legacy_sweep_seconds']:.2f} s with the legacy decoder "
        f"-> {res['sweep_speedup']:.1f}x"
    )


def test_decode_speedup():
    """Quick-scale pytest entry: the rewritten decoder must win clearly."""
    res = run_bench(d=5, shots=2000)
    report(res)
    assert res["speedup"] >= 3.0
    assert res["weighted_not_worse"]


def test_windowed_decode_gates():
    """Quick-scale pytest entry for the sliding-window acceptance gates."""
    res = run_window_bench(quick=True)
    report_window(res)
    assert res["parity_ok"]
    assert res["memory_ok"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (d=5, 2000 shots, >=3x)"
    )
    parser.add_argument("--d", type=int, default=None, help="code distance override")
    parser.add_argument("--shots", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this decode speedup (default: 10 full, 3 quick; "
        "nightly passes 2 as a >5x-regression-from-10x gate)",
    )
    parser.add_argument(
        "--window",
        action="store_true",
        help="run the sliding-window gates (LER parity, O(window) memory, "
        "shots/s floor) instead of the legacy-vs-rewrite comparison",
    )
    parser.add_argument(
        "--min-window-shots",
        type=float,
        default=None,
        help="fail below this windowed decode throughput in shots/s at the "
        "slowest sweep point (default: 100 — an order of magnitude under "
        "the measured worst case, a pathological-slowdown smoke gate)",
    )
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    if args.window:
        floor = args.min_window_shots if args.min_window_shots is not None else 100.0
        res = run_window_bench(quick=args.quick, seed=args.seed)
        res["min_window_shots_per_second"] = floor
        report_window(res)
        if args.json:
            merged: dict = {}
            try:
                with open(args.json) as fh:
                    merged = json.load(fh)
            except (FileNotFoundError, json.JSONDecodeError):
                pass
            if not isinstance(merged, dict):
                merged = {}
            merged["window"] = res
            with open(args.json, "w") as fh:
                json.dump(merged, fh, indent=2)
            print(f"wrote {args.json} (window section)")
        throughput_ok = res["min_windowed_shots_per_second"] >= floor
        if not (res["parity_ok"] and res["memory_ok"] and throughput_ok):
            print(
                f"FAIL: need Wilson-interval parity at every point, constant "
                f"O(window) state, and >= {floor:.0f} shots/s windowed "
                f"(got parity_ok={res['parity_ok']}, memory_ok={res['memory_ok']}, "
                f"{res['min_windowed_shots_per_second']:.0f} shots/s)"
            )
            return 1
        print(
            f"OK: windowed LER inside Wilson interval at every point, "
            f"O(window) state constant under 2x rounds, "
            f">= {floor:.0f} shots/s"
        )
        return 0
    d = args.d if args.d is not None else (5 if args.quick else 7)
    shots = args.shots if args.shots is not None else (2000 if args.quick else 20000)
    target = args.min_speedup if args.min_speedup is not None else (3.0 if args.quick else 10.0)
    # End-to-end gate scales with the decode gate (10x decode pairs with the
    # 5x sweep acceptance criterion); at quick scale the short sweep is
    # dominated by one-time compilation, so only the full run enforces it.
    sweep_target = 0.0 if args.quick else target / 2.0
    res = run_bench(d=d, shots=shots, seed=args.seed)
    res["min_speedup"] = target
    res["min_sweep_speedup"] = sweep_target
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    ok = (
        res["speedup"] >= target
        and res["sweep_speedup"] >= sweep_target
        and res["weighted_not_worse"]
    )
    if not ok:
        print(
            f"FAIL: need >= {target:.1f}x decode and >= {sweep_target:.1f}x "
            f"end-to-end sweep speedup with weighted LER <= unweighted (got "
            f"{res['speedup']:.1f}x / {res['sweep_speedup']:.1f}x, "
            f"weighted_not_worse={res['weighted_not_worse']})"
        )
        return 1
    print(
        f"OK: >= {target:.1f}x decode, >= {sweep_target:.1f}x end-to-end, "
        "weighted LER not worse"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
