"""Throughput: packed-batched shot engine vs looped single-shot interpreter.

Acceptance target for the batched backend: >= 10x shots/sec over a loop of
single-shot :class:`~repro.sim.interpreter.CircuitInterpreter` replays at
d=5 with 1000 shots.  The interpreter loop is timed over a subsample and
extrapolated (it is the slow side — that is the point).

Run directly::

    python benchmarks/bench_packed_batch.py            # full d=5, 1000 shots
    python benchmarks/bench_packed_batch.py --quick    # CI smoke: d=3, 200 shots

or via pytest (quick scale): ``pytest benchmarks/bench_packed_batch.py -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.compiler import TISCC
from repro.sim.batch import BatchRunner
from repro.sim.interpreter import CircuitInterpreter

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table


def compare_throughput(
    d: int = 5,
    shots: int = 1000,
    interp_shots: int = 25,
    seed: int = 0,
    op: str = "Idle",
) -> dict:
    """Time batched (both rng modes) vs looped single-shot simulation."""
    compiler = TISCC(dx=d, dz=d, tile_rows=1, tile_cols=1)
    compiled = compiler.compile(
        [("PrepareZ", (0, 0)), (op, (0, 0))], operation=op
    )
    runner = BatchRunner(compiler.grid)

    t0 = time.perf_counter()
    batch = runner.run_shots(
        compiled.circuit, compiled.initial_occupancy, shots,
        seed=seed, independent_streams=False,
    )
    t_shared = time.perf_counter() - t0

    t0 = time.perf_counter()
    runner.run_shots(
        compiled.circuit, compiled.initial_occupancy, shots,
        seed=seed, independent_streams=True,
    )
    t_per_shot = time.perf_counter() - t0

    k = min(interp_shots, shots)
    t0 = time.perf_counter()
    for j in range(k):
        CircuitInterpreter(compiler.grid, seed=seed + j).run(
            compiled.circuit, compiled.initial_occupancy
        )
    t_loop = (time.perf_counter() - t0) / k * shots

    return {
        "d": d,
        "shots": shots,
        "instructions": len(compiled.circuit),
        "n_labels": len(batch.outcomes),
        "t_batch_shared": t_shared,
        "t_batch_per_shot": t_per_shot,
        "t_loop_extrapolated": t_loop,
        "loop_sample": k,
        "speedup_shared": t_loop / t_shared,
        "speedup_per_shot": t_loop / t_per_shot,
    }


def report(res: dict) -> None:
    print_table(
        f"packed-batched vs single-shot throughput "
        f"(d={res['d']}, {res['shots']} shots, {res['instructions']} instructions)",
        ["engine", "time [s]", "shots/s", "speedup"],
        [
            [
                "CircuitInterpreter loop",
                f"{res['t_loop_extrapolated']:.2f}",
                f"{res['shots'] / res['t_loop_extrapolated']:.1f}",
                "1.0x",
            ],
            [
                "BatchRunner (per-shot streams)",
                f"{res['t_batch_per_shot']:.2f}",
                f"{res['shots'] / res['t_batch_per_shot']:.1f}",
                f"{res['speedup_per_shot']:.1f}x",
            ],
            [
                "BatchRunner (shared stream)",
                f"{res['t_batch_shared']:.2f}",
                f"{res['shots'] / res['t_batch_shared']:.1f}",
                f"{res['speedup_shared']:.1f}x",
            ],
        ],
    )
    print(
        f"(interpreter loop extrapolated from {res['loop_sample']} shots; "
        f"target >= 10x at d=5, 1000 shots)"
    )


def test_packed_batch_speedup():
    """Quick-scale pytest entry: the batched engine must be clearly faster."""
    res = compare_throughput(d=3, shots=200, interp_shots=20)
    report(res)
    assert res["speedup_shared"] > 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (d=3, 200 shots)"
    )
    parser.add_argument("--d", type=int, default=None, help="code distance override")
    parser.add_argument("--shots", type=int, default=None)
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    d = args.d if args.d is not None else (3 if args.quick else 5)
    shots = args.shots if args.shots is not None else (200 if args.quick else 1000)
    res = compare_throughput(d=d, shots=shots, interp_shots=20 if args.quick else 25)
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    if not args.quick and res["speedup_shared"] < 10.0:
        print("WARNING: speedup below the 10x acceptance target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
