"""Logical-error-rate pipeline: noisy batched sampling + union-find decoding.

Acceptance target for the decoding subsystem: a d=5 memory experiment with
1000 noisy shots must sample *and* decode in seconds on the packed batch
path, and the decoder must beat the raw (undecoded) logical flip rate at a
sub-threshold physical rate.

Run directly::

    python benchmarks/bench_logical_error.py            # full: d=5, 1000 shots
    python benchmarks/bench_logical_error.py --quick    # CI smoke: d=3, 300 shots
    python benchmarks/bench_logical_error.py --quick --json BENCH_logical_error.json

or via pytest (quick scale): ``pytest benchmarks/bench_logical_error.py -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.decode import MemoryExperiment
from repro.sim.noise import NoiseModel

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table

#: Sub-threshold single-knob physical rate used for the decoder-wins check.
SUB_THRESHOLD_RATE = 3e-4


def run_pipeline(d: int = 5, shots: int = 1000, seed: int = 0) -> dict:
    """Time compile, noisy sampling, and batch decoding of one memory patch."""
    t0 = time.perf_counter()
    experiment = MemoryExperiment(distance=d, basis="Z")
    t_compile = time.perf_counter() - t0

    rows = []
    for model in (
        NoiseModel.uniform(SUB_THRESHOLD_RATE),
        NoiseModel.preset("near_term"),
    ):
        report = experiment.run(shots, noise=model, seed=seed)
        rows.append(
            {
                "noise": model.name,
                "ler": report.logical_error_rate,
                "raw": report.raw_error_rate,
                "stderr": report.stderr,
                "defects_per_shot": report.mean_defects,
                "sim_seconds": report.sim_seconds,
                "decode_seconds": report.decode_seconds,
                "shots_per_second": shots / (report.sim_seconds + report.decode_seconds),
            }
        )
    return {
        "d": d,
        "shots": shots,
        "rounds": experiment.rounds,
        "detectors": experiment.n_detectors,
        "edges": experiment.graph.n_edges,
        "compile_seconds": t_compile,
        "runs": rows,
    }


def report(res: dict) -> None:
    print_table(
        f"noisy sampling + union-find decoding (d={res['d']}, {res['shots']} shots, "
        f"{res['detectors']} detectors, {res['edges']} edges, "
        f"compile {res['compile_seconds']:.2f} s)",
        ["noise", "LER", "raw", "defects/shot", "sim [s]", "decode [s]", "shots/s"],
        [
            [
                r["noise"],
                f"{r['ler']:.4f}",
                f"{r['raw']:.4f}",
                f"{r['defects_per_shot']:.2f}",
                f"{r['sim_seconds']:.2f}",
                f"{r['decode_seconds']:.2f}",
                f"{r['shots_per_second']:.0f}",
            ]
            for r in res["runs"]
        ],
    )
    print("(target: sample + decode a d=5, 1000-shot batch in seconds)")


def test_logical_error_pipeline():
    """Quick-scale pytest entry: decoding must be fast and beat raw flips."""
    res = run_pipeline(d=3, shots=300)
    report(res)
    sub = res["runs"][0]
    assert sub["decode_seconds"] < 5.0
    assert sub["ler"] <= sub["raw"] + 3 * sub["stderr"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (d=3, 300 shots)"
    )
    parser.add_argument("--d", type=int, default=None, help="code distance override")
    parser.add_argument("--shots", type=int, default=None)
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    d = args.d if args.d is not None else (3 if args.quick else 5)
    shots = args.shots if args.shots is not None else (300 if args.quick else 1000)
    res = run_pipeline(d=d, shots=shots)
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    total = max(r["sim_seconds"] + r["decode_seconds"] for r in res["runs"])
    if not args.quick and total > 30.0:
        print("WARNING: pipeline slower than the seconds-scale acceptance target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
