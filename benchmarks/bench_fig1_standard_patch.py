"""Fig 1: the standard arrangement superimposed on the M/O/J grid."""

from benchmarks.conftest import print_table
from repro.code.patch_layout import PatchLayout
from repro.hardware.grid import GridManager
from repro.util.geometry import SiteType


def test_fig1_standard_arrangement_render():
    grid = GridManager(5, 5)
    layout = PatchLayout(grid, 3, 3)
    art = layout.render_ascii()
    print("\nFig 1 — standard arrangement, d=3 ('D' data, 'z'/'x' measure homes):")
    print(art)
    assert art.count("D") == 9
    assert art.count("z") + art.count("x") == 8


def test_fig1_site_census():
    grid = GridManager(5, 5)
    layout = PatchLayout(grid, 3, 3)
    data = list(layout.data_sites().values())
    homes = [p.home for p in layout.plaquettes()]
    rows = [
        ["data qubits (on O sites)", len(data)],
        ["measure qubits (homes)", len(homes)],
        ["X faces", sum(1 for p in layout.plaquettes() if p.pauli == "X")],
        ["Z faces", sum(1 for p in layout.plaquettes() if p.pauli == "Z")],
        ["tile unit rows x cols", f"{layout.tile_rows} x {layout.tile_cols}"],
    ]
    print_table("Fig 1 — census (d=3 logical tile)", ["item", "count"], rows)
    for s in data:
        assert grid.site_type(s) is SiteType.OPERATION
    assert len(homes) == len(set(homes))


def test_bench_layout_construction(benchmark):
    grid = GridManager(8, 8)

    def build():
        return PatchLayout(grid, 5, 5).plaquettes()

    plaqs = benchmark(build)
    assert len(plaqs) == 24
