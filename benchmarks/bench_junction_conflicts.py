"""§3.3: junction-conflict detection and serialization."""

from benchmarks.conftest import fresh_patch, print_table


def test_conflicts_counted_per_round():
    rows = []
    for d in (2, 3, 4, 5):
        grid, _, lq, c, _ = fresh_patch(d, d)
        recs = lq.idle(c, rounds=1)
        rows.append([d, len(lq.plaquettes), recs[0].junction_conflicts,
                     f"{recs[0].duration/1000:.2f} ms"])
    print_table(
        "§3.3 — junction conflicts resolved by serialization, one round",
        ["d", "faces", "conflicts", "round time"],
        rows,
    )
    # Adjacent X/Z patterns contend for shared junctions from d=3 up.
    assert rows[1][2] > 0


def test_serialization_preserves_validity():
    from repro.hardware.validity import check_circuit

    grid, _, lq, c, occ0 = fresh_patch(4, 4)
    lq.idle(c, rounds=2)
    report = check_circuit(grid, c, occ0)
    assert report.n_junction_crossings > 0


def test_bench_conflict_resolution_overhead(benchmark):
    def round_d4():
        grid, _, lq, c, _ = fresh_patch(4, 4)
        return lq.idle(c, rounds=1)[0]

    rec = benchmark(round_d4)
    assert rec.duration > 0
