"""Table 5 / Fig 5: the native trapped-ion gate set and its timings."""

import pytest

from benchmarks.conftest import print_table
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import GATE_TIMES_US, HardwareModel

PAPER_TABLE5 = {
    "Prepare_Z": 10.0,
    "Measure_Z": 120.0,
    "X_pi/2": 10.0,
    "X_pi/4": 10.0,
    "Y_pi/2": 10.0,
    "Y_pi/4": 10.0,
    "Z_pi/2": 3.0,
    "Z_pi/4": 3.0,
    "Z_pi/8": 3.0,
    "ZZ": 2000.0,
    "Move": 5.25,
    "Junction": 105.0,
}


def test_table5_reproduced_exactly():
    rows = []
    for name, paper_us in PAPER_TABLE5.items():
        ours = GATE_TIMES_US[name]
        assert ours == pytest.approx(paper_us), name
        rows.append([name, f"{paper_us:g}", f"{ours:g}", "match"])
    print_table(
        "Table 5 / Fig 5 — native trapped-ion gate set",
        ["operation", "paper (µs)", "ours (µs)", "status"],
        rows,
    )


def test_bench_native_gate_emission(benchmark):
    """Throughput of appending native gates through the scheduling stack."""

    def emit_many():
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        c = HardwareCircuit()
        ion = grid.add_ion(grid.index(0, 1))
        for _ in range(200):
            model.native1(c, "Z_pi/4", ion)
        return c

    c = benchmark(emit_many)
    assert len(c) == 200


def test_bench_cnot_emission(benchmark):
    def emit_cnots():
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        c = HardwareCircuit()
        a = grid.add_ion(grid.index(0, 1))
        b = grid.add_ion(grid.index(0, 2))
        for _ in range(50):
            model.cnot(c, a, b)
        return c

    c = benchmark(emit_cnots)
    assert c.count("ZZ") == 50
