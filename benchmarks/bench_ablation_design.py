"""Ablation benches for DESIGN.md's named design choices.

Not a paper table — these quantify the trade-offs the paper (and our
reproduction) takes as given:

* the ancilla strip (fn 7): split costs 0 rounds instead of dt;
* the CZ-form syndrome interaction vs. a naive CNOT-form compilation;
* junction-conflict serialization overhead vs. an idealized
  conflict-free lower bound.
"""

import pytest

from benchmarks.conftest import fresh_patch, print_table
from repro.hardware.model import GATE_TIMES_US


def test_ablation_ancilla_strip_saves_a_timestep():
    """With the strip, MeasureZZ = merge rounds only; without it, the
    post-split boundary stabilizers would need dt more rounds (fn 7)."""
    rows = []
    for dt in (2, 3, 5):
        with_strip = dt  # rounds actually compiled
        without = dt + dt  # fn 7: split would need dt more
        rows.append([dt, with_strip, without, f"{without/with_strip:.1f}x"])
    print_table(
        "Ablation — ancilla strip (fn 7): rounds per Measure XX/ZZ",
        ["dt", "with strip", "without strip", "saving"],
        rows,
    )
    assert all(r[2] == 2 * r[1] for r in rows)


def test_ablation_cz_form_interaction_cost():
    """Per Z-face data visit we emit ZZ + 2 Z rotations (2006 µs); the
    CNOT-form would add two Hadamards on the measure qubit per visit
    (+26 µs) and two more single-qubit gates of depth."""
    cz_form = GATE_TIMES_US["ZZ"] + 2 * GATE_TIMES_US["Z_-pi/4"]
    cnot_form = (
        GATE_TIMES_US["ZZ"]
        + 2 * GATE_TIMES_US["Z_-pi/4"]
        + 2 * (GATE_TIMES_US["Z_pi/2"] + GATE_TIMES_US["Y_pi/4"])
    )
    print_table(
        "Ablation — syndrome interaction compilation",
        ["form", "µs per Z-face visit"],
        [["CZ-form (ours)", f"{cz_form:g}"], ["CNOT-form", f"{cnot_form:g}"]],
    )
    assert cz_form < cnot_form


@pytest.mark.parametrize("d", [3, 4, 5])
def test_ablation_junction_serialization_overhead(d):
    """Measured round time vs. the conflict-free critical-path bound."""
    grid, _, lq, c, _ = fresh_patch(d, d)
    rec = lq.idle(c, rounds=1)[0]
    # Lower bound: prep + 4 ZZ layers + measure, zero movement.
    bound = (
        GATE_TIMES_US["Prepare_Z"] + GATE_TIMES_US["Y_pi/4"]
        + 4 * GATE_TIMES_US["ZZ"]
        + GATE_TIMES_US["Y_-pi/4"] + GATE_TIMES_US["Measure_Z"]
    )
    overhead = rec.duration / bound
    print(f"\nd={d}: round {rec.duration/1000:.2f} ms vs bound {bound/1000:.2f} ms "
          f"(movement+serialization overhead {overhead:.2f}x, "
          f"{rec.junction_conflicts} conflicts)")
    assert 1.0 <= overhead < 1.6


def test_bench_round_vs_bound(benchmark):
    def round_d3():
        grid, _, lq, c, _ = fresh_patch(3, 3)
        return lq.idle(c, rounds=1)[0]

    rec = benchmark(round_d3)
    assert rec.duration > 8000
