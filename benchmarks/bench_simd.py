"""SIMD beam-pass scheduling: grouping win and equivalence, the tentpole bench.

Acceptance target for the beam-pass scheduler: on both a ``ZMemory`` patch
and a lattice-surgery ``CNOT`` at d >= 7 under the baseline profile, the
rescheduled circuit must need at least **30%** fewer beam passes than the
one-gate-per-pass baseline (a beam pass is one distinct ``(gate, start,
duration)`` laser event; identical conflict-free gates fired together
count once).  Equivalence is asserted on the spot, not assumed:

* every rescheduled circuit must pass the executable reference validity
  checker (`check_circuit_reference`) and preserve the per-site
  instruction order and the instruction multiset exactly;
* at small distance the detector error model of the scheduled memory
  experiment must keep the unscheduled DEM's structure (detector
  footprints, observable masks) with probabilities equal to within a few
  ULP, and fixed-seed frame-engine logical-error counters must match the
  unscheduled run exactly.

The bench also reports the scheduled-vs-baseline makespan ratio (wall-time
win) and the per-profile picture for the two beam-pass-limited shipped
profiles (``fast_projected``: wide site-parallel groups; ``slow_junction``:
one serial beam with per-pass overhead).

Run directly::

    python benchmarks/bench_simd.py                    # full: d=7
    python benchmarks/bench_simd.py --quick            # CI smoke: d=5
    python benchmarks/bench_simd.py --min-reduction 0.30 --json BENCH_simd.json

or via pytest (quick scale): ``pytest benchmarks/bench_simd.py -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.compiler import TISCC
from repro.core.router import lattice_surgery_cnot_program
from repro.decode import MemoryExperiment
from repro.hardware.simd import simd_schedule
from repro.hardware.validity import check_circuit_reference
from repro.sim.noise import NoiseModel

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table

#: Beam-pass-limited shipped profiles reported next to the baseline run.
PROFILES = ("fast_projected", "slow_junction")

#: Distance / shots of the fixed-seed logical-error equivalence check.
LER_D = 3
LER_SHOTS = 4000
LER_SEED = 7


def _per_site_order(circuit):
    cols = circuit.sorted_columns()
    seq = {}
    for i in range(cols.n):
        for s in cols.sites[i]:
            seq.setdefault(s, []).append((int(cols.codes[i]), float(cols.duration[i])))
    return seq


def _multiset(circuit):
    cols = circuit.sorted_columns()
    return sorted(
        (int(cols.codes[i]), int(cols.site0[i]), int(cols.site1[i]), float(cols.duration[i]))
        for i in range(cols.n)
    )


def _compile(op: str, d: int, profile=None):
    if op == "CNOT":
        compiler = TISCC(dx=d, dz=d, tile_rows=2, tile_cols=2, profile=profile)
        program = lattice_surgery_cnot_program()
    else:
        compiler = TISCC(dx=d, dz=d, tile_rows=1, tile_cols=1, profile=profile)
        program = [("PrepareZ", (0, 0)), (f"Measure{op[0]}", (0, 0))]
    return compiler, compiler.compile(
        program, operation=op, validate=False, estimate=False
    )


def run_one(op: str, d: int, profile=None) -> dict:
    """Schedule one compiled operation under ``profile`` and prove retiming."""
    compiler, compiled = _compile(op, d, profile)
    prof = compiler.profile
    t0 = time.perf_counter()
    scheduled, rep = simd_schedule(
        compiled.circuit,
        compiler.grid,
        width=prof.simd_width,
        mode=prof.simd_mode,
        overhead_us=prof.simd_pass_overhead_us,
    )
    t_schedule = time.perf_counter() - t0

    # Equivalence, on the spot: validity replay + exact retiming invariants.
    check_circuit_reference(compiler.grid, scheduled, compiled.initial_occupancy)
    if _multiset(scheduled) != _multiset(compiled.circuit):
        raise RuntimeError(f"{op} d={d}: instruction multiset changed")
    if _per_site_order(scheduled) != _per_site_order(compiled.circuit):
        raise RuntimeError(f"{op} d={d}: per-site order changed")

    return {
        "op": op,
        "d": d,
        "profile": prof.name,
        "schedule_seconds": t_schedule,
        **rep.to_dict(),
    }


def verify_dem_equivalence(d: int = LER_D) -> dict:
    """Scheduled-vs-unscheduled DEM and fixed-seed LER counters at small d."""
    noise = NoiseModel.uniform(1.5e-3)  # t2-free: idle windows out of the DEM
    plain = MemoryExperiment(distance=d)
    simd = MemoryExperiment(distance=d, simd=True)
    a = plain.detector_error_model(noise)
    b = simd.detector_error_model(noise)
    structure = (
        a.detectors == b.detectors
        and np.array_equal(a.observables, b.observables)
        and a.n_detectors == b.n_detectors
    )
    max_ulp = float(
        (np.abs(a.probs - b.probs) / np.spacing(np.maximum(a.probs, b.probs))).max()
    )
    kwargs = dict(noise=noise, seed=LER_SEED, engine="frame")
    r0 = plain.run(LER_SHOTS, **kwargs)
    r1 = simd.run(LER_SHOTS, **kwargs)
    return {
        "d": d,
        "dem_structure_identical": bool(structure),
        "dem_probs_max_ulp": max_ulp,
        "ler_failures": (r0.failures, r1.failures),
        "ler_raw_failures": (r0.raw_failures, r1.raw_failures),
        "ler_counters_identical": bool(
            r0.failures == r1.failures and r0.raw_failures == r1.raw_failures
        ),
    }


def run_comparison(d: int = 7) -> dict:
    """Baseline-profile headline runs plus the per-profile picture."""
    headline = [run_one(op, d) for op in ("ZMemory", "CNOT")]
    per_profile = [run_one("ZMemory", d, profile=name) for name in PROFILES]
    equivalence = verify_dem_equivalence()
    return {
        "d": d,
        "headline": headline,
        "per_profile": per_profile,
        "equivalence": equivalence,
        "min_reduction": min(r["pass_reduction"] for r in headline),
    }


def report(res: dict) -> None:
    rows = []
    for r in res["headline"] + res["per_profile"]:
        rows.append(
            [
                r["op"],
                r["profile"],
                str(r["baseline_passes"]),
                str(r["beam_passes"]),
                f"{r['pass_reduction']:.1%}",
                f"{r['makespan_ratio']:.3f}",
                f"{r['schedule_seconds']:.3f}",
            ]
        )
    print_table(
        f"SIMD beam-pass scheduling (d={res['d']})",
        ["op", "profile", "base_passes", "beam_passes", "reduction", "makespan", "sched_s"],
        rows,
    )
    eq = res["equivalence"]
    print(
        f"equivalence at d={eq['d']}: DEM structure identical: "
        f"{eq['dem_structure_identical']}, probs within {eq['dem_probs_max_ulp']:.0f} ulp, "
        f"fixed-seed LER counters identical: {eq['ler_counters_identical']} "
        f"(failures {eq['ler_failures'][0]} vs {eq['ler_failures'][1]})"
    )


def _ok(res: dict, target: float) -> bool:
    eq = res["equivalence"]
    return (
        res["min_reduction"] >= target
        and eq["dem_structure_identical"]
        and eq["dem_probs_max_ulp"] <= 8.0
        and eq["ler_counters_identical"]
    )


def test_simd_beam_pass_reduction():
    """Quick-scale pytest entry: >=30% fewer passes, equivalence proven."""
    res = run_comparison(d=5)
    report(res)
    assert _ok(res, 0.30)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke scale (d=5)")
    parser.add_argument("--d", type=int, default=None, help="code distance override")
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=0.30,
        help="required beam-pass reduction on every headline op (default 0.30)",
    )
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    d = args.d if args.d is not None else (5 if args.quick else 7)
    res = run_comparison(d=d)
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    if not _ok(res, args.min_reduction):
        print(
            f"FAIL: need >= {args.min_reduction:.0%} beam-pass reduction on every "
            "headline op with DEM structure, ulp-level probs, and fixed-seed "
            "LER counters preserved"
        )
        return 1
    print(f"PASS: >= {args.min_reduction:.0%} beam-pass reduction, equivalence held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
