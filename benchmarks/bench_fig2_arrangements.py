"""Fig 2: the four canonical stabilizer arrangements."""

from benchmarks.conftest import fresh_patch, print_table, simulate
from repro.code.arrangements import Arrangement
from repro.code.patch_layout import PatchLayout
from repro.hardware.grid import GridManager


def test_fig2_four_arrangements():
    rows = []
    for arr in Arrangement:
        grid = GridManager(5, 5)
        layout = PatchLayout(grid, 3, 3, arrangement=arr)
        top = sorted(fj for (fi, fj) in layout.face_coords() if fi == -1)
        left = sorted(fi for (fi, fj) in layout.face_coords() if fj == -1)
        rows.append([
            arr.name,
            layout.face_letter(0, 0),
            arr.vertical_letter,
            arr.horizontal_letter,
            str(top),
            str(left),
        ])
    print_table(
        "Fig 2 — canonical arrangements (d=3)",
        ["arrangement", "face(0,0)", "vertical logical", "horizontal logical",
         "top faces", "left faces"],
        rows,
    )
    # The (b)/(c) pictures share logical orientation, as do (a)/(d).
    assert Arrangement.ROTATED.vertical_letter == Arrangement.FLIPPED.vertical_letter
    assert Arrangement.STANDARD.vertical_letter == Arrangement.ROTATED_FLIPPED.vertical_letter


def test_fig2_accessible_through_member_functions():
    """All arrangements reachable via xz_swap (transversal H) and flip_patch."""
    a = Arrangement.STANDARD
    assert a.after_transversal_hadamard() is Arrangement.ROTATED
    assert a.after_flip_patch() is Arrangement.FLIPPED
    assert a.after_flip_patch().after_transversal_hadamard() is Arrangement.ROTATED_FLIPPED


def test_bench_prepare_each_arrangement(benchmark):
    def prep_all():
        out = []
        for arr in Arrangement:
            grid, _, lq, c, occ0 = fresh_patch(3, 3, arr)
            lq.prepare(c, basis="Z", rounds=1)
            out.append((grid, c, occ0, lq))
        return out

    results = benchmark(prep_all)
    for grid, c, occ0, lq in results:
        res = simulate(grid, c, occ0, seed=1)
        v = res.expectation(lq.logical_z.pauli)
        for lab in lq.logical_z.corrections:
            v *= res.sign(lab)
        assert v == 1
