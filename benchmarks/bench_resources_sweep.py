"""§3.4: the resource estimator — sweep over code distances.

Regenerates the resource rows (computation time, grid area, space-time
volume, trapping zones, zone-seconds, active zone-seconds) for the core
instructions at several code distances.
"""

import pytest

from repro.estimator.report import format_resource_table
from repro.estimator.sweep import sweep_operation

DISTANCES = [2, 3, 5]


@pytest.mark.parametrize("op", ["PrepareZ", "Idle", "MeasureZZ", "BellPrepare"])
def test_resource_sweep(op):
    reports = sweep_operation(op, DISTANCES, rounds=1)
    print("\n" + format_resource_table(reports, title=f"§3.4 sweep — {op}"))
    times = [r.computation_time_s for r in reports]
    zones = [r.n_trapping_zones for r in reports]
    areas = [r.grid_area_m2 for r in reports]
    # Shape check: all resources grow monotonically with distance.
    assert times == sorted(times)
    assert zones == sorted(zones) and zones[0] < zones[-1]
    assert areas == sorted(areas) and areas[0] < areas[-1]


def test_idle_time_dominated_by_entanglers():
    """The four sequential ZZ layers (2 ms each) set the round duration."""
    reports = sweep_operation("Idle", [3], rounds=1)
    r = reports[0]
    assert r.computation_time_s > 8 * 2000e-6  # prep round + idle round
    assert r.computation_time_s < 16 * 2000e-6 + 0.02


def test_full_round_time_scales_weakly_with_distance():
    """Rounds are distance-independent up to junction-conflict overhead —
    the parallelism the §3.4 estimator is designed to capture."""
    reports = sweep_operation("Idle", [2, 5], rounds=1)
    t2 = reports[0].computation_time_s
    t5 = reports[1].computation_time_s
    assert t5 < 1.5 * t2


@pytest.mark.parametrize("d", [2, 3])
def test_bench_sweep_point(benchmark, d):
    def point():
        return sweep_operation("Idle", [d], rounds=1)[0]

    r = benchmark(point)
    assert r.n_instructions > 0
