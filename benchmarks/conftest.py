"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and prints the reproduced rows, so running
``pytest benchmarks/ --benchmark-only -s`` emits the full evaluation.
"""

from __future__ import annotations

from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.sim.interpreter import CircuitInterpreter


def fresh_patch(dx=3, dz=3, arrangement=Arrangement.STANDARD, margin=(2, 2)):
    grid = GridManager(dz + margin[0], dx + margin[1])
    model = HardwareModel(grid)
    lq = LogicalQubit(grid, model, dx=dx, dz=dz, arrangement=arrangement)
    occ0 = grid.occupancy()
    circuit = HardwareCircuit()
    return grid, model, lq, circuit, occ0


def simulate(grid, circuit, occ0, seed=0):
    return CircuitInterpreter(grid, seed=seed).run(circuit, occ0)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    print(f"\n{title}")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
