"""Sharded-sweep benchmark: process-pool execution and the warm
content-addressed cache vs the serial in-process oracle.

Acceptance targets for the job layer (ISSUE 6): on a multi-cell logical-
error sweep, 4 workers must beat the serial sweep by **>= 3x** wall clock
(on hardware with at least 4 cores — the gate auto-downgrades to
report-only when the machine cannot physically parallelize), and a warm
rerun against the checkpoint (every cell a hash-verified file read) must
beat serial by **>= 50x**.  Both parallel and warm results must be
bit-identical to the serial oracle, timing columns aside.

Run directly::

    python benchmarks/bench_sweep.py             # full: d=7,5,3 x 4 rates, 20k shots
    python benchmarks/bench_sweep.py --quick     # CI smoke: d=5,3 x 2 rates, 2k shots
    python benchmarks/bench_sweep.py --json BENCH_sweep.json
    python benchmarks/bench_sweep.py --min-speedup 2 --min-cache-speedup 25
    python benchmarks/bench_sweep.py --crash-smoke   # run, SIGKILL, resume, diff

or via pytest (quick scale): ``pytest benchmarks/bench_sweep.py -s``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.estimator.jobs import new_stats, payload_fingerprint
from repro.estimator.sweep import logical_error_sweep

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table


def _fingerprints(reports) -> list[str]:
    return [payload_fingerprint(r.to_dict()) for r in reports]


def run_bench(
    distances: list[int],
    rates: list[float],
    shots: int,
    jobs: int = 4,
    seed: int = 0,
    root: str | None = None,
) -> dict:
    """Time parallel, serial, and warm-cache executions of one sweep.

    The parallel run goes first from a cold process so its workers pay
    their own compiles, exactly as a fresh sharded invocation would; the
    serial oracle then pays its compiles the same way.  Distances are
    submitted largest-first so the pool's greedy assignment approximates
    longest-processing-time scheduling.
    """
    workdir = root or tempfile.mkdtemp(prefix="bench_sweep_")
    checkpoint = os.path.join(workdir, "checkpoint")
    common = dict(rates=rates, shots=shots, seed=seed)

    parallel_stats = new_stats()
    t0 = time.perf_counter()
    parallel = logical_error_sweep(
        distances, jobs=jobs, checkpoint=checkpoint, stats=parallel_stats, **common
    )
    t_parallel = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = logical_error_sweep(distances, **common)
    t_serial = time.perf_counter() - t0

    warm_stats = new_stats()
    t0 = time.perf_counter()
    warm = logical_error_sweep(distances, checkpoint=checkpoint, stats=warm_stats, **common)
    t_warm = time.perf_counter() - t0

    if root is None:
        shutil.rmtree(workdir, ignore_errors=True)

    n_cells = len(distances) * len(rates)
    return {
        "distances": distances,
        "rates": rates,
        "shots": shots,
        "cells": n_cells,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "warm_seconds": t_warm,
        "parallel_speedup": t_serial / t_parallel,
        "cache_speedup": t_serial / t_warm,
        "parallel_matches_serial": _fingerprints(parallel) == _fingerprints(serial),
        "warm_matches_serial": _fingerprints(warm) == _fingerprints(serial),
        "parallel_executed": parallel_stats["executed"],
        "parallel_degraded": parallel_stats["degraded"],
        "warm_cache_hits": warm_stats["cache_hits"],
        "warm_executed": warm_stats["executed"],
    }


def report(res: dict) -> None:
    print_table(
        f"sharded sweep ({res['cells']} cells: d={res['distances']} x "
        f"{len(res['rates'])} rates, {res['shots']} shots, {res['jobs']} workers, "
        f"{res['cpu_count']} cpu(s))",
        ["mode", "wall [s]", "speedup", "matches serial"],
        [
            ["serial (oracle)", f"{res['serial_seconds']:.2f}", "1.0x", "—"],
            [
                f"parallel ({res['jobs']} workers)",
                f"{res['parallel_seconds']:.2f}",
                f"{res['parallel_speedup']:.1f}x",
                str(res["parallel_matches_serial"]),
            ],
            [
                f"warm cache ({res['warm_cache_hits']} hits)",
                f"{res['warm_seconds']:.3f}",
                f"{res['cache_speedup']:.1f}x",
                str(res["warm_matches_serial"]),
            ],
        ],
    )


def crash_smoke(quick: bool = True) -> int:
    """Run a checkpointed sweep, SIGKILL it mid-run, resume, and diff.

    The CI robustness step: proves on every PR that a killed sweep resumes
    to bit-identical reports against an uninterrupted serial run.
    """
    distances, rates, shots = [3], [1e-3, 2e-3, 3e-3, 5e-3], 2000 if quick else 20000
    workdir = tempfile.mkdtemp(prefix="crash_smoke_")
    checkpoint = os.path.join(workdir, "checkpoint")
    code = (
        "from repro.estimator.sweep import logical_error_sweep\n"
        f"logical_error_sweep({distances!r}, rates={rates!r}, shots={shots},"
        f" seed=0, jobs=2, checkpoint={checkpoint!r})\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen([sys.executable, "-c", code], env=env)
    manifest = os.path.join(checkpoint, "manifest.jsonl")
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and proc.poll() is None:
        if os.path.exists(manifest) and open(manifest).read().count("\n") >= 1:
            break
        time.sleep(0.02)
    proc.kill()
    proc.wait(timeout=60)
    if not os.path.exists(manifest):
        print("crash smoke FAIL: driver died before any cell was checkpointed")
        return 1
    completed = open(manifest).read().count("\n")

    stats = new_stats()
    resumed = logical_error_sweep(
        distances, rates=rates, shots=shots, seed=0, checkpoint=checkpoint, stats=stats
    )
    serial = logical_error_sweep(distances, rates=rates, shots=shots, seed=0)
    ok = _fingerprints(resumed) == _fingerprints(serial)
    shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"crash smoke: killed driver after {completed}/{len(rates)} cells; resume "
        f"served {stats['cache_hits']} from checkpoint, recomputed {stats['executed']}; "
        f"bit-identical to serial: {ok}"
    )
    if not ok:
        print("crash smoke FAIL: resumed reports diverge from the serial oracle")
        return 1
    print("crash smoke OK")
    return 0


def test_sweep_cache_speedup(tmp_path):
    """Quick-scale pytest entry: warm cache and parallel merge must hold."""
    res = run_bench([5, 3], [1e-3, 3e-3], shots=2000, jobs=2, root=str(tmp_path))
    report(res)
    assert res["parallel_matches_serial"] and res["warm_matches_serial"]
    assert res["warm_cache_hits"] == res["cells"] and res["warm_executed"] == 0
    assert res["cache_speedup"] >= 5.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (4 cells, 2000 shots)"
    )
    parser.add_argument("--shots", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this parallel speedup (default: 3 full, report-only "
        "quick; requires >= --jobs cpus, else downgraded to report-only)",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=None,
        help="fail below this warm-cache speedup (default: 50 full, 10 quick)",
    )
    parser.add_argument(
        "--crash-smoke",
        action="store_true",
        help="run/SIGKILL/resume/diff robustness check instead of the timing bench",
    )
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)

    if args.crash_smoke:
        return crash_smoke(quick=args.quick or args.shots is None)

    distances = [5, 3] if args.quick else [7, 5, 3]
    rates = [1e-3, 3e-3] if args.quick else [1e-3, 2e-3, 3e-3, 5e-3]
    shots = args.shots if args.shots is not None else (2000 if args.quick else 20000)
    target = args.min_speedup if args.min_speedup is not None else (0.0 if args.quick else 3.0)
    cache_target = (
        args.min_cache_speedup if args.min_cache_speedup is not None
        else (10.0 if args.quick else 50.0)
    )
    if target > 0 and (os.cpu_count() or 1) < args.jobs:
        print(
            f"note: {os.cpu_count()} cpu(s) < {args.jobs} workers — the machine "
            f"cannot parallelize; parallel gate downgraded to report-only"
        )
        target = 0.0

    res = run_bench(distances, rates, shots, jobs=args.jobs, seed=args.seed)
    res["min_speedup"] = target
    res["min_cache_speedup"] = cache_target
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    ok = (
        res["parallel_matches_serial"]
        and res["warm_matches_serial"]
        and res["parallel_speedup"] >= target
        and res["cache_speedup"] >= cache_target
    )
    if not ok:
        print(
            f"FAIL: need >= {target:.1f}x parallel and >= {cache_target:.1f}x "
            f"warm-cache speedup with bit-identical merges (got "
            f"{res['parallel_speedup']:.1f}x / {res['cache_speedup']:.1f}x, "
            f"parallel_matches={res['parallel_matches_serial']}, "
            f"warm_matches={res['warm_matches_serial']})"
        )
        return 1
    print(
        f"OK: >= {target:.1f}x parallel, >= {cache_target:.1f}x warm cache, "
        "merges bit-identical to serial"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
