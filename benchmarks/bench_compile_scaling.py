"""App. B: compiler-side throughput versus code distance."""

import pytest

from benchmarks.conftest import fresh_patch, print_table


@pytest.mark.parametrize("d", [2, 3, 5])
def test_bench_compile_idle_round(benchmark, d):
    def compile_round():
        grid, _, lq, c, _ = fresh_patch(d, d)
        lq.idle(c, rounds=1)
        return c

    c = benchmark(compile_round)
    assert c.count("ZZ") > 0


def test_instruction_counts_scale_quadratically():
    rows = []
    counts = []
    for d in (2, 3, 5, 7):
        grid, _, lq, c, _ = fresh_patch(d, d)
        lq.idle(c, rounds=1)
        counts.append(len(c))
        rows.append([d, d * d - 1, len(c), c.count("ZZ"), c.count("Move")])
    print_table(
        "App. B — compiled instructions per round of error correction",
        ["d", "faces", "native instrs", "ZZ", "Move"],
        rows,
    )
    # ~d^2 faces -> ~d^2 instructions: check super-linear, sub-cubic growth.
    assert counts[-1] / counts[0] > (7 / 2) ** 1.5
    assert counts[-1] / counts[0] < (7 / 2) ** 3
