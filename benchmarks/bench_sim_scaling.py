"""§4.3 scale check: idle stability at large distances (paper: up to d=30).

The paper verifies that measurement outcomes are stable upon repeated
applications of Idle "for patches as large as d = 30".  We reproduce the
stability property at several distances and benchmark the simulator; d=30
(~1800 ions, a 3600x1800 tableau) is exercised once without the compile
stack via direct tableau scaling.
"""

import numpy as np
import pytest

from benchmarks.conftest import fresh_patch, simulate
from repro.sim.tableau import StabilizerTableau


@pytest.mark.parametrize("d", [3, 5, 7])
def test_idle_stability(d):
    grid, _, lq, c, occ0 = fresh_patch(d, d)
    recs = lq.prepare(c, basis="Z", rounds=2)
    res = simulate(grid, c, occ0, seed=d)
    r1, r2 = recs
    stable = all(
        res.outcomes[r1.outcome_labels[f]] == res.outcomes[r2.outcome_labels[f]]
        for f in r1.outcome_labels
    )
    assert stable
    print(f"\nd={d}: {len(lq.plaquettes)} faces, outcomes stable across rounds: {stable}")


def test_d30_scale_tableau():
    """The tableau backend comfortably holds a d=30 patch's ion count."""
    n = 30 * 30 + (30 * 30 - 1)  # data + measure ions = 1799
    tab = StabilizerTableau(n)
    rng = np.random.default_rng(0)
    for q in range(0, n, 37):
        tab.h(q)
        tab.cnot(q, (q + 1) % n)
    outcomes1 = [tab.measure(q, rng)[0] for q in range(0, n, 101)]
    outcomes2 = [tab.measure(q, rng)[0] for q in range(0, n, 101)]
    assert outcomes1 == outcomes2  # pinned after first measurement
    print(f"\nd=30 scale: tableau with n={n} qubits measured consistently")


@pytest.mark.parametrize("d", [3, 5])
def test_bench_round_simulation(benchmark, d):
    grid, _, lq, c, occ0 = fresh_patch(d, d)
    lq.prepare(c, basis="Z", rounds=1)

    def run():
        return simulate(grid, c, occ0, seed=1)

    res = benchmark(run)
    assert res.expectation(lq.logical_z.pauli) == 1


def test_bench_large_tableau_measurement(benchmark):
    tab = StabilizerTableau(900)
    for q in range(0, 900, 2):
        tab.h(q)

    def measure_block():
        t = tab.copy()
        rng = np.random.default_rng(3)
        return [t.measure(q, rng)[0] for q in range(0, 900, 30)]

    out = benchmark(measure_block)
    assert len(out) == 30
