"""Fig 4: Move Right + Swap Left — arrangement map on one tile, one step."""

from benchmarks.conftest import print_table, simulate
from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit
from repro.code.translation import move_right_swap_left
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel


def _run(start: Arrangement, seed: int):
    grid = GridManager(4, 8)
    model = HardwareModel(grid)
    lq = LogicalQubit(grid, model, 3, 3, (0, 0), arrangement=start, name="A")
    occ0 = grid.occupancy()
    c = HardwareCircuit()
    lq.prepare(c, basis="Z", rounds=1)
    n0 = len(c)
    final, _ = move_right_swap_left(c, lq, rounds=1)
    res = simulate(grid, c, occ0, seed=seed)
    v = res.expectation(final.logical_z.pauli)
    for lab in final.logical_z.corrections:
        v *= res.sign(lab)
    return final, v, len(c) - n0, c


def test_fig4_both_mappings():
    rows = []
    for start, end in [
        (Arrangement.STANDARD, Arrangement.ROTATED_FLIPPED),
        (Arrangement.ROTATED, Arrangement.FLIPPED),
    ]:
        final, v, n_instr, c = _run(start, seed=4)
        assert final.arrangement is end
        assert final.layout.origin == (0, 0)  # back on the original tile
        assert v == 1
        rows.append([start.name, end.name, v, n_instr])
    print_table(
        "Fig 4 — Move Right + Swap Left (d=3, one logical time-step)",
        ["start", "end", "<Z_L>", "native instrs"],
        rows,
    )


def test_fig4_swap_left_movement_only():
    grid = GridManager(4, 8)
    model = HardwareModel(grid)
    lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
    c = HardwareCircuit()
    lq.prepare(c, basis="Z", rounds=1)
    from repro.code.translation import move_right, swap_left

    shifted, _ = move_right(c, lq, rounds=1)
    n0 = len(c)
    swap_left(c, shifted)
    tail = c.instructions[n0:]
    assert all(i.name in ("Move", "Load") for i in tail)
    print(f"\nFig 4 — Swap Left used {len(tail)} movement instructions, zero gates")


def test_bench_move_right_swap_left(benchmark):
    def do():
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        c = HardwareCircuit()
        lq.prepare(c, basis="Z", rounds=1)
        final, _ = move_right_swap_left(c, lq, rounds=1)
        return final

    final = benchmark(do)
    assert final.arrangement is Arrangement.ROTATED_FLIPPED
