"""Table 1: the local lattice-surgery instruction set.

Reproduces the instruction rows (tiles in/out, logical time-steps) by
compiling each instruction and counting; benchmarks compile throughput.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.compiler import TISCC
from repro.core.instructions import TABLE1

CASES = [
    ("PrepareZ", [("PrepareZ", (0, 0))], (1, 1), 1, 1),
    ("PrepareX", [("PrepareX", (0, 0))], (1, 1), 1, 1),
    ("InjectY", [("InjectY", (0, 0))], (1, 1), 1, 0),
    ("MeasureZ", [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))], (1, 1), 1, 0),
    ("PauliX", [("PrepareZ", (0, 0)), ("PauliX", (0, 0))], (1, 1), 1, 0),
    ("Hadamard", [("PrepareZ", (0, 0)), ("Hadamard", (0, 0))], (1, 1), 1, 0),
    ("Idle", [("PrepareZ", (0, 0)), ("Idle", (0, 0))], (1, 1), 1, 1),
    (
        "MeasureZZ",
        [("PrepareZ", (0, 0)), ("PrepareZ", (0, 1)), ("MeasureZZ", (0, 0), (0, 1))],
        (1, 2),
        2,
        1,
    ),
    (
        "MeasureXX",
        [("PrepareZ", (0, 0)), ("PrepareZ", (1, 0)), ("MeasureXX", (0, 0), (1, 0))],
        (2, 1),
        2,
        1,
    ),
]


def test_table1_logical_timesteps_match_paper():
    rows = []
    for name, program, shape, tiles, steps in CASES:
        compiler = TISCC(dx=3, dz=3, tile_rows=shape[0], tile_cols=shape[1], rounds=1)
        compiled = compiler.compile(program, operation=name)
        measured = compiled.results[-1].logical_timesteps
        assert measured == steps, f"{name}: measured {measured} steps, paper says {steps}"
        assert len(compiled.results[-1].tiles) == tiles
        rows.append([name, tiles, steps, len(compiled.circuit),
                     f"{compiled.circuit.makespan/1000:.2f} ms"])
    print_table(
        "Table 1 — local lattice-surgery instruction set (d=3, 1 round/step)",
        ["instruction", "tiles", "logical steps", "native instrs", "makespan"],
        rows,
    )


def test_table1_covers_all_paper_rows():
    bench_names = {c[0] for c in CASES}
    assert {"PrepareZ", "PrepareX", "InjectY", "MeasureZ", "PauliX",
            "Hadamard", "Idle", "MeasureZZ", "MeasureXX"} <= bench_names
    assert set(TABLE1) >= bench_names - {"MeasureZ"} | {"MeasureZ"}


@pytest.mark.parametrize("name", ["PrepareZ", "Idle", "MeasureZZ"])
def test_bench_compile(benchmark, name):
    case = next(c for c in CASES if c[0] == name)
    _, program, shape, _, _ = case

    def compile_once():
        compiler = TISCC(dx=3, dz=3, tile_rows=shape[0], tile_cols=shape[1], rounds=1)
        return compiler.compile(program, operation=name)

    compiled = benchmark(compile_once)
    assert len(compiled.circuit) > 0
