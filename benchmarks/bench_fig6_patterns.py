"""Fig 6: the Z and N measure-qubit interaction patterns."""

from benchmarks.conftest import fresh_patch, print_table


def test_fig6_patterns_reproduced():
    from repro.code.plaquette import N_PATTERN, Z_PATTERN

    print_table(
        "Fig 6 — measure-qubit interaction patterns",
        ["pattern", "visit order (a=NW b=NE c=SW d=SE)", "used by"],
        [
            ["Z", " -> ".join(Z_PATTERN), "Z-type stabilizers"],
            ["N", " -> ".join(N_PATTERN), "X-type stabilizers"],
        ],
    )
    assert Z_PATTERN == ("a", "b", "c", "d")
    assert N_PATTERN == ("a", "c", "b", "d")


def test_fig6_hook_error_orientation():
    """The first two visits run perpendicular to the same-type logical so a
    mid-circuit measure-qubit fault cannot create two data errors parallel
    to it (§3.3)."""
    _, _, lq, _, _ = fresh_patch(5, 5)
    rows = []
    for pauli in ("Z", "X"):
        plaq = next(p for p in lq.plaquettes if p.pauli == pauli and p.weight == 4)
        order = [plaq.corners[c] for _, c in plaq.visits()]
        direction = "row" if order[0][0] == order[1][0] else "column"
        rows.append([f"{pauli} face {plaq.face}", str(order), direction])
        if pauli == "Z":
            assert direction == "row"  # perpendicular to vertical Z_L
        else:
            assert direction == "column"  # perpendicular to horizontal X_L
    print_table("Fig 6 — first-interaction direction", ["face", "visit order", "pair axis"], rows)


def test_fig6_schedule_compiles_to_moves_and_gates(benchmark):
    def one_round():
        grid, _, lq, c, _ = fresh_patch(3, 3)
        lq.idle(c, rounds=1)
        return c

    c = benchmark(one_round)
    hist = c.gate_histogram()
    print_table(
        "Fig 6 — one round of syndrome extraction, d=3 native histogram",
        ["gate", "count"],
        [[k, v] for k, v in hist.items()],
    )
    # One ZZ per (face, corner): 4 weight-4 + 4 weight-2 faces at d=3.
    assert hist["ZZ"] == 4 * 4 + 4 * 2
