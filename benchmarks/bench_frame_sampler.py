"""DEM frame sampler vs packed-tableau noisy sampling: the fast-path bench.

Acceptance target for the detector-error-model subsystem: at d=7 with 2000
shots, sampling detection events from the DEM (extraction amortized) must
be at least **20x** faster than the packed-tableau noisy path (sampling +
syndrome extraction), while remaining statistically indistinguishable —
summed per-detector chi-square on firing marginals and decoded/raw logical
error rates inside overlapping Wilson intervals.  Both the speedup and the
agreement statistics land in the JSON artifact.

Run directly::

    python benchmarks/bench_frame_sampler.py            # full: d=7, 2000 shots, >=20x
    python benchmarks/bench_frame_sampler.py --quick    # CI smoke: d=5, 500 shots, >=5x
    python benchmarks/bench_frame_sampler.py --json BENCH_frame_sampler.json

or via pytest (quick scale): ``pytest benchmarks/bench_frame_sampler.py -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.decode import MemoryExperiment
from repro.sim.frame import FrameSampler
from repro.sim.noise import NoiseModel
from repro.util.stats import detector_marginal_chi2, intervals_overlap, wilson_interval

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - direct script execution
    from conftest import print_table

#: Single-knob physical rate for the headline comparison.
RATE = 1e-3


def run_comparison(d: int = 7, shots: int = 2000, seed: int = 0) -> dict:
    """Time both engines on one memory patch and compare their samples."""
    model = NoiseModel.uniform(RATE)
    t0 = time.perf_counter()
    experiment = MemoryExperiment(distance=d, basis="Z")
    t_compile = time.perf_counter() - t0

    # Reference: packed-tableau noisy sampling + syndrome extraction.
    t0 = time.perf_counter()
    batch = experiment.sample(shots, noise=model, seed=seed)
    syndromes = experiment.syndromes(batch)
    raw_t = experiment.measured_flips(batch)
    t_tableau = time.perf_counter() - t0

    # Fast path: one-time DEM extraction, then tableau-free frame sampling.
    t0 = time.perf_counter()
    dem = experiment.detector_error_model(model)
    sampler = FrameSampler(dem)
    t_extract = time.perf_counter() - t0
    t0 = time.perf_counter()
    frames = sampler.sample(shots, seed=seed + 1)
    t_frame = time.perf_counter() - t0

    # Statistical agreement between the engines.
    stat, dof, p_value = detector_marginal_chi2(
        syndromes.sum(axis=0), shots, frames.detectors.sum(axis=0), shots
    )
    raw_f = frames.observables[:, 0]
    fail_t = int((raw_t ^ experiment.decoder.decode_batch(syndromes)).sum())
    fail_f = int((raw_f ^ experiment.decoder.decode_batch(frames.detectors)).sum())
    wilson_t = wilson_interval(fail_t, shots, z=3.0)
    wilson_f = wilson_interval(fail_f, shots, z=3.0)

    return {
        "d": d,
        "shots": shots,
        "rate": RATE,
        "rounds": experiment.rounds,
        "detectors": experiment.n_detectors,
        "fault_sites": experiment.fault_table(model).n_sites,
        "mechanisms": dem.n_mechanisms,
        "compile_seconds": t_compile,
        "tableau_seconds": t_tableau,
        "extract_seconds": t_extract,
        "frame_seconds": t_frame,
        "speedup": t_tableau / t_frame,
        "speedup_with_extraction": t_tableau / (t_extract + t_frame),
        "tableau_shots_per_second": shots / t_tableau,
        "frame_shots_per_second": shots / t_frame,
        "chi2": stat,
        "chi2_dof": dof,
        "chi2_p_value": p_value,
        "ler_tableau": fail_t / shots,
        "ler_frame": fail_f / shots,
        "wilson_tableau": wilson_t,
        "wilson_frame": wilson_f,
        "ler_wilson_overlap": intervals_overlap(wilson_t, wilson_f),
        "raw_tableau": float(raw_t.mean()),
        "raw_frame": float(raw_f.mean()),
    }


def report(res: dict) -> None:
    print_table(
        f"frame sampler vs packed-tableau noisy path "
        f"(d={res['d']}, {res['shots']} shots, uniform(p={res['rate']:g}), "
        f"{res['detectors']} detectors, {res['fault_sites']} fault sites -> "
        f"{res['mechanisms']} mechanisms)",
        ["engine", "sample [s]", "shots/s", "LER", "raw"],
        [
            [
                "packed tableau",
                f"{res['tableau_seconds']:.3f}",
                f"{res['tableau_shots_per_second']:.0f}",
                f"{res['ler_tableau']:.4f}",
                f"{res['raw_tableau']:.4f}",
            ],
            [
                "DEM frame",
                f"{res['frame_seconds']:.3f}",
                f"{res['frame_shots_per_second']:.0f}",
                f"{res['ler_frame']:.4f}",
                f"{res['raw_frame']:.4f}",
            ],
        ],
    )
    print(
        f"speedup: {res['speedup']:.1f}x sampling "
        f"({res['speedup_with_extraction']:.1f}x including the one-time "
        f"{res['extract_seconds']:.2f} s DEM extraction)"
    )
    print(
        f"agreement: chi2 {res['chi2']:.1f}/{res['chi2_dof']} dof "
        f"(p = {res['chi2_p_value']:.3f}), LER Wilson overlap: "
        f"{res['ler_wilson_overlap']}"
    )


def test_frame_sampler_speedup():
    """Quick-scale pytest entry: the fast path must win and agree."""
    res = run_comparison(d=5, shots=500)
    report(res)
    assert res["speedup"] >= 5.0
    assert res["chi2_p_value"] > 1e-4
    assert res["ler_wilson_overlap"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (d=5, 500 shots, >=5x)"
    )
    parser.add_argument("--d", type=int, default=None, help="code distance override")
    parser.add_argument("--shots", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, help="write results to a JSON file")
    args = parser.parse_args(argv)
    d = args.d if args.d is not None else (5 if args.quick else 7)
    shots = args.shots if args.shots is not None else (500 if args.quick else 2000)
    res = run_comparison(d=d, shots=shots, seed=args.seed)
    report(res)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(res, fh, indent=2)
        print(f"wrote {args.json}")
    target = 5.0 if args.quick else 20.0
    ok = (
        res["speedup"] >= target
        and res["chi2_p_value"] > 1e-4
        and res["ler_wilson_overlap"]
    )
    if not ok:
        print(
            f"FAIL: need >= {target:.0f}x speedup with indistinguishable marginals "
            f"(got {res['speedup']:.1f}x, p = {res['chi2_p_value']:.3g}, "
            f"overlap = {res['ler_wilson_overlap']})"
        )
        return 1
    print(f"OK: >= {target:.0f}x speedup with statistically matching samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
