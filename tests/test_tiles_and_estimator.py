"""TileGrid placement/bookkeeping and the estimator front end."""

import pytest

from repro.core.tiles import TileGrid
from repro.estimator.report import format_resource_table
from repro.estimator.sweep import OPERATION_PROGRAMS, sweep_all, sweep_operation
from repro.hardware.circuit import HardwareCircuit


class TestTileGrid:
    def test_tile_origins_are_merge_compatible(self):
        tg = TileGrid(2, 2, 3, 3)
        assert tg[(0, 0)].origin == (0, 0)
        assert tg[(0, 1)].origin == (0, 4)  # tile_cols(3) = 4
        assert tg[(1, 0)].origin == (4, 0)

    def test_even_distance_tiles_are_wider(self):
        tg = TileGrid(1, 2, 4, 4)
        assert tg[(0, 1)].origin == (0, 6)  # tile_cols(4) = 6: two strips

    def test_all_tiles_hold_parked_ions(self):
        tg = TileGrid(1, 2, 2, 2)
        occ = tg.occupancy_snapshot()
        per_tile = 2 * 2 + (2 * 2 - 1)
        assert len(occ) == 2 * per_tile

    def test_uninitialized_until_prepared(self):
        tg = TileGrid(1, 1, 2, 2)
        assert not tg[(0, 0)].initialized
        lq = tg.new_patch((0, 0))
        lq.transversal_prepare(HardwareCircuit(), "Z")
        lq.initialized = True
        assert tg[(0, 0)].initialized

    def test_require_helpers(self):
        tg = TileGrid(1, 1, 2, 2)
        with pytest.raises(ValueError):
            tg.require_initialized((0, 0))
        tg.require_uninitialized((0, 0))

    def test_missing_tile(self):
        tg = TileGrid(1, 1, 2, 2)
        with pytest.raises(KeyError):
            tg[(5, 5)]

    def test_neighbors(self):
        tg = TileGrid(2, 2, 2, 2)
        n = tg.neighbors((0, 0))
        assert n == {"down": (1, 0), "right": (0, 1)}

    def test_orientation_between(self):
        tg = TileGrid(2, 2, 2, 2)
        assert tg.orientation_between((0, 0), (0, 1))[0] == "horizontal"
        assert tg.orientation_between((1, 0), (0, 0)) == ("vertical", (0, 0), (1, 0))
        with pytest.raises(ValueError):
            tg.orientation_between((0, 0), (1, 1))

    def test_grid_shape_too_small(self):
        with pytest.raises(ValueError):
            TileGrid(0, 1, 3, 3)


class TestEstimatorFrontEnd:
    def test_all_programs_compile_at_d2(self):
        results = sweep_all([2], rounds=1)
        assert set(results) == set(OPERATION_PROGRAMS)
        for name, reports in results.items():
            assert reports[0].n_instructions > 0, name

    def test_reports_carry_distances(self):
        reports = sweep_operation("MeasureXX", [2, 3], rounds=1)
        assert [(r.dx, r.dz) for r in reports] == [(2, 2), (3, 3)]

    def test_table_contains_all_columns(self):
        table = format_resource_table(sweep_operation("PrepareZ", [2], rounds=1))
        for col in ("time_s", "area_m2", "volume_s_m2", "zones",
                    "zone_s", "active_zone_s", "n_instr"):
            assert col in table

    def test_movement_heavy_ops_cost_more_active_time(self):
        idle = sweep_operation("Idle", [3], rounds=1)[0]
        prep = sweep_operation("PrepareZ", [3], rounds=1)[0]
        # Idle = prep + an extra round: strictly more active zone-seconds.
        assert idle.active_zone_seconds > prep.active_zone_seconds
