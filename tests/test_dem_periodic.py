"""Periodic (template-tiled) DEM extraction: bit-identity and O(1) walks.

The periodic path must be invisible to everything downstream: for every
operating point it has to produce the *bit-identical* fault table and DEM
the full instruction walk produces — same site objects, same footprints,
same float64 probability bits — because decoder tie-breaks and checkpoint
content-hashes are sensitive to the last ulp.  This suite locks that down
across bases, distances, round counts, and noise structures (including a
hypothesis sweep over random rate combinations), and uses the module's
instruction-visit counters to prove the fast path walks O(prologue +
template + epilogue) rows however many rounds the target replays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decode.memory import _TEMPLATE_ROUNDS, MemoryExperiment
from repro.sim.dem import (
    DemExtractionError,
    build_dem,
    extract_fault_table,
    reset_visit_counts,
    visit_counts,
)
from repro.sim.noise import NoiseModel, NoiseParams


def full_walk_table(exp, noise):
    """The oracle: a fresh full-walk extraction, bypassing every cache."""
    return extract_fault_table(
        exp.compiled.circuit,
        exp.compiled.initial_occupancy,
        noise.params,
        exp.detector_labels,
        [exp.observable_labels],
        method="full",
    )


def assert_tables_identical(periodic, full):
    """Field-level bit-identity of two fault tables (any construction)."""
    assert periodic.n_sites == full.n_sites
    assert periodic.sites == full.sites
    assert periodic.footprints == full.footprints
    assert np.array_equal(periodic.observables, full.observables)
    pk, pd = periodic.site_columns()
    fk, fd = full.site_columns()
    assert np.array_equal(pk, fk)
    assert np.array_equal(pd, fd)  # float64 durations, bitwise


def assert_dems_identical(dem_p, dem_f):
    assert np.array_equal(dem_p.probs, dem_f.probs)  # float64, bitwise
    assert dem_p.detectors == dem_f.detectors
    assert np.array_equal(dem_p.observables, dem_f.observables)
    assert dem_p.sources == dem_f.sources


class TestBitIdentity:
    @pytest.mark.parametrize("preset", ["near_term", "projected"])
    @pytest.mark.parametrize("basis", ["Z", "X"])
    @pytest.mark.parametrize("d,rounds", [(3, 10), (3, 17), (5, 15)])
    def test_periodic_matches_full_walk(self, preset, basis, d, rounds):
        noise = NoiseModel.preset(preset)
        exp = MemoryExperiment(distance=d, rounds=rounds, basis=basis)
        exp._fault_tables.clear()
        periodic = exp.fault_table(noise)
        assert periodic.method == "periodic"
        full = full_walk_table(exp, noise)
        assert_tables_identical(periodic, full)

    def test_dem_bit_identical_with_sources(self):
        noise = NoiseModel.preset("near_term")
        exp = MemoryExperiment(distance=3, rounds=12)
        exp._fault_tables.clear()
        periodic = exp.fault_table(noise)
        assert periodic.method == "periodic"
        full = full_walk_table(exp, noise)
        for keep in (False, True):
            assert_dems_identical(
                build_dem(periodic, noise.params, keep_sources=keep),
                build_dem(full, noise.params, keep_sources=keep),
            )

    def test_larger_distance_once(self):
        noise = NoiseModel.preset("projected")
        exp = MemoryExperiment(distance=7, rounds=10)
        exp._fault_tables.clear()
        periodic = exp.fault_table(noise)
        assert periodic.method == "periodic"
        assert_tables_identical(periodic, full_walk_table(exp, noise))

    def test_memoized_reextraction_identical(self):
        # A second extraction for the same compile reuses the memoized
        # structural verification — and must still be bit-identical.
        noise = NoiseModel.preset("near_term")
        exp = MemoryExperiment(distance=3, rounds=15)
        exp._fault_tables.clear()
        first = exp.fault_table(noise)
        exp._fault_tables.clear()
        second = exp.fault_table(noise)
        assert second.method == "periodic"
        assert_tables_identical(second, first)

    @settings(max_examples=8, deadline=None)
    @given(
        rounds=st.integers(min_value=_TEMPLATE_ROUNDS, max_value=24),
        basis=st.sampled_from(["Z", "X"]),
        p1=st.sampled_from([0.0, 1e-4, 2e-3]),
        p2=st.sampled_from([0.0, 5e-3]),
        p_prep=st.sampled_from([0.0, 1e-3]),
        p_meas=st.sampled_from([0.0, 4e-3]),
        t2=st.sampled_from([None, 50_000.0]),
    )
    def test_random_structures_bit_identical(
        self, rounds, basis, p1, p2, p_prep, p_meas, t2
    ):
        noise = NoiseModel(
            NoiseParams(p1=p1, p2=p2, p_prep=p_prep, p_meas=p_meas, t2_us=t2)
        )
        exp = MemoryExperiment(distance=3, rounds=rounds, basis=basis)
        exp._fault_tables.clear()
        table = exp.fault_table(noise)
        assert_tables_identical(table, full_walk_table(exp, noise))
        exp._fault_tables.clear()


class TestVisitCounts:
    def test_extraction_walks_are_rounds_independent(self):
        # After the one-time template walk, changing the round count must
        # not walk a single additional instruction: tiling is pure index
        # arithmetic over the template's arrays.
        noise = NoiseModel.preset("near_term")
        d = 3
        MemoryExperiment.clear_compile_cache()
        reset_visit_counts()
        try:
            exp_small = MemoryExperiment(distance=d, rounds=3 * d)
            exp_small.fault_table(noise)
            after_template = visit_counts()
            assert after_template["enumerate"] > 0  # the template's own walk
            for rounds in (10 * d, 10 * d + 1):
                exp = MemoryExperiment(distance=d, rounds=rounds)
                table = exp.fault_table(noise)
                assert table.method == "periodic"
            assert visit_counts() == after_template
        finally:
            reset_visit_counts()
            MemoryExperiment.clear_compile_cache()

    def test_short_memories_use_the_full_walk(self):
        noise = NoiseModel.preset("near_term")
        exp = MemoryExperiment(distance=3, rounds=_TEMPLATE_ROUNDS - 1)
        exp._fault_tables.clear()
        assert exp.fault_table(noise).method == "full"

    def test_template_rounds_reuses_the_template_walk(self):
        # At exactly the template's round count the target *is* the
        # template compile, so extraction returns its oracle table.
        noise = NoiseModel.preset("near_term")
        exp = MemoryExperiment(distance=3, rounds=_TEMPLATE_ROUNDS)
        exp._fault_tables.clear()
        table = exp.fault_table(noise)
        assert table.method == "full"
        assert_tables_identical(table, full_walk_table(exp, noise))


class TestMetadataAndRates:
    @pytest.fixture(scope="class")
    def periodic_pair(self):
        noise = NoiseModel.preset("near_term")
        exp = MemoryExperiment(distance=3, rounds=15)
        exp._fault_tables.clear()
        return exp, exp.fault_table(noise), noise

    def test_tiling_metadata(self, periodic_pair):
        exp, table, _ = periodic_pair
        assert table.method == "periodic"
        assert table.sites_per_round > 0
        assert table.n_bulk_rounds > 0
        # Bulk detectors advance one round per window: the period is the
        # per-round detector stride, i.e. the number of decoded faces.
        assert table.detector_period == len(exp.faces)

    def test_full_walk_has_no_period(self, periodic_pair):
        exp, _, noise = periodic_pair
        full = full_walk_table(exp, noise)
        assert full.method == "full"
        assert full.sites_per_round is None
        assert full.detector_period is None

    def test_period_propagates_to_dem_and_graph(self, periodic_pair):
        from repro.decode.graph import build_dem_graph

        exp, table, noise = periodic_pair
        dem = build_dem(table, noise.params)
        assert dem.period == table.detector_period
        graph = build_dem_graph(dem)
        assert graph.period == dem.period

    def test_method_periodic_requires_template(self, periodic_pair):
        exp, _, noise = periodic_pair
        with pytest.raises(DemExtractionError):
            extract_fault_table(
                exp.compiled.circuit,
                exp.compiled.initial_occupancy,
                noise.params,
                exp.detector_labels,
                [exp.observable_labels],
                method="periodic",
            )

    def test_vectorized_rates_match_loop_oracles(self, periodic_pair):
        exp, table, noise = periodic_pair
        for dem in (
            build_dem(table, noise.params),
            build_dem(full_walk_table(exp, noise), noise.params),
        ):
            assert np.array_equal(dem.detection_rates(), dem._detection_rates_loop())
            assert np.array_equal(dem.observable_rates(), dem._observable_rates_loop())

    def test_kind_counts_match_between_paths(self, periodic_pair):
        exp, table, noise = periodic_pair
        assert table.kind_counts() == full_walk_table(exp, noise).kind_counts()
