"""Cross-backend equivalence: PackedTableau vs StabilizerTableau vs DenseSimulator.

Randomized Clifford-circuit fuzzing drives all three state backends through
identical trajectories (measurement outcomes forced to the dense reference's
draws) and asserts agreement on stabilizer generators, forced-measurement
outcomes, determinism flags, and expectation values.  The packed backend is
additionally exercised across 64-bit word boundaries (n > 64), on masked
per-lane gate application, and on lossless to/from-tableau round trips.
"""

import numpy as np
import pytest

from repro.code.pauli import PauliString
from repro.sim.dense import DenseSimulator
from repro.sim.gates import CLIFFORD_GATES, apply_to_tableau
from repro.sim.packed import PackedTableau, apply_packed, pack_bits, unpack_bits
from repro.sim.tableau import StabilizerTableau

GATES_1Q = sorted(g for g in CLIFFORD_GATES if g != "ZZ")


def random_circuit(n, depth, seed):
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.3:
            a, b = rng.choice(n, 2, replace=False)
            ops.append(("ZZ", (int(a), int(b))))
        else:
            ops.append((GATES_1Q[rng.integers(len(GATES_1Q))], (int(rng.integers(n)),)))
    return ops


def random_pauli(n, rng, max_weight=4):
    ops = {}
    for q in rng.choice(n, min(n, max_weight), replace=False):
        p = "IXYZ"[rng.integers(4)]
        if p != "I":
            ops[int(q)] = p
    return PauliString(ops) if ops else None


def assert_same_state(packed: PackedTableau, tab: StabilizerTableau, lane: int):
    got = packed.to_tableau(lane)
    assert np.array_equal(got.x, tab.x)
    assert np.array_equal(got.z, tab.z)
    assert np.array_equal(got.r, tab.r)


def run_three_backends(n, depth, seed, batch=2):
    """Drive all three backends through one forced trajectory; return them."""
    tab = StabilizerTableau(n)
    packed = PackedTableau(n, batch=batch)
    dense = DenseSimulator(n)
    rng = np.random.default_rng(seed)
    for k, (name, qubits) in enumerate(random_circuit(n, depth, seed)):
        apply_to_tableau(tab, name, qubits)
        apply_packed(packed, name, qubits)
        dense.apply(name, qubits)
        if k % 6 == 3:
            q = int(rng.integers(n))
            outcome, det_dense = dense.measure(q, rng)
            out_tab, det_tab = tab.measure(q, forced=outcome)
            out_packed, det_packed = packed.measure(q, forced=outcome)
            assert out_tab == outcome
            assert (out_packed == outcome).all()
            assert det_tab == det_dense
            assert (det_packed == det_dense).all()
    return tab, packed, dense


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_trajectories_and_expectations(self, seed):
        n = 4
        tab, packed, dense = run_three_backends(n, 40, seed)
        for lane in range(packed.batch):
            assert_same_state(packed, tab, lane)
        rng = np.random.default_rng(seed + 999)
        for _ in range(30):
            p = random_pauli(n, rng)
            if p is None:
                continue
            e_tab = tab.expectation(p)
            e_packed = packed.expectation(p)
            assert (e_packed == e_tab).all()
            assert e_tab == pytest.approx(dense.expectation(p), abs=1e-9)

    @pytest.mark.parametrize("seed", range(12))
    def test_stabilizer_generators_agree(self, seed):
        tab, packed, dense = run_three_backends(4, 30, seed + 50)
        gens_tab = tab.stabilizer_generators()
        gens_packed = packed.stabilizer_generators(0)
        assert gens_tab == gens_packed
        for g in gens_tab:
            assert dense.expectation(g) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(100))
    def test_fuzz_three_backends(self, seed):
        n = 4
        tab, packed, dense = run_three_backends(n, 50, 1000 + seed, batch=1)
        assert_same_state(packed, tab, 0)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            p = random_pauli(n, rng)
            if p is None:
                continue
            e = tab.expectation(p)
            assert (packed.expectation(p) == e).all()
            assert e == pytest.approx(dense.expectation(p), abs=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_multiword_packed_matches_tableau(self, seed):
        """n > 64 exercises word-boundary bit packing (no dense reference)."""
        n = 70
        tab = StabilizerTableau(n)
        packed = PackedTableau(n, batch=2)
        rng = np.random.default_rng(seed)
        for k, (name, qubits) in enumerate(random_circuit(n, 120, seed + 7)):
            apply_to_tableau(tab, name, qubits)
            apply_packed(packed, name, qubits)
            if k % 17 == 11:
                q = int(rng.integers(n))
                outcome, det = tab.measure(q, rng)
                out_p, det_p = packed.measure(q, forced=outcome)
                assert (out_p == outcome).all() and (det_p == det).all()
        assert_same_state(packed, tab, 0)
        assert_same_state(packed, tab, 1)
        # word-straddling Pauli support
        p = PauliString({62: "X", 63: "Y", 64: "Z", 69: "X"})
        assert (packed.expectation(p) == tab.expectation(p)).all()


class TestDirectTwoQubitGates:
    """cnot/cz are part of the packed gate set but not reachable through
    apply_packed (the native circuit alphabet only has ZZ), so fuzz them
    against the seed backend's methods directly."""

    @pytest.mark.parametrize("n", [3, 70])
    @pytest.mark.parametrize("seed", range(8))
    def test_cnot_cz_match_seed_backend(self, n, seed):
        tab = StabilizerTableau(n)
        packed = PackedTableau(n, batch=2)
        rng = np.random.default_rng(seed)
        for _ in range(60):
            a, b = (int(q) for q in rng.choice(n, 2, replace=False))
            which = rng.integers(4)
            if which == 0:
                tab.cnot(a, b)
                packed.cnot(a, b)
            elif which == 1:
                tab.cz(a, b)
                packed.cz(a, b)
            elif which == 2:
                tab.h(a)
                packed.h(a)
            else:
                tab.s(a)
                packed.s(a)
        assert_same_state(packed, tab, 0)
        assert_same_state(packed, tab, 1)

    def test_masked_cz_acts_per_lane(self):
        ref_plain = StabilizerTableau(2)
        ref_cz = StabilizerTableau(2)
        packed = PackedTableau(2, batch=2)
        for t in (ref_plain, ref_cz):
            t.h(0)
            t.h(1)
        packed.h(0)
        packed.h(1)
        ref_cz.cz(0, 1)
        packed.cz(0, 1, mask=np.array([False, True]))
        assert_same_state(packed, ref_plain, 0)
        assert_same_state(packed, ref_cz, 1)


class TestPackedSpecifics:
    def test_round_trip_conversion_lossless(self):
        tab = StabilizerTableau(70)
        for name, qubits in random_circuit(70, 150, 3):
            apply_to_tableau(tab, name, qubits)
        packed = PackedTableau.from_tableau(tab, batch=3)
        for lane in range(3):
            assert_same_state(packed, tab, lane)

    def test_pack_unpack_inverse(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 130), dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (5, 3)
        assert np.array_equal(unpack_bits(words, 130), bits)

    def test_masked_gates_act_per_lane(self):
        packed = PackedTableau(1, batch=4)
        mask = np.array([True, False, True, False])
        packed.h(0, mask=mask)
        for lane, expect in enumerate([{0: "X"}, {0: "Z"}, {0: "X"}, {0: "Z"}]):
            assert packed.stabilizer_generators(lane) == [PauliString(expect)]

    def test_masked_substitutes_match_unpacked(self):
        """A masked S-layer equals applying S to only those lanes' tableaux."""
        ref_plain = StabilizerTableau(2)
        ref_s = StabilizerTableau(2)
        packed = PackedTableau(2, batch=3)
        for t in (ref_plain, ref_s):
            t.h(0)
            t.cnot(0, 1)
        packed.h(0)
        packed.cnot(0, 1)
        ref_s.s(1)
        packed.s(1, mask=np.array([False, True, False]))
        assert_same_state(packed, ref_plain, 0)
        assert_same_state(packed, ref_s, 1)
        assert_same_state(packed, ref_plain, 2)

    def test_lanes_evolve_independently_under_measurement(self):
        packed = PackedTableau(1, batch=64)
        packed.h(0)
        outcomes, det = packed.measure(0, np.random.default_rng(5))
        assert not det.any()
        assert 0 < outcomes.sum() < 64  # both outcomes occur across lanes
        again, det2 = packed.measure(0)
        assert det2.all()
        assert np.array_equal(again, outcomes)  # pinned per lane

    def test_per_shot_generators_reproduce_single_shots(self):
        rngs = [np.random.default_rng(100 + k) for k in range(8)]
        packed = PackedTableau(2, batch=8)
        packed.h(0)
        packed.cnot(0, 1)
        outcomes, _ = packed.measure(0, rngs)
        for k in range(8):
            tab = StabilizerTableau(2)
            tab.h(0)
            tab.cnot(0, 1)
            out, _ = tab.measure(0, np.random.default_rng(100 + k))
            assert out == outcomes[k]

    def test_forced_contradiction_raises(self):
        packed = PackedTableau(2, batch=3)
        with pytest.raises(ValueError, match="contradicts deterministic"):
            packed.measure(0, forced=1)

    def test_forced_contradiction_after_entangling(self):
        """Deterministic branch with a multi-row destabilizer product."""
        packed = PackedTableau(2, batch=2)
        packed.h(0)
        packed.cnot(0, 1)
        first, _ = packed.measure(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            packed.measure(1, forced=1 - first)
        out, det = packed.measure(1, forced=first)
        assert det.all() and np.array_equal(out, first)

    def test_reset_and_expectation_batched(self):
        packed = PackedTableau(2, batch=16)
        packed.h(0)
        packed.zz(0, 1)
        packed.reset(0, np.random.default_rng(1))
        z0 = packed.expectation(PauliString({0: "Z"}))
        assert (z0 == 1).all()

    def test_error_paths(self):
        packed = PackedTableau(2, batch=2)
        with pytest.raises(ValueError):
            PackedTableau(0)
        with pytest.raises(ValueError):
            PackedTableau(2, batch=0)
        with pytest.raises(ValueError):
            packed.h(5)
        with pytest.raises(ValueError):
            packed.cnot(1, 1)
        with pytest.raises(ValueError):
            packed.h(0, mask=np.array([True]))  # wrong mask shape
        randomized = PackedTableau(2, batch=2)
        randomized.h(0)
        with pytest.raises(ValueError):
            randomized.measure(0, rng=None)  # random outcome needs an rng
        with pytest.raises(ValueError):
            packed.measure(0, forced=np.zeros(5))  # wrong forced shape
        with pytest.raises(ValueError):
            packed.expectation(PauliString({0: "X"}, phase=1))  # non-Hermitian
        with pytest.raises(ValueError):
            apply_packed(packed, "Z_pi/8", (0,))
        with pytest.raises(ValueError):
            apply_packed(packed, "Warp", (0,))

    def test_copy_is_independent(self):
        packed = PackedTableau(3, batch=2)
        packed.h(0)
        clone = packed.copy()
        clone.h(1)
        assert not np.array_equal(clone.x, packed.x)
        # the byte views stay aliased to the copied storage
        clone.s(0)
        assert_same_state(packed, packed.to_tableau(0), 0)
