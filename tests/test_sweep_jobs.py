"""Crash/resume fault-injection and sharding-equivalence suite for the
sharded sweep engine (``estimator/jobs.py`` + ``estimator/cache.py``).

The contract under test: no matter how a sweep is sharded, killed, or
resumed, the merged reports are bit-identical (timing fields aside) to the
serial single-process ``logical_error_sweep`` oracle; the checkpoint
manifest never holds duplicate or torn cells; and corrupt result files are
detected by their content hash and recomputed, never served.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.estimator.cache import CheckpointError, ResultCache, content_hash
from repro.estimator.jobs import (
    execute_cell,
    logical_error_cells,
    merge_shard_payloads,
    new_stats,
    payload_fingerprint,
    resource_cells,
    run_cells,
    shard_cell,
)
from repro.estimator.sweep import logical_error_sweep, sweep_operation
from repro.sim.noise import NoiseModel

DISTANCES = [3]
RATES = [1e-3, 3e-3]
SHOTS = 150
MODELS = [NoiseModel.uniform(p) for p in RATES]


def make_cells(**overrides):
    kwargs = dict(shots=SHOTS, seed=0, engine="frame")
    kwargs.update(overrides)
    return logical_error_cells(DISTANCES, MODELS, **kwargs)


@pytest.fixture(scope="module")
def serial_fingerprints():
    """The oracle: fingerprints of the uninterrupted serial sweep."""
    reports = logical_error_sweep(DISTANCES, rates=RATES, shots=SHOTS, seed=0)
    return [payload_fingerprint(r.to_dict()) for r in reports]


def fingerprints(reports):
    return [payload_fingerprint(r.to_dict()) for r in reports]


def manifest_keys(root):
    """Parsed manifest keys, asserting no line is torn and none repeats."""
    lines = (root / "manifest.jsonl").read_text().splitlines()
    keys = []
    for line in lines:
        rec = json.loads(line)  # raises on torn lines
        keys.append(rec["key"])
    assert len(keys) == len(set(keys)), "manifest contains duplicate cells"
    return keys


class TestFaultInjection:
    def arm(self, monkeypatch, tmp_path, mode, key_prefix):
        monkeypatch.setenv("TISCC_SWEEP_FAULT", mode)
        monkeypatch.setenv("TISCC_SWEEP_FAULT_KEY", key_prefix)
        monkeypatch.setenv("TISCC_SWEEP_FAULT_DIR", str(tmp_path / "fault"))
        os.makedirs(tmp_path / "fault", exist_ok=True)

    def test_sigkilled_worker_degrades_and_matches_serial(
        self, monkeypatch, tmp_path, serial_fingerprints
    ):
        cells = make_cells()
        self.arm(monkeypatch, tmp_path, "kill", cells[0].key()[:16])
        stats = new_stats()
        reports = logical_error_sweep(
            DISTANCES,
            rates=RATES,
            shots=SHOTS,
            seed=0,
            jobs=2,
            checkpoint=str(tmp_path / "ck"),
            stats=stats,
        )
        assert stats["degraded"], "SIGKILL should break the pool"
        assert stats["executed"] == len(cells)
        assert fingerprints(reports) == serial_fingerprints
        assert set(manifest_keys(tmp_path / "ck")) == {c.key() for c in cells}

    def test_raising_worker_is_retried_and_matches_serial(
        self, monkeypatch, tmp_path, serial_fingerprints
    ):
        cells = make_cells()
        self.arm(monkeypatch, tmp_path, "raise", cells[1].key()[:16])
        stats = new_stats()
        reports = logical_error_sweep(
            DISTANCES,
            rates=RATES,
            shots=SHOTS,
            seed=0,
            jobs=2,
            checkpoint=str(tmp_path / "ck"),
            stats=stats,
        )
        assert stats["retried"] == 1 and not stats["degraded"]
        assert fingerprints(reports) == serial_fingerprints

    def test_exhausted_retries_surface_the_worker_error(self, monkeypatch, tmp_path):
        # No marker dir, so the fault fires on *every* attempt: the pool
        # retries, exhausts the budget, hands the cell to the in-process
        # fallback, and the persistent error finally reaches the caller.
        cells = make_cells()
        monkeypatch.setenv("TISCC_SWEEP_FAULT", "raise")
        monkeypatch.setenv("TISCC_SWEEP_FAULT_KEY", cells[0].key()[:16])
        stats = new_stats()
        with pytest.raises(RuntimeError, match="injected fault"):
            run_cells(cells, jobs=2, retries=1, stats=stats)
        assert stats["retried"] == 2  # initial attempt + one retry, both poisoned

    def test_interrupted_driver_resumes_bit_identical(
        self, tmp_path, serial_fingerprints
    ):
        """SIGKILL the whole sweep driver mid-run, then resume the sweep."""
        ck = tmp_path / "ck"
        code = (
            "from repro.estimator.sweep import logical_error_sweep\n"
            f"logical_error_sweep({DISTANCES!r}, rates={RATES!r}, shots={SHOTS},"
            f" seed=0, jobs=1, checkpoint={str(ck)!r})\n"
        )
        env = dict(os.environ, PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
        for var in ("TISCC_SWEEP_FAULT", "TISCC_SWEEP_FAULT_KEY", "TISCC_SWEEP_FAULT_DIR"):
            env.pop(var, None)
        proc = subprocess.Popen([sys.executable, "-c", code], env=env, cwd=os.getcwd())
        manifest = ck / "manifest.jsonl"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and proc.poll() is None:
            if manifest.exists() and manifest.read_text().count("\n") >= 1:
                break
            time.sleep(0.02)
        proc.kill()
        proc.wait(timeout=60)
        assert manifest.exists(), "driver was killed before any cell completed"

        stats = new_stats()
        reports = logical_error_sweep(
            DISTANCES,
            rates=RATES,
            shots=SHOTS,
            seed=0,
            checkpoint=str(ck),
            stats=stats,
        )
        assert stats["cache_hits"] >= 1, "resume should replay completed cells"
        assert fingerprints(reports) == serial_fingerprints
        assert set(manifest_keys(ck)) == {c.key() for c in make_cells()}

    def test_timeout_degrade_terminates_orphaned_workers(
        self, monkeypatch, tmp_path, serial_fingerprints
    ):
        """Satellite regression: a wedged worker used to survive the
        timeout degrade (``cancel_futures`` cannot cancel a *running*
        future) and keep burning CPU on a cell the driver was redoing
        in-process.  The degrade path must now terminate it — and the
        checkpoint manifest must show each cell completed exactly once."""
        cells = make_cells()
        self.arm(monkeypatch, tmp_path, "hang", cells[0].key()[:16])
        stats = new_stats()
        payloads = run_cells(
            cells, jobs=2, timeout=4.0, checkpoint=tmp_path / "ck", stats=stats
        )
        assert stats["degraded"] and stats["timed_out"] >= 1
        assert [payload_fingerprint(p) for p in payloads] == serial_fingerprints

        pid_file = tmp_path / "fault" / "hang-pid"
        assert pid_file.exists(), "the injected hang never started"
        pid = int(pid_file.read_text())
        deadline = time.monotonic() + 15
        alive = True
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                alive = False
                break
            time.sleep(0.1)
        assert not alive, f"orphaned worker {pid} still running after degrade"
        # No duplicate work: every cell appears in the manifest exactly once
        # (manifest_keys asserts uniqueness) and nothing extra was recorded.
        assert set(manifest_keys(tmp_path / "ck")) == {c.key() for c in cells}

    def test_corrupted_result_file_is_recomputed(self, tmp_path, serial_fingerprints):
        cells = make_cells()
        ck = tmp_path / "ck"
        run_cells(cells, checkpoint=ck)
        victim = ResultCache(ck).result_path(cells[0].key())
        record = json.loads(victim.read_text())
        record["payload"]["failures"] += 1  # bit rot: hash no longer matches
        victim.write_text(json.dumps(record))

        stats = new_stats()
        reports = logical_error_sweep(
            DISTANCES, rates=RATES, shots=SHOTS, seed=0, checkpoint=str(ck), stats=stats
        )
        assert stats["cache_hits"] == len(cells) - 1
        assert stats["executed"] == 1, "the corrupt cell must be recomputed"
        assert fingerprints(reports) == serial_fingerprints

    def test_torn_manifest_line_is_skipped_and_healed(self, tmp_path):
        cells = make_cells()
        ck = tmp_path / "ck"
        run_cells(cells, checkpoint=ck)
        with open(ck / "manifest.jsonl", "a") as fh:
            fh.write('{"key": "deadbeef", "sha2')  # crash mid-append
        cache = ResultCache(ck)
        assert cache.stats["torn_lines"] == 1
        assert cache.keys() == {c.key() for c in cells}
        # The torn tail never surfaces as a cell; a rerun serves the intact ones.
        stats = new_stats()
        run_cells(cells, checkpoint=ck, stats=stats)
        assert stats["cache_hits"] == len(cells)

    def test_unlisted_result_file_is_rescued(self, tmp_path):
        cells = make_cells()
        ck = tmp_path / "ck"
        run_cells(cells, checkpoint=ck)
        # Simulate a crash between result rename and manifest append: the
        # manifest loses its lines but the result files survive.
        (ck / "manifest.jsonl").unlink()
        cache = ResultCache(ck)
        assert cache.stats["rescued"] == len(cells)
        stats = new_stats()
        run_cells(cells, checkpoint=ck, stats=stats)
        assert stats["cache_hits"] == len(cells)


class TestCheckpointSemantics:
    def test_mismatched_checkpoint_is_one_line_error(self, tmp_path):
        ck = tmp_path / "ck"
        run_cells(make_cells(), checkpoint=ck)
        other = logical_error_cells([3], [NoiseModel.uniform(5e-3)], shots=SHOTS, seed=0)
        with pytest.raises(CheckpointError, match="different sweep"):
            run_cells(other, checkpoint=ck)

    def test_resume_false_refuses_populated_checkpoint(self, tmp_path):
        ck = tmp_path / "ck"
        cells = make_cells()
        run_cells(cells, checkpoint=ck)
        with pytest.raises(CheckpointError, match="--resume"):
            run_cells(cells, checkpoint=ck, resume=False)
        # --no-cache recomputes instead of serving, so it needs no opt-in.
        stats = new_stats()
        run_cells(cells, checkpoint=ck, resume=False, use_cache=False, stats=stats)
        assert stats["executed"] == len(cells)
        manifest_keys(ck)  # refresh must not append duplicate manifest cells

    def test_duplicate_cells_share_one_execution(self, tmp_path):
        cells = make_cells() + make_cells()  # every cell twice
        stats = new_stats()
        payloads = run_cells(cells, checkpoint=tmp_path / "ck", stats=stats)
        assert stats["executed"] == len(cells) // 2
        assert len(payloads) == len(cells)
        assert payloads[: len(cells) // 2] == payloads[len(cells) // 2 :]
        assert len(manifest_keys(tmp_path / "ck")) == len(cells) // 2

    def test_resource_cells_round_trip_exactly(self, tmp_path):
        serial = sweep_operation("Idle", [2, 3], rounds=1)
        cached = sweep_operation(
            "Idle", [2, 3], rounds=1, checkpoint=str(tmp_path / "ck")
        )
        again = sweep_operation(
            "Idle", [2, 3], rounds=1, checkpoint=str(tmp_path / "ck")
        )
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in cached]
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in again]

    def test_cell_key_ignores_chunking_and_noise_name(self):
        base = make_cells()[0]
        renamed = logical_error_cells(
            DISTANCES, [NoiseModel.uniform(RATES[0], name="other-name")],
            shots=SHOTS, seed=0,
        )[0]
        chunked = make_cells(max_batch=7)[0]
        assert base.key() == renamed.key() == chunked.key()
        different = make_cells(seed=1)[0]
        assert base.key() != different.key()

    def test_resource_and_memory_cells_never_collide(self):
        mem = {c.key() for c in make_cells()}
        res = {c.key() for c in resource_cells(["Idle", "PrepareZ"], [2, 3], rounds=1)}
        assert not mem & res


class TestShardingProperty:
    """Any sharding merges to exactly the serial sweep output.

    Extends the PR 3 chunk-invariant-seed guarantee to the process-parallel
    path: worker count (1..4), frame-sampling chunk size, and submission
    order are all drawn by hypothesis, and every combination must reproduce
    the serial oracle bit-for-bit (timing fields aside).
    """

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        jobs=st.integers(min_value=1, max_value=4),
        max_batch=st.one_of(st.none(), st.integers(min_value=1, max_value=SHOTS + 10)),
        order=st.permutations(list(range(len(DISTANCES) * len(RATES)))),
    )
    def test_any_sharding_merges_to_serial(self, jobs, max_batch, order):
        serial = logical_error_sweep(DISTANCES, rates=RATES, shots=SHOTS, seed=0)
        want = {payload_fingerprint(r.to_dict()) for r in serial}

        cells = make_cells(max_batch=max_batch)
        shuffled = [cells[i] for i in order]
        payloads = run_cells(shuffled, jobs=jobs)
        got = {payload_fingerprint(p) for p in payloads}
        assert got == want
        # ... and the merge preserves the submitted order, not completion order.
        assert [payload_fingerprint(p) for p in payloads] == [
            payload_fingerprint(serial[i].to_dict()) for i in order
        ]


class TestExecuteCell:
    def test_unknown_kind_rejected(self):
        import dataclasses

        bad = dataclasses.replace(make_cells()[0], kind="nope")
        with pytest.raises(ValueError, match="unknown sweep cell kind"):
            execute_cell(bad)

    def test_payload_fingerprint_ignores_timings(self):
        payload = execute_cell(make_cells()[0])
        warped = dict(payload, sim_seconds=123.0, decode_seconds=456.0)
        assert payload_fingerprint(payload) == payload_fingerprint(warped)
        assert content_hash(payload) != content_hash(warped)


class TestShotSharding:
    """Shot-axis sharding: splitting one cell's shots across workers and
    merging the shard payloads must be bit-identical to the unsharded cell
    (the per-shot seed streams make the split seam-free)."""

    def test_shard_cell_partitions_the_shot_axis(self):
        cell = make_cells()[0]
        shards = shard_cell(cell, 4)
        assert sum(s.shots for s in shards) == cell.shots
        assert shards[0].shot_offset == 0
        for prev, nxt in zip(shards, shards[1:]):
            assert nxt.shot_offset == prev.shot_offset + prev.shots
        # Every shard gets its own cache identity; none collides with the
        # unsharded cell.
        keys = {s.key() for s in shards}
        assert len(keys) == len(shards)
        assert cell.key() not in keys

    def test_shard_cell_passthrough_and_validation(self):
        cell = make_cells()[0]
        assert shard_cell(cell, 1) == [cell]
        # Over-sharding clamps to one shot per shard instead of emitting
        # empty cells.
        tiny = shard_cell(cell, cell.shots + 50)
        assert len(tiny) == cell.shots
        assert all(s.shots == 1 for s in tiny)
        import dataclasses

        tableau = dataclasses.replace(cell, engine="tableau")
        with pytest.raises(ValueError, match="frame"):
            shard_cell(tableau, 2)

    def test_unsharded_cell_key_ignores_new_fields(self):
        """Backward compatibility: shot_offset/window/commit enter the
        content-addressed key only when set, so pre-existing checkpoints
        still resolve."""
        cell = make_cells()[0]
        payload = cell.key_payload()
        assert "shot_offset" not in payload
        assert "window" not in payload
        assert "commit" not in payload

    def test_merged_shards_match_unsharded_payload(self):
        cell = make_cells()[0]
        whole = execute_cell(cell)
        merged = merge_shard_payloads([execute_cell(s) for s in shard_cell(cell, 3)])
        assert payload_fingerprint(merged) == payload_fingerprint(whole)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="payload"):
            merge_shard_payloads([])

    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_sweep_with_shot_shards_matches_serial(
        self, tmp_path, serial_fingerprints, shards
    ):
        stats = new_stats()
        reports = logical_error_sweep(
            DISTANCES,
            rates=RATES,
            shots=SHOTS,
            seed=0,
            jobs=2,
            shot_shards=shards,
            checkpoint=str(tmp_path / "ck"),
            stats=stats,
        )
        assert fingerprints(reports) == serial_fingerprints
        n_cells = len(DISTANCES) * len(RATES)
        assert stats["executed"] == n_cells * shards
        assert len(manifest_keys(tmp_path / "ck")) == n_cells * shards

    def test_serial_path_rejects_shot_shards(self):
        with pytest.raises(ValueError, match="jobs"):
            logical_error_sweep(
                DISTANCES, rates=RATES, shots=SHOTS, seed=0, shot_shards=2
            )
