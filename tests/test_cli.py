"""CLI behaviour: input validation messages and happy-path smoke runs.

Validation failures must come back as one-line messages with exit code 2 —
never tracebacks — because the paper positions the executable as the
primary interface (App. B).
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestValidation:
    @pytest.mark.parametrize("cmd", ["lfr", "dem"])
    def test_even_distance_rejected(self, capsys, cmd):
        args = ["--distances", "4"] if cmd == "lfr" else ["--distance", "4"]
        code, out = run_cli(capsys, cmd, *args)
        assert code == 2
        assert "odd" in out and "4" in out
        assert "Traceback" not in out

    @pytest.mark.parametrize("cmd", ["lfr", "dem"])
    def test_too_small_distance_rejected(self, capsys, cmd):
        args = ["--distances", "1"] if cmd == "lfr" else ["--distance", "1"]
        code, out = run_cli(capsys, cmd, *args)
        assert code == 2
        assert "at least 3" in out

    def test_negative_rate_rejected_lfr(self, capsys):
        code, out = run_cli(capsys, "lfr", "--distances", "3", "--rates", "-0.001")
        assert code == 2
        assert "non-negative" in out and "-0.001" in out

    def test_rate_above_one_rejected_lfr(self, capsys):
        code, out = run_cli(capsys, "lfr", "--distances", "3", "--rates", "1.5")
        assert code == 2
        assert "[0, 1]" in out

    def test_negative_rate_rejected_dem(self, capsys):
        code, out = run_cli(capsys, "dem", "--distance", "3", "--rate", "-0.5")
        assert code == 2
        assert "non-negative" in out
        assert "--rate " in out  # names dem's actual flag, not lfr's --rates

    def test_negative_scale_rejected_lfr(self, capsys):
        code, out = run_cli(
            capsys, "lfr", "--distances", "3", "--noise", "near_term", "--scales", "-1"
        )
        assert code == 2
        assert "scales" in out

    def test_bad_rounds_rejected_dem(self, capsys):
        code, out = run_cli(capsys, "dem", "--distance", "3", "--rounds", "0")
        assert code == 2
        assert "rounds" in out

    @pytest.mark.parametrize("cmd", ["lfr", "dem"])
    def test_unknown_preset_is_one_line_error(self, capsys, cmd):
        args = (
            ["lfr", "--distances", "3", "--noise", "nope", "--shots", "10"]
            if cmd == "lfr"
            else ["dem", "--distance", "3", "--noise", "nope"]
        )
        code, out = run_cli(capsys, *args)
        assert code == 2
        assert "unknown noise preset" in out
        assert "Traceback" not in out


class TestHappyPaths:
    def test_dem_summary(self, capsys):
        code, out = run_cli(
            capsys, "dem", "--distance", "3", "--rounds", "2", "--rate", "1e-3"
        )
        assert code == 0
        assert "detector error model" in out
        assert "mechanisms:" in out
        assert "sites by kind:" in out

    def test_dem_json_artifact(self, capsys, tmp_path):
        path = tmp_path / "dem.json"
        code, out = run_cli(
            capsys,
            "dem", "--distance", "3", "--rounds", "1", "--rate", "2e-3",
            "--json", str(path),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["n_mechanisms"] == len(payload["mechanisms"])
        assert all(0 < m["probability"] < 1 for m in payload["mechanisms"])

    def test_lfr_frame_engine_smoke(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "1e-3",
            "--shots", "100", "--rounds", "2",
        )
        assert code == 0
        assert "frame engine" in out
        assert "decoded logical error rates" in out

    def test_lfr_tableau_engine_smoke(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "1e-3",
            "--shots", "50", "--rounds", "1", "--engine", "tableau",
        )
        assert code == 0
        assert "tableau engine" in out

    def test_lfr_decoder_selection(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "1e-3",
            "--shots", "50", "--rounds", "2", "--decoder", "union_find_unweighted",
        )
        assert code == 0
        assert "union_find_unweighted" in out

    def test_lfr_unknown_decoder_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "lfr", "--distances", "3", "--rates", "1e-3", "--decoder", "mwpm",
            )

    def test_lfr_lookup_decoder_too_large_is_one_line(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "5", "--rates", "1e-3",
            "--shots", "10", "--decoder", "lookup",
        )
        assert code == 2
        assert "lookup" in out and "limit" in out
        assert "Traceback" not in out

    def test_dem_decoder_graph_summary(self, capsys):
        code, out = run_cli(
            capsys,
            "dem", "--distance", "3", "--rounds", "2", "--rate", "1e-3",
            "--decoder", "lookup",
        )
        assert code == 0
        assert "decoding graph (lookup):" in out
        assert "weights" in out


class TestShardedSweeps:
    """--jobs/--checkpoint/--resume/--no-cache on the sweep front-ends."""

    LFR = ["lfr", "--distances", "3", "--rates", "1e-3", "--shots", "100", "--rounds", "2"]

    def test_sweep_unknown_op_is_one_line_error(self, capsys):
        code, out = run_cli(capsys, "sweep", "--op", "Nope", "--distances", "3")
        assert code == 2
        assert "unknown operation" in out and "Nope" in out
        assert "Traceback" not in out

    def test_sweep_bad_distance_is_one_line_error(self, capsys):
        code, out = run_cli(capsys, "sweep", "--op", "Idle", "--distances", "1")
        assert code == 2
        assert "at least 2" in out and "Traceback" not in out

    def test_bad_jobs_rejected(self, capsys):
        code, out = run_cli(capsys, *self.LFR, "--jobs", "0")
        assert code == 2
        assert "--jobs" in out

    def test_resume_without_checkpoint_rejected(self, capsys):
        code, out = run_cli(capsys, *self.LFR, "--resume")
        assert code == 2
        assert "--resume requires --checkpoint" in out

    def test_lfr_jobs_matches_serial(self, capsys):
        code, serial = run_cli(capsys, *self.LFR)
        code2, parallel = run_cli(capsys, *self.LFR, "--jobs", "2")
        assert code == 0 and code2 == 0
        # Same table rows modulo the timing columns (wall clock differs).
        strip = [" ".join(line.split()[:10]) for line in serial.splitlines() if "ZMemory" in line]
        strip2 = [
            " ".join(line.split()[:10]) for line in parallel.splitlines() if "ZMemory" in line
        ]
        assert strip == strip2
        assert "sweep cells: 0 served from cache, 1 computed (2 worker(s))" in parallel

    def test_checkpoint_resume_serves_from_cache(self, capsys, tmp_path):
        ck = str(tmp_path / "ck")
        code, out = run_cli(capsys, *self.LFR, "--checkpoint", ck)
        assert code == 0
        assert "1 computed" in out
        code, out = run_cli(capsys, *self.LFR, "--checkpoint", ck, "--resume")
        assert code == 0
        assert "1 served from cache, 0 computed" in out

    def test_populated_checkpoint_without_resume_is_one_line_error(self, capsys, tmp_path):
        ck = str(tmp_path / "ck")
        assert run_cli(capsys, *self.LFR, "--checkpoint", ck)[0] == 0
        code, out = run_cli(capsys, *self.LFR, "--checkpoint", ck)
        assert code == 2
        assert "pass --resume" in out and "Traceback" not in out


class TestWindowedDecoding:
    """--decoder union_find_windowed / --window / --commit / --shot-shards."""

    LFR = ["lfr", "--distances", "3", "--rates", "1e-3", "--shots", "100", "--rounds", "6"]

    def test_windowed_lfr_smoke(self, capsys):
        code, out = run_cli(
            capsys, *self.LFR, "--decoder", "union_find_windowed",
            "--window", "4", "--commit", "2",
        )
        assert code == 0
        assert "union_find_windowed" in out

    def test_window_with_whole_block_decoder_rejected(self, capsys):
        # Includes the *default* decoder: --window without --decoder would
        # otherwise be silently ignored by the whole-block union-find.
        code, out = run_cli(capsys, *self.LFR, "--window", "4")
        assert code == 2
        assert "union_find" in out and "union_find_windowed" in out
        assert "Traceback" not in out
        code, out = run_cli(capsys, *self.LFR, "--decoder", "lookup", "--window", "4")
        assert code == 2
        assert "lookup" in out

    def test_commit_without_window_rejected(self, capsys):
        code, out = run_cli(capsys, *self.LFR, "--commit", "2")
        assert code == 2
        assert "--commit requires --window" in out

    def test_commit_not_smaller_than_window_rejected(self, capsys):
        code, out = run_cli(
            capsys, *self.LFR, "--decoder", "union_find_windowed",
            "--window", "4", "--commit", "4",
        )
        assert code == 2
        assert "smaller than --window" in out

    def test_shot_shards_need_somewhere_to_fan_out(self, capsys):
        code, out = run_cli(capsys, *self.LFR, "--shot-shards", "2")
        assert code == 2
        assert "--shot-shards" in out and "--jobs" in out

    def test_shot_shards_require_frame_engine(self, capsys):
        code, out = run_cli(
            capsys, *self.LFR, "--shot-shards", "2", "--jobs", "2",
            "--engine", "tableau",
        )
        assert code == 2
        assert "frame" in out

    def test_shot_sharded_lfr_matches_serial(self, capsys):
        code, serial = run_cli(capsys, *self.LFR)
        code2, sharded = run_cli(capsys, *self.LFR, "--jobs", "2", "--shot-shards", "2")
        assert code == 0 and code2 == 0
        strip = [" ".join(line.split()[:10]) for line in serial.splitlines() if "ZMemory" in line]
        strip2 = [
            " ".join(line.split()[:10]) for line in sharded.splitlines() if "ZMemory" in line
        ]
        assert strip == strip2

    def test_mismatched_checkpoint_is_one_line_error(self, capsys, tmp_path):
        ck = str(tmp_path / "ck")
        assert run_cli(capsys, *self.LFR, "--checkpoint", ck)[0] == 0
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "5e-3", "--shots", "100",
            "--rounds", "2", "--checkpoint", ck, "--resume",
        )
        assert code == 2
        assert "different sweep" in out and "Traceback" not in out

    def test_no_cache_recomputes(self, capsys, tmp_path):
        ck = str(tmp_path / "ck")
        assert run_cli(capsys, *self.LFR, "--checkpoint", ck)[0] == 0
        code, out = run_cli(capsys, *self.LFR, "--checkpoint", ck, "--no-cache")
        assert code == 0
        assert "0 served from cache, 1 computed" in out

    def test_sweep_checkpoint_round_trip(self, capsys, tmp_path):
        ck = str(tmp_path / "ck")
        args = ["sweep", "--op", "Idle", "--distances", "2", "3", "--checkpoint", ck]
        code, first = run_cli(capsys, *args)
        code2, second = run_cli(capsys, *args, "--resume")
        assert code == 0 and code2 == 0
        assert "2 served from cache, 0 computed" in second
        # Resource rows are fully deterministic: cached table == computed table.
        rows = [line for line in first.splitlines() if line.startswith("Idle")]
        assert rows and rows == [line for line in second.splitlines() if line.startswith("Idle")]


class TestHardwareProfiles:
    """The --profile axis and the `tiscc profiles` inspection subcommand."""

    def test_profiles_list_smoke(self, capsys):
        code, out = run_cli(capsys, "profiles", "list")
        assert code == 0
        for name in ("baseline", "slow_junction", "fast_projected"):
            assert name in out
        assert "fingerprint" in out

    def test_profiles_show_smoke(self, capsys):
        code, out = run_cli(capsys, "profiles", "show", "slow_junction")
        assert code == 0
        assert "slow_junction" in out and "junction_us: 525" in out
        assert "near_term" in out

    def test_profiles_show_json_round_trips(self, capsys):
        from repro.hardware.profile import HardwareProfile, get_profile

        code, out = run_cli(capsys, "profiles", "show", "fast_projected", "--json")
        assert code == 0
        assert HardwareProfile.from_dict(json.loads(out)) == get_profile("fast_projected")

    def test_unknown_profile_is_one_line_error(self, capsys):
        for argv in (
            ["compile", "--op", "Idle", "--profile", "nope"],
            ["sweep", "--op", "Idle", "--distances", "3", "--profile", "nope"],
            ["dem", "--distance", "3", "--rate", "1e-3", "--profile", "nope"],
            ["profiles", "show", "nope"],
        ):
            code, out = run_cli(capsys, *argv)
            assert code == 2
            assert "unknown hardware profile" in out
            assert "Traceback" not in out

    def test_sweep_profile_axis_one_run(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--op", "Idle", "--distances", "3",
            "--profile", "baseline", "--profile", "slow_junction",
        )
        assert code == 0
        rows = [line for line in out.splitlines() if line.startswith(("baseline", "slow_junction"))]
        assert len(rows) == 2
        # Same instruction count, different makespan: the calibration moved.
        assert rows[0].split()[-1] == rows[1].split()[-1]
        assert rows[0].split()[4] != rows[1].split()[4]

    def test_default_sweep_has_no_profile_column(self, capsys):
        code, out = run_cli(capsys, "sweep", "--op", "Idle", "--distances", "3")
        assert code == 0
        assert "profile" not in out

    def test_explicit_baseline_matches_default_output(self, capsys):
        base_args = ["sweep", "--op", "Idle", "--distances", "3"]
        _, implicit = run_cli(capsys, *base_args)
        code, explicit = run_cli(capsys, *base_args, "--profile", "baseline")
        assert code == 0
        assert explicit == implicit

    def test_compile_with_profile_path(self, capsys, tmp_path):
        from repro.hardware.profile import get_profile

        path = tmp_path / "custom.json"
        get_profile("fast_projected").renamed("custom").dump(path)
        code, out = run_cli(
            capsys, "compile", "--op", "Idle", "--dx", "3", "--dz", "3",
            "--profile", str(path), "--resources",
        )
        assert code == 0
        assert "profile custom" in out and "custom" in out

    def test_lfr_profile_column_and_preset_resolution(self, capsys):
        code, out = run_cli(
            capsys, "lfr", "--distances", "3", "--noise", "near_term",
            "--shots", "100", "--profile", "fast_projected",
        )
        assert code == 0
        assert "fast_projected" in out
        assert "profile" in out
