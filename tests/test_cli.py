"""CLI behaviour: input validation messages and happy-path smoke runs.

Validation failures must come back as one-line messages with exit code 2 —
never tracebacks — because the paper positions the executable as the
primary interface (App. B).
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestValidation:
    @pytest.mark.parametrize("cmd", ["lfr", "dem"])
    def test_even_distance_rejected(self, capsys, cmd):
        args = ["--distances", "4"] if cmd == "lfr" else ["--distance", "4"]
        code, out = run_cli(capsys, cmd, *args)
        assert code == 2
        assert "odd" in out and "4" in out
        assert "Traceback" not in out

    @pytest.mark.parametrize("cmd", ["lfr", "dem"])
    def test_too_small_distance_rejected(self, capsys, cmd):
        args = ["--distances", "1"] if cmd == "lfr" else ["--distance", "1"]
        code, out = run_cli(capsys, cmd, *args)
        assert code == 2
        assert "at least 3" in out

    def test_negative_rate_rejected_lfr(self, capsys):
        code, out = run_cli(capsys, "lfr", "--distances", "3", "--rates", "-0.001")
        assert code == 2
        assert "non-negative" in out and "-0.001" in out

    def test_rate_above_one_rejected_lfr(self, capsys):
        code, out = run_cli(capsys, "lfr", "--distances", "3", "--rates", "1.5")
        assert code == 2
        assert "[0, 1]" in out

    def test_negative_rate_rejected_dem(self, capsys):
        code, out = run_cli(capsys, "dem", "--distance", "3", "--rate", "-0.5")
        assert code == 2
        assert "non-negative" in out
        assert "--rate " in out  # names dem's actual flag, not lfr's --rates

    def test_negative_scale_rejected_lfr(self, capsys):
        code, out = run_cli(
            capsys, "lfr", "--distances", "3", "--noise", "near_term", "--scales", "-1"
        )
        assert code == 2
        assert "scales" in out

    def test_bad_rounds_rejected_dem(self, capsys):
        code, out = run_cli(capsys, "dem", "--distance", "3", "--rounds", "0")
        assert code == 2
        assert "rounds" in out

    @pytest.mark.parametrize("cmd", ["lfr", "dem"])
    def test_unknown_preset_is_one_line_error(self, capsys, cmd):
        args = (
            ["lfr", "--distances", "3", "--noise", "nope", "--shots", "10"]
            if cmd == "lfr"
            else ["dem", "--distance", "3", "--noise", "nope"]
        )
        code, out = run_cli(capsys, *args)
        assert code == 2
        assert "unknown noise preset" in out
        assert "Traceback" not in out


class TestHappyPaths:
    def test_dem_summary(self, capsys):
        code, out = run_cli(
            capsys, "dem", "--distance", "3", "--rounds", "2", "--rate", "1e-3"
        )
        assert code == 0
        assert "detector error model" in out
        assert "mechanisms:" in out
        assert "sites by kind:" in out

    def test_dem_json_artifact(self, capsys, tmp_path):
        path = tmp_path / "dem.json"
        code, out = run_cli(
            capsys,
            "dem", "--distance", "3", "--rounds", "1", "--rate", "2e-3",
            "--json", str(path),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["n_mechanisms"] == len(payload["mechanisms"])
        assert all(0 < m["probability"] < 1 for m in payload["mechanisms"])

    def test_lfr_frame_engine_smoke(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "1e-3",
            "--shots", "100", "--rounds", "2",
        )
        assert code == 0
        assert "frame engine" in out
        assert "decoded logical error rates" in out

    def test_lfr_tableau_engine_smoke(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "1e-3",
            "--shots", "50", "--rounds", "1", "--engine", "tableau",
        )
        assert code == 0
        assert "tableau engine" in out

    def test_lfr_decoder_selection(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "3", "--rates", "1e-3",
            "--shots", "50", "--rounds", "2", "--decoder", "union_find_unweighted",
        )
        assert code == 0
        assert "union_find_unweighted" in out

    def test_lfr_unknown_decoder_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "lfr", "--distances", "3", "--rates", "1e-3", "--decoder", "mwpm",
            )

    def test_lfr_lookup_decoder_too_large_is_one_line(self, capsys):
        code, out = run_cli(
            capsys,
            "lfr", "--distances", "5", "--rates", "1e-3",
            "--shots", "10", "--decoder", "lookup",
        )
        assert code == 2
        assert "lookup" in out and "limit" in out
        assert "Traceback" not in out

    def test_dem_decoder_graph_summary(self, capsys):
        code, out = run_cli(
            capsys,
            "dem", "--distance", "3", "--rounds", "2", "--rate", "1e-3",
            "--decoder", "lookup",
        )
        assert code == 0
        assert "decoding graph (lookup):" in out
        assert "weights" in out
