"""Property suite for matching-graph construction (schedule- and DEM-built).

Three structural invariants every decodable memory graph must satisfy:

* **boundary reachability** — every detector has a path to the open
  boundary (otherwise a lone defect there could never be matched);
* **frame-potential consistency** — the frame bits of non-boundary edges
  admit a potential ``phi`` with ``phi[u] ^ phi[v] == frame(u, v)``, i.e.
  every interior cycle carries even frame parity.  This is exactly the
  statement that frame parity along *any* boundary-to-boundary path is
  consistent: the parity of a path entering at boundary edge ``e1`` and
  leaving at ``e2`` is ``frame(e1) ^ phi(u1) ^ phi(u2) ^ frame(e2)``
  regardless of the route taken in between;
* **DEM/schedule agreement** — for ideal-structure noise the DEM-built
  graph has the same node count as the schedule-built one and agrees with
  it on the frame bit of every shared edge pair.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decode import BOUNDARY, MemoryExperiment, build_memory_graph
from repro.sim.noise import NoiseModel


def boundary_reachable(graph) -> set[int]:
    """Detector nodes with a path to the boundary node."""
    adj: dict[int, list[int]] = {}
    seeds = []
    for e in graph.edges:
        if e.u == BOUNDARY or e.v == BOUNDARY:
            seeds.append(e.v if e.u == BOUNDARY else e.u)
        else:
            adj.setdefault(e.u, []).append(e.v)
            adj.setdefault(e.v, []).append(e.u)
    seen = set(seeds)
    queue = list(seen)
    while queue:
        cur = queue.pop()
        for other in adj.get(cur, ()):
            if other not in seen:
                seen.add(other)
                queue.append(other)
    return seen


def frame_potential(graph) -> dict[int, int] | None:
    """A potential consistent with all interior frame bits, or None.

    BFS a spanning forest over non-boundary edges assigning
    ``phi[v] = phi[u] ^ frame``; any non-tree edge whose frame disagrees
    with ``phi[u] ^ phi[v]`` (an odd-frame interior cycle) refutes
    consistency.
    """
    adj: dict[int, list[tuple[int, int]]] = {}
    interior = []
    for e in graph.edges:
        if e.u == BOUNDARY or e.v == BOUNDARY:
            continue
        interior.append(e)
        adj.setdefault(e.u, []).append((e.v, e.frame))
        adj.setdefault(e.v, []).append((e.u, e.frame))
    phi: dict[int, int] = {}
    for start in range(graph.n_detectors):
        if start in phi or start not in adj:
            continue
        phi[start] = 0
        queue = [start]
        while queue:
            cur = queue.pop()
            for other, frame in adj[cur]:
                if other not in phi:
                    phi[other] = phi[cur] ^ frame
                    queue.append(other)
    for e in interior:
        if phi[e.u] ^ phi[e.v] != e.frame:
            return None
    phi.update({n: 0 for n in range(graph.n_detectors) if n not in phi})
    return phi


def chain_supports(n_faces: int) -> list[set[int]]:
    """A chain of faces: face ``i`` checks sites ``{2i, 2i+1, 2i+2}``.

    Consecutive faces share exactly one site (``2i+2``), every site is
    checked by at most two faces — the generic surface-code sector shape
    without face-adjacency cycles.
    """
    return [{2 * i, 2 * i + 1, 2 * i + 2} for i in range(n_faces)]


@given(
    n_faces=st.integers(1, 5),
    rounds=st.integers(1, 3),
    logical_seed=st.integers(0, 2**16),
    with_layers=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_generated_graphs_satisfy_invariants(
    n_faces, rounds, logical_seed, with_layers
):
    supports = chain_supports(n_faces)
    sites = sorted(set().union(*supports))
    # An arbitrary logical support: any subset keeps the invariants because
    # frame bits are site-derived and chain graphs have no face cycles.
    logical = {s for s in sites if (logical_seed >> s) & 1}
    visit_layers = None
    if with_layers:
        # Shared site 2i+2 gets different layers in faces i and i+1.
        visit_layers = [
            {s: 1 + (s + i) % 4 for s in supports[i]} for i in range(n_faces)
        ]
    graph = build_memory_graph(supports, logical, rounds, visit_layers=visit_layers)
    assert boundary_reachable(graph) == set(range(graph.n_detectors))
    assert frame_potential(graph) is not None


@lru_cache(maxsize=None)
def _memory(basis: str, distance: int = 3) -> MemoryExperiment:
    return MemoryExperiment(distance=distance, basis=basis)


@pytest.mark.parametrize("basis", ["Z", "X"])
def test_schedule_graph_invariants(basis):
    graph = _memory(basis).graph
    assert boundary_reachable(graph) == set(range(graph.n_detectors))
    phi = frame_potential(graph)
    assert phi is not None
    # The logical crosses the patch: both boundary frame classes occur, so
    # boundary-to-boundary paths across the patch flip the logical exactly
    # when their endpoint classes differ.
    classes = {
        e.frame ^ phi[e.v if e.u == BOUNDARY else e.u]
        for e in graph.edges
        if BOUNDARY in (e.u, e.v)
    }
    assert classes == {0, 1}


@pytest.mark.parametrize("basis", ["Z", "X"])
@pytest.mark.parametrize("noise_name", ["uniform", "near_term"])
def test_dem_graph_invariants_and_schedule_agreement(basis, noise_name):
    exp = _memory(basis)
    if noise_name == "uniform":
        noise = NoiseModel.uniform(1e-3)
    else:
        noise = NoiseModel.preset("near_term")
    dem_graph = exp.matching_graph(noise)
    assert dem_graph is not exp.graph
    assert boundary_reachable(dem_graph) == set(range(dem_graph.n_detectors))
    assert frame_potential(dem_graph) is not None
    # Agreement with the legacy schedule-built cross-check.
    assert dem_graph.n_detectors == exp.graph.n_detectors
    dem_frames = {frozenset((e.u, e.v)): e.frame for e in dem_graph.edges}
    sched_frames = {frozenset((e.u, e.v)): e.frame for e in exp.graph.edges}
    shared = set(dem_frames) & set(sched_frames)
    assert shared, "graphs share no edges at all"
    for pair in shared:
        assert dem_frames[pair] == sched_frames[pair], pair
