"""Cross-engine single-fault equivalence: DEM predictions vs Pauli injection.

The adversarial core of the fast-path test suite.  For *every* fault site
the detector error model enumerates, the same physical Pauli (or classical
readout flip) is injected into the packed-tableau engine at the same
instruction position, and the resulting detector bit vector and logical
flip must equal the DEM mechanism's footprint and observable mask exactly
— detectors and logical parities are noiseless-deterministic, so this
comparison is exact, not statistical, and independent of measurement
randomness.

All injections for one experiment run as a single batched replay (one
batch lane per fault site plus one fault-free control lane), which keeps
the exhaustive d=3 sweep fast enough for tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decode.memory import MemoryExperiment
from repro.sim.batch import PauliInjection
from repro.sim.noise import NoiseModel, NoiseParams


def run_injected(exp, dem, pairs):
    """One batched replay with fault ``pairs`` = [(mechanism id, site)].

    Returns ``(syndromes, flips)`` where row ``k`` is the detector vector /
    logical flip produced by injecting pair ``k`` alone; the final row is
    the fault-free control lane.
    """
    quantum = [(m, s) for m, s in pairs if s.kind != "readout"]
    readout = [(m, s) for m, s in pairs if s.kind == "readout"]
    n_shots = len(pairs) + 1
    injections = [
        PauliInjection(index=site.index, when=site.when, ops=site.pauli, shot=k)
        for k, (_, site) in enumerate(quantum)
    ]
    batch = exp.compiler.simulate_shots(
        exp.compiled,
        n_shots,
        seed=0,
        independent_streams=False,
        injections=injections,
    )
    for k, (_, site) in enumerate(readout):
        batch.outcomes[site.label][len(quantum) + k] ^= 1
    return exp.syndromes(batch), exp.measured_flips(batch), quantum + readout


def assert_all_sites_match(exp, noise):
    dem = exp.detector_error_model(noise, keep_sources=True)
    assert dem.n_mechanisms > 0
    pairs = [(m, site) for m, sources in enumerate(dem.sources) for site in sources]
    syndromes, flips, ordered = run_injected(exp, dem, pairs)
    assert not syndromes[-1].any() and not flips[-1], "control lane must be clean"
    for k, (m, site) in enumerate(ordered):
        expected = np.zeros(exp.n_detectors, dtype=np.uint8)
        expected[list(dem.detectors[m])] = 1
        assert np.array_equal(syndromes[k], expected), (site, dem.detectors[m])
        assert flips[k] == (int(dem.observables[m]) & 1), (site, dem.observables[m])


class TestExhaustiveSingleFault:
    def test_every_mechanism_matches_injection_z_memory(self):
        """Exhaustive: all ~1300 visible fault sites of a d=3 Z memory."""
        assert_all_sites_match(MemoryExperiment(distance=3), NoiseModel.uniform(2e-3))

    def test_every_mechanism_matches_injection_x_memory(self):
        """The transversal dual decodes the other sector — run it too."""
        assert_all_sites_match(
            MemoryExperiment(distance=3, basis="X"), NoiseModel.uniform(2e-3)
        )

    def test_every_mechanism_matches_injection_asymmetric_patch(self):
        """dx != dz exercises unequal sector sizes and boundary structure."""
        assert_all_sites_match(
            MemoryExperiment(dx=3, dz=5, rounds=2), NoiseModel.uniform(2e-3)
        )

    def test_near_term_sites_match_injection_sampled(self):
        """near_term adds t2 idle/dephase sites; check a deterministic sample.

        Dephasing sites are Z-type and thus invisible to the Z memory, so
        the X-basis experiment (where they fire detectors) is the
        interesting one.  A fixed subset of a few hundred sites keeps this
        in tier-1; the exhaustive uniform sweeps above cover every other
        channel kind.
        """
        exp = MemoryExperiment(distance=3, basis="X")
        dem = exp.detector_error_model(NoiseModel.preset("near_term"), keep_sources=True)
        pairs = [(m, site) for m, sources in enumerate(dem.sources) for site in sources]
        assert any(s.kind in ("idle", "dephase") for _, s in pairs)
        rng = np.random.default_rng(7)
        picks = rng.choice(len(pairs), size=min(300, len(pairs)), replace=False)
        chosen = [pairs[i] for i in picks]
        syndromes, flips, ordered = run_injected(exp, dem, chosen)
        for k, (m, site) in enumerate(ordered):
            expected = np.zeros(exp.n_detectors, dtype=np.uint8)
            expected[list(dem.detectors[m])] = 1
            assert np.array_equal(syndromes[k], expected), (site, dem.detectors[m])
            assert flips[k] == (int(dem.observables[m]) & 1), (site, dem.observables[m])

    def test_single_channel_models_match_injection(self):
        """Each channel kind alone must also match (catches cross-terms)."""
        exp = MemoryExperiment(distance=3)
        for params in (
            NoiseParams(p_prep=1e-3),
            NoiseParams(p_meas=1e-3),
            NoiseParams(p1=1e-3),
            NoiseParams(p2=1e-3),
            NoiseParams(t2_us=1e4),
        ):
            assert_all_sites_match(exp, NoiseModel(params))


@pytest.mark.slow
class TestExhaustiveSingleFaultSlow:
    def test_every_mechanism_matches_injection_d5(self):
        """The full d=5 sweep (~10k sites) runs nightly."""
        assert_all_sites_match(MemoryExperiment(distance=5), NoiseModel.uniform(2e-3))

    def test_every_near_term_site_matches_injection_d3(self):
        """Exhaustive near_term (idle + dephase included), both bases."""
        for basis in ("Z", "X"):
            assert_all_sites_match(
                MemoryExperiment(distance=3, basis=basis), NoiseModel.preset("near_term")
            )
