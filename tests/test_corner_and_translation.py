"""Corner movement / Flip Patch (Fig 3) and Move Right / Swap Left (Fig 4)."""

import pytest

from repro.code.arrangements import Arrangement
from repro.code.corner import (
    DeformationError,
    DeformationSession,
    add_boundary_stabilizer,
    flip_patch,
)
from repro.code.translation import move_right, move_right_swap_left, swap_left
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.hardware.validity import check_circuit
from repro.code.logical_qubit import LogicalQubit
from tests.conftest import corrected, fresh_patch, simulate


class TestAddBoundaryStabilizer:
    def test_single_corner_movement(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        session = DeformationSession(lq)
        n_before = len(lq.stabilizers)
        add_boundary_stabilizer(session, c, -1, 0, "X")
        assert len(lq.stabilizers) == n_before  # one removed, one added
        lq_stab_keys = {frozenset(s.ops.items()) for s in lq.stabilizers}
        new = lq.layout.build_boundary_plaquette(-1, 0, "X").stabilizer()
        assert frozenset(new.ops.items()) in lq_stab_keys
        # The old top face anticommuted and is gone.
        old = lq.layout.build_boundary_plaquette(-1, 1, "Z").stabilizer()
        assert frozenset(old.ops.items()) not in lq_stab_keys
        # Logical Z was repaired: still commutes with everything.
        for s in lq.stabilizers:
            assert s.commutes_with(lq.logical_z.pauli)

    def test_deformation_log_records(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        session = DeformationSession(lq)
        add_boundary_stabilizer(session, c, -1, 0, "X")
        kinds = {entry[0] for entry in lq.deformation_log}
        assert any("repair" in k or "reduce" in k for k in kinds)

    def test_state_preserved_through_single_movement(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        session = DeformationSession(lq)
        add_boundary_stabilizer(session, c, -1, 0, "X")
        res = simulate(grid, c, occ0, seed=3)
        assert corrected(res, lq.logical_z) == 1


class TestFlipPatch:
    @pytest.mark.parametrize("start,end", [
        (Arrangement.STANDARD, Arrangement.FLIPPED),
        (Arrangement.ROTATED, Arrangement.ROTATED_FLIPPED),
    ])
    @pytest.mark.parametrize("basis,attr", [("Z", "logical_z"), ("X", "logical_x")])
    def test_identity_process_d3(self, start, end, basis, attr):
        grid, _, lq, c, occ0 = fresh_patch(3, 3, start)
        lq.prepare(c, basis=basis, rounds=1)
        flip_patch(lq, c)
        assert lq.arrangement == end
        lq.validate()
        lq.idle(c, rounds=1)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=5)
        assert corrected(res, getattr(lq, attr)) == 1

    @pytest.mark.parametrize("dx,dz", [(5, 3), (3, 5)])
    def test_mixed_odd_distances(self, dx, dz):
        grid, _, lq, c, occ0 = fresh_patch(dx, dz)
        lq.prepare(c, basis="Z", rounds=1)
        flip_patch(lq, c)
        lq.validate()
        res = simulate(grid, c, occ0, seed=6)
        assert corrected(res, lq.logical_z) == 1

    def test_default_edge_support_fully_moves(self):
        """§4.3: after the flip neither default logical overlaps its old self."""
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        z_before = set(lq.logical_z.pauli.support)
        x_before = set(lq.logical_x.pauli.support)
        flip_patch(lq, c)
        # The logicals now run in swapped directions; their representatives
        # moved off at least part of the old default edges.
        assert lq.logical_z.pauli.support != z_before
        assert lq.logical_x.pauli.support != x_before

    def test_requires_standard_or_rotated(self):
        grid, _, lq, c, _ = fresh_patch(3, 3, Arrangement.FLIPPED)
        lq.initialized = True
        with pytest.raises(ValueError):
            flip_patch(lq, c)

    def test_requires_initialized(self):
        grid, _, lq, c, _ = fresh_patch(3, 3)
        with pytest.raises(ValueError):
            flip_patch(lq, c)

    @pytest.mark.parametrize("dx,dz", [(2, 2), (2, 3)])
    def test_even_distance_raises_cleanly(self, dx, dz):
        """Even-distance flips require a corner protocol the paper does not
        specify; we fail with a diagnostic rather than corrupt the state.
        See EXPERIMENTS.md."""
        grid, _, lq, c, occ0 = fresh_patch(dx, dz)
        lq.prepare(c, basis="Z", rounds=1)
        with pytest.raises(DeformationError):
            flip_patch(lq, c)


class TestMoveRightSwapLeft:
    @pytest.mark.parametrize("basis,attr", [("Z", "logical_z"), ("X", "logical_x")])
    def test_fig4_standard_to_rotated_flipped(self, basis, attr):
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        occ0 = grid.occupancy()
        c = HardwareCircuit()
        lq.prepare(c, basis=basis, rounds=1)
        final, _recs = move_right_swap_left(c, lq, rounds=1)
        assert final.arrangement is Arrangement.ROTATED_FLIPPED
        final.validate()
        final.idle(c, rounds=1)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=21)
        assert corrected(res, getattr(final, attr)) == 1

    def test_fig4_rotated_to_flipped(self):
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        lq = LogicalQubit(
            grid, model, 3, 3, (0, 0), arrangement=Arrangement.ROTATED, name="A"
        )
        occ0 = grid.occupancy()
        c = HardwareCircuit()
        lq.prepare(c, basis="Z", rounds=1)
        final, _ = move_right_swap_left(c, lq, rounds=1)
        assert final.arrangement is Arrangement.FLIPPED
        res = simulate(grid, c, occ0, seed=22)
        assert corrected(res, final.logical_z) == 1

    def test_patch_ends_on_original_tile(self):
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        c = HardwareCircuit()
        lq.prepare(c, basis="Z", rounds=1)
        final, _ = move_right_swap_left(c, lq, rounds=1)
        assert final.layout.origin == (0, 0)

    def test_move_right_borrows_next_tile_column(self):
        """fn 10: the shifted patch's right corridor is in the next tile."""
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        c = HardwareCircuit()
        lq.prepare(c, basis="Z", rounds=1)
        shifted, _ = move_right(c, lq, rounds=1)
        right_homes = [
            p.home for p in shifted.plaquettes if p.face[1] == shifted.dx - 1
        ]
        cols = {grid.coords(h)[1] for h in right_homes}
        assert max(cols) >= 4 * 4  # beyond the first tile's 4 unit columns

    def test_swap_left_needs_room(self):
        grid = GridManager(4, 4)
        model = HardwareModel(grid)
        lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        c = HardwareCircuit()
        lq.prepare(c, basis="Z", rounds=1)
        with pytest.raises(ValueError):
            swap_left(c, lq)

    def test_swap_left_is_movement_only(self):
        """Swap Left adds no gates — ion movement alone (§2.5)."""
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        lq = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        c = HardwareCircuit()
        lq.prepare(c, basis="Z", rounds=1)
        shifted, _ = move_right(c, lq, rounds=1)
        n_before = len(c)
        swap_left(c, shifted)
        added = [i for i in c.instructions[n_before:]]
        assert all(i.name in ("Move", "Load") for i in added)
