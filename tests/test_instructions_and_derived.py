"""Table 1 and Table 3 instruction sets on logical tiles."""

import pytest

from repro.code.arrangements import Arrangement
from repro.core.derived import TABLE3, DerivedInstructions
from repro.core.instructions import TABLE1
from repro.core.tiles import TileGrid
from repro.hardware.circuit import HardwareCircuit
from repro.sim.interpreter import CircuitInterpreter


def setup(rows=1, cols=2, d=2):
    tg = TileGrid(rows, cols, d, d)
    ops = DerivedInstructions(tg, rounds=1)
    circuit = HardwareCircuit()
    occ0 = tg.occupancy_snapshot()
    return tg, ops, circuit, occ0


def run(tg, circuit, occ0, seed=0):
    return CircuitInterpreter(tg.grid, seed=seed).run(circuit, occ0)


class TestTable1Bookkeeping:
    """Instruction -> (tiles, logical time-steps) per Table 1."""

    def test_table1_rows(self):
        assert TABLE1["PrepareZ"] == (1, 1)
        assert TABLE1["InjectT"] == (1, 0)
        assert TABLE1["MeasureZ"] == (1, 0)
        assert TABLE1["PauliY"] == (1, 0)
        assert TABLE1["Hadamard"] == (1, 0)
        assert TABLE1["Idle"] == (1, 1)
        assert TABLE1["MeasureZZ"] == (2, 1)

    def test_timestep_accounting(self):
        tg, ops, c, occ0 = setup()
        ops.prepare_z(c, (0, 0))
        ops.idle(c, (0, 0))
        ops.pauli(c, (0, 0), "X")
        assert tg[(0, 0)].timesteps_used == 2

    def test_table3_rows(self):
        assert TABLE3["BellPrepare"] == ("2/2", 1)
        assert TABLE3["PatchContraction"] == ("2/1", 0)
        assert TABLE3["PatchExtension"] == ("1/2", 1)


class TestOneTileInstructions:
    def test_prepare_then_measure_z(self):
        tg, ops, c, occ0 = setup()
        ops.prepare_z(c, (0, 0))
        m = ops.measure(c, (0, 0), "Z")
        res = run(tg, c, occ0, seed=1)
        assert m.value(res) == 1
        assert not tg[(0, 0)].initialized

    def test_prepare_x_pauli_z_measure_x(self):
        tg, ops, c, occ0 = setup()
        ops.prepare_x(c, (0, 0))
        ops.pauli(c, (0, 0), "Z")
        m = ops.measure(c, (0, 0), "X")
        res = run(tg, c, occ0, seed=2)
        assert m.value(res) == -1

    def test_hadamard_instruction(self):
        tg, ops, c, occ0 = setup()
        ops.prepare_z(c, (0, 0))
        ops.hadamard(c, (0, 0))
        assert tg[(0, 0)].patch.arrangement is Arrangement.ROTATED
        m = ops.measure(c, (0, 0), "X")
        res = run(tg, c, occ0, seed=3)
        assert m.value(res) == 1

    def test_inject_y(self):
        tg, ops, c, occ0 = setup()
        ops.inject(c, (0, 0), "Y")
        assert tg[(0, 0)].initialized

    def test_prepare_on_initialized_rejected(self):
        tg, ops, c, occ0 = setup()
        ops.prepare_z(c, (0, 0))
        with pytest.raises(ValueError):
            ops.prepare_z(c, (0, 0))

    def test_measure_uninitialized_rejected(self):
        tg, ops, c, occ0 = setup()
        with pytest.raises(ValueError):
            ops.measure(c, (0, 0), "Z")


class TestTwoTileInstructions:
    @pytest.mark.parametrize("seed", range(4))
    def test_measure_zz(self, seed):
        tg, ops, c, occ0 = setup(1, 2)
        ops.prepare_x(c, (0, 0))
        ops.prepare_x(c, (0, 1))
        joint = ops.measure_zz(c, (0, 0), (0, 1))
        ma = ops.measure(c, (0, 0), "Z")
        mb = ops.measure(c, (0, 1), "Z")
        res = run(tg, c, occ0, seed=seed)
        assert ma.value(res) * mb.value(res) == joint.value(res)

    @pytest.mark.parametrize("seed", range(4))
    def test_measure_xx(self, seed):
        tg, ops, c, occ0 = setup(2, 1)
        ops.prepare_z(c, (0, 0))
        ops.prepare_z(c, (1, 0))
        joint = ops.measure_xx(c, (0, 0), (1, 0))
        ma = ops.measure(c, (0, 0), "X")
        mb = ops.measure(c, (1, 0), "X")
        res = run(tg, c, occ0, seed=seed)
        assert ma.value(res) * mb.value(res) == joint.value(res)

    def test_zz_wrong_orientation_rejected(self):
        tg, ops, c, occ0 = setup(2, 1)
        ops.prepare_z(c, (0, 0))
        ops.prepare_z(c, (1, 0))
        with pytest.raises(ValueError):
            ops.measure_zz(c, (0, 0), (1, 0))

    def test_qnd_repeat_agrees(self):
        """Repeating MeasureZZ yields the same outcome (QND)."""
        tg, ops, c, occ0 = setup(1, 2)
        ops.prepare_x(c, (0, 0))
        ops.prepare_x(c, (0, 1))
        j1 = ops.measure_zz(c, (0, 0), (0, 1))
        j2 = ops.measure_zz(c, (0, 0), (0, 1))
        res = run(tg, c, occ0, seed=9)
        assert j1.value(res) == j2.value(res)


class TestDerived:
    @pytest.mark.parametrize("seed", range(3))
    def test_bell_prepare_horizontal(self, seed):
        tg, ops, c, occ0 = setup(1, 2)
        bp = ops.bell_prepare(c, (0, 0), (0, 1))
        mza = ops.measure(c, (0, 0), "Z")
        mzb = ops.measure(c, (0, 1), "Z")
        res = run(tg, c, occ0, seed=seed)
        # ZZ correlation equals the Bell preparation's joint outcome.
        assert mza.value(res) * mzb.value(res) == bp.value(res)

    @pytest.mark.parametrize("seed", range(3))
    def test_bell_prepare_then_bell_measure(self, seed):
        tg, ops, c, occ0 = setup(1, 2)
        bp = ops.bell_prepare(c, (0, 0), (0, 1))
        bm = ops.bell_measure(c, (0, 0), (0, 1))
        res = run(tg, c, occ0, seed=seed)
        # Measuring the Bell state in the Bell basis reproduces its signs.
        assert bm.value(res) == bp.value(res)
        assert bm.frames[0][1](res) == bp.frames[0][1](res)
        assert not tg[(0, 0)].initialized and not tg[(0, 1)].initialized

    def test_move_preserves_state(self):
        tg, ops, c, occ0 = setup(1, 2)
        ops.prepare_z(c, (0, 0))
        mv = ops.move(c, (0, 0))
        assert mv.tiles == ((0, 0), (0, 1))
        assert not tg[(0, 0)].initialized and tg[(0, 1)].initialized
        m = ops.measure(c, (0, 1), "Z")
        res = run(tg, c, occ0, seed=4)
        assert m.value(res) == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_extend_split_acts_like_prepx_plus_zz(self, seed):
        tg, ops, c, occ0 = setup(1, 2)
        ops.prepare_x(c, (0, 0))
        es = ops.extend_split(c, (0, 0))
        mza = ops.measure(c, (0, 0), "Z")
        mzb = ops.measure(c, (0, 1), "Z")
        res = run(tg, c, occ0, seed=seed)
        assert mza.value(res) * mzb.value(res) == es.value(res)

    @pytest.mark.parametrize("seed", range(3))
    def test_merge_contract(self, seed):
        tg, ops, c, occ0 = setup(1, 2)
        ops.prepare_x(c, (0, 0))
        ops.prepare_x(c, (0, 1))
        mc = ops.merge_contract(c, (0, 0), (0, 1), keep="near")
        assert tg[(0, 0)].initialized and not tg[(0, 1)].initialized
        res = run(tg, c, occ0, seed=seed)
        assert mc.value(res) in (-1, 1)

    def test_extension_contraction_roundtrip(self):
        tg, ops, c, occ0 = setup(1, 2)
        ops.prepare_x(c, (0, 0))
        ext = ops.patch_extension(c, (0, 0))
        ops.patch_contraction(c, ext, keep="near")
        m = ops.measure(c, (0, 0), "X")
        res = run(tg, c, occ0, seed=5)
        assert m.value(res) == 1
