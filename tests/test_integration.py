"""End-to-end integration: multi-instruction programs, text round-trips,
Bell-prep verification with two-qubit correlations (§4.2's Bell check)."""


from repro.core.compiler import TISCC
from repro.sim.interpreter import CircuitInterpreter
from repro.sim.parser import parse_circuit


class TestPrograms:
    def test_teleportation_style_sequence(self):
        """Prepare, entangle, measure: all outcomes internally consistent."""
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([
            ("BellPrepare", (0, 0), (0, 1)),
            ("MeasureZ", (0, 0)),
            ("MeasureZ", (0, 1)),
        ])
        for seed in range(5):
            res = compiler.simulate(compiled, seed=seed)
            bell, mza, mzb = compiled.results
            assert mza.value(res) * mzb.value(res) == bell.value(res)

    def test_x_basis_bell_correlation(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([
            ("BellPrepare", (0, 0), (0, 1)),
            ("MeasureX", (0, 0)),
            ("MeasureX", (0, 1)),
        ])
        for seed in range(5):
            res = compiler.simulate(compiled, seed=seed)
            bell, mxa, mxb = compiled.results
            frame = bell.frames[0][1](res)
            assert mxa.value(res) * mxb.value(res) * frame == 1

    def test_injection_then_measure(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=1, rounds=1)
        compiled = compiler.compile([("InjectY", (0, 0)), ("Idle", (0, 0))])
        res = compiler.simulate(compiled, seed=1)
        lq = compiler.tiles[(0, 0)].patch
        y = lq.logical_y()
        v = res.expectation(y.pauli)
        for lab in y.corrections:
            v *= res.sign(lab)
        assert v == 1

    def test_sequential_instructions_on_one_tile(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=1, rounds=1)
        compiled = compiler.compile([
            ("PrepareZ", (0, 0)),
            ("PauliX", (0, 0)),
            ("Idle", (0, 0)),
            ("MeasureZ", (0, 0)),
        ])
        res = compiler.simulate(compiled, seed=2)
        assert compiled.results[-1].value(res) == -1
        assert compiled.logical_timesteps == 2

    def test_full_text_pipeline(self):
        """Compile -> serialize -> parse -> simulate: same outcomes."""
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([
            ("PrepareX", (0, 0)),
            ("PrepareX", (0, 1)),
            ("MeasureZZ", (0, 0), (0, 1)),
        ])
        text = compiled.to_text()
        parsed = parse_circuit(text, compiler.grid)
        r1 = CircuitInterpreter(compiler.grid, seed=7).run(
            compiled.circuit, compiled.initial_occupancy
        )
        r2 = CircuitInterpreter(compiler.grid, seed=7).run(
            parsed, compiled.initial_occupancy
        )
        assert r1.outcomes == r2.outcomes

    def test_every_compiled_circuit_passes_validity(self):
        compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([
            ("PrepareZ", (0, 0)),
            ("Hadamard", (0, 0)),
            ("Idle", (0, 0)),
            ("MeasureX", (0, 0)),
        ])
        assert compiled.validity is not None
        assert compiled.validity.n_instructions == len(compiled.circuit)


class TestSerializedPrimitiveComposition:
    """§5: combinations of verified primitives on non-overlapping patches."""

    def test_two_patches_in_parallel(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([
            ("PrepareZ", (0, 0)),
            ("PrepareX", (0, 1)),
            ("PauliX", (0, 0)),
            ("PauliZ", (0, 1)),
            ("MeasureZ", (0, 0)),
            ("MeasureX", (0, 1)),
        ])
        res = compiler.simulate(compiled, seed=3)
        assert compiled.results[-2].value(res) == -1
        assert compiled.results[-1].value(res) == -1

    def test_tile_reuse_after_measurement(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=1, rounds=1)
        compiled = compiler.compile([
            ("PrepareZ", (0, 0)),
            ("MeasureZ", (0, 0)),
            ("PrepareX", (0, 0)),
            ("MeasureX", (0, 0)),
        ])
        res = compiler.simulate(compiled, seed=4)
        assert compiled.results[1].value(res) == 1
        assert compiled.results[3].value(res) == 1
