"""Columnar HardwareCircuit vs a list-of-Instruction reference model.

The container was refactored from a list of :class:`Instruction` objects to
a structure-of-arrays; these tests pin the public API to the old semantics:
append/iterate/serialize behave identically, sorting follows the exact
``(t, Load-first, sites, name)`` key with append-order stability, and the
bulk :meth:`HardwareCircuit.replay_block` primitive is equivalent to
re-appending the block by hand.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.circuit import CircuitColumns, HardwareCircuit, Instruction


class ReferenceCircuit:
    """The pre-refactor container semantics, kept as the test oracle."""

    def __init__(self):
        self.instructions: list[Instruction] = []

    def append(self, name, sites, t, duration, label=None):
        self.instructions.append(
            Instruction(name, tuple(int(s) for s in sites), float(t), float(duration), label)
        )

    def sorted_instructions(self):
        return sorted(
            self.instructions,
            key=lambda i: (i.t, 0 if i.name == "Load" else 1, i.sites, i.name),
        )

    def to_text(self, header=None):
        lines = [f"# {header}"] if header else []
        lines += [inst.to_text() for inst in self.sorted_instructions()]
        return "\n".join(lines) + "\n"


_NAMES = ["Prepare_Z", "Measure_Z", "X_pi/2", "Y_pi/4", "Z_-pi/4", "ZZ", "Move", "Load"]

_instruction = st.tuples(
    st.sampled_from(_NAMES),
    st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=2),
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False, width=32),
    st.sampled_from([0.0, 3.0, 5.25, 10.0, 120.0, 210.0, 2000.0]),
)


def _build_pair(steps):
    circuit, reference = HardwareCircuit(), ReferenceCircuit()
    for name, sites, t, dur in steps:
        label = circuit.new_measure_label() if name == "Measure_Z" else None
        circuit.append(name, sites, t, dur, label)
        reference.append(name, sites, t, dur, label)
    return circuit, reference


class TestColumnarRoundTrip:
    @given(st.lists(_instruction, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_sorted_instructions_and_text_match_reference(self, steps):
        circuit, reference = _build_pair(steps)
        expected = reference.sorted_instructions()
        assert circuit.sorted_instructions() == expected
        assert circuit.to_text(header="h") == reference.to_text(header="h")
        # Append-order view and the scalar accessors agree with the oracle.
        assert circuit.instructions == reference.instructions
        assert len(circuit) == len(reference.instructions)

    @given(st.lists(_instruction, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_reductions_match_reference(self, steps):
        circuit, reference = _build_pair(steps)
        instrs = reference.instructions
        hist = {}
        for i in instrs:
            hist[i.name] = hist.get(i.name, 0) + 1
        assert circuit.gate_histogram() == dict(sorted(hist.items()))
        for name in _NAMES:
            assert circuit.count(name) == hist.get(name, 0)
        assert circuit.used_sites() == {s for i in instrs for s in i.sites}
        assert circuit.makespan == (max((i.t_end for i in instrs), default=0.0))
        assert circuit.t_start == (min((i.t for i in instrs), default=0.0))
        assert [m.label for m in circuit.measurements()] == [
            i.label for i in reference.sorted_instructions() if i.label is not None
        ]

    def test_full_sort_ties_keep_append_order(self):
        """Rows identical in every sort field stay in append order (stable)."""
        c = HardwareCircuit()
        c.append("Measure_Z", (3,), 1.0, 120.0, label="m0")
        c.append("Measure_Z", (3,), 1.0, 120.0, label="m1")
        assert [i.label for i in c.sorted_instructions()] == ["m0", "m1"]

    def test_iteration_is_time_ordered(self):
        c = HardwareCircuit()
        c.append("X_pi/2", (1,), 50.0, 10.0)
        c.append("Load", (1,), 50.0, 0.0)
        c.append("Prepare_Z", (2,), 0.0, 10.0)
        assert [i.name for i in c] == ["Prepare_Z", "Load", "X_pi/2"]

    def test_high_arity_rows_survive(self):
        """Arity > 2 is outside the compiler's output but must round-trip."""
        c = HardwareCircuit()
        c.append("Prepare_Z", (1,), 5.0, 10.0)
        c.append("Weird", (3, 2, 1), 0.0, 1.0)
        assert c.instructions[1].sites == (3, 2, 1)
        assert c.sorted_instructions()[0].sites == (3, 2, 1)
        assert c.used_sites() == {1, 2, 3}
        assert "Weird 3 2 1 @0.000" in c.to_text()


class TestColumnsView:
    def test_columns_expose_arrays(self):
        c = HardwareCircuit()
        c.append("ZZ", (4, 5), 10.0, 2000.0)
        c.append("Measure_Z", (4,), 2010.0, 120.0, label="m0")
        cols = c.columns()
        assert isinstance(cols, CircuitColumns)
        assert cols.n == 2
        assert cols.site0.tolist() == [4, 4]
        assert cols.site1.tolist() == [5, -1]
        assert cols.nsites.tolist() == [2, 1]
        assert cols.names == ["ZZ", "Measure_Z"]
        assert cols.sites == [(4, 5), (4,)]
        assert cols.labels == {1: "m0"}
        assert cols.instruction(0) == Instruction("ZZ", (4, 5), 10.0, 2000.0)

    def test_sorted_columns_relabel_positions(self):
        c = HardwareCircuit()
        c.append("Measure_Z", (1,), 100.0, 120.0, label="late")
        c.append("Measure_Z", (2,), 0.0, 120.0, label="early")
        cols = c.sorted_columns()
        assert cols.labels == {0: "early", 1: "late"}

    def test_extend_merges_labels_and_counters(self):
        a, b = HardwareCircuit(), HardwareCircuit()
        a.append("Prepare_Z", (1,), 0.0, 10.0)
        b.append("Measure_Z", (1,), 20.0, 120.0, label=b.new_measure_label())
        b.new_measure_label()
        a.extend(b)
        assert len(a) == 2
        assert a.measurements()[0].label == "m0"
        assert a.new_measure_label() == "m2"


class TestReplayBlock:
    def _manual_copy(self, circuit, instrs, copies, dt):
        maps = []
        for k in range(1, copies + 1):
            relabel = {}
            for inst in instrs:
                label = None
                if inst.label is not None:
                    label = circuit.new_measure_label()
                    relabel[inst.label] = label
                circuit.append(inst.name, inst.sites, inst.t + k * dt, inst.duration, label)
            maps.append(relabel)
        return maps

    def test_matches_manual_reappend(self):
        base = [
            ("Prepare_Z", (1,), 0.0, 10.0, None),
            ("ZZ", (1, 2), 10.0, 2000.0, None),
            ("Measure_Z", (1,), 2010.0, 120.0, "m0"),
            ("Measure_Z", (2,), 2010.0, 120.0, "m1"),
        ]
        fast, slow = HardwareCircuit(), HardwareCircuit()
        for name, sites, t, dur, label in base:
            for c in (fast, slow):
                c.append(
                    name, sites, t, dur, c.new_measure_label() if label else None
                )
        template = slow.instructions
        maps_fast = fast.replay_block(0, 4, copies=3, dt=2130.0)
        maps_slow = self._manual_copy(slow, template, copies=3, dt=2130.0)
        assert maps_fast == maps_slow
        assert fast.to_text() == slow.to_text()
        assert fast.instructions == slow.instructions

    def test_override_reanchors_rows(self):
        c = HardwareCircuit()
        c.append("Z_pi/2", (1,), 7.0, 3.0)
        c.append("Y_pi/4", (1,), 10.0, 10.0)
        c.append("ZZ", (1, 2), 100.0, 2000.0)
        import numpy as np

        c.replay_block(
            0, 3, copies=2, dt=1000.0,
            override=(np.array([0, 1]), np.array([3.0, 6.0])),
        )
        ts = [i.t for i in c.instructions]
        # Copy 1: overridden rows at base times, ZZ shifted by dt.
        assert ts[3:6] == [3.0, 6.0, 1100.0]
        # Copy 2: overridden rows advance by dt once more.
        assert ts[6:9] == [1003.0, 1006.0, 2100.0]

    def test_rejects_bad_ranges(self):
        c = HardwareCircuit()
        c.append("Prepare_Z", (1,), 0.0, 10.0)
        import pytest

        with pytest.raises(ValueError):
            c.replay_block(0, 2, 1, 10.0)
        assert c.replay_block(0, 1, 0, 10.0) == []
        assert c.replay_block(1, 1, 2, 10.0) == [{}, {}]
