"""Stabilizer tableau vs exact dense simulation, and measurement semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.code.pauli import PauliString
from repro.sim.dense import DenseSimulator
from repro.sim.gates import CLIFFORD_GATES, apply_to_tableau
from repro.sim.tableau import StabilizerTableau

GATES_1Q = sorted(g for g in CLIFFORD_GATES if g != "ZZ")


def random_circuit(n, depth, seed):
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.3:
            a, b = rng.choice(n, 2, replace=False)
            ops.append(("ZZ", (int(a), int(b))))
        else:
            ops.append((GATES_1Q[rng.integers(len(GATES_1Q))], (int(rng.integers(n)),)))
    return ops


class TestAgainstDense:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clifford_expectations(self, seed):
        n = 4
        tab, den = StabilizerTableau(n), DenseSimulator(n)
        for name, qubits in random_circuit(n, 50, seed):
            apply_to_tableau(tab, name, qubits)
            den.apply(name, qubits)
        rng = np.random.default_rng(seed + 1000)
        for _ in range(60):
            ops = {q: "IXYZ"[rng.integers(4)] for q in range(n)}
            ops = {q: p for q, p in ops.items() if p != "I"}
            if not ops:
                continue
            p = PauliString(ops)
            assert tab.expectation(p) == pytest.approx(den.expectation(p), abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_forced_measurement_trajectories_agree(self, seed):
        n = 3
        tab, den = StabilizerTableau(n), DenseSimulator(n)
        rng = np.random.default_rng(seed)
        for k, (name, qubits) in enumerate(random_circuit(n, 30, seed + 7)):
            apply_to_tableau(tab, name, qubits)
            den.apply(name, qubits)
            if k % 7 == 3:
                q = int(rng.integers(n))
                md, det_d = den.measure(q, rng)
                mt, det_t = tab.measure(q, forced=md)
                assert mt == md
                assert det_t == det_d

    def test_hermiticity_required(self):
        tab = StabilizerTableau(2)
        with pytest.raises(ValueError):
            tab.expectation(PauliString({0: "X"}, phase=1))


class TestMeasurement:
    def test_fresh_state_deterministic_zero(self):
        tab = StabilizerTableau(3)
        for q in range(3):
            outcome, deterministic = tab.measure(q)
            assert outcome == 0 and deterministic

    def test_plus_state_random_then_pinned(self):
        tab = StabilizerTableau(1)
        tab.h(0)
        outcome, deterministic = tab.measure(0, np.random.default_rng(3))
        assert not deterministic
        again, det2 = tab.measure(0)
        assert det2 and again == outcome

    def test_bell_correlations(self):
        for seed in range(6):
            tab = StabilizerTableau(2)
            tab.h(0)
            tab.cnot(0, 1)
            assert tab.expectation(PauliString({0: "X", 1: "X"})) == 1
            assert tab.expectation(PauliString({0: "Z", 1: "Z"})) == 1
            assert tab.expectation(PauliString({0: "Z"})) == 0
            m0, _ = tab.measure(0, np.random.default_rng(seed))
            m1, det = tab.measure(1)
            assert det and m0 == m1

    def test_forced_contradiction_raises(self):
        tab = StabilizerTableau(1)
        with pytest.raises(ValueError):
            tab.measure(0, forced=1)

    def test_forced_contradiction_after_entangling(self):
        """Deterministic branch with a multi-row destabilizer product.

        Regression for the vectorized scratch-row accumulation: after a Bell
        measurement pins qubit 1, its outcome is the phase of a *product* of
        stabilizer rows, and forcing the opposite value must raise while
        forcing the correct value must succeed.
        """
        for seed in range(5):
            tab = StabilizerTableau(2)
            tab.h(0)
            tab.cnot(0, 1)
            first, det0 = tab.measure(0, np.random.default_rng(seed))
            assert not det0
            probe = tab.copy()
            with pytest.raises(ValueError, match="contradicts deterministic"):
                probe.measure(1, forced=1 - first)
            outcome, det = tab.measure(1, forced=first)
            assert det and outcome == first

    def test_deterministic_product_phase_vectorized(self):
        """The prefix-XOR product matches step-by-step accumulation."""
        rng = np.random.default_rng(7)
        for seed in range(20):
            tab = StabilizerTableau(5)
            for name, qubits in random_circuit(5, 40, seed + 300):
                apply_to_tableau(tab, name, qubits)
            q = int(rng.integers(5))
            tab.measure(q, rng)  # pin q so remeasuring is deterministic
            expected, det = tab.copy().measure(q)
            assert det
            rows = tab.n + np.nonzero(tab.x[: tab.n, q])[0]
            xs, zs, rs = tab._product_of_rows(rows)
            assert rs == expected
            # the product is the Z_q stabilizer the outcome is read from
            ref_x = np.zeros(tab.n, dtype=np.uint8)
            ref_z = np.zeros(tab.n, dtype=np.uint8)
            ref_z[q] = 1
            assert np.array_equal(xs, ref_x) and np.array_equal(zs, ref_z)

    def test_reset(self):
        tab = StabilizerTableau(1)
        tab.h(0)
        tab.reset(0, np.random.default_rng(0))
        assert tab.expectation(PauliString({0: "Z"})) == 1


class TestGenerators:
    def test_initial_generators(self):
        tab = StabilizerTableau(2)
        gens = tab.stabilizer_generators()
        assert PauliString({0: "Z"}) in gens
        assert PauliString({1: "Z"}) in gens

    def test_generators_after_bell(self):
        tab = StabilizerTableau(2)
        tab.h(0)
        tab.cnot(0, 1)
        gens = tab.stabilizer_generators()
        assert PauliString({0: "X", 1: "X"}) in gens
        assert PauliString({0: "Z", 1: "Z"}) in gens

    def test_row_pauli_phases(self):
        tab = StabilizerTableau(1)
        tab.h(0)
        tab.s(0)  # |0> -> S|+> = |+i>, stabilizer +Y
        assert tab.stabilizer_generators() == [PauliString({0: "Y"})]

    def test_zz_gate_matches_its_definition(self):
        # ZZ = (S x S) CZ up to phase: check conjugation of X_0.
        tab = StabilizerTableau(2)
        tab.h(0)  # stabilizers: X0, Z1
        tab.zz(0, 1)
        gens = tab.stabilizer_generators()
        assert PauliString({0: "Y", 1: "Z"}) in gens  # X0 -> Y0 Z1


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_copy_is_independent(seed):
    tab = StabilizerTableau(3)
    for name, qubits in random_circuit(3, 20, seed):
        apply_to_tableau(tab, name, qubits)
    clone = tab.copy()
    clone.h(0)
    assert not (
        np.array_equal(clone.x, tab.x)
        and np.array_equal(clone.z, tab.z)
        and np.array_equal(clone.r, tab.r)
    )
