"""Detector-error-model extraction: structure, determinism, and properties.

The DEM is the foundation of the fast sampling path, and a silently wrong
DEM produces plausible-looking but false logical error rates — so beyond
the cross-engine injection tests (test_dem_equivalence.py) this suite
locks down the structural invariants: extraction is deterministic for a
fixed circuit + noise pair, a zero-rate model yields an empty DEM,
readout-only noise produces exactly the time-edge mechanisms the matching
graph predicts, and probabilities/footprints are well-formed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decode.memory import MemoryExperiment
from repro.sim.dem import (
    DemExtractionError,
    dem_structure_key,
    extract_dem,
    extract_fault_table,
)
from repro.sim.noise import NoiseModel, NoiseParams


@pytest.fixture(scope="module")
def exp3():
    return MemoryExperiment(distance=3)


@pytest.fixture(scope="module")
def exp3x():
    return MemoryExperiment(distance=3, basis="X")


def fresh_dem(exp, noise, keep_sources=False):
    """Extract without MemoryExperiment's fault-table cache."""
    return extract_dem(
        exp.compiled.circuit,
        exp.compiled.initial_occupancy,
        noise,
        exp.detector_labels,
        [exp.observable_labels],
        keep_sources=keep_sources,
    )


class TestStructure:
    def test_zero_noise_yields_empty_dem(self, exp3):
        dem = exp3.detector_error_model(NoiseModel.preset("ideal"))
        assert dem.n_mechanisms == 0
        assert dem.n_detectors == exp3.n_detectors
        assert np.all(dem.detection_rates() == 0.0)
        assert np.all(dem.observable_rates() == 0.0)

    def test_scaled_to_zero_yields_empty_dem(self, exp3):
        # The satellite property in its sharpest form: scaling any model to
        # zero must kill every mechanism, not just shrink probabilities.
        dem = fresh_dem(exp3, NoiseModel.preset("near_term").scaled(0))
        assert dem.n_mechanisms == 0

    def test_mechanisms_are_well_formed(self, exp3):
        dem = exp3.detector_error_model(NoiseModel.uniform(2e-3))
        assert dem.n_mechanisms > 0
        assert np.all(dem.probs > 0) and np.all(dem.probs < 0.5)
        for dets, obs in zip(dem.detectors, dem.observables):
            assert list(dets) == sorted(set(dets))
            assert all(0 <= d < dem.n_detectors for d in dets)
            assert int(obs) < (1 << dem.n_observables)
            assert dets or int(obs)  # invisible mechanisms are dropped

    def test_readout_only_noise_gives_time_edges(self, exp3):
        """p_meas alone: each face-ancilla readout flips two stacked slices.

        A readout flip of face f's round-t outcome fires detectors
        (f, t) and (f, t+1) — the matching graph's time edges — and never
        the logical observable; final transversal data readouts behave like
        space edges in the last slice (at most two faces, observable flip
        only on the logical support).
        """
        dem = fresh_dem(
            exp3, NoiseModel(NoiseParams(p_meas=1e-3)), keep_sources=True
        )
        n_faces = len(exp3.faces)
        time_pairs = {
            (t * n_faces + f, (t + 1) * n_faces + f)
            for t in range(exp3.rounds)
            for f in range(n_faces)
        }
        seen_pairs = set()
        for dets, obs, sources in zip(dem.detectors, dem.observables, dem.sources):
            assert all(site.kind == "readout" for site in sources)
            assert 1 <= len(dets) <= 2
            if dets in time_pairs:
                seen_pairs.add(dets)
                assert int(obs) == 0
                assert dem.probs[list(dem.detectors).index(dets)] == pytest.approx(1e-3)
            else:
                # Final-data readouts live in the last time slice.
                assert all(d >= exp3.rounds * n_faces for d in dets)
        assert seen_pairs == time_pairs

    def test_dephasing_only_mechanisms(self, exp3, exp3x):
        """Pure-dephasing DEMs are syndrome-type in both bases.

        Data-qubit Z faults commute through the ZZ entanglers and cannot
        fire Z-sector detectors — but *ancilla* dephasing between the
        measure ion's Y_pi/4 basis rotations becomes an X component at
        readout, so dephasing-only noise still produces (injection-
        verified) syndrome-error mechanisms in both memory bases.
        """
        dephase_only = NoiseModel(NoiseParams(t2_us=1e4))
        dem_z = fresh_dem(exp3, dephase_only, keep_sources=True)
        dem_x = fresh_dem(exp3x, dephase_only)
        assert dem_z.n_mechanisms > 0
        assert dem_x.n_mechanisms > 0
        assert {s.kind for srcs in dem_z.sources for s in srcs} <= {"idle", "dephase"}
        # Footprints never depend on the rate values, only the structure.
        assert fresh_dem(exp3, NoiseModel(NoiseParams(t2_us=37.0))).detectors == (
            dem_z.detectors
        )

    def test_structure_key_reuses_fault_table(self, exp3):
        table_a = exp3.fault_table(NoiseModel.uniform(1e-3))
        table_b = exp3.fault_table(NoiseModel.uniform(5e-3))
        assert table_a is table_b  # same structure -> one extraction
        key_nt = dem_structure_key(NoiseModel.preset("near_term").params)
        key_uni = dem_structure_key(NoiseModel.uniform(1e-3).params)
        assert key_nt != key_uni  # t2 changes the site structure

    def test_non_clifford_schedule_raises(self):
        from repro.core.compiler import TISCC

        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=1, rounds=1)
        compiled = compiler.compile([("InjectT", (0, 0))], operation="InjectT")
        with pytest.raises(DemExtractionError, match="non-Clifford"):
            extract_fault_table(
                compiled.circuit,
                compiled.initial_occupancy,
                NoiseModel.uniform(1e-3).params,
                [],
                [],
            )

    def test_to_dict_round_trips_mechanisms(self, exp3):
        dem = exp3.detector_error_model(NoiseModel.uniform(1e-3))
        d = dem.to_dict()
        assert d["n_mechanisms"] == dem.n_mechanisms
        assert len(d["mechanisms"]) == dem.n_mechanisms
        assert d["mechanisms"][0]["detectors"] == list(dem.detectors[0])


class TestProperties:
    @given(p=st.floats(min_value=1e-6, max_value=0.05))
    @settings(max_examples=10, deadline=None)
    def test_extraction_is_deterministic(self, exp3, p):
        """Two independent extractions of the same circuit+noise agree exactly."""
        model = NoiseModel.uniform(p)
        a = fresh_dem(exp3, model)
        b = fresh_dem(exp3, model)
        assert a.detectors == b.detectors
        assert np.array_equal(a.observables, b.observables)
        assert np.array_equal(a.probs, b.probs)

    @given(p=st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=8, deadline=None)
    def test_any_model_scaled_to_zero_is_empty(self, exp3, p):
        assert fresh_dem(exp3, NoiseModel.uniform(p).scaled(0)).n_mechanisms == 0

    @given(seed=st.integers(0, 2**31), shots=st.integers(1, 64))
    @settings(max_examples=10, deadline=None)
    def test_zero_noise_frames_decode_trivially(self, exp3, seed, shots):
        """Frame-sampled syndromes at zero noise are empty and decode to 0."""
        samples = exp3.sample_frame(shots, noise=NoiseModel.preset("ideal"), seed=seed)
        assert not samples.detectors.any()
        assert not samples.observables.any()
        assert not exp3.decoder.decode_batch(samples.detectors).any()

    @given(p=st.floats(min_value=1e-5, max_value=0.02))
    @settings(max_examples=8, deadline=None)
    def test_rate_sweeps_share_footprints(self, exp3, p):
        """Only probabilities change with the rate knob, never footprints."""
        base = exp3.detector_error_model(NoiseModel.uniform(1e-3))
        swept = exp3.detector_error_model(NoiseModel.uniform(p))
        assert swept.detectors == base.detectors
        assert np.array_equal(swept.observables, base.observables)
