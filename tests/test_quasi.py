"""Quasi-probability Monte Carlo over Clifford channels (§4.1)."""

import math

import numpy as np
import pytest

from repro.sim.dense import DenseSimulator
from repro.sim.gates import rotation_unitary, unitary_for
from repro.sim.quasi import QuasiCliffordSampler, channel_decomposition, estimate_expectation


class TestDecomposition:
    def test_coefficients_sum_to_one(self):
        for theta in (math.pi / 8, -math.pi / 8, 0.3, -0.7):
            coeffs = [c for _, c in channel_decomposition(theta)]
            assert sum(coeffs) == pytest.approx(1.0)

    def test_t_gate_negativity_is_sqrt2(self):
        gamma = sum(abs(c) for _, c in channel_decomposition(math.pi / 8))
        assert gamma == pytest.approx(math.sqrt(2))

    def test_s_angle_is_exactly_the_s_channel(self):
        decomp = dict(channel_decomposition(math.pi / 4))
        assert decomp[None] == pytest.approx(0.0, abs=1e-12)
        assert decomp["Z_pi/2"] == pytest.approx(0.0, abs=1e-12)
        assert decomp["Z_pi/4"] == pytest.approx(1.0)

    def test_negative_angle_uses_s_dagger(self):
        gates = [g for g, _ in channel_decomposition(-math.pi / 8)]
        assert "Z_-pi/4" in gates

    @pytest.mark.parametrize("theta", [math.pi / 8, -math.pi / 8, 0.2])
    def test_channel_exact_on_density_matrices(self, theta):
        """sum_k c_k C_k rho C_k^dag == T rho T^dag for random rho."""
        rng = np.random.default_rng(5)
        t = rotation_unitary("Z", theta)
        for _ in range(5):
            v = rng.normal(size=2) + 1j * rng.normal(size=2)
            v /= np.linalg.norm(v)
            rho = np.outer(v, v.conj())
            expected = t @ rho @ t.conj().T
            total = np.zeros((2, 2), dtype=complex)
            for gate, c in channel_decomposition(theta):
                u = np.eye(2) if gate is None else unitary_for(gate)
                total += c * (u @ rho @ u.conj().T)
            assert np.allclose(total, expected, atol=1e-12)


class TestSampler:
    def test_sample_weights(self):
        sampler = QuasiCliffordSampler()
        rng = np.random.default_rng(0)
        gamma = sampler.negativity("Z_pi/8")
        for _ in range(50):
            gate, w = sampler.sample("Z_pi/8", rng)
            assert abs(w) == pytest.approx(gamma)
            assert gate in (None, "Z_pi/2", "Z_pi/4")

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            QuasiCliffordSampler().sample("X_pi/8", np.random.default_rng(0))

    def test_unbiased_t_expectation(self):
        """Monte Carlo <X> after T|+> converges to 1/sqrt(2)."""
        sampler = QuasiCliffordSampler()
        rng = np.random.default_rng(42)

        def shot(_k):
            sim = DenseSimulator(1)
            sim.apply("Y_pi/4", (0,))  # |+>
            gate, w = sampler.sample("Z_pi/8", rng)
            if gate is not None:
                sim.apply(gate, (0,))
            from repro.code.pauli import PauliString

            return sim.expectation(PauliString({0: "X"})), w

        mean, err = estimate_expectation(shot, 4000)
        assert mean == pytest.approx(1 / math.sqrt(2), abs=5 * err)
        assert err < 0.05

    def test_estimate_needs_two_shots(self):
        with pytest.raises(ValueError):
            estimate_expectation(lambda k: (1.0, 1.0), 1)
