"""Circuit interpreter (ORQCS hardware model) and ion relocation."""

import pytest

from repro.code.pauli import PauliString
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, MOVE_US
from repro.hardware.model import HardwareModel
from repro.hardware.relocation import RelocationError, relocate_ion
from repro.sim.interpreter import CircuitInterpreter
from tests.conftest import fresh_patch, simulate


class TestInterpreter:
    def test_movement_tracking(self):
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        c = HardwareCircuit()
        s1, s2 = grid.index(0, 1), grid.index(0, 2)
        ion = grid.add_ion(s1)
        occ0 = {s1: ion}
        model.prepare_x(c, ion)
        grid.schedule_move(c, ion, s2)
        _, label = model.measure_x(c, ion)
        res = CircuitInterpreter(grid, seed=0).run(c, occ0)
        assert res.occupancy == {s2: ion}
        assert res.outcomes[label] == 0  # |+> measured in X

    def test_gate_on_empty_site_rejected(self):
        grid = GridManager(2, 2)
        c = HardwareCircuit()
        c.append("Prepare_Z", (grid.index(0, 1),), 0.0, 10.0)
        with pytest.raises(ValueError):
            CircuitInterpreter(grid).run(c, {})

    def test_move_into_occupied_rejected(self):
        grid = GridManager(2, 2)
        c = HardwareCircuit()
        s1, s2 = grid.index(0, 1), grid.index(0, 2)
        c.append("Move", (s1, s2), 0.0, MOVE_US)
        with pytest.raises(ValueError):
            CircuitInterpreter(grid).run(c, {s1: 0, s2: 1})

    def test_load_extends_tableau(self):
        grid = GridManager(2, 2)
        c = HardwareCircuit()
        s1, s2 = grid.index(0, 1), grid.index(4, 1)
        c.append("Load", (s2,), 0.0, 0.0)
        c.append("Prepare_Z", (s2,), 0.0, 10.0)
        res = CircuitInterpreter(grid, seed=0).run(c, {s1: 0})
        assert res.expectation(PauliString({s2: "Z"})) == 1

    def test_forced_outcomes(self):
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        c = HardwareCircuit()
        s1 = grid.index(0, 1)
        ion = grid.add_ion(s1)
        model.prepare_x(c, ion)
        _, label = model.measure_z(c, ion)
        res = CircuitInterpreter(grid, seed=0).run(c, {s1: ion}, forced_outcomes={label: 1})
        assert res.outcomes[label] == 1

    def test_continuation_from_previous_run(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        res1 = simulate(grid, c, occ0, seed=1)
        c2 = HardwareCircuit()
        lq.apply_pauli(c2, "X")
        interp = CircuitInterpreter(grid, seed=2)
        res2 = interp.run(c2, {}, initial_state=res1)
        assert res2.expectation(lq.logical_z.pauli) == -1

    def test_expectation_by_site(self):
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        c = HardwareCircuit()
        s1 = grid.index(0, 1)
        ion = grid.add_ion(s1)
        model.prepare_y(c, ion)
        res = CircuitInterpreter(grid, seed=0).run(c, {s1: ion})
        assert res.expectation(PauliString({s1: "Y"})) == 1

    def test_sign_helper(self):
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        c = HardwareCircuit()
        s1 = grid.index(0, 1)
        ion = grid.add_ion(s1)
        model.prepare_z(c, ion)
        model.pauli_x(c, ion)
        _, label = model.measure_z(c, ion)
        res = CircuitInterpreter(grid, seed=0).run(c, {s1: ion})
        assert res.outcomes[label] == 1 and res.sign(label) == -1


class TestRelocation:
    def test_simple_relocation(self):
        grid = GridManager(2, 2)
        c = HardwareCircuit()
        ion = grid.add_ion(grid.index(0, 1), "m0")
        relocate_ion(grid, c, ion, grid.index(4, 1))
        assert grid.site_of(ion) == grid.index(4, 1)

    def test_step_aside_and_return(self):
        grid = GridManager(2, 2)
        c = HardwareCircuit()
        traveler = grid.add_ion(grid.index(0, 1), "m:t")
        blocker_site = grid.index(0, 3)
        blocker = grid.add_ion(blocker_site, "m:b")
        relocate_ion(grid, c, traveler, grid.index(0, 5))
        assert grid.site_of(traveler) == grid.index(0, 5)
        assert grid.site_of(blocker) == blocker_site  # stepped aside and back

    def test_occupied_destination_rejected(self):
        grid = GridManager(2, 2)
        c = HardwareCircuit()
        a = grid.add_ion(grid.index(0, 1))
        grid.add_ion(grid.index(0, 2))
        with pytest.raises(RelocationError):
            relocate_ion(grid, c, a, grid.index(0, 2))

    def test_relocation_emits_valid_moves(self):
        from repro.hardware.validity import check_circuit

        grid = GridManager(2, 2)
        c = HardwareCircuit()
        traveler = grid.add_ion(grid.index(0, 1), "m:t")
        grid.add_ion(grid.index(0, 3), "m:b")
        occ0 = grid.occupancy()
        relocate_ion(grid, c, traveler, grid.index(0, 5))
        check_circuit(grid, c, occ0)

    def test_avoids_data_ions(self):
        """Routes go around data-tagged ions rather than displacing them."""
        grid = GridManager(3, 3)
        c = HardwareCircuit()
        data_site = grid.index(0, 6)  # O site on the top row
        grid.add_ion(data_site, "q:d0,1")
        traveler = grid.add_ion(grid.index(0, 5), "q:m")
        relocate_ion(grid, c, traveler, grid.index(0, 9))
        assert grid.site_of(traveler) == grid.index(0, 9)
        assert grid.ion_at(data_site) is not None
        moved_sites = {s for i in c.instructions if i.name == "Move" for s in i.sites}
        assert data_site not in moved_sites
