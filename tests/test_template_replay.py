"""QEC-round template replay, vectorized validity, and the compile cache.

The syndrome scheduler compiles one round per ``schedule_rounds`` call and
replays the rest as vectorized time-shifted copies (re-anchoring the known
first-round transient).  These tests lock in the contract that the replayed
stream is **instruction-for-instruction identical** to the round-by-round
legacy path — circuits, round records, grid clocks, conflict counters,
validity reports, and resource figures all agree — and that the vectorized
validity checker is exchangeable with the reference replay.
"""

import pytest

from repro.code.stabilizer_circuits import SyndromeScheduler
from repro.core.compiler import TISCC
from repro.core.router import lattice_surgery_cnot_program
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, MOVE_US
from repro.hardware.validity import (
    CircuitValidityError,
    check_circuit,
    check_circuit_reference,
)

MEM_Z = [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))]
MEM_X = [("PrepareX", (0, 0)), ("MeasureX", (0, 0))]

PROGRAMS = [
    ("memZ", MEM_Z, (1, 1), 3),
    ("memX", MEM_X, (1, 1), 3),
    ("memZ5", MEM_Z, (1, 1), 5),
    ("rect", MEM_Z, (1, 1), None),  # dx=3, dz=5 rectangular patch
    ("idle", [("PrepareZ", (0, 0)), ("Idle", (0, 0)), ("MeasureZ", (0, 0))], (1, 1), 3),
    ("cnot", lattice_surgery_cnot_program(), (2, 2), 3),
    ("bell", [("BellPrepare", (0, 0), (0, 1)), ("BellMeasure", (0, 0), (0, 1))], (1, 2), 3),
    ("extend", [("PrepareZ", (0, 0)), ("ExtendSplit", (0, 0))], (1, 2), 3),
    ("move", [("PrepareZ", (0, 0)), ("Move", (0, 0)), ("MeasureZ", (0, 1))], (1, 2), 3),
    ("inject", [("InjectY", (0, 0)), ("MeasureZ", (0, 0))], (1, 1), 3),
]


def _compile(program, shape, d, replay: bool):
    old = SyndromeScheduler.template_replay
    SyndromeScheduler.template_replay = replay
    try:
        if d is None:
            compiler = TISCC(dx=3, dz=5, tile_rows=shape[0], tile_cols=shape[1])
        else:
            compiler = TISCC(dx=d, dz=d, tile_rows=shape[0], tile_cols=shape[1])
        return compiler, compiler.compile(program, operation="op")
    finally:
        SyndromeScheduler.template_replay = old


class TestTemplateReplayEquivalence:
    @pytest.mark.parametrize("name,program,shape,d", PROGRAMS, ids=[p[0] for p in PROGRAMS])
    def test_replay_is_byte_identical_to_legacy(self, name, program, shape, d):
        ca, a = _compile(program, shape, d, replay=True)
        cb, b = _compile(program, shape, d, replay=False)
        # Instruction-for-instruction identity of the compiled streams.
        assert a.circuit.sorted_instructions() == b.circuit.sorted_instructions()
        assert a.circuit.to_text() == b.circuit.to_text()
        # Grid bookkeeping advanced exactly as if every round were compiled.
        assert ca.grid._ion_ready == cb.grid._ion_ready
        assert ca.grid.occupancy() == cb.grid.occupancy()
        assert ca.grid.junction_conflicts == cb.grid.junction_conflicts
        assert ca.grid.site_delays == cb.grid.site_delays
        # Downstream reports agree.
        assert a.validity == b.validity
        assert a.resources == b.resources

    def test_round_records_match_legacy(self):
        ca, _ = _compile(MEM_Z, (1, 1), 5, replay=True)
        cb, _ = _compile(MEM_Z, (1, 1), 5, replay=False)
        ra = ca.tiles[(0, 0)].patch.round_records
        rb = cb.tiles[(0, 0)].patch.round_records
        assert len(ra) == len(rb) == 5
        for rec_a, rec_b in zip(ra, rb):
            assert rec_a.outcome_labels == rec_b.outcome_labels
            assert rec_a.t_start == rec_b.t_start
            assert rec_a.t_end == rec_b.t_end
            assert rec_a.junction_conflicts == rec_b.junction_conflicts

    def test_single_round_never_replays(self):
        compiler = TISCC(dx=3, dz=3, rounds=1)
        compiled = compiler.compile(MEM_Z, operation="m")
        assert compiled.validity is not None  # compiles and validates fine

    def test_simulation_agrees_after_replay(self):
        """The replayed circuit is not just textually right — it runs."""
        ca, a = _compile(MEM_Z, (1, 1), 3, replay=True)
        cb, b = _compile(MEM_Z, (1, 1), 3, replay=False)
        res_a = ca.simulate(a, seed=7)
        res_b = cb.simulate(b, seed=7)
        assert res_a.outcomes == res_b.outcomes


class TestVectorizedValidity:
    @pytest.mark.parametrize("name,program,shape,d", PROGRAMS[:6], ids=[p[0] for p in PROGRAMS[:6]])
    def test_fast_checker_matches_reference(self, name, program, shape, d):
        compiler, compiled = _compile(program, shape, d, replay=True)
        fast = check_circuit(compiler.grid, compiled.circuit, compiled.initial_occupancy)
        ref = check_circuit_reference(
            compiler.grid, compiled.circuit, compiled.initial_occupancy
        )
        assert fast == ref

    def _valid_base(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        s1, s2 = g.index(0, 1), g.index(0, 2)
        c.append("Prepare_Z", (s1,), 0.0, 10.0)
        c.append("Move", (s1, s2), 10.0, MOVE_US)
        c.append("Measure_Z", (s2,), 20.0, 120.0, label="m0")
        return g, c, {s1: 0}

    def test_mutations_raise_identically(self):
        """Every corruption trips both checkers with the same message."""
        mutations = [
            lambda c, g: c.append("X_pi/2", (g.index(0, 1),), 5.0, 10.0),  # busy ion
            lambda c, g: c.append(
                "X_pi/2",
                (next(s for s in g.zone_sites() if s not in (g.index(0, 1), g.index(0, 2))),),
                0.0,
                10.0,
            ),  # empty site
            lambda c, g: c.append("Move", (g.index(0, 1), g.index(0, 2)), 0.0, 99.0),
            lambda c, g: c.append("ZZ", (g.index(0, 1), g.index(0, 3)), 200.0, 2000.0),
            lambda c, g: c.append("Load", (g.index(0, 2),), 21.0, 0.0),  # occupied
            lambda c, g: c.append("Move", (g.index(0, 3), g.index(0, 5)), 300.0, 210.0),
            lambda c, g: c.append("ZZ", (g.index(0, 2),), 300.0, 2000.0),  # arity
        ]
        for mutate in mutations:
            g, c, occ = self._valid_base()
            mutate(c, g)
            with pytest.raises(CircuitValidityError) as fast_err:
                check_circuit(g, c, occ)
            g2, c2, occ2 = self._valid_base()
            mutate(c2, g2)
            with pytest.raises(CircuitValidityError) as ref_err:
                check_circuit_reference(g2, c2, occ2)
            assert str(fast_err.value) == str(ref_err.value)

    def test_valid_base_passes_both(self):
        g, c, occ = self._valid_base()
        assert check_circuit(g, c, occ) == check_circuit_reference(g, c, occ)


class TestMemoryCompileCache:
    def setup_method(self):
        from repro.decode.memory import MemoryExperiment

        MemoryExperiment.clear_compile_cache()

    teardown_method = setup_method

    def test_same_key_shares_compiled_core(self):
        from repro.decode.memory import MemoryExperiment

        a = MemoryExperiment(distance=3)
        b = MemoryExperiment(distance=3)
        assert a.compiled is b.compiled
        assert a.graph is b.graph

    def test_default_rounds_key_is_normalized(self):
        from repro.decode.memory import MemoryExperiment

        a = MemoryExperiment(distance=3, rounds=None)
        b = MemoryExperiment(distance=3, rounds=3)  # dt = max(dx, dz) = 3
        assert a.compiled is b.compiled

    def test_distinct_keys_do_not_share(self):
        from repro.decode.memory import MemoryExperiment

        a = MemoryExperiment(distance=3)
        for other in (
            MemoryExperiment(distance=3, basis="X"),
            MemoryExperiment(distance=3, rounds=2),
            MemoryExperiment(dx=3, dz=5),
        ):
            assert other.compiled is not a.compiled

    def test_decoder_choice_is_per_instance_but_shares_core(self):
        from repro.decode.memory import MemoryExperiment

        a = MemoryExperiment(distance=3, decoder="union_find")
        b = MemoryExperiment(distance=3, decoder="lookup")
        assert a.compiled is b.compiled
        assert a.decoder.name == "union_find"
        assert b.decoder.name == "lookup"

    def test_clear_cache_forces_recompile(self):
        from repro.decode.memory import MemoryExperiment

        a = MemoryExperiment(distance=3)
        MemoryExperiment.clear_compile_cache()
        b = MemoryExperiment(distance=3)
        assert a.compiled is not b.compiled
        # Both still decode identically.
        ra = a.run(50, seed=3)
        rb = b.run(50, seed=3)
        assert ra.failures == rb.failures
