"""Sanity checks for the equivalence-test statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.stats import (
    chi2_sf,
    detector_marginal_chi2,
    intervals_overlap,
    two_proportion_chi2,
    wilson_interval,
)


class TestWilson:
    def test_brackets_the_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_zero_successes_interval_is_not_degenerate(self):
        lo, hi = wilson_interval(0, 1000)
        assert lo == 0.0 and 0.0 < hi < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_overlap(self):
        assert intervals_overlap((0.1, 0.3), (0.25, 0.5))
        assert not intervals_overlap((0.1, 0.2), (0.21, 0.5))


class TestChiSquare:
    def test_sf_known_values(self):
        # Wilson-Hilferty vs textbook chi-square quantiles.
        assert chi2_sf(3.841, 1) == pytest.approx(0.05, abs=0.01)
        assert chi2_sf(18.307, 10) == pytest.approx(0.05, abs=0.005)
        assert chi2_sf(0.0, 5) == 1.0
        assert chi2_sf(200.0, 5) < 1e-10

    def test_identical_samples_score_zero(self):
        assert two_proportion_chi2(10, 100, 10, 100) == pytest.approx(0.0, abs=1e-12)
        counts = np.array([3, 7, 0, 12])
        stat, dof, p = detector_marginal_chi2(counts, 100, counts, 100)
        assert stat == pytest.approx(0.0, abs=1e-12)
        # Wilson-Hilferty is loose in the far left tail; we only ever test
        # the rejection (right) tail, so "indistinguishable" means p ~ 1.
        assert p > 0.99
        assert dof == 3  # the never-firing detector carries no information

    def test_disjoint_samples_score_high(self):
        stat, dof, p = detector_marginal_chi2(
            np.array([50, 60]), 100, np.array([5, 6]), 100
        )
        assert dof == 2
        assert stat > 50
        assert p < 1e-6

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            detector_marginal_chi2(np.array([1, 2]), 10, np.array([1]), 10)
