"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.sim.interpreter import CircuitInterpreter


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running randomized fuzz suites "
        '(deselect with -m "not slow" for a quick pass)',
    )


def fresh_patch(dx=3, dz=3, arrangement=Arrangement.STANDARD, margin=(2, 2)):
    """Grid + model + LogicalQubit + occupancy snapshot + empty circuit."""
    grid = GridManager(dz + margin[0], dx + margin[1])
    model = HardwareModel(grid)
    lq = LogicalQubit(grid, model, dx=dx, dz=dz, arrangement=arrangement)
    occ0 = grid.occupancy()
    circuit = HardwareCircuit()
    return grid, model, lq, circuit, occ0


def simulate(grid, circuit, occ0, seed=0):
    return CircuitInterpreter(grid, seed=seed).run(circuit, occ0)


def corrected(result, tracked):
    """Expectation of a TrackedOperator with its ledger applied."""
    v = result.expectation(tracked.pauli)
    for label in tracked.corrections:
        v *= result.sign(label)
    return v


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
