"""FrameSampler: reproducibility, chunk invariance, and statistical parity.

Two layers of lock-down for the fast sampling path:

* Seed plumbing — per-shot ``SeedSequence.spawn`` streams make sampling
  bit-reproducible and invariant under batch chunking, for the sampler
  itself, for ``MemoryExperiment.run(engine="frame", max_batch=...)``, and
  for ``logical_error_sweep`` (the regression the satellite task names).
* Distribution — frame samples must be statistically indistinguishable
  from the packed-tableau engine: summed per-detector chi-square on firing
  marginals, agreement with the DEM's analytic marginals, and decoded /
  raw logical error rates within overlapping Wilson intervals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decode.memory import MemoryExperiment
from repro.estimator.sweep import logical_error_sweep
from repro.sim.frame import FrameSampler
from repro.sim.noise import NoiseModel
from repro.util.stats import (
    detector_marginal_chi2,
    intervals_overlap,
    wilson_interval,
)


@pytest.fixture(scope="module")
def exp3():
    return MemoryExperiment(distance=3)


class TestSeedPlumbing:
    def test_same_seed_reproduces(self, exp3):
        model = NoiseModel.uniform(3e-3)
        a = exp3.sample_frame(64, noise=model, seed=5)
        b = exp3.sample_frame(64, noise=model, seed=5)
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)
        c = exp3.sample_frame(64, noise=model, seed=6)
        assert not np.array_equal(a.detectors, c.detectors)

    def test_chunking_is_invisible(self, exp3):
        """Any split into (offset, size) chunks equals the one-shot batch."""
        model = NoiseModel.uniform(5e-3)
        sampler = FrameSampler(exp3.detector_error_model(model))
        full = sampler.sample(100, seed=11)
        for splits in ([(0, 37), (37, 63)], [(0, 1), (1, 50), (51, 49)]):
            parts = [sampler.sample(n, seed=11, shot_offset=off) for off, n in splits]
            dets = np.concatenate([p.detectors for p in parts], axis=0)
            obs = np.concatenate([p.observables for p in parts], axis=0)
            assert np.array_equal(full.detectors, dets)
            assert np.array_equal(full.observables, obs)
        # The internal Bernoulli chunk size must be invisible too.
        small = sampler.sample(100, seed=11, chunk=7)
        assert np.array_equal(full.detectors, small.detectors)

    def test_run_results_independent_of_max_batch(self, exp3):
        model = NoiseModel.uniform(4e-3)
        baseline = exp3.run(500, noise=model, seed=9, engine="frame")
        for max_batch in (100, 177, 500, 1000):
            rep = exp3.run(500, noise=model, seed=9, engine="frame", max_batch=max_batch)
            assert rep.failures == baseline.failures
            assert rep.raw_failures == baseline.raw_failures
            assert rep.mean_defects == pytest.approx(baseline.mean_defects)

    def test_noise_seed_varies_frame_realizations(self, exp3):
        """On the frame path noise_seed selects the streams (seed is fallback).

        All frame randomness is noise randomness, so fixing noise_seed
        pins the realization (like the tableau path's dedicated noise
        stream) and varying it must vary the draws.
        """
        model = NoiseModel.uniform(3e-3)
        a = exp3.run(300, noise=model, seed=0, noise_seed=1, engine="frame")
        b = exp3.run(300, noise=model, seed=99, noise_seed=1, engine="frame")
        c = exp3.run(300, noise=model, seed=0, noise_seed=2, engine="frame")
        assert (a.failures, a.raw_failures) == (b.failures, b.raw_failures)
        assert a.mean_defects != c.mean_defects or a.raw_failures != c.raw_failures

    def test_sweep_reproducible_regardless_of_chunking(self):
        """The satellite regression: fixed seed -> identical sweep, any chunking."""
        kwargs = dict(rates=[2e-3], shots=400, rounds=2, seed=21, engine="frame")
        baseline = logical_error_sweep([3], **kwargs)
        for max_batch in (64, 150, 400):
            swept = logical_error_sweep([3], max_batch=max_batch, **kwargs)
            assert [r.failures for r in swept] == [r.failures for r in baseline]
            assert [r.raw_failures for r in swept] == [r.raw_failures for r in baseline]


class TestEngineBehaviour:
    def test_frame_engine_reports_itself(self, exp3):
        rep = exp3.run(50, noise=NoiseModel.uniform(1e-3), seed=0, engine="frame")
        assert rep.engine == "frame"
        assert rep.to_dict()["engine"] == "frame"
        rep = exp3.run(50, noise=NoiseModel.uniform(1e-3), seed=0)
        assert rep.engine == "tableau"

    def test_unknown_engine_rejected(self, exp3):
        with pytest.raises(ValueError, match="engine"):
            exp3.run(10, engine="statevector")

    def test_non_clifford_falls_back_to_tableau(self):
        """engine='frame' on a T-injection schedule silently uses the tableau."""
        from repro.core.compiler import TISCC
        from repro.decode.memory import MemoryExperiment as ME

        # Compiled cores are shared per (distance, rounds, basis); isolate
        # this experiment so splicing a gate below cannot leak to (or pick
        # up state from) other tests' experiments.
        ME.clear_compile_cache()
        try:
            exp = ME(distance=3, rounds=1)
            # Splice a non-Clifford instruction into the compiled stream so
            # DEM extraction fails while the quasi-Clifford tableau path
            # still runs.
            site = exp.compiled.circuit.sorted_instructions()[0].sites[0]
            exp.compiled.circuit.append("Z_pi/8", (site,), t=0.05, duration=0.1)
            assert isinstance(exp.compiler, TISCC)
            rep = exp.run(20, noise=NoiseModel.uniform(1e-3), seed=1, engine="frame")
            assert rep.engine == "tableau"
            assert rep.n_shots == 20
        finally:
            ME.clear_compile_cache()

    def test_frame_and_tableau_agree_at_zero_noise(self, exp3):
        for noise in (None, NoiseModel.preset("ideal")):
            rep = exp3.run(30, noise=noise, seed=2, engine="frame")
            assert rep.engine == "frame"
            assert rep.failures == 0 and rep.raw_failures == 0
            assert rep.mean_defects == 0.0


def assert_engines_indistinguishable(distance, model, shots, seed):
    """Chi-square detector marginals + Wilson-interval LER/raw agreement."""
    exp = MemoryExperiment(distance=distance)
    batch = exp.sample(shots, noise=model, seed=seed)
    syn_t = exp.syndromes(batch)
    raw_t = exp.measured_flips(batch)
    frames = exp.sample_frame(shots, noise=model, seed=seed + 1)

    stat, dof, p_value = detector_marginal_chi2(
        syn_t.sum(axis=0), shots, frames.detectors.sum(axis=0), shots
    )
    assert dof > 0
    assert p_value > 1e-4, (
        f"detector marginals distinguishable: chi2={stat:.1f}/{dof} (p={p_value:.2g})"
    )

    # Frame marginals must also track the DEM's analytic rates.
    analytic = exp.detector_error_model(model).detection_rates()
    observed = frames.detectors.mean(axis=0)
    sigma = np.sqrt(np.maximum(analytic * (1 - analytic), 1e-12) / shots)
    assert np.all(np.abs(observed - analytic) < 6 * sigma + 1e-9)

    raw_f = frames.observables[:, 0]
    assert intervals_overlap(
        wilson_interval(int(raw_t.sum()), shots, z=3.0),
        wilson_interval(int(raw_f.sum()), shots, z=3.0),
    ), "raw logical flip rates disagree"

    fail_t = int((raw_t ^ exp.decoder.decode_batch(syn_t)).sum())
    fail_f = int((raw_f ^ exp.decoder.decode_batch(frames.detectors)).sum())
    assert intervals_overlap(
        wilson_interval(fail_t, shots, z=3.0), wilson_interval(fail_f, shots, z=3.0)
    ), f"decoded LERs disagree: {fail_t}/{shots} vs {fail_f}/{shots}"


class TestStatisticalEquivalence:
    @pytest.mark.parametrize(
        "model",
        [NoiseModel.uniform(2e-3), NoiseModel.preset("near_term")],
        ids=["uniform", "near_term"],
    )
    def test_engines_agree_d3(self, model):
        assert_engines_indistinguishable(3, model, shots=4000, seed=17)

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "model",
        [NoiseModel.uniform(2e-3), NoiseModel.preset("near_term")],
        ids=["uniform", "near_term"],
    )
    def test_engines_agree_d5(self, model):
        assert_engines_indistinguishable(5, model, shots=4000, seed=29)
