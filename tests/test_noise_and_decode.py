"""Noise-channel calibration, zero-noise equivalence, and decoded LER sweeps."""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.code.pauli import PauliString
from repro.decode import MemoryExperiment
from repro.estimator.sweep import logical_error_sweep
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.sim.batch import BatchRunner
from repro.sim.noise import NOISE_PRESETS, NoiseModel, NoiseParams


def run_tiny(steps, shots, noise, seed=1, forced=None):
    """Replay a hand-built single/two-qubit circuit with noise injected."""
    c = HardwareCircuit()
    for name, sites, t, duration, *label in steps:
        c.append(name, sites, t, duration, label[0] if label else None)
    runner = BatchRunner(GridManager(2, 2))
    occupancy = {s: s for s in sorted({s for _, sites, *_ in steps for s in sites})}
    return runner.run_shots(
        c,
        occupancy,
        shots,
        seed=seed,
        independent_streams=False,
        noise=noise,
        forced_outcomes=forced,
    )


class TestNoiseParams:
    def test_presets_exist_and_are_ordered(self):
        near, proj = NOISE_PRESETS["near_term"], NOISE_PRESETS["projected"]
        assert NoiseModel.preset("ideal").is_trivial
        for field in ("p1", "p2", "p_prep", "p_meas"):
            assert getattr(proj, field) < getattr(near, field)
        assert proj.t2_us > near.t2_us

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown noise preset"):
            NoiseModel.preset("optimistic")

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NoiseParams(p1=1.5)
        with pytest.raises(ValueError):
            NoiseParams(t2_us=0.0)

    def test_scaled(self):
        m = NoiseModel.preset("near_term").scaled(2.0)
        assert m.params.p2 == pytest.approx(2 * NOISE_PRESETS["near_term"].p2)
        assert m.params.t2_us == pytest.approx(NOISE_PRESETS["near_term"].t2_us / 2)
        assert NoiseModel.preset("near_term").scaled(0.0).params.t2_us is None

    def test_uniform(self):
        m = NoiseModel.uniform(1e-3)
        p = m.params
        assert (p.p1, p.p2, p.p_prep, p.p_meas) == (1e-3,) * 4
        assert p.t2_us is None and not m.is_trivial

    def test_dephasing_probability_from_durations(self):
        m = NoiseModel(NoiseParams(t2_us=1000.0))
        assert m.dephasing_probability(0.0) == 0.0
        short, long = m.dephasing_probability(10.0), m.dephasing_probability(2000.0)
        assert 0 < short < long < 0.5
        assert long == pytest.approx(0.5 * (1 - np.exp(-2.0)))
        assert NoiseModel(NoiseParams()).dephasing_probability(1e9) == 0.0


class TestChannels:
    def test_preparation_flip_is_exact_at_unit_rate(self):
        batch = run_tiny(
            [("Prepare_Z", [0], 0, 10), ("Measure_Z", [0], 20, 120, "m0")],
            shots=64,
            noise=NoiseModel(NoiseParams(p_prep=1.0)),
        )
        assert batch.outcomes["m0"].all()

    def test_readout_flip_is_classical(self):
        batch = run_tiny(
            [("Prepare_Z", [0], 0, 10), ("Measure_Z", [0], 20, 120, "m0")],
            shots=64,
            noise=NoiseModel(NoiseParams(p_meas=1.0)),
        )
        # Record flipped on every shot, but the state stayed |0>.
        assert batch.outcomes["m0"].all()
        assert batch.deterministic["m0"].all()
        assert (batch.expectation(PauliString({0: "Z"})) == 1).all()

    def test_forced_labels_are_never_flipped(self):
        # forced_outcomes pins a label; readout noise must not override it.
        batch = run_tiny(
            [
                ("Prepare_Z", [0], 0, 10),
                ("Y_pi/4", [0], 10, 10),
                ("Measure_Z", [0], 30, 120, "m0"),
            ],
            shots=64,
            noise=NoiseModel(NoiseParams(p_meas=1.0)),
            forced={"m0": 0},
        )
        assert not batch.outcomes["m0"].any()

    def test_readout_flip_rate_matches_p_meas(self):
        batch = run_tiny(
            [("Prepare_Z", [0], 0, 10), ("Measure_Z", [0], 20, 120, "m0")],
            shots=4000,
            noise=NoiseModel(NoiseParams(p_meas=0.25)),
        )
        assert batch.outcomes["m0"].mean() == pytest.approx(0.25, abs=0.03)

    def test_depolarizing_flips_two_thirds(self):
        # Unit-rate depolarizing after a Z rotation: X and Y flip |0>, Z not.
        batch = run_tiny(
            [
                ("Prepare_Z", [0], 0, 10),
                ("Z_pi/2", [0], 20, 3),
                ("Measure_Z", [0], 40, 120, "m0"),
            ],
            shots=6000,
            noise=NoiseModel(NoiseParams(p1=1.0)),
        )
        assert batch.outcomes["m0"].mean() == pytest.approx(2 / 3, abs=0.03)

    def test_two_qubit_depolarizing_marginals(self):
        # Unit-rate two-qubit depolarizing: each qubit sees a bit-flipping
        # component (X or Y) in 8 of the 15 equally likely error Paulis.
        batch = run_tiny(
            [
                ("Prepare_Z", [0], 0, 10),
                ("Prepare_Z", [1], 0, 10),
                ("ZZ", [0, 1], 20, 2000),
                ("Measure_Z", [0], 2040, 120, "m0"),
                ("Measure_Z", [1], 2040, 120, "m1"),
            ],
            shots=6000,
            noise=NoiseModel(NoiseParams(p2=1.0)),
        )
        m0, m1 = batch.outcomes["m0"], batch.outcomes["m1"]
        assert m0.mean() == pytest.approx(8 / 15, abs=0.03)
        assert m1.mean() == pytest.approx(8 / 15, abs=0.03)
        both_clean = ((m0 == 0) & (m1 == 0)).mean()
        assert both_clean == pytest.approx(3 / 15, abs=0.03)

    def test_idle_gap_dephasing_scales_with_t2(self):
        # |+> parked for 1 ms: Z errors flip the recovered Z outcome with
        # probability 0.5 * (1 - exp(-gap / T2)).
        steps = [
            ("Prepare_Z", [0], 0, 10),
            ("Y_pi/4", [0], 10, 10),
            ("Y_-pi/4", [0], 1_000_020, 10),
            ("Measure_Z", [0], 1_000_040, 120, "m0"),
        ]
        strong = run_tiny(
            steps, 6000, NoiseModel(NoiseParams(t2_us=500_000.0))
        )
        expected = 0.5 * (1 - np.exp(-1_000_000 / 500_000))
        assert strong.outcomes["m0"].mean() == pytest.approx(expected, abs=0.03)
        weak = run_tiny(steps, 2000, NoiseModel(NoiseParams(t2_us=5e12)))
        assert weak.outcomes["m0"].mean() < 0.005


@lru_cache(maxsize=None)
def _memory(basis: str, distance: int = 2, rounds: int = 1) -> MemoryExperiment:
    return MemoryExperiment(distance=distance, rounds=rounds, basis=basis)


@given(
    seed=st.integers(0, 2**16),
    shots=st.integers(1, 6),
    basis=st.sampled_from(["Z", "X"]),
)
@settings(max_examples=20, deadline=None)
def test_zero_rate_noise_reproduces_ideal_shot_for_shot(seed, shots, basis):
    """A NoiseModel with all rates zero must not perturb any trajectory."""
    exp = _memory(basis)
    ideal = exp.sample(shots, seed=seed, independent_streams=True)
    zero = exp.sample(
        shots,
        noise=NoiseModel(NoiseParams()),
        seed=seed,
        independent_streams=True,
    )
    assert set(ideal.outcomes) == set(zero.outcomes)
    for label in ideal.outcomes:
        assert np.array_equal(ideal.outcomes[label], zero.outcomes[label])
        assert np.array_equal(ideal.deterministic[label], zero.deterministic[label])
    assert np.array_equal(ideal.weights, zero.weights)


@given(
    seed=st.integers(0, 2**16),
    shots=st.integers(1, 6),
    basis=st.sampled_from(["Z", "X"]),
)
@settings(max_examples=20, deadline=None)
def test_decoder_is_trivial_on_zero_noise_batches(seed, shots, basis):
    """Without noise every detector is silent and every verdict trivial."""
    exp = _memory(basis)
    batch = exp.sample(shots, noise=NoiseModel.preset("ideal"), seed=seed)
    assert not exp.syndromes(batch).any()
    assert not exp.measured_flips(batch).any()
    assert not exp.decode_batch(batch).any()


class TestLogicalErrorSweep:
    def test_sweep_validates_arguments(self):
        with pytest.raises(ValueError, match="exactly one"):
            logical_error_sweep([3])
        with pytest.raises(ValueError, match="exactly one"):
            logical_error_sweep([3], rates=[1e-3], noise_models=[NoiseModel.uniform(1e-3)])

    def test_threshold_crossover_and_decode_speed(self):
        """LER falls with distance below threshold and rises far above it.

        Pinned to the reference tableau engine (same rates, shots, seed,
        and draws as at introduction); the frame engine's statistical
        agreement with this path is asserted in tests/test_frame_sampler.py.
        The d=5, 2000-shot batches must decode in seconds.
        """
        below, above = 3e-4, 5e-3
        reports = logical_error_sweep(
            [3, 5], rates=[below, above], shots=2000, seed=7, engine="tableau"
        )
        by = {(r.dx, r.physical_rate): r for r in reports}
        b3, b5 = by[(3, below)], by[(5, below)]
        a3, a5 = by[(3, above)], by[(5, above)]
        # Below threshold: distance helps, and decoding beats the raw flips.
        assert b5.logical_error_rate <= b3.logical_error_rate < 0.02
        assert b3.logical_error_rate < b3.raw_error_rate
        assert b5.logical_error_rate < b5.raw_error_rate
        # Far above threshold: more distance means more logical errors.
        assert a5.logical_error_rate > a3.logical_error_rate > 0.05
        # Packed-path acceptance: a d=5, 2000-shot batch decodes in seconds.
        assert a5.decode_seconds < 10.0
        assert b5.decode_seconds < 10.0

    def test_reports_carry_bookkeeping(self):
        rep = logical_error_sweep([2], rates=[1e-3], shots=50, rounds=1, seed=0)[0]
        assert (rep.dx, rep.dz, rep.rounds, rep.n_shots) == (2, 2, 1, 50)
        assert rep.noise_name == "uniform(p=0.001)"
        assert rep.physical_rate == pytest.approx(1e-3)
        assert 0.0 <= rep.logical_error_rate <= 1.0
        d = rep.to_dict()
        assert d["failures"] == rep.failures
        assert d["logical_error_rate"] == rep.logical_error_rate
