"""SIMD beam-pass scheduling: equivalence, key stability, and report gating.

The scheduler's contract is *pure retiming*: the rescheduled circuit must
contain exactly the original instructions, keep every site's instruction
sequence in order, and satisfy the executable reference validity spec.
Its detector error model is therefore structurally identical to the
unscheduled one under idle-free noise: same detector footprints, same
observable masks, and probabilities equal to within a few ULP (retiming
permutes the XOR fold order inside multi-site mechanisms — the only
float-level freedom).  The frame engine thresholds uniform draws against
those probabilities, so fixed-seed logical-error counters stay *exactly*
identical: a count could change only if a draw landed inside a ULP-wide
sliver.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import TISCC
from repro.decode.memory import MemoryExperiment, memory_cache_key
from repro.estimator.jobs import SweepCell
from repro.estimator.report import format_resource_table
from repro.hardware.profile import DEFAULT_PROFILE, SIMD_MODES, ProfileError, get_profile
from repro.hardware.simd import baseline_beam_passes, simd_schedule
from repro.hardware.validity import check_circuit_reference
from repro.sim.noise import IdleClock, NoiseModel


@lru_cache(maxsize=None)
def compiled_memory(d: int = 3):
    """One unscheduled d×d MeasureZ compile, shared across examples."""
    compiler = TISCC(dx=d, dz=d, tile_rows=1, tile_cols=1)
    program = [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))]
    compiled = compiler.compile(program, operation="MeasureZ", estimate=False)
    return compiler, compiled


def per_site_order(circuit):
    """Each site's (code, duration, label) sequence in schedule order."""
    cols = circuit.sorted_columns()
    seq: dict[int, list] = {}
    for i in range(cols.n):
        for s in cols.sites[i]:
            seq.setdefault(s, []).append(
                (int(cols.codes[i]), float(cols.duration[i]), cols.labels.get(i))
            )
    return seq


def instruction_multiset(circuit):
    cols = circuit.sorted_columns()
    return sorted(
        (int(cols.codes[i]), int(cols.site0[i]), int(cols.site1[i]), float(cols.duration[i]))
        for i in range(cols.n)
    )


class TestScheduleProperties:
    """Hypothesis sweep over (width, mode, overhead): retiming invariants."""

    @settings(max_examples=24, deadline=None)
    @given(
        width=st.sampled_from([0, 1, 2, 3, 8]),
        mode=st.sampled_from(SIMD_MODES),
        overhead=st.sampled_from([0.0, 5.0]),
    )
    def test_retiming_invariants(self, width, mode, overhead):
        compiler, compiled = compiled_memory(3)
        circuit = compiled.circuit
        scheduled, report = simd_schedule(
            circuit, compiler.grid, width=width, mode=mode, overhead_us=overhead
        )

        # Pure retiming: same instructions, same per-site order, same labels.
        assert len(scheduled) == len(circuit)
        assert instruction_multiset(scheduled) == instruction_multiset(circuit)
        assert per_site_order(scheduled) == per_site_order(circuit)
        assert scheduled._measure_count == circuit._measure_count

        # The executable validity spec must accept the new schedule
        # (check_circuit_reference raises CircuitValidityError on failure).
        check_circuit_reference(compiler.grid, scheduled, compiled.initial_occupancy)

        # Report arithmetic.
        assert report.baseline_passes == baseline_beam_passes(
            circuit, compiler.profile, width=width
        )
        assert 0 < report.beam_passes <= report.baseline_passes or width > 0
        assert 0.0 <= report.pass_reduction <= 1.0 or width > 0
        assert report.mode == mode and report.width == width
        if mode == "site_parallel" and overhead == 0.0:
            # No overhead, no serial beam constraint: never slower.
            assert report.makespan_us <= report.baseline_makespan_us + 1e-9

    def test_unlimited_width_halves_passes_at_d3(self):
        compiler, compiled = compiled_memory(3)
        _, report = simd_schedule(compiled.circuit, compiler.grid)
        assert report.pass_reduction >= 0.30  # acceptance floor, d=3 already ~0.47


NOISE = NoiseModel.uniform(1.5e-3)  # t2-free: idle windows cannot enter the DEM


@lru_cache(maxsize=None)
def plain_dem():
    return MemoryExperiment(distance=3).detector_error_model(NOISE)


class TestDemEquivalence:
    """Scheduled DEM vs the unscheduled oracle across timing modes."""

    @pytest.mark.parametrize(
        "mode, width, overhead",
        [
            ("site_parallel", 0, 0.0),
            ("site_parallel", 0, 5.0),
            ("site_parallel", 3, 0.0),
            ("pass_serial", 0, 0.0),
            ("pass_serial", 16, 5.0),
        ],
    )
    def test_dem_matches_oracle(self, mode, width, overhead):
        prof = replace(
            DEFAULT_PROFILE,
            simd_mode=mode,
            simd_width=width,
            simd_pass_overhead_us=overhead,
        )
        dem = MemoryExperiment(distance=3, profile=prof, simd=True).detector_error_model(
            NOISE
        )
        oracle = plain_dem()
        assert dem.n_detectors == oracle.n_detectors
        assert dem.n_observables == oracle.n_observables
        assert dem.detectors == oracle.detectors
        assert np.array_equal(dem.observables, oracle.observables)
        # Retiming may permute the XOR fold order inside multi-site
        # mechanisms — probabilities agree to within a few ULP, nothing more.
        ulps = np.abs(dem.probs - oracle.probs) / np.spacing(
            np.maximum(dem.probs, oracle.probs)
        )
        assert ulps.max() <= 8.0

    def test_fixed_seed_ler_counters_identical(self):
        """Frame-engine failure counters at a fixed seed match exactly."""
        kwargs = dict(noise=NOISE, seed=7, engine="frame")
        base = MemoryExperiment(distance=3).run(4000, **kwargs)
        simd = MemoryExperiment(distance=3, simd=True).run(4000, **kwargs)
        assert base.engine == simd.engine == "frame"
        assert simd.failures == base.failures
        assert simd.raw_failures == base.raw_failures


class TestCompilerIntegration:
    def test_oracle_and_report_retained(self):
        compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=1)
        program = [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))]
        compiled = compiler.compile(program, operation="MeasureZ", simd=True)
        assert compiled.unscheduled_circuit is not None
        assert len(compiled.unscheduled_circuit) == len(compiled.circuit)
        assert compiled.simd_report is not None
        assert compiled.simd_report.beam_passes < compiled.simd_report.baseline_passes
        assert compiled.simd_seconds > 0.0
        assert compiled.validity is not None  # validity replay ran on the *scheduled* circuit

    def test_default_compile_untouched(self):
        _, compiled = compiled_memory(3)
        assert compiled.simd_report is None
        assert compiled.unscheduled_circuit is None
        assert compiled.simd_seconds == 0.0


class TestIdleClock:
    """Shared idle-gap helper: exact float semantics, one definition."""

    def test_single_shared_definition(self):
        # batch.py and dem.py must consume the same class — the drift guard.
        from repro.sim import batch, dem, noise

        assert batch.IdleClock is noise.IdleClock
        assert dem.IdleClock is noise.IdleClock

    def test_gap_semantics_on_compacted_schedule(self):
        # The same ops at original vs compacted times: gaps follow the
        # schedule actually handed in, with exact float arithmetic.
        original = [(0.0, 10.0), (35.0, 45.0), (80.0, 90.0)]
        compacted = [(0.0, 10.0), (10.0, 20.0), (20.5, 30.5)]
        for times, gaps in (
            (original, [0.0, 25.0, 35.0]),
            (compacted, [0.0, 0.0, 0.5]),
        ):
            clock = IdleClock(1)
            for (start, end), expected in zip(times, gaps):
                assert clock.gap_before(0, start) == expected
                clock.mark_busy([0], end)

    def test_row_tracking(self):
        clock = IdleClock(2, track_rows=True)
        assert clock.last_row == [-1, -1]
        clock.mark_busy([1], 5.0, row=3)
        assert clock.last_row == [-1, 3]
        assert clock.gap_before(1, 7.5) == 2.5
        assert IdleClock(2).last_row is None

    def test_noise_model_factory_gates_on_tracks_idle(self):
        assert NoiseModel.uniform(1e-3).idle_clock(4) is None  # no t2: no tracking
        clock = NoiseModel.preset("near_term").idle_clock(4)
        assert isinstance(clock, IdleClock)


class TestProfileFields:
    def test_defaults_stay_out_of_fingerprint_and_dict(self):
        explicit = replace(
            DEFAULT_PROFILE,
            simd_width=0,
            simd_pass_overhead_us=0.0,
            simd_mode="site_parallel",
        )
        assert explicit.fingerprint == DEFAULT_PROFILE.fingerprint
        assert not any(k.startswith("simd") for k in DEFAULT_PROFILE.to_dict())

    def test_nondefault_changes_fingerprint_and_roundtrips(self):
        prof = replace(DEFAULT_PROFILE, simd_width=8, simd_mode="pass_serial")
        assert prof.fingerprint != DEFAULT_PROFILE.fingerprint
        d = prof.to_dict()
        assert d["simd_width"] == 8 and d["simd_mode"] == "pass_serial"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"simd_width": -1},
            {"simd_width": True},
            {"simd_width": 2.5},
            {"simd_mode": "both"},
            {"simd_pass_overhead_us": -1.0},
            {"simd_pass_overhead_us": float("nan")},
            {"simd_pass_overhead_us": float("inf")},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ProfileError):
            replace(DEFAULT_PROFILE, **kwargs)

    def test_shipped_profiles_carry_beam_pass_limits(self):
        assert get_profile("baseline") == DEFAULT_PROFILE
        fast = get_profile("fast_projected")
        assert (fast.simd_width, fast.simd_mode) == (64, "site_parallel")
        slow = get_profile("slow_junction")
        assert (slow.simd_width, slow.simd_mode) == (16, "pass_serial")
        assert slow.simd_pass_overhead_us == 5.0


class TestKeyStability:
    """simd enters cache keys only when enabled: old checkpoints stay valid."""

    def test_memory_cache_key_unchanged_when_off(self):
        base = memory_cache_key(3, 3, None, "Z", NOISE)
        assert base == memory_cache_key(3, 3, None, "Z", NOISE, simd=False)
        assert "simd" not in base
        assert memory_cache_key(3, 3, None, "Z", NOISE, simd=True) == base + ("simd",)

    def test_sweep_cell_payloads(self):
        plain = SweepCell(kind="memory_lfr", op="ZMemory", dx=3, dz=3, rounds=None,
                          noise=NOISE.params, shots=100)
        assert plain.key_payload() == replace(plain, simd=False).key_payload()
        assert "simd" not in repr(plain.key_payload())
        assert replace(plain, simd=True).key() != plain.key()

        res = SweepCell(kind="resource", op="MeasureZ", dx=3, dz=3, rounds=None)
        assert "simd" not in res.key_payload()
        assert replace(res, simd=True).key_payload()["simd"] is True


class TestReportGating:
    def test_default_resource_report_has_no_simd_columns(self):
        compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=1)
        compiled = compiler.compile([("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))],
                                    operation="MeasureZ")
        rep = compiled.resources
        assert rep.beam_passes is None and rep.simd_utilization is None
        assert "beam_passes" not in rep.header()
        assert "beam_passes" not in format_resource_table([rep])
        assert "beam_passes" not in rep.to_dict()

    def test_simd_resource_report_gains_columns(self):
        compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=1)
        compiled = compiler.compile([("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))],
                                    operation="MeasureZ", simd=True)
        rep = compiled.resources
        assert rep.beam_passes == compiled.simd_report.beam_passes
        assert rep.simd_utilization == pytest.approx(compiled.simd_report.utilization)
        table = format_resource_table([rep])
        assert "beam_passes" in table and "simd_util" in table
        assert rep.to_dict()["beam_passes"] == rep.beam_passes


class TestCli:
    def run_cli(self, capsys, *argv):
        from repro.__main__ import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_compile_output_unchanged_without_flag(self, capsys):
        code, out = self.run_cli(
            capsys, "compile", "--op", "MeasureZ", "--resources", "--timings"
        )
        assert code == 0
        assert "simd" not in out and "beam_passes" not in out

    def test_compile_simd_prints_summary_and_phase(self, capsys):
        code, out = self.run_cli(
            capsys, "compile", "--op", "MeasureZ", "--simd", "--resources", "--timings"
        )
        assert code == 0
        assert "# simd: beam passes" in out and "reduction" in out
        assert "beam_passes" in out and "simd_util" in out
        assert ", simd " in out  # phase split in the timings line
