"""Pauli-frame helpers and the dense reference simulator."""

import numpy as np
import pytest

from repro.code.pauli import PauliString
from repro.sim.dense import DenseSimulator
from repro.verify.frames import corrected_expectation, logical_state_vector, logical_pauli_vector
from tests.conftest import fresh_patch, simulate


class TestDenseSimulator:
    def test_initial_state(self):
        sim = DenseSimulator(2)
        assert sim.expectation(PauliString({0: "Z"})) == pytest.approx(1.0)

    def test_apply_named_gates(self):
        sim = DenseSimulator(1)
        sim.apply("Y_pi/4", (0,))
        assert sim.expectation(PauliString({0: "X"})) == pytest.approx(1.0)

    def test_zz_entangles(self):
        sim = DenseSimulator(2)
        sim.apply("Y_pi/4", (0,))
        sim.apply("Y_pi/4", (1,))
        sim.apply("ZZ", (0, 1))
        # (ZZ)_{pi/4}|++> is maximally entangled: single-qubit X vanishes.
        assert sim.expectation(PauliString({0: "X"})) == pytest.approx(0.0, abs=1e-12)

    def test_measurement_collapse(self):
        sim = DenseSimulator(1)
        sim.apply("Y_pi/4", (0,))
        m, det = sim.measure(0, np.random.default_rng(0))
        assert not det
        m2, det2 = sim.measure(0, np.random.default_rng(1))
        assert det2 and m2 == m

    def test_forced_impossible_outcome(self):
        sim = DenseSimulator(1)
        with pytest.raises(ValueError):
            sim.measure(0, forced=1)

    def test_reset(self):
        sim = DenseSimulator(1)
        sim.apply("X_pi/2", (0,))
        sim.reset(0, np.random.default_rng(0))
        assert sim.expectation(PauliString({0: "Z"})) == pytest.approx(1.0)

    def test_density_matrix(self):
        sim = DenseSimulator(2)
        sim.apply("Y_pi/4", (0,))
        rho = sim.density_matrix((0,))
        assert np.allclose(rho, np.ones((2, 2)) / 2)

    def test_size_limits(self):
        with pytest.raises(ValueError):
            DenseSimulator(17)
        with pytest.raises(ValueError):
            DenseSimulator(0)

    def test_non_hermitian_expectation_rejected(self):
        sim = DenseSimulator(1)
        sim.apply("Y_pi/4", (0,))  # |+>: <X> = 1, so <iX> is imaginary
        with pytest.raises(ValueError):
            sim.expectation(PauliString({0: "X"}, phase=1))


class TestFrames:
    def test_corrected_expectation_applies_ledger(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        lq.measure_out_data_qubit(c, (0, 0), "Z")
        res = simulate(grid, c, occ0, seed=1)
        assert corrected_expectation(res, lq.logical_z) == 1.0

    def test_logical_pauli_vector_of_zero_state(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        res = simulate(grid, c, occ0, seed=2)
        assert logical_pauli_vector(res, lq) == (0.0, 0.0, 1.0)

    def test_logical_state_vector_density_matrix(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.inject_state(c, "Y", rounds=1)
        res = simulate(grid, c, occ0, seed=3)
        rho = logical_state_vector(res, lq)
        ideal = np.array([[1, -1j], [1j, 1]]) / 2
        assert np.allclose(rho, ideal)

    def test_logical_y_ledger_merges_both(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        lq.logical_x.corrections.append("m0")
        lq.logical_z.corrections.append("m1")
        y = lq.logical_y()
        assert set(y.corrections) >= {"m0", "m1"}
