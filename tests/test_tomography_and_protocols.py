"""State/process tomography machinery and the §4 verification protocols."""

import numpy as np
import pytest

from repro.code.arrangements import Arrangement
from repro.code.corner import flip_patch
from repro.code.translation import move_right_swap_left
from repro.sim.gates import PAULI_X, PAULI_Z
from repro.verify.tomography import (
    IDEAL_CHI,
    INPUT_STATES_1Q,
    chi_matrix_1q,
    chi_of_unitary,
    fidelity,
    state_tomography_1q,
)
from repro.verify.protocols import (
    verify_one_tile_identity,
    verify_preparation,
    verify_process,
)


class TestTomographyMath:
    def test_state_reconstruction(self):
        rho = state_tomography_1q(1.0, 0.0, 0.0)
        assert np.allclose(rho, INPUT_STATES_1Q["+"])

    def test_chi_of_identity_channel(self):
        outputs = {k: v.copy() for k, v in INPUT_STATES_1Q.items()}
        chi = chi_matrix_1q(outputs)
        assert fidelity(chi, IDEAL_CHI["I"]) == pytest.approx(1.0)

    @pytest.mark.parametrize("name,u", [
        ("X", PAULI_X), ("Z", PAULI_Z),
        ("H", (PAULI_X + PAULI_Z) / np.sqrt(2)), ("S", np.diag([1, 1j])),
    ])
    def test_chi_of_unitary_channels(self, name, u):
        outputs = {k: u @ rho @ u.conj().T for k, rho in INPUT_STATES_1Q.items()}
        chi = chi_matrix_1q(outputs)
        assert fidelity(chi, IDEAL_CHI[name]) == pytest.approx(1.0)
        # And it is distinguishable from the identity.
        assert fidelity(chi, IDEAL_CHI["I"]) < 0.99

    def test_chi_trace_one(self):
        outputs = {k: v.copy() for k, v in INPUT_STATES_1Q.items()}
        assert np.trace(chi_matrix_1q(outputs)).real == pytest.approx(1.0)

    def test_chi_of_unitary_is_rank_one(self):
        chi = chi_of_unitary((PAULI_X + PAULI_Z) / np.sqrt(2))
        eigs = np.linalg.eigvalsh(chi)
        assert eigs[-1] == pytest.approx(1.0)
        assert abs(eigs[0]) < 1e-12

    def test_missing_input_rejected(self):
        with pytest.raises(ValueError):
            chi_matrix_1q({"0": INPUT_STATES_1Q["0"]})


class TestPreparationVerification:
    """§4.2: state tomography of preparation circuits, all arrangements."""

    @pytest.mark.parametrize("arr", list(Arrangement))
    @pytest.mark.parametrize("state", ["0", "+", "+i"])
    def test_fidelity_is_one(self, arr, state):
        assert verify_preparation(3, 3, arr, state) == pytest.approx(1.0)

    @pytest.mark.parametrize("dx,dz", [(2, 2), (4, 3), (2, 3)])
    def test_even_and_mixed_distances(self, dx, dz):
        assert verify_preparation(dx, dz, Arrangement.STANDARD, "0") == pytest.approx(1.0)

    def test_with_and_without_extra_round(self):
        """§4.2: the final round of syndrome extraction does not change the
        result — encoded states are unaltered by syndrome extraction."""
        f1 = verify_preparation(3, 3, Arrangement.STANDARD, "+i", rounds=1)
        f2 = verify_preparation(3, 3, Arrangement.STANDARD, "+i", rounds=2)
        assert f1 == pytest.approx(f2) == pytest.approx(1.0)


class TestOneTileProcesses:
    """§4.3: process tomography of one-tile operations."""

    @pytest.mark.parametrize("arr", list(Arrangement))
    def test_idle_is_identity(self, arr):
        fid = verify_one_tile_identity(
            3, 3, arr, lambda lq, c: lq.idle(c, rounds=1) and None
        )
        assert fid == pytest.approx(1.0)

    @pytest.mark.parametrize("which", ["X", "Y", "Z"])
    def test_logical_paulis(self, which):
        fid = verify_process(
            3, 3, Arrangement.STANDARD,
            lambda lq, c: lq.apply_pauli(c, which),
            ideal=which,
        )
        assert fid == pytest.approx(1.0)

    def test_hadamard_process(self):
        def apply(lq, c):
            lq.transversal_hadamard(c)
            lq.idle(c, rounds=1)

        fid = verify_process(3, 3, Arrangement.STANDARD, apply, ideal="H")
        assert fid == pytest.approx(1.0)

    @pytest.mark.parametrize("start", [Arrangement.STANDARD, Arrangement.ROTATED])
    def test_flip_patch_is_identity(self, start):
        def apply(lq, c):
            flip_patch(lq, c)
            lq.idle(c, rounds=1)
            return lq

        fid = verify_one_tile_identity(3, 3, start, apply)
        assert fid == pytest.approx(1.0)

    def test_move_right_swap_left_is_identity(self):
        def apply(lq, c):
            final, _ = move_right_swap_left(c, lq, rounds=1)
            final.idle(c, rounds=1)
            return final

        fid = verify_one_tile_identity(3, 3, Arrangement.STANDARD, apply, margin=(2, 6))
        assert fid == pytest.approx(1.0)

    def test_non_identity_is_detected(self):
        """The harness distinguishes X from identity (sanity of the method)."""
        fid = verify_one_tile_identity(
            2, 2, Arrangement.STANDARD, lambda lq, c: lq.apply_pauli(c, "X")
        )
        assert fid < 0.9
