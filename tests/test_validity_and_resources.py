"""Independent validity replay and §3.4 resource estimation."""

import pytest

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, JUNCTION_HOP_US, MOVE_US
from repro.hardware.resources import estimate_resources
from repro.hardware.validity import CircuitValidityError, check_circuit
from repro.util.geometry import ZONE_PITCH_M
from tests.conftest import fresh_patch


class TestValidityChecker:
    def grid(self):
        return GridManager(2, 2)

    def test_accepts_compiled_prep(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        report = check_circuit(grid, c, occ0)
        assert report.n_instructions == len(c)
        assert report.n_junction_crossings > 0

    def test_rejects_double_occupancy_move(self):
        g = self.grid()
        c = HardwareCircuit()
        s1, s2 = g.index(0, 1), g.index(0, 2)
        c.append("Move", (s1, s2), 0.0, MOVE_US)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {s1: 0, s2: 1})

    def test_rejects_gate_on_empty_site(self):
        g = self.grid()
        c = HardwareCircuit()
        c.append("Prepare_Z", (g.index(0, 1),), 0.0, 10.0)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {})

    def test_rejects_busy_ion_overlap(self):
        g = self.grid()
        s = g.index(0, 1)
        c = HardwareCircuit()
        c.append("Prepare_Z", (s,), 0.0, 10.0)
        c.append("X_pi/2", (s,), 5.0, 10.0)  # overlaps the prep
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {s: 0})

    def test_rejects_wrong_move_duration(self):
        g = self.grid()
        s1, s2 = g.index(0, 1), g.index(0, 2)
        c = HardwareCircuit()
        c.append("Move", (s1, s2), 0.0, 99.0)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {s1: 0})

    def test_rejects_junction_overlap(self):
        g = self.grid()
        a, b = g.index(0, 3), g.index(0, 5)
        x, y = g.index(1, 4), g.index(0, 3)
        c = HardwareCircuit()
        c.append("Move", (a, b), 0.0, JUNCTION_HOP_US)
        c.append("Move", (x, g.index(0, 5)), 100.0, JUNCTION_HOP_US)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {a: 0, x: 1})

    def test_rejects_illegal_hop(self):
        g = self.grid()
        c = HardwareCircuit()
        c.append("Move", (g.index(0, 1), g.index(0, 3)), 0.0, MOVE_US)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {g.index(0, 1): 0})

    def test_rejects_zz_non_adjacent(self):
        g = self.grid()
        a, b = g.index(0, 1), g.index(0, 3)
        c = HardwareCircuit()
        c.append("ZZ", (a, b), 0.0, 2000.0)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {a: 0, b: 1})

    def test_rejects_initial_junction_occupancy(self):
        g = self.grid()
        with pytest.raises(CircuitValidityError):
            check_circuit(g, HardwareCircuit(), {g.index(0, 0): 0})

    def test_load_onto_occupied_rejected(self):
        g = self.grid()
        s = g.index(0, 1)
        c = HardwareCircuit()
        c.append("Load", (s,), 0.0, 0.0)
        with pytest.raises(CircuitValidityError):
            check_circuit(g, c, {s: 0})


class TestResources:
    def test_empty_circuit(self):
        g = GridManager(2, 2)
        r = estimate_resources(g, HardwareCircuit())
        assert r.computation_time_s == 0.0
        assert r.n_trapping_zones == 0

    def test_single_gate_accounting(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        c.append("ZZ", (g.index(0, 1), g.index(0, 2)), 0.0, 2000.0)
        r = estimate_resources(g, c, "zz", 1, 1)
        assert r.computation_time_s == pytest.approx(2000e-6)
        assert r.active_zone_seconds == pytest.approx(2 * 2000e-6)
        assert r.grid_area_m2 == pytest.approx(ZONE_PITCH_M * 2 * ZONE_PITCH_M)
        assert r.spacetime_volume_s_m2 == pytest.approx(
            r.computation_time_s * r.grid_area_m2
        )
        assert r.zone_seconds == pytest.approx(r.n_trapping_zones * 2000e-6)

    def test_patch_prep_resources_scale_with_distance(self):
        rows = []
        for d in (2, 3):
            grid, _, lq, c, occ0 = fresh_patch(d, d)
            lq.prepare(c, basis="Z", rounds=1)
            rows.append(estimate_resources(grid, c, "prep", d, d))
        assert rows[1].n_trapping_zones > rows[0].n_trapping_zones
        assert rows[1].grid_area_m2 > rows[0].grid_area_m2
        assert rows[1].active_zone_seconds > rows[0].active_zone_seconds

    def test_report_row_formatting(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        r = estimate_resources(grid, c, "prep", 2, 2)
        assert "prep" in r.row()
        header = type(r).header()
        assert "zone_s" in header and "volume" in header

    def test_gate_histogram_dominated_by_zz_time(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.idle(c, rounds=1)
        r = estimate_resources(grid, c, "idle", 3, 3)
        zz_time = r.gate_histogram["ZZ"] * 2000e-6
        # Four sequential ZZ layers dominate the round (§3.2).
        assert zz_time > 0.5 * r.computation_time_s * len(lq.plaquettes)


class TestEstimatorSweep:
    def test_sweep_idle(self):
        from repro.estimator.sweep import sweep_operation

        reports = sweep_operation("Idle", [2, 3], rounds=1)
        assert [r.dx for r in reports] == [2, 3]
        assert reports[1].computation_time_s > 0

    def test_sweep_unknown(self):
        from repro.estimator.sweep import sweep_operation

        with pytest.raises(ValueError):
            sweep_operation("Nope", [3])

    def test_format_table(self):
        from repro.estimator.report import format_resource_table
        from repro.estimator.sweep import sweep_operation

        table = format_resource_table(sweep_operation("Idle", [2], rounds=1), "T")
        assert "Idle" in table and "T" in table
