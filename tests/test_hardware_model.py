"""Hardware model: Table 5 timings and exact gate decompositions."""

import numpy as np
import pytest

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import GATE_TIMES_US, HardwareModel
from repro.sim.gates import PAULI_X, PAULI_Y, PAULI_Z, rotation_unitary, unitary_for


def _equal_up_to_phase(a, b, atol=1e-10):
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return False
    phase = a[idx] / b[idx]
    return np.allclose(a, phase * b, atol=atol)


class TestTable5:
    """Native gate durations — paper Table 5 / Fig 5."""

    EXPECTED = {
        "Prepare_Z": 10.0,
        "Measure_Z": 120.0,
        "X_pi/2": 10.0,
        "X_pi/4": 10.0,
        "Y_pi/2": 10.0,
        "Y_pi/4": 10.0,
        "Z_pi/2": 3.0,
        "Z_pi/4": 3.0,
        "Z_pi/8": 3.0,
        "ZZ": 2000.0,
        "Move": 5.25,
        "Junction": 105.0,
    }

    @pytest.mark.parametrize("name,us", sorted(EXPECTED.items()))
    def test_duration(self, name, us):
        assert GATE_TIMES_US[name] == pytest.approx(us)

    def test_signed_variants_cost_the_same(self):
        assert GATE_TIMES_US["X_-pi/4"] == GATE_TIMES_US["X_pi/4"]
        assert GATE_TIMES_US["Z_-pi/8"] == GATE_TIMES_US["Z_pi/8"]

    def test_move_time_is_width_over_velocity(self):
        # 420 um at 80 m/s (§3.2).
        assert GATE_TIMES_US["Move"] == pytest.approx(420e-6 / 80 * 1e6)

    def test_junction_time_is_width_over_velocity(self):
        # 420 um at 4 m/s (§3.2).
        assert GATE_TIMES_US["Junction"] == pytest.approx(420e-6 / 4 * 1e6)

    def test_unknown_gate_rejected(self):
        g = GridManager(1, 1)
        with pytest.raises(ValueError):
            HardwareModel(g).duration("T_gate")


def _emitted_unitary(emit, n_qubits=1):
    """Compile a gate and multiply its native unitaries in time order."""
    grid = GridManager(2, 2)
    model = HardwareModel(grid)
    circuit = HardwareCircuit()
    ions = [grid.add_ion(grid.index(0, 1)), grid.add_ion(grid.index(0, 2))]
    emit(model, circuit, ions)
    u = np.eye(2**n_qubits, dtype=complex)
    site_index = {grid.index(0, 1): 0, grid.index(0, 2): 1}
    for inst in circuit.sorted_instructions():
        if inst.name in ("Prepare_Z", "Measure_Z", "Move", "Load"):
            raise AssertionError(f"unexpected {inst.name} in unitary sequence")
        mat = unitary_for(inst.name)
        if len(inst.sites) == 1 and n_qubits == 2:
            q = site_index[inst.sites[0]]
            mat = np.kron(mat, np.eye(2)) if q == 0 else np.kron(np.eye(2), mat)
        u = mat @ u
    return u


class TestDecompositions:
    def test_hadamard_exact(self):
        h = (PAULI_X + PAULI_Z) / np.sqrt(2)
        u = _emitted_unitary(lambda m, c, ions: m.hadamard(c, ions[0]))
        assert _equal_up_to_phase(u, h)

    def test_s_gate(self):
        u = _emitted_unitary(lambda m, c, ions: m.s_gate(c, ions[0]))
        assert _equal_up_to_phase(u, np.diag([1, 1j]))

    def test_t_gate(self):
        u = _emitted_unitary(lambda m, c, ions: m.t_gate(c, ions[0]))
        assert _equal_up_to_phase(u, np.diag([1, np.exp(1j * np.pi / 4)]))

    @pytest.mark.parametrize("which,mat", [("X", PAULI_X), ("Y", PAULI_Y), ("Z", PAULI_Z)])
    def test_paulis(self, which, mat):
        u = _emitted_unitary(
            lambda m, c, ions: getattr(m, f"pauli_{which.lower()}")(c, ions[0])
        )
        assert _equal_up_to_phase(u, mat)

    def test_cz_exact(self):
        cz = np.diag([1, 1, 1, -1]).astype(complex)
        u = _emitted_unitary(lambda m, c, ions: m.cz(c, ions[0], ions[1]), n_qubits=2)
        assert _equal_up_to_phase(u, cz)

    def test_cnot_exact(self):
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        u = _emitted_unitary(lambda m, c, ions: m.cnot(c, ions[0], ions[1]), n_qubits=2)
        assert _equal_up_to_phase(u, cnot)

    def test_cnot_uses_single_zz(self):
        grid = GridManager(2, 2)
        model = HardwareModel(grid)
        circuit = HardwareCircuit()
        a = grid.add_ion(grid.index(0, 1))
        b = grid.add_ion(grid.index(0, 2))
        model.cnot(circuit, a, b)
        assert circuit.count("ZZ") == 1

    def test_prepare_x_gives_plus(self):
        # Prepare_Z then Y_pi/4 maps |0> to |+>.
        u = rotation_unitary("Y", np.pi / 4)
        assert np.allclose(u @ np.array([1, 0]), np.array([1, 1]) / np.sqrt(2))

    def test_measure_x_basis_change(self):
        # Y_{-pi/4} maps |+> to |0> so Measure_Z reads the X eigenvalue.
        u = rotation_unitary("Y", -np.pi / 4)
        out = u @ (np.array([1, 1]) / np.sqrt(2))
        assert abs(out[0]) == pytest.approx(1.0)

    def test_measure_y_basis_change(self):
        u = rotation_unitary("X", np.pi / 4)
        out = u @ (np.array([1, 1j]) / np.sqrt(2))
        assert abs(out[0]) == pytest.approx(1.0)

    def test_measure_labels_are_sequential(self):
        grid = GridManager(1, 1)
        model = HardwareModel(grid)
        circuit = HardwareCircuit()
        ion = grid.add_ion(grid.index(0, 1))
        _, l1 = model.measure_z(circuit, ion)
        _, l2 = model.measure_x(circuit, ion)
        assert (l1, l2) == ("m0", "m1")
