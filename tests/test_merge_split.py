"""Lattice surgery: Merge, Split, Extension, Contraction (Tables 2-3)."""

import pytest

from repro.code.logical_qubit import LogicalQubit
from repro.code.patch_ops import (
    _joint_operator_faces,
    contract_patch,
    extend_patch,
    merge,
    split,
)
from repro.code.pauli import PauliString
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.hardware.validity import check_circuit
from tests.conftest import corrected, simulate


def setup_pair(d=3, orientation="horizontal"):
    from repro.code.patch_layout import tile_unit_cols, tile_unit_rows

    if orientation == "horizontal":
        grid = GridManager(tile_unit_rows(d), 2 * tile_unit_cols(d))
        origin_b = (0, tile_unit_cols(d))
    else:
        grid = GridManager(2 * tile_unit_rows(d), tile_unit_cols(d))
        origin_b = (tile_unit_rows(d), 0)
    model = HardwareModel(grid)
    a = LogicalQubit(grid, model, d, d, (0, 0), name="A")
    b = LogicalQubit(grid, model, d, d, origin_b, name="B")
    occ0 = grid.occupancy()
    return grid, model, a, b, occ0


class TestTelescoping:
    """The joint-operator faces multiply to Z_A Z_B / X_A X_B exactly."""

    @pytest.mark.parametrize("orientation", ["horizontal", "vertical"])
    @pytest.mark.parametrize("d", [2, 3])
    def test_identity(self, orientation, d):
        grid, model, a, b, occ0 = setup_pair(d, orientation)
        c = HardwareCircuit()
        a.prepare(c, basis="X" if orientation == "horizontal" else "Z", rounds=1)
        b.prepare(c, basis="X" if orientation == "horizontal" else "Z", rounds=1)
        za, xa = a.logical_z.pauli, a.logical_x.pauli
        zb, xb = b.logical_z.pauli, b.logical_x.pauli
        mr = merge(c, a, b, orientation, rounds=1)
        prod = PauliString()
        for face in _joint_operator_faces(mr.merged, orientation, *mr.sizes[:2]):
            plaq = next(p for p in mr.merged.plaquettes if p.face == face)
            prod = prod * plaq.stabilizer()
        expected = (za * zb) if orientation == "horizontal" else (xa * xb)
        # The telescoped product equals the joint operator on A and B plus
        # the seam column/row contribution.
        assert expected.support <= prod.support
        assert prod.phase == 0


class TestMergeSplit:
    @pytest.mark.parametrize("seed", range(5))
    def test_measure_zz_semantics(self, seed):
        grid, model, a, b, occ0 = setup_pair(3, "horizontal")
        c = HardwareCircuit()
        a.prepare(c, basis="X", rounds=1)
        b.prepare(c, basis="X", rounds=1)
        za, xa = a.logical_z.pauli, a.logical_x.pauli
        zb, xb = b.logical_z.pauli, b.logical_x.pauli
        mr = merge(c, a, b, "horizontal", rounds=1)
        sr = split(c, mr)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=seed)
        m = mr.outcome_sign(res)
        assert res.expectation(za * zb) == m
        frame = 1
        for lab in sr.frame_labels:
            frame *= res.sign(lab)
        assert res.expectation(xa * xb) * frame == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_measure_xx_semantics(self, seed):
        grid, model, a, b, occ0 = setup_pair(3, "vertical")
        c = HardwareCircuit()
        a.prepare(c, basis="Z", rounds=1)
        b.prepare(c, basis="Z", rounds=1)
        za, xa = a.logical_z.pauli, a.logical_x.pauli
        zb, xb = b.logical_z.pauli, b.logical_x.pauli
        mr = merge(c, a, b, "vertical", rounds=1)
        sr = split(c, mr)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=seed)
        m = mr.outcome_sign(res)
        assert res.expectation(xa * xb) == m
        frame = 1
        for lab in sr.frame_labels:
            frame *= res.sign(lab)
        assert res.expectation(za * zb) * frame == 1

    def test_even_distance_two_column_seam(self):
        grid, model, a, b, occ0 = setup_pair(4, "horizontal")
        c = HardwareCircuit()
        a.prepare(c, basis="X", rounds=1)
        b.prepare(c, basis="X", rounds=1)
        za, zb = a.logical_z.pauli, b.logical_z.pauli
        mr = merge(c, a, b, "horizontal", rounds=1)
        assert mr.sizes == (4, 2, 4)
        mr.merged.validate()
        split(c, mr)
        res = simulate(grid, c, occ0, seed=7)
        assert res.expectation(za * zb) == mr.outcome_sign(res)

    def test_merged_patch_is_valid_code(self):
        grid, model, a, b, occ0 = setup_pair(3, "horizontal")
        c = HardwareCircuit()
        a.prepare(c, basis="Z", rounds=1)
        b.prepare(c, basis="Z", rounds=1)
        mr = merge(c, a, b, "horizontal", rounds=1)
        mr.merged.validate()
        assert mr.merged.dx == 7 and mr.merged.dz == 3

    def test_merge_requires_initialized(self):
        grid, model, a, b, _ = setup_pair(3)
        c = HardwareCircuit()
        with pytest.raises(ValueError):
            merge(c, a, b, "horizontal")

    def test_merge_requires_matching_dims(self):
        grid = GridManager(8, 8)
        model = HardwareModel(grid)
        a = LogicalQubit(grid, model, 3, 3, (0, 0))
        b = LogicalQubit(grid, model, 3, 2, (0, 4))
        c = HardwareCircuit()
        a.initialized = b.initialized = True
        with pytest.raises(ValueError):
            merge(c, a, b, "horizontal")

    def test_bad_orientation(self):
        grid, model, a, b, _ = setup_pair(3)
        a.initialized = b.initialized = True
        with pytest.raises(ValueError):
            merge(HardwareCircuit(), a, b, "diagonal")


class TestExtendContract:
    @pytest.mark.parametrize("basis,attr", [("Z", "logical_z"), ("X", "logical_x")])
    @pytest.mark.parametrize("keep", ["near", "far"])
    def test_horizontal_identity(self, basis, attr, keep):
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        a = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        occ0 = grid.occupancy()
        c = HardwareCircuit()
        a.prepare(c, basis=basis, rounds=1)
        mr = extend_patch(c, a, "horizontal", rounds=1)
        lq2, _sr = contract_patch(c, mr, keep=keep)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=11)
        assert corrected(res, getattr(lq2, attr)) == 1

    @pytest.mark.parametrize("basis,attr", [("Z", "logical_z"), ("X", "logical_x")])
    @pytest.mark.parametrize("keep", ["near", "far"])
    def test_vertical_identity(self, basis, attr, keep):
        grid = GridManager(8, 4)
        model = HardwareModel(grid)
        a = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        occ0 = grid.occupancy()
        c = HardwareCircuit()
        a.prepare(c, basis=basis, rounds=1)
        mr = extend_patch(c, a, "vertical", rounds=1)
        lq2, _sr = contract_patch(c, mr, keep=keep)
        res = simulate(grid, c, occ0, seed=12)
        assert corrected(res, getattr(lq2, attr)) == 1

    def test_extension_needs_initialized(self):
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        a = LogicalQubit(grid, model, 3, 3, (0, 0))
        with pytest.raises(ValueError):
            extend_patch(HardwareCircuit(), a, "horizontal")

    def test_contract_bad_keep(self):
        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        a = LogicalQubit(grid, model, 3, 3, (0, 0))
        c = HardwareCircuit()
        a.prepare(c, basis="Z", rounds=1)
        mr = extend_patch(c, a, "horizontal", rounds=1)
        with pytest.raises(ValueError):
            contract_patch(c, mr, keep="middle")
