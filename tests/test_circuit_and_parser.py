"""HardwareCircuit container semantics and the circuit text parser."""

import pytest

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, JUNCTION_HOP_US, MOVE_US
from repro.sim.parser import ParseError, parse_circuit


class TestCircuit:
    def test_append_and_len(self):
        c = HardwareCircuit()
        c.append("Prepare_Z", (5,), 0.0, 10.0)
        assert len(c) == 1

    def test_sorted_by_time(self):
        c = HardwareCircuit()
        c.append("X_pi/2", (1,), 50.0, 10.0)
        c.append("Prepare_Z", (2,), 0.0, 10.0)
        names = [i.name for i in c.sorted_instructions()]
        assert names == ["Prepare_Z", "X_pi/2"]

    def test_load_sorts_first_at_equal_time(self):
        c = HardwareCircuit()
        c.append("X_pi/2", (1,), 0.0, 10.0)
        c.append("Load", (1,), 0.0, 0.0)
        assert c.sorted_instructions()[0].name == "Load"

    def test_makespan(self):
        c = HardwareCircuit()
        c.append("ZZ", (1, 2), 10.0, 2000.0)
        assert c.makespan == pytest.approx(2010.0)

    def test_gate_histogram_and_count(self):
        c = HardwareCircuit()
        c.append("Move", (1, 2), 0.0, MOVE_US)
        c.append("Move", (2, 3), 10.0, MOVE_US)
        c.append("ZZ", (3, 4), 20.0, 2000.0)
        assert c.gate_histogram() == {"Move": 2, "ZZ": 1}
        assert c.count("Move") == 2

    def test_measure_labels(self):
        c = HardwareCircuit()
        assert c.new_measure_label() == "m0"
        assert c.new_measure_label() == "m1"

    def test_used_sites(self):
        c = HardwareCircuit()
        c.append("ZZ", (7, 8), 0.0, 2000.0)
        assert c.used_sites() == {7, 8}

    def test_extend(self):
        a, b = HardwareCircuit(), HardwareCircuit()
        a.append("Prepare_Z", (1,), 0.0, 10.0)
        b.append("Measure_Z", (1,), 20.0, 120.0, label="m0")
        a.extend(b)
        assert len(a) == 2
        assert a.measurements()[0].label == "m0"


class TestParser:
    def setup_method(self):
        self.grid = GridManager(2, 2)

    def test_roundtrip(self):
        c = HardwareCircuit()
        c.append("Prepare_Z", (self.grid.index(0, 1),), 0.0, 10.0)
        c.append("Y_pi/4", (self.grid.index(0, 1),), 10.0, 10.0)
        c.append(
            "Move", (self.grid.index(0, 1), self.grid.index(0, 2)), 20.0, MOVE_US
        )
        c.append("Measure_Z", (self.grid.index(0, 2),), 30.0, 120.0, label="m0")
        parsed = parse_circuit(c.to_text(header="test"), self.grid)
        original = c.sorted_instructions()
        recovered = parsed.sorted_instructions()
        assert len(original) == len(recovered)
        for o, r in zip(original, recovered):
            assert (o.name, o.sites, o.t, o.duration, o.label) == (
                r.name, r.sites, r.t, r.duration, r.label,
            )

    def test_junction_move_duration_recovered(self):
        a, b = self.grid.index(0, 3), self.grid.index(0, 5)
        text = f"Move {a} {b} @0.000\n"
        parsed = parse_circuit(text, self.grid)
        assert parsed.instructions[0].duration == pytest.approx(JUNCTION_HOP_US)

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nPrepare_Z 1 @0.000\n"
        assert len(parse_circuit(text, self.grid)) == 1

    def test_load_parses(self):
        assert parse_circuit("Load 1 @0.000\n", self.grid).instructions[0].duration == 0.0

    def test_bad_hop_rejected(self):
        a, b = self.grid.index(0, 1), self.grid.index(0, 3)
        with pytest.raises(ParseError):
            parse_circuit(f"Move {a} {b} @0.000\n", self.grid)

    def test_unknown_operation_rejected(self):
        with pytest.raises(ParseError):
            parse_circuit("Hadamard 1 @0.000\n", self.grid)

    def test_missing_timestamp_rejected(self):
        with pytest.raises(ParseError):
            parse_circuit("Prepare_Z 1\n", self.grid)

    def test_label_only_on_measure(self):
        with pytest.raises(ParseError):
            parse_circuit("Prepare_Z 1 @0.0 -> m0\n", self.grid)

    def test_measure_gets_default_label(self):
        parsed = parse_circuit("Measure_Z 1 @0.000\n", self.grid)
        assert parsed.instructions[0].label == "m0"
