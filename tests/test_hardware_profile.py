"""HardwareProfile API: validation, round-trips, default bit-identity,
and cache isolation between physically different profiles.

The profile is the single source of truth for every calibration constant,
so two invariants carry the whole design: (a) the default profile is
bit-identical to the historical module constants (existing results and
checkpoints stay valid), and (b) any physically different profile changes
every cache key it touches (no cross-profile contamination).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.decode.memory import MemoryExperiment, memory_cache_key
from repro.estimator.jobs import logical_error_cells, resource_cells
from repro.estimator.sweep import sweep_operation
from repro.hardware import model as hw_model
from repro.hardware.grid import MOVE_US, JUNCTION_HOP_US, GridManager, grid_for_patch
from repro.hardware.profile import (
    DEFAULT_PROFILE,
    PROFILE_DIR,
    REQUIRED_GATES,
    HardwareProfile,
    ProfileError,
    available_profiles,
    get_profile,
)
from repro.sim.noise import NOISE_PRESETS, NoiseModel


def _variant(**changes) -> HardwareProfile:
    """A validated copy of the default profile with some fields replaced."""
    base = DEFAULT_PROFILE.to_dict()
    base.update(changes)
    return HardwareProfile.from_dict(base)


class TestValidation:
    def test_default_profile_validates(self):
        DEFAULT_PROFILE.validate()

    def test_required_gates_enforced(self):
        times = dict(DEFAULT_PROFILE.gate_times_us)
        times.pop("ZZ")
        with pytest.raises(ProfileError, match="ZZ"):
            _variant(gate_times_us=times)

    def test_negative_gate_time_rejected(self):
        times = dict(DEFAULT_PROFILE.gate_times_us)
        times["ZZ"] = -1.0
        with pytest.raises(ProfileError, match="positive"):
            _variant(gate_times_us=times)

    def test_bad_topology_rejected(self):
        with pytest.raises(ProfileError, match="topology"):
            _variant(topology="hexagonal")

    def test_bad_probability_rejected(self):
        presets = {n: dict(DEFAULT_PROFILE.preset_params(n)) for n in DEFAULT_PROFILE.preset_names}
        presets["near_term"]["p2"] = 1.5
        with pytest.raises(ProfileError, match="not a probability"):
            _variant(noise_presets=presets)

    def test_unknown_key_rejected(self):
        payload = DEFAULT_PROFILE.to_dict()
        payload["zone_pich_um"] = 420.0  # typo'd knob must not pass silently
        with pytest.raises(ProfileError, match="zone_pich_um"):
            HardwareProfile.from_dict(payload)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ProfileError, match="baseline"):
            get_profile("no_such_trap")

    def test_errors_are_one_line(self):
        for build in (
            lambda: get_profile("no_such_trap"),
            lambda: _variant(move_us=-1.0),
            lambda: _variant(topology="hexagonal"),
        ):
            with pytest.raises(ProfileError) as err:
                build()
            assert "\n" not in str(err.value)


class TestRoundTrip:
    def test_shipped_baseline_matches_default(self):
        shipped = HardwareProfile.load(PROFILE_DIR / "baseline.toml")
        assert shipped == DEFAULT_PROFILE
        assert shipped.fingerprint == DEFAULT_PROFILE.fingerprint

    @pytest.mark.parametrize("name", ["baseline", "slow_junction", "fast_projected"])
    def test_shipped_profiles_validate(self, name):
        prof = get_profile(name)
        prof.validate()
        assert prof.name == name

    def test_json_round_trip_exact(self, tmp_path):
        for name in available_profiles():
            prof = get_profile(name)
            path = tmp_path / f"{name}.json"
            prof.dump(path)
            again = HardwareProfile.load(path)
            assert again == prof
            assert again.fingerprint == prof.fingerprint

    def test_dict_round_trip_exact(self):
        prof = get_profile("slow_junction")
        assert HardwareProfile.from_dict(prof.to_dict()) == prof

    def test_fingerprint_ignores_cosmetics(self):
        renamed = _variant(name="same_physics", description="different words")
        assert renamed.fingerprint == DEFAULT_PROFILE.fingerprint

    def test_fingerprint_tracks_physics(self):
        times = dict(DEFAULT_PROFILE.gate_times_us)
        times["ZZ"] = times["ZZ"] + 1.0
        assert _variant(gate_times_us=times).fingerprint != DEFAULT_PROFILE.fingerprint

    def test_fingerprint_is_stable_json(self):
        # The fingerprint must be derived from canonical JSON (sorted keys),
        # so a dict built in any insertion order fingerprints identically.
        payload = DEFAULT_PROFILE.to_dict()
        shuffled = dict(reversed(list(payload.items())))
        assert HardwareProfile.from_dict(shuffled).fingerprint == DEFAULT_PROFILE.fingerprint


class TestDefaultBitIdentity:
    """The default profile IS the historical constants — keys and all."""

    def test_module_constants_are_default_views(self):
        assert MOVE_US == DEFAULT_PROFILE.move_us
        assert JUNCTION_HOP_US == DEFAULT_PROFILE.junction_hop_us
        assert dict(hw_model.GATE_TIMES_US) == dict(DEFAULT_PROFILE.gate_times)
        for name, params in NOISE_PRESETS.items():
            expected = DEFAULT_PROFILE.preset_params(name)
            got = {k: getattr(params, k) for k in expected}
            assert got == expected

    def test_memory_cache_key_unchanged_for_default(self):
        noise = NoiseModel.uniform(1e-3)
        legacy = memory_cache_key(3, 3, 3, "Z", noise)
        threaded = memory_cache_key(3, 3, 3, "Z", noise, profile=DEFAULT_PROFILE)
        assert legacy == threaded
        assert all("profile" not in str(part) for part in legacy)

    def test_default_cells_have_no_profile_in_payload(self):
        (cell,) = resource_cells(["Idle"], [3])
        assert "profile" not in cell.key_payload()
        (cell,) = logical_error_cells([3], [NoiseModel.uniform(1e-3)], shots=10)
        assert "profile" not in str(cell.key_payload())

    def test_explicit_baseline_equals_implicit_default(self):
        implicit = sweep_operation("Idle", [3])
        explicit = sweep_operation("Idle", [3], profile="baseline")
        assert implicit == explicit


class TestCacheIsolation:
    def test_one_gate_time_changes_every_key(self):
        times = dict(DEFAULT_PROFILE.gate_times_us)
        times["Measure_Z"] = times["Measure_Z"] + 1.0
        tweaked = _variant(name="tweaked", gate_times_us=times)
        assert tweaked.fingerprint != DEFAULT_PROFILE.fingerprint

        noise = NoiseModel.uniform(1e-3)
        default_key = memory_cache_key(3, 3, 3, "Z", noise)
        tweaked_key = memory_cache_key(3, 3, 3, "Z", noise, profile=tweaked)
        assert default_key != tweaked_key

        (a,) = resource_cells(["Idle"], [3])
        (b,) = resource_cells(["Idle"], [3], profile=tweaked)
        assert a.key_payload() != b.key_payload()

        (a,) = logical_error_cells([3], [noise], shots=10)
        (b,) = logical_error_cells([3], [noise], shots=10, profile=tweaked)
        assert a.key_payload() != b.key_payload()

    def test_distinct_profiles_get_distinct_compile_cores(self):
        base = MemoryExperiment(distance=3, basis="Z")
        slow = MemoryExperiment(distance=3, basis="Z", profile="slow_junction")
        assert base.profile.fingerprint != slow.profile.fingerprint
        # Different gate/shuttle durations must reach the compiled schedule.
        base_span = base.compiled.circuit.makespan
        slow_span = slow.compiled.circuit.makespan
        assert slow_span > base_span

    def test_profile_sweep_differs_from_baseline(self):
        reports = sweep_operation("Idle", [3], profile=["baseline", "slow_junction"])
        assert [r.profile for r in reports] == ["baseline", "slow_junction"]
        assert reports[1].computation_time_s > reports[0].computation_time_s
        assert reports[1].n_instructions == reports[0].n_instructions


class TestApiThreading:
    def test_grid_manager_positional_compat(self):
        legacy = GridManager(5, 5)
        assert legacy.profile is DEFAULT_PROFILE
        assert legacy.move_us == MOVE_US

    def test_grid_manager_with_profile(self):
        grid = GridManager(get_profile("slow_junction"), 5, 5)
        assert grid.move_us == 10.5
        assert grid.junction_hop_us == 1050.0

    def test_grid_for_patch_matches_legacy_margins(self):
        grid = grid_for_patch(None, dx=3, dz=3)
        legacy = GridManager(5, 5)
        assert (grid.height, grid.width) == (legacy.height, legacy.width)

    def test_noise_preset_resolves_against_profile(self):
        default = NoiseModel.preset("near_term")
        fast = NoiseModel.preset("near_term", profile="fast_projected")
        assert fast.params.p2 < default.params.p2

    def test_gate_times_mutation_warns(self):
        with pytest.warns(DeprecationWarning, match="HardwareProfile"):
            hw_model.GATE_TIMES_US["ZZ"] = hw_model.GATE_TIMES_US["ZZ"]

    def test_profile_is_hashable_and_picklable(self):
        import pickle

        prof = get_profile("fast_projected")
        assert pickle.loads(pickle.dumps(prof)) == prof
        assert len({prof, get_profile("fast_projected")}) == 1

    def test_toml_and_json_parse_identically(self, tmp_path):
        prof = get_profile("slow_junction")
        json_path = tmp_path / "p.json"
        json_path.write_text(prof.dumps())
        assert HardwareProfile.load(json_path).fingerprint == prof.fingerprint
