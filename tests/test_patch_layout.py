"""Patch geometry: faces, arrangements, tiles, logical operators."""

import pytest

from repro.code.arrangements import Arrangement
from repro.code.patch_layout import PatchLayout, tile_unit_cols, tile_unit_rows
from repro.code.plaquette import N_PATTERN, Z_PATTERN
from repro.hardware.grid import GridManager
from repro.util.geometry import SiteType

ALL_DIMS = [(2, 2), (3, 3), (2, 3), (3, 2), (4, 3), (3, 4), (4, 4), (5, 3), (5, 5)]


def layout(dx, dz, arr=Arrangement.STANDARD):
    grid = GridManager(dz + 2, dx + 2)
    return PatchLayout(grid, dx, dz, arrangement=arr)


class TestTileDimensions:
    """Tile size: 2*ceil((d+1)/2) units per axis (§2.3)."""

    @pytest.mark.parametrize("d,expect", [(2, 4), (3, 4), (4, 6), (5, 6), (7, 8)])
    def test_formula(self, d, expect):
        assert tile_unit_rows(d) == expect
        assert tile_unit_cols(d) == expect

    def test_odd_distance_one_strip(self):
        assert tile_unit_cols(5) - 5 == 1

    def test_even_distance_two_strips(self):
        assert tile_unit_cols(4) - 4 == 2


class TestFaces:
    @pytest.mark.parametrize("dx,dz", ALL_DIMS)
    @pytest.mark.parametrize("arr", list(Arrangement))
    def test_face_count(self, dx, dz, arr):
        assert len(layout(dx, dz, arr).face_coords()) == dx * dz - 1

    @pytest.mark.parametrize("dx,dz", ALL_DIMS)
    def test_stabilizers_pairwise_commute(self, dx, dz):
        plaqs = layout(dx, dz).plaquettes()
        stabs = [p.stabilizer() for p in plaqs]
        for i, a in enumerate(stabs):
            for b in stabs[i + 1 :]:
                assert a.commutes_with(b)

    def test_standard_d3_boundary_positions(self):
        lay = layout(3, 3)
        faces = set(lay.face_coords())
        assert (-1, 1) in faces and (-1, 0) not in faces  # top Z at odd slots
        assert (2, 0) in faces and (2, 1) not in faces  # bottom Z at even
        assert (0, -1) in faces and (1, -1) not in faces  # left X at even
        assert (1, 2) in faces and (0, 2) not in faces  # right X at odd

    def test_flipped_d3_boundaries_shift(self):
        lay = layout(3, 3, Arrangement.FLIPPED)
        faces = set(lay.face_coords())
        assert (-1, 0) in faces and (-1, 1) not in faces
        assert (1, -1) in faces and (0, -1) not in faces

    def test_interior_letters_checkerboard(self):
        lay = layout(3, 3)
        assert lay.face_letter(0, 0) == "Z"
        assert lay.face_letter(0, 1) == "X"
        assert lay.face_letter(1, 1) == "Z"

    def test_rotated_swaps_letters(self):
        assert layout(3, 3, Arrangement.ROTATED).face_letter(0, 0) == "X"

    def test_weights(self):
        plaqs = layout(3, 3).plaquettes()
        weights = sorted(p.weight for p in plaqs)
        assert weights == [2, 2, 2, 2, 4, 4, 4, 4]

    def test_d2_code_structure(self):
        # d=2: one weight-4 face plus two weight-2 faces (§4.3's d=2 check).
        plaqs = layout(2, 2).plaquettes()
        weights = sorted(p.weight for p in plaqs)
        assert weights == [2, 2, 4]


class TestPatterns:
    """Fig 6: Z faces use the Z pattern, X faces the N pattern (§3.3)."""

    def test_pattern_assignment(self):
        for plaq in layout(3, 3).plaquettes():
            expected = Z_PATTERN if plaq.pauli == "Z" else N_PATTERN
            assert plaq.pattern == expected

    def test_patterns_interleave_per_data_qubit(self):
        """Each data qubit is visited at most once per layer."""
        lay = layout(5, 5)
        visits: dict[tuple[int, int], list[int]] = {}
        for plaq in lay.plaquettes():
            for lyr, corner in plaq.visits():
                visits.setdefault(plaq.corners[corner], []).append(lyr)
        for ij, layers in visits.items():
            assert len(layers) == len(set(layers)), f"double-gated data {ij}"

    def test_visits_keep_layer_slots(self):
        # A weight-2 top face (corners c, d) visits at layers 3 and 4 (Z) or
        # 2 and 4 (N), never renumbered to 1 and 2.
        lay = layout(3, 3)
        top = next(p for p in lay.plaquettes() if p.face[0] == -1)
        assert [lyr for lyr, _ in top.visits()] == [3, 4]


class TestInfrastructure:
    def test_data_on_operation_sites(self):
        lay = layout(3, 3)
        for site in lay.data_sites().values():
            assert lay.grid.site_type(site) is SiteType.OPERATION

    def test_homes_are_zones(self):
        lay = layout(3, 3)
        for plaq in lay.plaquettes():
            assert lay.grid.is_zone(plaq.home)

    def test_interior_corridors_disjoint(self):
        lay = layout(5, 5)
        homes = [p.home for p in lay.plaquettes()]
        assert len(homes) == len(set(homes))

    def test_pockets_adjacent_to_data(self):
        lay = layout(3, 3)
        for plaq in lay.plaquettes():
            for corner, pocket in plaq.pockets.items():
                assert lay.grid.gate_adjacent(pocket, plaq.data_sites[corner])

    def test_path_within_face(self):
        lay = layout(3, 3)
        plaq = lay.build_plaquette(0, 0)
        path = plaq.path(plaq.home, plaq.pockets["a"])
        assert path[0] == plaq.home and path[-1] == plaq.pockets["a"]

    def test_boundary_plaquette_constructor(self):
        lay = layout(3, 3)
        plaq = lay.build_boundary_plaquette(-1, 0, "X")
        assert plaq.pauli == "X" and plaq.weight == 2
        with pytest.raises(ValueError):
            lay.build_boundary_plaquette(0, 0, "X")  # interior

    def test_nonexistent_face_rejected(self):
        with pytest.raises(ValueError):
            layout(3, 3).build_plaquette(-1, 0)


class TestLogicals:
    def test_standard_directions(self):
        """Standard arrangement: Z vertical, X horizontal (§2.3)."""
        lay = layout(3, 3)
        z = lay.logical_z()
        x = lay.logical_x()
        z_coords = [lay.grid.coords(s) for s in z.support]
        x_coords = [lay.grid.coords(s) for s in x.support]
        assert len({c for _r, c in z_coords}) == 1  # single column
        assert len({r for r, _c in x_coords}) == 1  # single row
        assert not z.commutes_with(x)

    @pytest.mark.parametrize("arr", list(Arrangement))
    def test_logicals_commute_with_all_faces(self, arr):
        lay = layout(3, 3, arr)
        for op in (lay.logical_z(), lay.logical_x()):
            for plaq in lay.plaquettes():
                assert plaq.stabilizer().commutes_with(op)

    def test_vertical_letter_per_arrangement(self):
        assert Arrangement.STANDARD.vertical_letter == "Z"
        assert Arrangement.ROTATED.vertical_letter == "X"
        assert Arrangement.FLIPPED.vertical_letter == "X"
        assert Arrangement.ROTATED_FLIPPED.vertical_letter == "Z"


class TestArrangementTransitions:
    """Fig 2 transition structure."""

    def test_hadamard_toggles_swap(self):
        assert Arrangement.STANDARD.after_transversal_hadamard() == Arrangement.ROTATED
        assert Arrangement.ROTATED.after_transversal_hadamard() == Arrangement.STANDARD

    def test_flip_toggles_offset(self):
        assert Arrangement.STANDARD.after_flip_patch() == Arrangement.FLIPPED
        assert Arrangement.ROTATED.after_flip_patch() == Arrangement.ROTATED_FLIPPED

    def test_column_shift_toggles_both(self):
        assert Arrangement.STANDARD.after_column_shift() == Arrangement.ROTATED_FLIPPED
        assert Arrangement.ROTATED.after_column_shift() == Arrangement.FLIPPED

    def test_flip_then_hadamard_is_rotated_flipped(self):
        # §3.3: "If Flip Patch is followed by the transversal Hadamard
        # [leaving the rotated-flipped arrangement]".
        arr = Arrangement.STANDARD.after_flip_patch().after_transversal_hadamard()
        assert arr == Arrangement.ROTATED_FLIPPED


class TestRender:
    def test_ascii_contains_site_kinds(self):
        art = layout(3, 3).render_ascii()
        for ch in "JOMDzx":
            assert ch in art

    def test_distance_below_two_rejected(self):
        with pytest.raises(ValueError):
            layout(1, 3)
