"""GF(2) linear algebra: unit and property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.gf2 import (
    gf2_decompose,
    gf2_in_rowspace,
    gf2_nullspace,
    gf2_rank,
    gf2_row_reduce_tracked,
    gf2_rref,
    gf2_solve,
)


def matrices(max_rows=8, max_cols=8):
    return st.integers(1, max_rows).flatmap(
        lambda r: st.integers(1, max_cols).flatmap(
            lambda c: st.lists(
                st.lists(st.integers(0, 1), min_size=c, max_size=c),
                min_size=r,
                max_size=r,
            ).map(lambda rows: np.array(rows, dtype=np.uint8))
        )
    )


class TestRref:
    def test_identity(self):
        m = np.eye(4, dtype=np.uint8)
        rref, pivots = gf2_rref(m)
        assert np.array_equal(rref, m)
        assert pivots == [0, 1, 2, 3]

    def test_dependent_rows(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            gf2_rref(np.array([1, 0, 1]))

    @given(matrices())
    @settings(max_examples=60, deadline=None)
    def test_rref_preserves_rowspace(self, m):
        rref, pivots = gf2_rref(m)
        assert gf2_rank(rref) == gf2_rank(m) == len(pivots)
        for row in m:
            assert gf2_in_rowspace(rref, row)

    @given(matrices())
    @settings(max_examples=60, deadline=None)
    def test_tracked_reduction_is_consistent(self, m):
        rref, t, _ = gf2_row_reduce_tracked(m)
        assert np.array_equal((t @ m) % 2, rref)


class TestSolve:
    def test_solves_combination(self):
        a = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        b = np.array([1, 1, 0], dtype=np.uint8)
        x = gf2_solve(a, b)
        assert x is not None
        assert np.array_equal((x @ a) % 2, b)

    def test_unsolvable_returns_none(self):
        a = np.array([[1, 0, 0]], dtype=np.uint8)
        assert gf2_solve(a, np.array([0, 1, 0], dtype=np.uint8)) is None

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2_solve(np.eye(2, dtype=np.uint8), np.array([1, 0, 0], dtype=np.uint8))

    @given(matrices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_solve_roundtrip(self, m, data):
        coeffs = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=m.shape[0], max_size=m.shape[0])
            ),
            dtype=np.uint8,
        )
        b = (coeffs @ m) % 2
        x = gf2_solve(m, b)
        assert x is not None
        assert np.array_equal((x @ m) % 2, b)

    def test_decompose_alias(self):
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        b = np.array([1, 0], dtype=np.uint8)
        assert np.array_equal(gf2_decompose(a, b), gf2_solve(a, b))


class TestNullspace:
    @given(matrices())
    @settings(max_examples=60, deadline=None)
    def test_nullspace_annihilates(self, m):
        ns = gf2_nullspace(m)
        assert ns.shape[0] == m.shape[1] - gf2_rank(m)
        for v in ns:
            assert not ((m @ v) % 2).any()

    def test_full_rank_trivial(self):
        assert gf2_nullspace(np.eye(3, dtype=np.uint8)).shape == (0, 3)
