"""Decoder registry, batch fast paths, guards, and cross-decoder equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decode import (
    BOUNDARY,
    Decoder,
    DetectorEdge,
    LookupDecoder,
    MatchingGraph,
    MemoryExperiment,
    UnionFindDecoder,
    UnweightedUnionFindDecoder,
    available_decoders,
    build_dem_graph,
    decoder_class,
    get_decoder,
)
from repro.sim.noise import NoiseModel


def syndrome_of(graph: MatchingGraph, edge_indices) -> np.ndarray:
    syn = np.zeros(graph.n_detectors, dtype=np.uint8)
    for k in edge_indices:
        e = graph.edges[k]
        for node in (e.u, e.v):
            if node != BOUNDARY:
                syn[node] ^= 1
    return syn


def build_decoder(name: str, exp: MemoryExperiment) -> Decoder:
    """Instantiate any registry entry over an experiment's schedule graph,
    supplying the detector layout to decoders that want it."""
    if decoder_class(name).wants_layout:
        return get_decoder(
            name, exp.graph, n_faces=len(exp.faces), window=4, commit=2
        )
    return get_decoder(name, exp.graph)


@pytest.fixture(scope="module")
def exp3() -> MemoryExperiment:
    return MemoryExperiment(distance=3, basis="Z")


class TestRegistry:
    def test_builtin_decoders_registered(self):
        names = available_decoders()
        assert {
            "union_find",
            "union_find_unweighted",
            "union_find_windowed",
            "lookup",
        } <= set(names)

    def test_get_decoder_returns_protocol_instances(self, exp3):
        for name, cls in [
            ("union_find", UnionFindDecoder),
            ("union_find_unweighted", UnweightedUnionFindDecoder),
            ("lookup", LookupDecoder),
        ]:
            dec = get_decoder(name, exp3.graph)
            assert isinstance(dec, cls) and isinstance(dec, Decoder)
            assert dec.name == name
            assert dec.graph is exp3.graph

    def test_unknown_decoder_rejected_with_choices(self, exp3):
        with pytest.raises(ValueError, match="unknown decoder.*union_find"):
            get_decoder("mwpm", exp3.graph)

    def test_lookup_refuses_large_graphs(self):
        exp5 = MemoryExperiment(distance=5, basis="Z")
        with pytest.raises(ValueError, match="lookup.*limit"):
            get_decoder("lookup", exp5.graph)

    def test_decode_and_decode_batch_agree(self, exp3):
        rng = np.random.default_rng(5)
        syndromes = (rng.random((32, exp3.n_detectors)) < 0.08).astype(np.uint8)
        for name in available_decoders():
            dec = build_decoder(name, exp3)
            batch = dec.decode_batch(syndromes)
            single = np.array([dec.decode(s) for s in syndromes])
            assert np.array_equal(batch, single), name


class TestBatchFastPaths:
    """Satellite regressions: empty batches and all-zero syndromes."""

    @pytest.mark.parametrize(
        "name", ["union_find", "union_find_unweighted", "union_find_windowed", "lookup"]
    )
    def test_empty_batch_returns_well_shaped_uint8(self, exp3, name):
        dec = build_decoder(name, exp3)
        out = dec.decode_batch(np.zeros((0, exp3.n_detectors), dtype=np.uint8))
        assert out.shape == (0,)
        assert out.dtype == np.uint8

    @pytest.mark.parametrize(
        "name", ["union_find", "union_find_unweighted", "union_find_windowed", "lookup"]
    )
    def test_all_zero_syndromes_decode_trivially(self, exp3, name):
        dec = build_decoder(name, exp3)
        out = dec.decode_batch(np.zeros((7, exp3.n_detectors), dtype=np.uint8))
        assert out.shape == (7,)
        assert out.dtype == np.uint8
        assert not out.any()
        assert dec.decode(np.zeros(exp3.n_detectors, dtype=np.uint8)) == 0

    def test_shape_validation(self, exp3):
        for name in available_decoders():
            dec = build_decoder(name, exp3)
            with pytest.raises(ValueError, match="does not match"):
                dec.decode(np.zeros(exp3.n_detectors + 1, dtype=np.uint8))
            with pytest.raises(ValueError, match="does not match"):
                dec.decode_batch(np.zeros((4, exp3.n_detectors + 1), dtype=np.uint8))


class TestDetectorCountGuard:
    """Satellite: a decoder built for the wrong layout must be rejected loudly."""

    def test_mismatched_decoder_graph_raises(self, exp3):
        wrong = MatchingGraph(3, [DetectorEdge(0, 1), DetectorEdge(2, BOUNDARY)])
        exp3._decoders[("schedule", "union_find")] = get_decoder("union_find", wrong)
        try:
            with pytest.raises(ValueError, match="different detector layout"):
                exp3.decoder_for(None, "union_find")
        finally:
            exp3._decoders.pop(("schedule", "union_find"), None)

    def test_matching_decoder_graph_accepted(self, exp3):
        dec = exp3.decoder_for(None, "union_find")
        assert dec.graph.n_detectors == exp3.n_detectors

    def test_rejected_decoder_is_not_cached(self):
        """Satellite regression: the guard must run *before* the cache
        insert.  A mismatched DEM graph used to leave the rejected decoder
        in ``_decoders`` permanently — every later call with the same key
        then failed even after the bad graph was gone."""
        exp = MemoryExperiment(distance=3, basis="Z")
        model = NoiseModel.uniform(1e-3)
        key = exp._params_key(model)
        wrong = MatchingGraph(3, [DetectorEdge(0, 1), DetectorEdge(2, BOUNDARY)])
        exp._dem_graphs[key] = wrong
        try:
            with pytest.raises(ValueError, match="different detector layout"):
                exp.decoder_for(model, "union_find")
            # The rejected decoder must not have polluted the cache ...
            assert not any(k[0] == key for k in exp._decoders)
            # ... so fixing the graph heals the experiment in place.
            del exp._dem_graphs[key]
            dec = exp.decoder_for(model, "union_find")
            assert dec.graph.n_detectors == exp.n_detectors
        finally:
            exp._dem_graphs.pop(key, None)


class TestFrameSamplerCache:
    """Satellite regression: one FrameSampler per noise-parameter key."""

    def test_sample_frame_reuses_sampler(self):
        exp = MemoryExperiment(distance=3, basis="Z")
        model = NoiseModel.uniform(1.7e-3)  # unique rate: cold cache entry
        assert exp._params_key(model) not in exp._core.frame_samplers
        first = exp.frame_sampler(model)
        assert exp.frame_sampler(model) is first
        exp.sample_frame(8, noise=model, seed=0)
        assert exp._core.frame_samplers[exp._params_key(model)] is first
        # A second instance over the same core shares the cached sampler.
        assert MemoryExperiment(distance=3, basis="Z").frame_sampler(model) is first

    def test_sampler_cache_is_per_params(self):
        exp = MemoryExperiment(distance=3, basis="Z")
        a = exp.frame_sampler(NoiseModel.uniform(1.9e-3))
        b = exp.frame_sampler(NoiseModel.uniform(2.1e-3))
        assert a is not b

    def test_cached_sampler_results_unchanged(self):
        """Caching must not perturb the per-shot streams."""
        exp = MemoryExperiment(distance=3, basis="Z")
        model = NoiseModel.uniform(2.3e-3)
        x = exp.sample_frame(50, noise=model, seed=3)
        y = exp.sample_frame(50, noise=model, seed=3)
        assert np.array_equal(x.detectors, y.detectors)
        assert np.array_equal(x.observables, y.observables)


class TestSingleFaultEquivalence:
    """Every decoder corrects every single edge fault, on both graph builds."""

    @pytest.mark.parametrize("basis", ["Z", "X"])
    @pytest.mark.parametrize("name", ["union_find", "union_find_unweighted", "lookup"])
    def test_schedule_graph_single_faults(self, basis, name):
        exp = MemoryExperiment(distance=3, basis=basis)
        dec = get_decoder(name, exp.graph)
        for k in range(exp.graph.n_edges):
            syn = syndrome_of(exp.graph, [k])
            assert dec.decode(syn) == exp.graph.edges[k].frame, exp.graph.edges[k]

    @pytest.mark.parametrize("basis", ["Z", "X"])
    @pytest.mark.parametrize("name", ["union_find", "union_find_unweighted", "lookup"])
    def test_dem_graph_single_faults(self, basis, name):
        exp = MemoryExperiment(distance=3, basis=basis)
        graph = exp.matching_graph(NoiseModel.uniform(1e-3))
        assert graph is not exp.graph and graph.is_weighted
        dec = get_decoder(name, graph)
        for k in range(graph.n_edges):
            syn = syndrome_of(graph, [k])
            assert dec.decode(syn) == graph.edges[k].frame, graph.edges[k]

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["union_find", "union_find_unweighted"])
    def test_dem_graph_single_faults_d5(self, name):
        exp = MemoryExperiment(distance=5, basis="Z")
        graph = exp.matching_graph(NoiseModel.uniform(1e-3))
        dec = get_decoder(name, graph)
        for k in range(graph.n_edges):
            syn = syndrome_of(graph, [k])
            assert dec.decode(syn) == graph.edges[k].frame, graph.edges[k]


class TestLookupOracle:
    """The exact table decoder anchors the union-find heuristics at d=3."""

    def test_lookup_ler_not_worse_than_union_find(self, exp3):
        noise = NoiseModel.uniform(1e-3)
        samples = exp3.sample_frame(20000, noise=noise, seed=11)
        raw = samples.observables[:, 0]
        graph = exp3.matching_graph(noise)
        fails = {}
        for name in ("lookup", "union_find"):
            pred = get_decoder(name, graph).decode_batch(samples.detectors)
            fails[name] = int((raw ^ pred).sum())
        # Exact minimum-weight decoding can only beat (or tie) the heuristic.
        assert fails["lookup"] <= fails["union_find"]

    def test_union_find_agrees_with_oracle_on_dense_syndromes(self, exp3):
        graph = exp3.matching_graph(NoiseModel.uniform(1e-3))
        oracle = get_decoder("lookup", graph)
        uf = get_decoder("union_find", graph)
        rng = np.random.default_rng(3)
        syn = (rng.random((2000, exp3.n_detectors)) < 0.08).astype(np.uint8)
        agreement = float((oracle.decode_batch(syn) == uf.decode_batch(syn)).mean())
        assert agreement > 0.97


class TestWeightedNotWorse:
    """Acceptance: weighted LER <= unweighted at every standard sweep point."""

    @pytest.mark.parametrize("distance", [3, 5])
    def test_weighted_ler_not_worse(self, distance):
        exp = MemoryExperiment(distance=distance, basis="Z")
        models = [
            NoiseModel.uniform(3e-4),
            NoiseModel.uniform(1e-3),
            NoiseModel.uniform(5e-3),
            NoiseModel.preset("near_term"),
        ]
        for noise in models:
            samples = exp.sample_frame(20000, noise=noise, seed=7)
            raw = samples.observables[:, 0]
            fails = {}
            for name in ("union_find", "union_find_unweighted"):
                pred = exp.decoder_for(noise, name).decode_batch(samples.detectors)
                fails[name] = int((raw ^ pred).sum())
            assert fails["union_find"] <= fails["union_find_unweighted"], (
                distance,
                noise.name,
                fails,
            )


class TestDemGraph:
    def test_rejects_hyperedges(self):
        from repro.sim.dem import DetectorErrorModel

        dem = DetectorErrorModel(
            n_detectors=4,
            n_observables=1,
            probs=np.array([1e-3]),
            detectors=[(0, 1, 2)],
            observables=np.array([0], dtype=np.uint64),
        )
        with pytest.raises(ValueError, match="at most two"):
            build_dem_graph(dem)

    def test_rejects_bad_observable_index(self, exp3):
        dem = exp3.detector_error_model(NoiseModel.uniform(1e-3))
        with pytest.raises(ValueError, match="out of range"):
            build_dem_graph(dem, observable=3)

    def test_parallel_mechanisms_merge(self):
        from repro.sim.dem import DetectorErrorModel

        dem = DetectorErrorModel(
            n_detectors=2,
            n_observables=1,
            probs=np.array([1e-3, 2e-3, 5e-4]),
            detectors=[(0, 1), (0, 1), (0,)],
            observables=np.array([0, 1, 0], dtype=np.uint64),
        )
        graph = build_dem_graph(dem)
        assert graph.n_edges == 2
        pair = next(e for e in graph.edges if e.v != BOUNDARY)
        # XOR-combined probability, frame bit of the strongest contributor.
        p = 1e-3 * (1 - 2e-3) + 2e-3 * (1 - 1e-3)
        assert pair.frame == 1
        assert pair.weight == pytest.approx(np.log((1 - p) / p))

    def test_run_uses_weighted_decoder_and_reports_it(self, exp3):
        noise = NoiseModel.uniform(1e-3)
        report = exp3.run(200, noise=noise, engine="frame")
        assert report.decoder == "union_find"
        assert "decoder" in report.to_dict()
        report_u = exp3.run(
            200, noise=noise, engine="frame", decoder="union_find_unweighted"
        )
        assert report_u.decoder == "union_find_unweighted"

    def test_dem_graph_cached_per_parameter_set(self, exp3):
        a = exp3.matching_graph(NoiseModel.uniform(1e-3))
        b = exp3.matching_graph(NoiseModel.uniform(1e-3))
        c = exp3.matching_graph(NoiseModel.uniform(2e-3))
        assert a is b
        assert c is not a
