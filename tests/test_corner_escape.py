"""Corner-qubit measure-out/re-preparation mechanics (§2.5).

The escape hatch used by corner movement when a new boundary face would
otherwise conflict with a logical operator: remove the corner data qubit in
the complementary basis, re-prepare it in the face's basis, and re-attach.
Tested in isolation here (even-distance flips exercise it end-to-end but
are a documented limitation, see EXPERIMENTS.md).
"""

from repro.code.corner import (
    DeformationSession,
    add_boundary_stabilizer,
)
from repro.code.pauli import PauliString
from tests.conftest import corrected, fresh_patch, simulate


class TestMeasureOutMechanics:
    def test_gauge_fixing_removes_one_generator(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        n = len(lq.stabilizers)
        lq.measure_out_data_qubit(c, (2, 2), "Z")
        # One anticommuting generator removed, others repaired by products.
        assert len(lq.stabilizers) == n - 1
        meas = PauliString({lq.layout.data_site(2, 2): "Z"})
        for s in lq.stabilizers:
            assert s.commutes_with(meas)

    def test_logical_survives_corner_removal_both_bases(self):
        for basis, attr, corner in (("Z", "logical_z", (0, 0)), ("X", "logical_x", (0, 0))):
            grid, _, lq, c, occ0 = fresh_patch(3, 3)
            lq.prepare(c, basis=basis, rounds=1)
            lq.measure_out_data_qubit(c, corner, basis)
            res = simulate(grid, c, occ0, seed=1)
            assert corrected(res, getattr(lq, attr)) == 1

    def test_forbidden_removal_raises(self):
        """Measuring a qubit in a basis that hits a logical with no
        repairing stabilizer must refuse rather than corrupt."""
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        # On d=2, measuring corner (0,0) in X anticommutes with Z_L and the
        # only Z-type stabilizer is the full plaquette; the repair leaves
        # Z_L intact (weight check) or raises — either way Z_L survives if
        # no exception escaped.
        try:
            lq.measure_out_data_qubit(c, (0, 0), "X")
            for s in lq.stabilizers:
                assert s.commutes_with(lq.logical_z.pauli)
        except RuntimeError:
            pass  # refusal is the documented safe behaviour


class TestRedundantFaceMeasurement:
    def test_implied_face_is_harmless(self):
        """A face already in the generated group can be measured freely
        (deterministic outcome, no rank change)."""
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        session = DeformationSession(lq)
        # Add a face, then ask for it again: second call is a no-op.
        s1 = add_boundary_stabilizer(session, c, -1, 0, "X")
        n = len(lq.stabilizers)
        s2 = add_boundary_stabilizer(session, c, -1, 0, "X")
        assert s1.equals_up_to_sign(s2)
        assert len(lq.stabilizers) == n

    def test_session_tracks_labels(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        session = DeformationSession(lq)
        for plaq in lq.plaquettes:
            assert session.labels_for(plaq.stabilizer()), "seeded from last round"
        new = add_boundary_stabilizer(session, c, -1, 0, "X")
        assert len(session.labels_for(new)) == 1
