"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* patch/program the library produces:
compiled circuits always pass the independent validity replay, patches
always satisfy the parity-check contract, schedulers never double-book a
data qubit within a layer, and simulated logical values are deterministic
given outcomes.
"""

from hypothesis import given, settings, strategies as st

from repro.code.arrangements import Arrangement
from repro.code.patch_layout import PatchLayout
from repro.hardware.grid import GridManager
from repro.hardware.validity import check_circuit
from repro.util.gf2 import gf2_rank
from tests.conftest import corrected, fresh_patch, simulate

dims = st.tuples(st.integers(2, 5), st.integers(2, 5))
arrangements = st.sampled_from(list(Arrangement))


class TestPatchInvariants:
    @given(dims, arrangements)
    @settings(max_examples=25, deadline=None)
    def test_any_patch_has_valid_code_structure(self, dxz, arr):
        dx, dz = dxz
        grid = GridManager(dz + 2, dx + 2)
        layout = PatchLayout(grid, dx, dz, arrangement=arr)
        plaqs = layout.plaquettes()
        assert len(plaqs) == dx * dz - 1
        stabs = [p.stabilizer() for p in plaqs]
        for i, a in enumerate(stabs):
            for b in stabs[i + 1 :]:
                assert a.commutes_with(b)
        z, x = layout.logical_z(), layout.logical_x()
        assert not z.commutes_with(x)
        for s in stabs:
            assert s.commutes_with(z) and s.commutes_with(x)

    @given(dims, arrangements)
    @settings(max_examples=15, deadline=None)
    def test_stabilizer_rank_is_n_minus_one(self, dxz, arr):
        from repro.code.logical_qubit import _symplectic

        dx, dz = dxz
        grid = GridManager(dz + 2, dx + 2)
        layout = PatchLayout(grid, dx, dz, arrangement=arr)
        sites = sorted(layout.data_sites().values())
        mat = _symplectic([p.stabilizer() for p in layout.plaquettes()], sites)
        assert gf2_rank(mat) == dx * dz - 1

    @given(dims)
    @settings(max_examples=15, deadline=None)
    def test_every_data_qubit_covered_by_both_letters_or_is_corner(self, dxz):
        """Interior data qubits see X and Z faces; corners may see fewer,
        but every qubit is covered by at least one face of each letter
        unless it is one of the four patch corners."""
        dx, dz = dxz
        grid = GridManager(dz + 2, dx + 2)
        layout = PatchLayout(grid, dx, dz)
        cover: dict[tuple[int, int], set[str]] = {}
        for p in layout.plaquettes():
            for ij in p.corners.values():
                cover.setdefault(ij, set()).add(p.pauli)
        corners = {(0, 0), (0, dx - 1), (dz - 1, 0), (dz - 1, dx - 1)}
        for ij, letters in cover.items():
            if ij not in corners:
                assert letters == {"X", "Z"}, f"{ij} covered by {letters}"

    @given(dims)
    @settings(max_examples=10, deadline=None)
    def test_pocket_visitors_never_clash_in_a_layer(self, dxz):
        dx, dz = dxz
        grid = GridManager(dz + 2, dx + 2)
        layout = PatchLayout(grid, dx, dz)
        per_layer: dict[int, list[int]] = {}
        for p in layout.plaquettes():
            for layer, corner in p.visits():
                per_layer.setdefault(layer, []).append(p.pockets[corner])
        for layer, pockets in per_layer.items():
            assert len(pockets) == len(set(pockets)), f"layer {layer} pocket clash"


class TestCompiledCircuitInvariants:
    @given(st.integers(2, 4), st.sampled_from(["Z", "X"]), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_prepared_patch_always_valid_and_correct(self, d, basis, seed):
        grid, _, lq, c, occ0 = fresh_patch(d, d)
        lq.prepare(c, basis=basis, rounds=1)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=seed)
        op = lq.logical_z if basis == "Z" else lq.logical_x
        assert corrected(res, op) == 1

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_simulation_is_deterministic_given_seed(self, seed):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        r1 = simulate(grid, c, occ0, seed=seed)
        r2 = simulate(grid, c, occ0, seed=seed)
        assert r1.outcomes == r2.outcomes

    @given(st.lists(st.sampled_from(["X", "Y", "Z"]), min_size=1, max_size=4))
    @settings(max_examples=12, deadline=None)
    def test_pauli_words_compose(self, word):
        """Any sequence of logical Paulis acts as their product."""
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        for w in word:
            lq.apply_pauli(c, w)
        res = simulate(grid, c, occ0, seed=1)
        n_flips = sum(1 for w in word if w in ("X", "Y"))
        assert corrected(res, lq.logical_z) == (-1) ** n_flips


class TestLedgerInvariants:
    @given(st.integers(0, 4))
    @settings(max_examples=5, deadline=None)
    def test_merge_split_ledger_consistency(self, seed):
        """The frame-corrected conjugate pair is ALWAYS +1 on |++>."""
        from repro.code.logical_qubit import LogicalQubit
        from repro.code.patch_ops import merge, split
        from repro.hardware.circuit import HardwareCircuit
        from repro.hardware.model import HardwareModel

        grid = GridManager(4, 8)
        model = HardwareModel(grid)
        a = LogicalQubit(grid, model, 3, 3, (0, 0), name="A")
        b = LogicalQubit(grid, model, 3, 3, (0, 4), name="B")
        occ0 = grid.occupancy()
        c = HardwareCircuit()
        a.prepare(c, basis="X", rounds=1)
        b.prepare(c, basis="X", rounds=1)
        xa, xb = a.logical_x.pauli, b.logical_x.pauli
        mr = merge(c, a, b, "horizontal", rounds=1)
        sr = split(c, mr)
        res = simulate(grid, c, occ0, seed=seed)
        frame = 1
        for lab in sr.frame_labels:
            frame *= res.sign(lab)
        assert res.expectation(xa * xb) * frame == 1

    def test_ledger_multiplication_keeps_hermiticity(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        stab = lq.plaquettes[0].stabilizer()
        updated = lq.logical_z.multiplied_by(stab, "m99")
        assert updated.pauli.is_hermitian
        assert "m99" in updated.corrections
