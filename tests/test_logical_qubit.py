"""LogicalQubit: validity, primitives, and simulated logical states."""

import pytest

from repro.code.arrangements import Arrangement
from repro.hardware.validity import check_circuit
from tests.conftest import corrected, fresh_patch, simulate

ARRS = list(Arrangement)


class TestConstruction:
    @pytest.mark.parametrize("dx,dz", [(2, 2), (3, 3), (4, 3), (3, 4), (5, 5)])
    @pytest.mark.parametrize("arr", ARRS)
    def test_validate(self, dx, dz, arr):
        _, _, lq, _, _ = fresh_patch(dx, dz, arr)
        lq.validate()

    def test_ion_counts(self):
        _, _, lq, _, _ = fresh_patch(3, 3)
        assert len(lq.data_ions) == 9
        assert len(lq.measure_ions) == 8

    def test_parity_check_shape(self):
        _, _, lq, _, _ = fresh_patch(3, 3)
        assert lq.parity_check_matrix().shape == (8, 18)

    def test_dt_default(self):
        _, _, lq, _, _ = fresh_patch(5, 3)
        assert lq.dt == 5

    def test_double_place_rejected(self):
        _, _, lq, _, _ = fresh_patch(3, 3)
        with pytest.raises(RuntimeError):
            lq.place_ions()


class TestPrepare:
    @pytest.mark.parametrize("arr", ARRS)
    @pytest.mark.parametrize("basis,attr", [("Z", "logical_z"), ("X", "logical_x")])
    def test_prepare_all_arrangements(self, arr, basis, attr):
        grid, _, lq, c, occ0 = fresh_patch(3, 3, arr)
        lq.prepare(c, basis=basis, rounds=1)
        check_circuit(grid, c, occ0)
        res = simulate(grid, c, occ0, seed=1)
        assert corrected(res, getattr(lq, attr)) == 1

    @pytest.mark.parametrize("dx,dz", [(2, 2), (4, 3), (2, 5)])
    def test_prepare_even_and_mixed(self, dx, dz):
        grid, _, lq, c, occ0 = fresh_patch(dx, dz)
        lq.prepare(c, basis="Z", rounds=1)
        res = simulate(grid, c, occ0, seed=2)
        assert corrected(res, lq.logical_z) == 1

    def test_conjugate_expectation_is_zero(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        res = simulate(grid, c, occ0, seed=3)
        assert res.expectation(lq.logical_x.pauli) == 0

    def test_quiescence_and_determinism(self):
        """§4.3: outcomes stable on repeated idles after the first round."""
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        recs = lq.prepare(c, basis="Z", rounds=3)
        res = simulate(grid, c, occ0, seed=4)
        r1, r2, r3 = recs
        for face in r1.outcome_labels:
            v1 = res.outcomes[r1.outcome_labels[face]]
            assert res.outcomes[r2.outcome_labels[face]] == v1
            assert res.outcomes[r3.outcome_labels[face]] == v1
            assert res.deterministic[r2.outcome_labels[face]]

    def test_outcomes_match_stabilizer_values(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        recs = lq.prepare(c, basis="Z", rounds=1)
        res = simulate(grid, c, occ0, seed=5)
        for plaq in lq.plaquettes:
            label = recs[0].outcome_labels[plaq.face]
            assert res.sign(label) == res.expectation(plaq.stabilizer())


class TestPauliAndHadamard:
    def test_pauli_x_flips_z(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        lq.apply_pauli(c, "X")
        res = simulate(grid, c, occ0, seed=6)
        assert corrected(res, lq.logical_z) == -1

    def test_pauli_z_flips_x(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="X", rounds=1)
        lq.apply_pauli(c, "Z")
        res = simulate(grid, c, occ0, seed=7)
        assert corrected(res, lq.logical_x) == -1

    def test_pauli_y_flips_both(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        lq.apply_pauli(c, "Y")
        res = simulate(grid, c, occ0, seed=8)
        assert corrected(res, lq.logical_z) == -1

    def test_bad_pauli_rejected(self):
        _, _, lq, c, _ = fresh_patch(3, 3)
        with pytest.raises(ValueError):
            lq.apply_pauli(c, "W")

    def test_hadamard_changes_arrangement_and_state(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        lq.transversal_hadamard(c)
        assert lq.arrangement is Arrangement.ROTATED
        lq.validate()
        lq.idle(c, rounds=1)
        res = simulate(grid, c, occ0, seed=9)
        assert corrected(res, lq.logical_x) == 1

    def test_double_hadamard_identity(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        lq.transversal_hadamard(c)
        lq.transversal_hadamard(c)
        assert lq.arrangement is Arrangement.STANDARD
        res = simulate(grid, c, occ0, seed=10)
        assert corrected(res, lq.logical_z) == 1


class TestMeasure:
    def test_transversal_measure_z(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        labels = lq.transversal_measure(c, basis="Z")
        assert not lq.initialized
        res = simulate(grid, c, occ0, seed=11)
        v = 1
        for (i, j), lab in labels.items():
            if j == 0:
                v *= res.sign(lab)
        assert v == 1

    def test_remeasure_after_reprep(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        lq.transversal_measure(c, basis="Z")
        lq.prepare(c, basis="X", rounds=1)
        res = simulate(grid, c, occ0, seed=12)
        assert corrected(res, lq.logical_x) == 1

    def test_bad_basis(self):
        _, _, lq, c, _ = fresh_patch(3, 3)
        with pytest.raises(ValueError):
            lq.transversal_measure(c, basis="Y")


class TestInjection:
    @pytest.mark.parametrize("arr", ARRS)
    def test_inject_y(self, arr):
        grid, _, lq, c, occ0 = fresh_patch(3, 3, arr)
        lq.inject_state(c, "Y", rounds=1)
        res = simulate(grid, c, occ0, seed=13)
        assert corrected(res, lq.logical_y()) == 1

    def test_inject_t_statistics(self):
        import numpy as np

        from repro.sim.quasi import estimate_expectation

        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.inject_state(c, "T", rounds=1)
        x = lq.logical_x

        def shot(k):
            res = simulate(grid, c, occ0, seed=20000 + k)
            return corrected(res, x), res.weight

        mean, err = estimate_expectation(shot, 500)
        assert mean == pytest.approx(1 / np.sqrt(2), abs=5 * err)

    def test_inject_rejects_other(self):
        _, _, lq, c, _ = fresh_patch(3, 3)
        with pytest.raises(ValueError):
            lq.inject_state(c, "Q")


class TestMeasureOut:
    def test_corner_removal_updates_logicals(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.prepare(c, basis="Z", rounds=1)
        old_support = set(lq.logical_z.pauli.support)
        label = lq.measure_out_data_qubit(c, (0, 0), "Z")
        assert (0, 0) not in lq.data_ions
        # Z_L had support on the corner: it was reduced with the outcome label.
        assert lq.logical_z.pauli.support < old_support
        assert label in lq.logical_z.corrections
        res = simulate(grid, c, occ0, seed=14)
        assert corrected(res, lq.logical_z) == 1
