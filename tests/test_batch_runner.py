"""Property-based batch tests: BatchRunner reproduces single-shot trajectories.

With per-shot rng streams (the default), batched shots must reproduce a loop
of single-shot ``CircuitInterpreter`` replays shot-for-shot — outcomes,
quasi-probability weights, and determinism flags — on Table 1 / Table 2
programs, including the non-Clifford T-injection path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import TISCC
from repro.estimator.report import (
    format_logical_summary,
    format_outcome_summary,
    logical_outcome_statistics,
    outcome_statistics,
)
from repro.estimator.sweep import OPERATION_PROGRAMS
from repro.sim.batch import BatchRunner, per_shot_seed
from repro.sim.interpreter import CircuitInterpreter

# Table 1 / Table 2 programs exercised shot-for-shot (name -> (program, shape)).
PROGRAMS = {
    "Idle": ([("PrepareZ", (0, 0)), ("Idle", (0, 0))], (1, 1)),
    "Hadamard": ([("PrepareZ", (0, 0)), ("Hadamard", (0, 0))], (1, 1)),
    "MeasureZZ": (
        [("PrepareZ", (0, 0)), ("PrepareZ", (0, 1)), ("MeasureZZ", (0, 0), (0, 1))],
        (1, 2),
    ),
    "BellPrepare": ([("BellPrepare", (0, 0), (0, 1))], (1, 2)),
    "InjectT": ([("InjectT", (0, 0))], (1, 1)),
}


def compile_program(name, d=2, rounds=1):
    program, shape = PROGRAMS[name]
    compiler = TISCC(dx=d, dz=d, tile_rows=shape[0], tile_cols=shape[1], rounds=rounds)
    return compiler, compiler.compile(program, operation=name)


def assert_batch_matches_singles(compiler, compiled, n_shots, seed):
    batch = compiler.simulate_shots(compiled, n_shots, seed=seed)
    for k in range(n_shots):
        # Shot k's stream is the absolute-index SeedSequence child —
        # SeedSequence(seed).spawn(n)[k] addressed as spawn_key=(k,).
        single = CircuitInterpreter(compiler.grid, seed=per_shot_seed(seed, k)).run(
            compiled.circuit, compiled.initial_occupancy
        )
        assert set(batch.outcomes) == set(single.outcomes)
        for label, value in single.outcomes.items():
            assert int(batch.outcomes[label][k]) == value, (k, label)
            assert bool(batch.deterministic[label][k]) == single.deterministic[label]
        assert float(batch.weights[k]) == pytest.approx(single.weight)
    return batch


class TestShotForShot:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_batch_reproduces_single_shot_trajectories(self, name):
        compiler, compiled = compile_program(name)
        assert_batch_matches_singles(compiler, compiled, n_shots=5, seed=31)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_any_seed_reproduces_singles_property(self, seed):
        compiler, compiled = compile_program("MeasureZZ")
        assert_batch_matches_singles(compiler, compiled, n_shots=3, seed=seed)

    def test_shot_view_materializes_run_result(self):
        compiler, compiled = compile_program("Idle")
        batch = compiler.simulate_shots(compiled, 4, seed=77)
        single = CircuitInterpreter(compiler.grid, seed=per_shot_seed(77, 1)).run(
            compiled.circuit, compiled.initial_occupancy
        )
        view = batch.shot(1)  # per-shot stream of absolute index 1
        assert view.outcomes == single.outcomes
        assert view.deterministic == single.deterministic
        assert view.weight == pytest.approx(single.weight)
        assert np.array_equal(view.tableau.x, single.tableau.x)
        assert np.array_equal(view.tableau.z, single.tableau.z)
        assert np.array_equal(view.tableau.r, single.tableau.r)
        assert view.ion_index == single.ion_index
        assert view.occupancy == single.occupancy

    def test_value_callables_vectorize_over_batch(self):
        compiler, compiled = compile_program("MeasureZZ")
        batch = compiler.simulate_shots(compiled, 6, seed=3)
        joint = [r for r in compiled.results if r.value is not None][-1]
        values = np.asarray(joint.value(batch))
        assert values.shape == (6,)
        for k in range(6):
            single = CircuitInterpreter(compiler.grid, seed=per_shot_seed(3, k)).run(
                compiled.circuit, compiled.initial_occupancy
            )
            assert values[k] == joint.value(single)


class TestBatchSemantics:
    def test_same_seed_is_reproducible(self):
        compiler, compiled = compile_program("MeasureZZ")
        a = compiler.simulate_shots(compiled, 8, seed=5)
        b = compiler.simulate_shots(compiled, 8, seed=5)
        for label in a.outcomes:
            assert np.array_equal(a.outcomes[label], b.outcomes[label])
        assert np.array_equal(a.weights, b.weights)

    def test_shot_offset_chunks_reproduce_unchunked(self):
        # Absolute-index per-shot streams: splitting a run into chunks with
        # matching shot_offset is bit-identical to the unsplit run.
        compiler, compiled = compile_program("MeasureZZ")
        full = compiler.simulate_shots(compiled, 7, seed=13)
        parts = [
            compiler.simulate_shots(compiled, n, seed=13, shot_offset=off)
            for off, n in ((0, 3), (3, 4))
        ]
        for label in full.outcomes:
            merged = np.concatenate([p.outcomes[label] for p in parts])
            assert np.array_equal(full.outcomes[label], merged)
        assert np.array_equal(full.weights, np.concatenate([p.weights for p in parts]))

    def test_injection_bounds_are_validated(self):
        from repro.sim.batch import PauliInjection

        compiler, compiled = compile_program("Idle")
        n = len(compiled.circuit.sorted_instructions())
        for bad in (
            PauliInjection(index=n, ops=((0, "X"),)),
            PauliInjection(index=0, ops=((0, "X"),), shot=-1),
            PauliInjection(index=0, ops=((0, "X"),), shot=4),
        ):
            with pytest.raises(ValueError, match="injection"):
                compiler.simulate_shots(compiled, 4, seed=0, injections=[bad])
        with pytest.raises(ValueError, match="before/after"):
            PauliInjection(index=0, when="during", ops=((0, "X"),))

    def test_forced_outcomes_pin_labels(self):
        compiler, compiled = compile_program("MeasureZZ")
        reference = compiler.simulate_shots(compiled, 1, seed=9)
        label = next(
            lbl for lbl, det in reference.deterministic.items() if not det[0]
        )
        pinned = int(reference.outcomes[label][0])
        batch = compiler.simulate_shots(
            compiled, 5, seed=123, forced_outcomes={label: pinned}
        )
        assert (batch.outcomes[label] == pinned).all()

    def test_shared_stream_mode_statistics(self):
        """The fast shared-rng mode reproduces the T-state expectations."""
        compiler, compiled = compile_program("InjectT")
        batch = compiler.simulate_shots(
            compiled, 1500, seed=2, independent_streams=False
        )
        assert np.allclose(np.abs(batch.weights), np.sqrt(2))  # gamma per T gate
        lq = compiler.tiles[(0, 0)].patch
        values = batch.expectation(lq.logical_x.pauli).astype(float)
        for label in lq.logical_x.corrections:
            values = values * batch.sign(label)
        mean, err = batch.estimate(values)
        assert mean == pytest.approx(1 / np.sqrt(2), abs=max(5 * err, 0.08))

    def test_estimate_validates_input(self):
        compiler, compiled = compile_program("Idle")
        batch = compiler.simulate_shots(compiled, 3, seed=0)
        with pytest.raises(ValueError):
            batch.estimate(np.ones(7))
        single = compiler.simulate_shots(compiled, 1, seed=0)
        with pytest.raises(ValueError):
            single.estimate(np.ones(1))

    def test_error_paths(self):
        compiler, compiled = compile_program("Idle")
        runner = BatchRunner(compiler.grid)
        with pytest.raises(ValueError):
            runner.run_shots(compiled.circuit, compiled.initial_occupancy, 0)
        with pytest.raises(ValueError):
            runner.run_shots(compiled.circuit, {0: 1, 1: 1}, 2)


class TestReportSummaries:
    def test_outcome_statistics_rows(self):
        compiler, compiled = compile_program("MeasureZZ")
        batch = compiler.simulate_shots(compiled, 10, seed=4)
        rows = outcome_statistics(batch)
        assert len(rows) == len(batch.outcomes)
        for row in rows:
            assert row["zeros"] + row["ones"] == 10
            assert 0.0 <= row["deterministic"] <= 1.0
        text = format_outcome_summary(batch, title="outcomes", limit=3)
        assert "outcomes" in text and "more labels" in text

    def test_logical_summary(self):
        compiler, compiled = compile_program("MeasureZZ")
        batch = compiler.simulate_shots(compiled, 20, seed=6)
        rows = logical_outcome_statistics(compiled, batch)
        assert [r["name"] for r in rows] == ["MeasureZZ"]
        assert rows[0]["mean"] == pytest.approx(1.0)  # |00> has ZZ = +1
        assert rows[0]["p_minus"] == pytest.approx(0.0)
        assert "MeasureZZ" in format_logical_summary(compiled, batch)

    def test_logical_summary_empty(self):
        compiler, compiled = compile_program("Idle")
        batch = compiler.simulate_shots(compiled, 3, seed=1)
        assert logical_outcome_statistics(compiled, batch) == []
        assert "no logical measurement" in format_logical_summary(compiled, batch)


def test_operation_programs_cover_batch_runner():
    """Every registered sweep operation also runs under the batch engine."""
    name = "PrepareZ"
    build, shape = OPERATION_PROGRAMS[name]
    compiler = TISCC(dx=2, dz=2, tile_rows=shape[0], tile_cols=shape[1], rounds=1)
    compiled = compiler.compile(build(), operation=name)
    batch = compiler.simulate_shots(compiled, 4, seed=0)
    assert batch.n_shots == 4
    assert (batch.weights == 1.0).all()
