"""Sliding-window decoder: exhaustive equivalence, streaming, and threading.

The windowed decoder's whole claim is that cutting the time axis into
overlapping commit windows changes *memory*, not *answers* (up to rare
boundary effects the Wilson-interval bench gate bounds).  This suite locks
the exact parts down:

* every single-fault syndrome at d=3 decodes to the injected fault's frame
  bit for every (window, commit) in a small grid — the windowed decoder
  keeps the full effective distance;
* ``decode_stream`` over any slice chunking is shot-for-shot identical to
  ``decode_batch`` on the materialized matrix (hypothesis property);
* the chunked frame path of ``MemoryExperiment.run`` is count-identical
  for any ``max_batch`` (hypothesis property), now that chunks are decoded
  as they are sampled;
* window/commit thread from the experiment constructor through
  ``decoder_for`` and the sweep cells.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.decode import MemoryExperiment, get_decoder
from repro.decode.graph import BOUNDARY, DetectorEdge, MatchingGraph
from repro.decode.window import WindowedUnionFindDecoder, window_spans
from repro.sim.noise import NoiseModel

WINDOW_GRID = [(2, 1), (3, 1), (3, 2), (4, 2), (5, 3), (6, 5)]


@pytest.fixture(scope="module")
def memory3():
    """One d=3, rounds=6 experiment shared by the whole module."""
    return MemoryExperiment(dx=3, dz=3, rounds=6)


def _single_fault_batch(graph: MatchingGraph):
    """One syndrome row per edge (its endpoint flips) plus the frame truth."""
    syndromes = np.zeros((graph.n_edges, graph.n_detectors), dtype=np.uint8)
    frames = np.zeros(graph.n_edges, dtype=np.uint8)
    for k, e in enumerate(graph.edges):
        for node in (e.u, e.v):
            if node != BOUNDARY:
                syndromes[k, node] ^= 1
        frames[k] = e.frame
    return syndromes, frames


# ------------------------------------------------------------ window spans
def test_window_spans_cover_every_slice_once():
    """Commit regions tile [0, n_slices) exactly: each span starts where
    the previous span's commit region ended, and the final span commits
    through the last slice."""
    for n_slices in range(2, 40):
        for window, commit in WINDOW_GRID:
            spans = window_spans(n_slices, window, commit)
            prev_commit_end = 0
            for s0, s1, commit_end in spans:
                assert s0 == prev_commit_end
                assert s0 < commit_end <= s1 <= n_slices
                prev_commit_end = commit_end
            assert prev_commit_end == n_slices
            assert spans[-1][1] == spans[-1][2] == n_slices


def test_window_spans_validation():
    with pytest.raises(ValueError, match="window"):
        window_spans(10, 1, 1)
    with pytest.raises(ValueError, match="commit"):
        window_spans(10, 4, 0)
    with pytest.raises(ValueError, match="smaller than window"):
        window_spans(10, 4, 4)


def test_degenerate_single_window_is_whole_block():
    spans = window_spans(3, 8, 2)
    assert spans == [(0, 3, 3)]


# ------------------------------------------- exhaustive single-fault grid
@pytest.mark.parametrize("window,commit", WINDOW_GRID)
def test_single_faults_exact_at_d3(memory3, window, commit):
    """Every single mechanism must decode to its own frame bit — the
    windowed decoder corrects weight-1 errors perfectly at every grid
    point, exactly like the whole-block decoder."""
    graph = memory3.graph
    syndromes, frames = _single_fault_batch(graph)
    win = WindowedUnionFindDecoder(
        graph, n_faces=len(memory3.faces), window=window, commit=commit
    )
    assert np.array_equal(win.decode_batch(syndromes), frames)


@pytest.mark.parametrize("window,commit", [(3, 1), (4, 2)])
def test_single_faults_exact_on_weighted_dem_graph(memory3, window, commit):
    """Same exhaustive check over the DEM-built weighted graph."""
    model = NoiseModel.uniform(1e-3)
    graph = memory3.matching_graph(model)
    syndromes, frames = _single_fault_batch(graph)
    win = WindowedUnionFindDecoder(
        graph, n_faces=len(memory3.faces), window=window, commit=commit
    )
    assert np.array_equal(win.decode_batch(syndromes), frames)


def test_windowed_matches_whole_block_on_random_batch(memory3):
    """Statistical sanity at moderate noise: the windowed verdicts agree
    with whole-block on the overwhelming majority of shots (they may
    differ on rare boundary-straddling configurations)."""
    model = NoiseModel.uniform(2e-3)
    samples = memory3.sample_frame(3000, noise=model, seed=11)
    whole = memory3.decoder_for(model).decode_batch(samples.detectors)
    win = memory3.decoder_for(model, "union_find_windowed")
    windowed = win.decode_batch(samples.detectors)
    assert (whole == windowed).mean() > 0.98


# ------------------------------------------------------- streaming contract
@settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_stream_chunking_is_exact(memory3, data):
    """Feeding the slice stream in any per-slice order/grouping is
    shot-for-shot identical to one decode_batch call."""
    win = memory3.decoder_for(None, "union_find_windowed")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    n_shots = data.draw(st.integers(1, 40))
    syndromes = (rng.random((n_shots, win.n)) < 0.03).astype(np.uint8)
    F = win.n_faces
    slices = (syndromes[:, t * F : (t + 1) * F] for t in range(win.n_slices))
    batch = win.decode_batch(syndromes)
    streamed = win.decode_stream(slices)
    assert np.array_equal(batch, streamed)


def test_stream_rejects_short_and_long_streams(memory3):
    win = memory3.decoder_for(None, "union_find_windowed")
    F = win.n_faces
    short = [np.zeros((2, F), dtype=np.uint8)] * (win.n_slices - 1)
    with pytest.raises(ValueError, match="slice stream"):
        win.decode_stream(iter(short))
    long = [np.zeros((2, F), dtype=np.uint8)] * (win.n_slices + 1)
    with pytest.raises(ValueError, match="slice stream"):
        win.decode_stream(iter(long))


def test_stream_rejects_bad_slice_shapes(memory3):
    win = memory3.decoder_for(None, "union_find_windowed")
    with pytest.raises(ValueError, match="shape"):
        win.decode_stream(iter([np.zeros((2, win.n_faces + 1), dtype=np.uint8)]))


# ----------------------------------------------- chunked frame-path parity
@settings(deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow])
@given(max_batch=st.one_of(st.none(), st.integers(1, 400)))
def test_run_frame_chunking_invariant(memory3, max_batch):
    """Satellite regression: the frame path now decodes chunk by chunk —
    any max_batch must produce the unchunked counters exactly."""
    model = NoiseModel.uniform(3e-3)
    baseline = memory3.run(700, noise=model, seed=5, engine="frame")
    chunked = memory3.run(700, noise=model, seed=5, engine="frame", max_batch=max_batch)
    assert chunked.failures == baseline.failures
    assert chunked.raw_failures == baseline.raw_failures
    assert chunked.mean_defects == baseline.mean_defects


def test_run_frame_windowed_chunking_invariant(memory3):
    """Same invariance with the windowed decoder doing the chunk decodes."""
    model = NoiseModel.uniform(3e-3)
    kwargs = dict(noise=model, seed=5, engine="frame", decoder="union_find_windowed")
    baseline = memory3.run(600, **kwargs)
    chunked = memory3.run(600, max_batch=97, **kwargs)
    assert chunked.failures == baseline.failures
    assert chunked.mean_defects == baseline.mean_defects


# -------------------------------------------------------- layout threading
def test_decoder_for_threads_window_shape():
    exp = MemoryExperiment(
        dx=3, dz=3, rounds=9, decoder="union_find_windowed", window=4, commit=2
    )
    dec = exp.decoder_for(None)
    assert isinstance(dec, WindowedUnionFindDecoder)
    assert (dec.window, dec.commit) == (4, 2)
    # Distinct window shapes over the same core never share an instance.
    other = MemoryExperiment(
        dx=3, dz=3, rounds=9, decoder="union_find_windowed", window=5, commit=2
    )
    assert other.decoder_for(None) is not dec
    assert other.decoder_for(None).window == 5


def test_default_window_shape_is_2d_d():
    exp = MemoryExperiment(dx=3, dz=3, rounds=12, decoder="union_find_windowed")
    dec = exp.decoder_for(None)
    assert (dec.window, dec.commit) == (6, 3)


def test_commit_without_window_rejected():
    with pytest.raises(ValueError, match="commit"):
        MemoryExperiment(dx=3, dz=3, commit=2)


def test_windowed_decoder_validates_layout(memory3):
    with pytest.raises(ValueError, match="time slices"):
        WindowedUnionFindDecoder(
            memory3.graph, n_faces=len(memory3.faces) + 1, window=4, commit=2
        )
    with pytest.raises(ValueError, match="decode_edges"):
        WindowedUnionFindDecoder(
            memory3.graph, n_faces=len(memory3.faces), window=4, commit=2, inner="lookup"
        )


def test_interior_windows_share_one_kind():
    exp = MemoryExperiment(dx=3, dz=3, rounds=30)
    dec = exp.decoder_for(None, "union_find_windowed")
    # Dozens of spans, but only a handful of structurally distinct windows
    # (first / interior / trailing) — interior windows share one inner
    # decoder, which is what keeps construction O(window) too.
    assert len(dec._spans) > 8
    assert dec.n_window_kinds <= 3
    assert dec.peak_window_detectors < exp.n_detectors


def test_registry_exposes_windowed():
    from repro.decode import available_decoders

    assert "union_find_windowed" in available_decoders()
    graph = MatchingGraph(4, [DetectorEdge(0, 1), DetectorEdge(2, 3)])
    dec = get_decoder("union_find_windowed", graph, n_faces=2, window=2, commit=1)
    assert dec.n_slices == 2
