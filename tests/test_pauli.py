"""PauliString algebra with exact phases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.code.pauli import PauliString

letters = st.sampled_from(["I", "X", "Y", "Z"])


def paulis(n=4):
    return st.lists(letters, min_size=n, max_size=n).map(
        lambda ls: PauliString({k: p for k, p in enumerate(ls) if p != "I"})
    )


class TestConstruction:
    def test_identity(self):
        assert PauliString.identity().is_identity

    def test_rejects_bad_letter(self):
        with pytest.raises(ValueError):
            PauliString({0: "Q"})

    def test_from_label(self):
        p = PauliString.from_label("XIZ", [10, 20, 30])
        assert p.get(10) == "X" and p.get(20) == "I" and p.get(30) == "Z"
        assert p.weight == 2

    def test_from_label_length_mismatch(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XX", [1])

    def test_phase_normalized(self):
        assert PauliString({}, 7).phase == 3
        assert PauliString({}, -1).phase == 3


class TestAlgebra:
    def test_xy_equals_iz(self):
        assert PauliString({0: "X"}) * PauliString({0: "Y"}) == PauliString({0: "Z"}, 1)

    def test_yx_equals_minus_iz(self):
        assert PauliString({0: "Y"}) * PauliString({0: "X"}) == PauliString({0: "Z"}, 3)

    def test_squares_to_identity(self):
        for p in "XYZ":
            sq = PauliString({0: p}) * PauliString({0: p})
            assert sq.is_identity and sq.phase == 0

    def test_logical_y_construction(self):
        # i * X-row * Z-col with one overlap site is Hermitian with phase 0.
        x_l = PauliString({(0, 0): "X", (0, 1): "X", (0, 2): "X"})
        z_l = PauliString({(0, 0): "Z", (1, 0): "Z", (2, 0): "Z"})
        y_l = (x_l * z_l).times_i()
        assert y_l.phase == 0
        assert y_l.get((0, 0)) == "Y"
        assert y_l.is_hermitian

    def test_neg(self):
        assert (-PauliString({0: "X"})).phase == 2

    @given(paulis(), paulis())
    @settings(max_examples=80, deadline=None)
    def test_commute_or_anticommute(self, p, q):
        pq = p * q
        qp = q * p
        assert pq.ops == qp.ops
        diff = (pq.phase - qp.phase) % 4
        assert diff in (0, 2)
        assert p.commutes_with(q) == (diff == 0)

    @given(paulis(), paulis(), paulis())
    @settings(max_examples=50, deadline=None)
    def test_associativity(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(paulis())
    @settings(max_examples=50, deadline=None)
    def test_hermitian_products_square_positively(self, p):
        sq = p * p
        assert sq.is_identity and sq.phase == 0


class TestHelpers:
    def test_restricted_and_without(self):
        p = PauliString({0: "X", 1: "Y", 2: "Z"})
        assert p.restricted([0, 1]).support == {0, 1}
        assert p.without([1]).support == {0, 2}

    def test_relabel(self):
        p = PauliString({0: "X"})
        assert p.relabel({0: 5}).get(5) == "X"

    def test_equals_up_to_sign(self):
        assert PauliString({0: "X"}).equals_up_to_sign(PauliString({0: "X"}, 2))

    def test_repr_contains_letters(self):
        assert "X" in repr(PauliString({3: "X"}))
