"""Syndrome-extraction scheduling: layers, conflicts, and §4.3 checks."""

import pytest

from repro.code.arrangements import Arrangement
from repro.hardware.validity import check_circuit
from tests.conftest import fresh_patch, simulate


class TestRoundStructure:
    def test_round_has_expected_gate_counts(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.idle(c, rounds=1)
        # One ZZ per (face, corner) pair.
        n_interactions = sum(p.weight for p in lq.plaquettes)
        assert c.count("ZZ") == n_interactions
        # One prep + one measure per face.
        assert c.count("Measure_Z") == len(lq.plaquettes)
        assert c.count("Prepare_Z") == len(lq.plaquettes)

    def test_measure_ions_return_home(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        lq.idle(c, rounds=1)
        for plaq in lq.plaquettes:
            assert grid.site_of(lq.measure_ions[plaq.face]) == plaq.home

    def test_junction_conflicts_detected(self):
        """§3.3: parallel Z/N patterns contend for shared junctions."""
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        recs = lq.idle(c, rounds=1)
        assert recs[0].junction_conflicts > 0

    def test_rounds_are_sequential(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        recs = lq.idle(c, rounds=3)
        for earlier, later in zip(recs, recs[1:]):
            assert later.t_start >= earlier.t_end

    def test_compiled_round_is_valid_hardware(self):
        for arr in Arrangement:
            grid, _, lq, c, occ0 = fresh_patch(3, 3, arr)
            lq.idle(c, rounds=2)
            check_circuit(grid, c, occ0)

    def test_round_duration_dominated_by_four_zz_layers(self):
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        recs = lq.idle(c, rounds=1)
        assert recs[0].duration >= 4 * 2000.0
        assert recs[0].duration < 4 * 2000.0 + 4000.0  # movement overhead bounded

    def test_misparked_measure_ion_rejected(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        plaq = lq.plaquettes[0]
        ion = lq.measure_ions[plaq.face]
        neighbor = [
            s for s in grid.adjacent_zones(grid.site_of(ion)) if grid.ion_at(s) is None
        ]
        if neighbor:
            grid.schedule_move(c, ion, neighbor[0])
            with pytest.raises(ValueError):
                lq.idle(c, rounds=1)


class TestStabilizerEstablishment:
    """§4.3: the d=2 layer-by-layer generator check, generalized."""

    def test_d2_generators_after_prep_round(self):
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.prepare(c, basis="Z", rounds=1)
        res = simulate(grid, c, occ0, seed=3)
        # Every face stabilizer has a definite value...
        for plaq in lq.plaquettes:
            assert res.expectation(plaq.stabilizer()) != 0
        # ...and the logical Z is +1 while logical X is undetermined.
        assert res.expectation(lq.logical_z.pauli) == 1
        assert res.expectation(lq.logical_x.pauli) == 0

    def test_d2_generator_snapshots_per_layer(self):
        """Stabilizer generators inspected after each ZZ layer (§4.3)."""
        grid, _, lq, c, occ0 = fresh_patch(2, 2)
        lq.transversal_prepare(c, basis="Z")
        lq.initialized = True
        lq.idle(c, rounds=1)
        res = simulate(grid, c, occ0, seed=4)
        # After the final layer the group contains all the face stabilizers.
        for plaq in lq.plaquettes:
            assert res.expectation(plaq.stabilizer()) != 0

    def test_quiescence_at_d4(self):
        grid, _, lq, c, occ0 = fresh_patch(4, 4)
        recs = lq.prepare(c, basis="Z", rounds=2)
        res = simulate(grid, c, occ0, seed=5)
        r1, r2 = recs
        for face, lab in r2.outcome_labels.items():
            assert res.outcomes[lab] == res.outcomes[r1.outcome_labels[face]]


class TestHookErrorProtection:
    """The Z/N pattern pairing (Fig 6) orients hook errors safely."""

    def test_z_and_n_orders(self):
        from repro.code.plaquette import N_PATTERN, Z_PATTERN

        assert Z_PATTERN == ("a", "b", "c", "d")
        assert N_PATTERN == ("a", "c", "b", "d")

    def test_mid_circuit_measure_qubit_error_alignment(self):
        """A measure-qubit Z error halfway through a Z-face syndrome circuit
        spreads to at most two data qubits that are NOT parallel to the
        logical Z (they lie along a row, perpendicular to the vertical
        logical) — the §3.3 property motivating the two patterns."""
        grid, _, lq, c, occ0 = fresh_patch(3, 3)
        z_face = next(p for p in lq.plaquettes if p.pauli == "Z" and p.weight == 4)
        order = [z_face.corners[corner] for _, corner in z_face.visits()]
        first_two = order[:2]
        # Z pattern visits a then b: same row, different columns.
        assert first_two[0][0] == first_two[1][0]
        assert first_two[0][1] != first_two[1][1]
        x_face = next(p for p in lq.plaquettes if p.pauli == "X" and p.weight == 4)
        order = [x_face.corners[corner] for _, corner in x_face.visits()]
        # N pattern visits a then c: same column, different rows.
        assert order[0][1] == order[1][1]
        assert order[0][0] != order[1][0]
