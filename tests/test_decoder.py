"""Unit tests for the matching graph and the union-find decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decode import (
    BOUNDARY,
    DetectorEdge,
    MatchingGraph,
    MemoryExperiment,
    UnionFindDecoder,
    build_memory_graph,
)


def syndrome_of(graph: MatchingGraph, edge_indices) -> np.ndarray:
    """Detector pattern fired by a set of independent edge faults."""
    syn = np.zeros(graph.n_detectors, dtype=np.uint8)
    for k in edge_indices:
        e = graph.edges[k]
        for node in (e.u, e.v):
            if node != BOUNDARY:
                syn[node] ^= 1
    return syn


def frame_of(graph: MatchingGraph, edge_indices) -> int:
    frame = 0
    for k in edge_indices:
        frame ^= graph.edges[k].frame
    return frame


class TestMatchingGraph:
    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError, match="unknown detector"):
            MatchingGraph(2, [DetectorEdge(0, 5)])
        with pytest.raises(ValueError, match="self-loop"):
            MatchingGraph(2, [DetectorEdge(1, 1)])

    def test_memory_graph_shape(self):
        # Two faces sharing one qubit, each with a private boundary qubit.
        graph = build_memory_graph([{0, 1}, {1, 2}], {0, 1, 2}, rounds=2)
        assert graph.n_detectors == 2 * 3
        kinds = [e.kind for e in graph.edges]
        # Per slice: 2 boundary + 1 interior space edge; 2 time edges per gap.
        assert kinds.count("space") == 3 * 3
        assert kinds.count("time") == 2 * 2

    def test_overchecked_site_rejected(self):
        with pytest.raises(ValueError, match="at most two"):
            build_memory_graph([{0}, {0}, {0}], set(), rounds=1)

    def test_visit_layers_add_diagonal_edges(self):
        plain = build_memory_graph([{0, 1}, {1, 2}], {1}, rounds=2)
        layered = build_memory_graph(
            [{0, 1}, {1, 2}],
            {1},
            rounds=2,
            visit_layers=[{0: 1, 1: 2}, {1: 3, 2: 4}],
        )
        diag = [e for e in layered.edges if e.kind == "diagonal"]
        assert len(layered.edges) == len(plain.edges) + len(diag)
        # Face 0 visits the shared qubit earlier, so the diagonal runs from
        # face 1 at slice t to face 0 at slice t+1, carrying the frame bit.
        assert {(e.u, e.v) for e in diag} == {(1, 2), (3, 4)}
        assert all(e.frame == 1 for e in diag)

    def test_same_layer_shared_visit_rejected(self):
        with pytest.raises(ValueError, match="same layer"):
            build_memory_graph(
                [{0, 1}, {1, 2}],
                set(),
                rounds=1,
                visit_layers=[{0: 1, 1: 2}, {1: 2, 2: 4}],
            )


class TestUnionFindDecoder:
    def test_trivial_syndrome(self):
        graph = MatchingGraph(2, [DetectorEdge(0, 1), DetectorEdge(0, BOUNDARY, 1)])
        dec = UnionFindDecoder(graph)
        assert dec.decode(np.zeros(2, dtype=np.uint8)) == 0

    def test_pair_matched_internally_not_through_boundary(self):
        graph = MatchingGraph(
            2,
            [
                DetectorEdge(0, 1, frame=0),
                DetectorEdge(0, BOUNDARY, frame=1),
                DetectorEdge(1, BOUNDARY, frame=0),
            ],
        )
        dec = UnionFindDecoder(graph)
        assert dec.decode(np.array([1, 1], dtype=np.uint8)) == 0

    def test_lone_defect_matched_to_boundary(self):
        graph = MatchingGraph(
            2,
            [
                DetectorEdge(0, 1, frame=0),
                DetectorEdge(0, BOUNDARY, frame=1),
                DetectorEdge(1, BOUNDARY, frame=0),
            ],
        )
        dec = UnionFindDecoder(graph)
        assert dec.decode(np.array([1, 0], dtype=np.uint8)) == 1
        assert dec.decode(np.array([0, 1], dtype=np.uint8)) == 0

    def test_shape_validation(self):
        graph = MatchingGraph(2, [DetectorEdge(0, 1)])
        dec = UnionFindDecoder(graph)
        with pytest.raises(ValueError, match="does not match"):
            dec.decode(np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError, match="does not match"):
            dec.decode_batch(np.zeros((4, 3), dtype=np.uint8))

    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_every_single_fault_is_corrected(self, basis):
        """Any single edge fault must be decoded with the right frame parity."""
        exp = MemoryExperiment(distance=3, basis=basis)
        graph, dec = exp.graph, exp.decoder
        for k in range(graph.n_edges):
            syn = syndrome_of(graph, [k])
            assert dec.decode(syn) == frame_of(graph, [k]), graph.edges[k]

    def test_batch_decode_matches_single_shot_decode(self):
        exp = MemoryExperiment(distance=3, basis="Z")
        rng = np.random.default_rng(9)
        syndromes = (rng.random((64, exp.n_detectors)) < 0.06).astype(np.uint8)
        batch_verdicts = exp.decoder.decode_batch(syndromes)
        single_verdicts = np.array([exp.decoder.decode(s) for s in syndromes])
        assert np.array_equal(batch_verdicts, single_verdicts)

    def test_distant_pairs_decode_independently(self):
        exp = MemoryExperiment(distance=3, basis="Z")
        graph, dec = exp.graph, exp.decoder
        # Two single faults far apart in time slices decode to the XOR of
        # their frames (clusters grow and peel independently).
        time_edges = [k for k, e in enumerate(graph.edges) if e.kind == "time"]
        a, b = time_edges[0], time_edges[-1]
        ea, eb = graph.edges[a], graph.edges[b]
        assert {ea.u, ea.v}.isdisjoint({eb.u, eb.v})
        syn = syndrome_of(graph, [a, b])
        assert dec.decode(syn) == frame_of(graph, [a, b])

    def test_weighted_growth_prefers_cheap_paths(self):
        # An expensive direct edge (frame 1) against two cheap boundary
        # edges (frame 0): the weighted decoder routes the correction
        # through the boundary, the unweighted one takes the direct edge.
        graph = MatchingGraph(
            2,
            [
                DetectorEdge(0, 1, frame=1, weight=10.0),
                DetectorEdge(0, BOUNDARY, frame=0, weight=1.0),
                DetectorEdge(1, BOUNDARY, frame=0, weight=1.0),
            ],
        )
        syn = np.array([1, 1], dtype=np.uint8)
        assert UnionFindDecoder(graph).decode(syn) == 0
        assert UnionFindDecoder(graph, weighted=False).decode(syn) == 1
