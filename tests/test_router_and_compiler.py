"""Lattice-surgery CNOT, Bell chains, the TISCC facade, and the CLI."""

import pytest

from repro.core.compiler import TISCC
from repro.core.router import bell_chain, lattice_surgery_cnot
from repro.hardware.circuit import HardwareCircuit
from repro.sim.interpreter import CircuitInterpreter


def cnot_setup(d=2):
    compiler = TISCC(dx=d, dz=d, tile_rows=2, tile_cols=2, rounds=1)
    circuit = HardwareCircuit()
    occ0 = compiler.tiles.occupancy_snapshot()
    return compiler, circuit, occ0


class TestCnot:
    @pytest.mark.parametrize("seed", range(6))
    def test_cnot_on_10(self, seed):
        compiler, c, occ0 = cnot_setup()
        ops = compiler.ops
        ops.prepare_z(c, (0, 0))
        ops.pauli(c, (0, 0), "X")
        ops.prepare_z(c, (1, 1))
        r = lattice_surgery_cnot(ops, c, (0, 0), (1, 1), (0, 1))
        mc = ops.measure(c, (0, 0), "Z")
        mt = ops.measure(c, (1, 1), "Z")
        res = CircuitInterpreter(compiler.grid, seed=seed).run(c, occ0)
        zc = mc.value(res)
        zt = mt.value(res) * (-1 if r.x_on_target(res) else 1)
        assert (zc, zt) == (-1, -1)

    @pytest.mark.parametrize("seed", range(6))
    def test_cnot_on_00(self, seed):
        compiler, c, occ0 = cnot_setup()
        ops = compiler.ops
        ops.prepare_z(c, (0, 0))
        ops.prepare_z(c, (1, 1))
        r = lattice_surgery_cnot(ops, c, (0, 0), (1, 1), (0, 1))
        mc = ops.measure(c, (0, 0), "Z")
        mt = ops.measure(c, (1, 1), "Z")
        res = CircuitInterpreter(compiler.grid, seed=100 + seed).run(c, occ0)
        zt = mt.value(res) * (-1 if r.x_on_target(res) else 1)
        assert (mc.value(res), zt) == (1, 1)

    @pytest.mark.parametrize("seed", range(6))
    def test_cnot_creates_bell_from_plus(self, seed):
        compiler, c, occ0 = cnot_setup()
        ops = compiler.ops
        ops.prepare_x(c, (0, 0))
        ops.prepare_z(c, (1, 1))
        r = lattice_surgery_cnot(ops, c, (0, 0), (1, 1), (0, 1))
        mc = ops.measure(c, (0, 0), "X")
        mt = ops.measure(c, (1, 1), "X")
        res = CircuitInterpreter(compiler.grid, seed=200 + seed).run(c, occ0)
        xc = mc.value(res) * (-1 if r.z_on_control(res) else 1)
        assert xc * mt.value(res) == 1

    def test_geometry_requirements(self):
        compiler, c, _ = cnot_setup()
        ops = compiler.ops
        ops.prepare_z(c, (0, 0))
        ops.prepare_z(c, (1, 0))
        with pytest.raises(ValueError):
            lattice_surgery_cnot(ops, c, (0, 0), (1, 0), (0, 1))


class TestBellChain:
    @pytest.mark.parametrize("seed", range(4))
    def test_two_tile_chain(self, seed):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        c = HardwareCircuit()
        occ0 = compiler.tiles.occupancy_snapshot()
        chain = bell_chain(compiler.ops, c, [(0, 0), (0, 1)])
        mza = compiler.ops.measure(c, (0, 0), "Z")
        mzb = compiler.ops.measure(c, (0, 1), "Z")
        res = CircuitInterpreter(compiler.grid, seed=seed).run(c, occ0)
        assert mza.value(res) * mzb.value(res) == chain.zz_sign(res)

    @pytest.mark.parametrize("seed", range(4))
    def test_four_tile_chain_entanglement_swap(self, seed):
        """§2.1: two time-steps of local ops entangle remote tiles."""
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=4, rounds=1)
        c = HardwareCircuit()
        occ0 = compiler.tiles.occupancy_snapshot()
        path = [(0, 0), (0, 1), (0, 2), (0, 3)]
        chain = bell_chain(compiler.ops, c, path)
        assert chain.logical_timesteps == 2
        mza = compiler.ops.measure(c, (0, 0), "Z")
        mzb = compiler.ops.measure(c, (0, 3), "Z")
        res = CircuitInterpreter(compiler.grid, seed=seed).run(c, occ0)
        assert mza.value(res) * mzb.value(res) == chain.zz_sign(res)

    def test_odd_path_rejected(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=3, rounds=1)
        with pytest.raises(ValueError):
            bell_chain(compiler.ops, HardwareCircuit(), [(0, 0), (0, 1), (0, 2)])


class TestCompilerFacade:
    def test_compile_and_simulate(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile(
            [("PrepareZ", (0, 0)), ("PrepareZ", (0, 1)), ("MeasureZZ", (0, 0), (0, 1))]
        )
        assert compiled.validity is not None
        assert compiled.resources is not None
        assert compiled.logical_timesteps == 3
        res = compiler.simulate(compiled, seed=1)
        assert compiled.results[-1].value(res) == 1  # |00> has ZZ=+1

    def test_unknown_mnemonic(self):
        compiler = TISCC(dx=2, dz=2, rounds=1)
        with pytest.raises(ValueError):
            compiler.compile([("Teleport", (0, 0))])

    def test_unknown_mnemonic_message_lists_supported(self):
        compiler = TISCC(dx=2, dz=2, rounds=1)
        with pytest.raises(ValueError, match="unknown mnemonic 'Teleport'") as exc:
            compiler.compile([("Teleport", (0, 0))])
        for mnemonic in TISCC.MNEMONICS:
            assert mnemonic in str(exc.value)

    @pytest.mark.parametrize(
        "step",
        [
            ("PrepareZ",),  # missing tile coord
            ("PrepareZ", (0, 0), (0, 1)),  # one coord too many
            ("MeasureZZ", (0, 0)),  # needs two tiles
            ("MergeContract", (0, 0)),  # needs two tiles (+ keep)
        ],
    )
    def test_dispatch_wrong_arity(self, step):
        """Malformed steps raise a one-line ValueError naming the signature.

        (They used to escape as an opaque ``TypeError`` from the dispatch
        lambda.)
        """
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        mnemonic = step[0]
        with pytest.raises(ValueError, match="wrong number of arguments") as exc:
            compiler.compile([step])
        message = str(exc.value)
        assert "\n" not in message
        assert f"got {len(step) - 1}" in message
        assert mnemonic + TISCC.SIGNATURES[mnemonic][0] in message

    def test_dispatch_malformed_prepare_names_signature(self):
        """The ISSUE's exemplar: ('PrepareZ', 0, 0) names PrepareZ(tile)."""
        compiler = TISCC(dx=2, dz=2, rounds=1)
        with pytest.raises(ValueError, match=r"expected PrepareZ\(tile\)"):
            compiler.compile([("PrepareZ", 0, 0)])

    def test_dispatch_optional_direction_defaults(self):
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile([("PrepareZ", (0, 0)), ("Move", (0, 0))])
        assert compiled.results[-1].name == "Move"

    def test_logical_timesteps_aggregation(self):
        """CompiledOperation.logical_timesteps sums Table 1 per-step costs."""
        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
        compiled = compiler.compile(
            [
                ("PrepareZ", (0, 0)),  # 1 step
                ("PauliX", (0, 0)),  # 0 steps (transversal)
                ("Idle", (0, 0)),  # 1 step
                ("MeasureZ", (0, 0)),  # 0 steps
            ]
        )
        assert [r.logical_timesteps for r in compiled.results] == [1, 0, 1, 0]
        assert compiled.logical_timesteps == 2

    def test_logical_timesteps_empty_program(self):
        compiler = TISCC(dx=2, dz=2, rounds=1)
        compiled = compiler.compile([], operation="noop")
        assert compiled.logical_timesteps == 0
        assert compiled.results == []

    def test_to_text_roundtrip(self):
        from repro.sim.parser import parse_circuit

        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=1, rounds=1)
        compiled = compiler.compile([("PrepareZ", (0, 0))])
        parsed = parse_circuit(compiled.to_text(), compiler.grid)
        assert len(parsed) == len(compiled.circuit)

    def test_simulation_of_parsed_text_matches(self):
        from repro.sim.parser import parse_circuit

        compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=1, rounds=1)
        compiled = compiler.compile([("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))])
        parsed = parse_circuit(compiled.to_text(), compiler.grid)
        r1 = CircuitInterpreter(compiler.grid, seed=3).run(
            compiled.circuit, compiled.initial_occupancy
        )
        r2 = CircuitInterpreter(compiler.grid, seed=3).run(
            parsed, compiled.initial_occupancy
        )
        assert r1.outcomes == r2.outcomes


class TestCli:
    def test_compile_command(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "--op", "PrepareZ", "--dx", "2", "--dz", "2",
                     "--rounds", "1", "--resources", "--simulate"]) == 0
        out = capsys.readouterr().out
        assert "compiled PrepareZ" in out
        assert "operation" in out

    def test_render_command(self, capsys):
        from repro.__main__ import main

        assert main(["render", "--dx", "3", "--dz", "3"]) == 0
        assert "STANDARD" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "--op", "Idle", "--distances", "2", "--rounds", "1"]) == 0
        assert "Idle" in capsys.readouterr().out

    def test_unknown_op(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "--op", "Nope"]) == 2

    def test_sample_command(self, capsys):
        from repro.__main__ import main

        assert main(
            ["sample", "--op", "MeasureZZ", "--dx", "2", "--dz", "2",
             "--rounds", "1", "--shots", "20", "--seed", "1", "--outcomes"]
        ) == 0
        out = capsys.readouterr().out
        assert "sampled MeasureZZ" in out
        assert "logical outcomes" in out
        assert "measurement outcomes" in out

    def test_sample_unknown_op(self, capsys):
        from repro.__main__ import main

        assert main(["sample", "--op", "Nope"]) == 2
