"""Fine-grid geometry, GridManager navigation, occupancy, and scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, JUNCTION_HOP_US, MOVE_US, SiteBlockedError
from repro.util.geometry import SiteType, ZONE_PITCH_M, site_exists, site_type_at


class TestGeometry:
    def test_pitch_is_420_um(self):
        assert ZONE_PITCH_M == pytest.approx(420e-6)

    def test_repeating_unit(self):
        # {M, O, M, J, M, O, M}: two straight segments joined by a junction.
        assert site_type_at(0, 0) is SiteType.JUNCTION
        assert site_type_at(0, 1) is SiteType.MEMORY
        assert site_type_at(0, 2) is SiteType.OPERATION
        assert site_type_at(0, 3) is SiteType.MEMORY
        assert site_type_at(1, 0) is SiteType.MEMORY
        assert site_type_at(2, 0) is SiteType.OPERATION
        assert site_type_at(3, 0) is SiteType.MEMORY

    def test_cell_interiors_do_not_exist(self):
        assert not site_exists(1, 1)
        assert not site_exists(2, 3)
        with pytest.raises(ValueError):
            site_type_at(1, 2)

    @given(st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_classification_is_total_on_lattice(self, r, c):
        if site_exists(r, c):
            assert site_type_at(r, c) in SiteType


class TestGridNavigation:
    def test_dimensions(self):
        g = GridManager(2, 3)
        assert (g.height, g.width) == (9, 13)

    def test_index_coord_roundtrip(self):
        g = GridManager(3, 3)
        for r, c in [(0, 0), (0, 5), (2, 4), (12, 12)]:
            assert g.coords(g.index(r, c)) == (r, c)

    def test_index_rejects_interior(self):
        g = GridManager(2, 2)
        with pytest.raises(ValueError):
            g.index(1, 1)

    def test_neighbors_of_junction(self):
        g = GridManager(3, 3)
        j = g.index(4, 4)
        assert sorted(g.coords(s) for s in g.neighbors(j)) == [
            (3, 4), (4, 3), (4, 5), (5, 4),
        ]

    def test_junction_between(self):
        g = GridManager(2, 2)
        a, b = g.index(0, 3), g.index(0, 5)
        assert g.junction_between(a, b) == g.index(0, 4)
        assert g.junction_between(a, g.index(0, 2)) is None

    def test_gate_adjacency(self):
        g = GridManager(2, 2)
        assert g.gate_adjacent(g.index(0, 1), g.index(0, 2))
        assert not g.gate_adjacent(g.index(0, 3), g.index(0, 5))  # across junction
        assert not g.gate_adjacent(g.index(0, 3), g.index(0, 4))  # junction itself

    def test_zones_in_bbox_counts(self):
        g = GridManager(2, 2)
        # One full repeating unit: 6 zones.
        assert g.zones_in_bbox(0, 0, 3, 3) == 6


class TestIons:
    def test_add_and_lookup(self):
        g = GridManager(2, 2)
        site = g.index(0, 1)
        ion = g.add_ion(site, "test")
        assert g.ion_at(site) == ion
        assert g.site_of(ion) == site
        assert g.ion_tag(ion) == "test"

    def test_no_ions_on_junctions(self):
        g = GridManager(2, 2)
        with pytest.raises(ValueError):
            g.add_ion(g.index(0, 0))

    def test_no_double_occupancy(self):
        g = GridManager(2, 2)
        g.add_ion(g.index(0, 1))
        with pytest.raises(ValueError):
            g.add_ion(g.index(0, 1))

    def test_remove_ion(self):
        g = GridManager(2, 2)
        ion = g.add_ion(g.index(0, 1))
        g.remove_ion(ion)
        assert g.ion_at(g.index(0, 1)) is None


class TestScheduling:
    def test_zone_move_duration(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        ion = g.add_ion(g.index(0, 1))
        t0, t1 = g.schedule_move(c, ion, g.index(0, 2))
        assert t1 - t0 == pytest.approx(MOVE_US)

    def test_junction_crossing_duration(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        ion = g.add_ion(g.index(0, 3))
        t0, t1 = g.schedule_move(c, ion, g.index(0, 5))
        assert t1 - t0 == pytest.approx(JUNCTION_HOP_US)
        assert c.count("Move") == 1

    def test_move_into_parked_raises(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        g.add_ion(g.index(0, 2))
        ion = g.add_ion(g.index(0, 1))
        with pytest.raises(SiteBlockedError):
            g.schedule_move(c, ion, g.index(0, 2))

    def test_junction_conflict_serialized_and_counted(self):
        g = GridManager(3, 3)
        c = HardwareCircuit()
        # Two crossings through interior junction J(4,4) with disjoint arms.
        a = g.add_ion(g.index(3, 4))
        b = g.add_ion(g.index(4, 3))
        g.schedule_move(c, a, g.index(5, 4))
        assert g.junction_conflicts == 0
        g.schedule_move(c, b, g.index(4, 5))
        assert g.junction_conflicts == 1
        moves = [i for i in c.sorted_instructions() if i.name == "Move"]
        assert moves[1].t >= moves[0].t_end

    def test_route_avoids_parked_ions(self):
        g = GridManager(2, 2)
        blocker_site = g.index(0, 5)
        g.add_ion(blocker_site)
        src, dst = g.index(0, 3), g.index(0, 7)
        path = g.route(src, dst)
        assert blocker_site not in path

    def test_route_same_site(self):
        g = GridManager(2, 2)
        s = g.index(0, 1)
        assert g.route(s, s) == [s]

    def test_schedule_route_folds_junctions(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        ion = g.add_ion(g.index(0, 1))
        path = [g.index(0, 1), g.index(0, 2), g.index(0, 3), g.index(0, 4), g.index(0, 5)]
        g.schedule_route(c, ion, path)
        assert g.site_of(ion) == g.index(0, 5)
        assert c.count("Move") == 3  # two zone hops + one junction crossing

    def test_gate2_requires_adjacency(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        a = g.add_ion(g.index(0, 1))
        b = g.add_ion(g.index(0, 3))
        with pytest.raises(ValueError):
            g.schedule_gate2(c, "ZZ", a, b, 2000.0)

    def test_sync_ions(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        a = g.add_ion(g.index(0, 1))
        b = g.add_ion(g.index(4, 1))
        g.schedule_gate1(c, "Measure_Z", a, 120.0)
        t = g.sync_ions([a, b])
        assert g.ion_ready(b) == t == pytest.approx(120.0)

    def test_load_ion_emits_instruction(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        g.load_ion(c, g.index(0, 1))
        assert c.count("Load") == 1
        assert g.ion_at(g.index(0, 1)) is not None

    def test_ensure_ion_reuses(self):
        g = GridManager(2, 2)
        c = HardwareCircuit()
        ion = g.add_ion(g.index(0, 1))
        assert g.ensure_ion(c, g.index(0, 1)) == ion
        assert c.count("Load") == 0
