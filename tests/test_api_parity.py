"""RunResult and BatchResult expose interchangeable readout APIs.

Single-shot and batched callers must be able to share post-processing code:
``sign``, ``expectation`` (qsite-keyed), ``expectation_over_ions``
(ion-keyed), and ``qubit_of_site`` exist on both result types and agree
shot-for-shot when the batch runs with per-shot rng streams.
"""

from __future__ import annotations

import numpy as np

from repro.code.pauli import PauliString
from repro.core.compiler import TISCC
from repro.sim.batch import per_shot_seed

READOUT_API = ("sign", "expectation", "expectation_over_ions", "qubit_of_site")


def test_result_types_share_the_readout_api():
    from repro.sim.batch import BatchResult
    from repro.sim.interpreter import RunResult

    for name in READOUT_API:
        assert callable(getattr(RunResult, name))
        assert callable(getattr(BatchResult, name))


def test_single_shot_and_batch_results_agree():
    compiler = TISCC(dx=2, dz=2, tile_rows=1, tile_cols=2, rounds=1)
    compiled = compiler.compile(
        [
            ("PrepareZ", (0, 0)),
            ("PrepareZ", (0, 1)),
            ("MeasureZZ", (0, 0), (0, 1)),
        ]
    )
    batch = compiler.simulate_shots(compiled, 3, seed=5, independent_streams=True)

    patch = compiler.tiles[(0, 0)].patch
    assert patch is not None
    site_op = patch.logical_z.pauli
    ion_op = PauliString(
        {batch.occupancy[site]: letter for site, letter in site_op.ops.items()}
    )

    batch_site = batch.expectation(site_op)
    batch_ion = batch.expectation_over_ions(ion_op)
    assert np.array_equal(batch_site, batch_ion)

    for k in range(batch.n_shots):
        single = compiler.simulate(compiled, seed=per_shot_seed(5, k))
        shot = batch.shot(k)
        for result in (single, shot):
            assert result.expectation(site_op) == batch_site[k]
            assert result.expectation_over_ions(ion_op) == batch_ion[k]
            for site in site_op.support:
                assert result.qubit_of_site(site) == batch.qubit_of_site(site)
            for label in batch.outcomes:
                assert result.sign(label) == batch.sign(label)[k]
