"""Command-line interface (paper App. B: "TISCC can either be compiled into
an executable and given command line input (code distances, operation of
interest) or used as a library").

Examples::

    tiscc compile --op MeasureZZ --dx 3 --dz 3 --rounds 1 --resources
    tiscc compile --op Idle --dx 5 --dz 5 --print-circuit
    tiscc compile --op CNOT --dx 11 --dz 11 --resources --timings
    tiscc render --dx 3 --dz 3
    tiscc sweep --op Idle --distances 3 5 7
    tiscc sweep --op CNOT --distances 3 5 7 9 11
    tiscc sample --op MeasureZZ --dx 3 --dz 3 --shots 500 --seed 1
    tiscc lfr --distances 3 5 --rates 3e-4 5e-3 --shots 1000
    tiscc lfr --distances 3 --noise near_term --shots 500
    tiscc lfr --distances 3 5 7 --rates 1e-3 --shots 20000 --engine frame
    tiscc lfr --distances 3 --rates 1e-3 --decoder union_find_unweighted
    tiscc lfr --distances 3 5 --rates 1e-3 --decoder union_find_windowed --window 6 --commit 3
    tiscc lfr --distances 3 --rates 1e-3 --jobs 4 --shot-shards 4 --checkpoint runs/lfr
    tiscc lfr --distances 3 5 7 --rates 1e-3 3e-3 --jobs 4 --checkpoint runs/lfr
    tiscc lfr --distances 3 5 7 --rates 1e-3 3e-3 --jobs 4 --checkpoint runs/lfr --resume
    tiscc sweep --op CNOT --distances 3 5 7 --jobs 2 --checkpoint runs/cnot --resume
    tiscc dem --distance 5 --rate 1e-3 --json dem5.json
    tiscc dem --distance 3 --rate 1e-3 --decoder lookup
    tiscc profiles list
    tiscc profiles show slow_junction
    tiscc compile --op Idle --dx 3 --dz 3 --profile fast_projected --resources
    tiscc sweep --op Idle --distances 3 5 --profile baseline --profile slow_junction
    tiscc lfr --distances 3 --rates 1e-3 --profile my_trap.toml
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.code.arrangements import Arrangement
from repro.decode.base import available_decoders
from repro.estimator.report import (
    format_logical_error_table,
    format_logical_summary,
    format_outcome_summary,
    format_resource_table,
)
from repro.estimator.sweep import OPERATION_PROGRAMS, sweep_operation

__all__ = ["main"]


def _resolve_profile_args(specs) -> list:
    """Resolve CLI ``--profile`` values (names or paths) to profiles.

    ``specs`` is the raw argparse value: ``None`` (flag absent), one spec,
    or a list of specs.  Bad names/files raise ``ProfileError`` (a
    ``ValueError``), which the command handlers surface as one-line
    messages.
    """
    from repro.hardware.profile import get_profile

    if specs is None or isinstance(specs, str):
        return [get_profile(specs)]
    return [get_profile(s) for s in specs]


def _profile_note(profiles) -> str:
    """Status-line fragment naming non-default profiles (else empty).

    Empty for a pure-baseline run so that default CLI output stays
    bit-identical to the pre-profile format.
    """
    if all(p.name == "baseline" for p in profiles):
        return ""
    names = [p.name for p in profiles]
    return f", profile {names[0]}" if len(names) == 1 else f", profiles {names}"


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.compiler import TISCC

    try:
        build, shape = OPERATION_PROGRAMS[args.op]
    except KeyError:
        print(f"unknown operation {args.op!r}; choose from {sorted(OPERATION_PROGRAMS)}")
        return 2
    try:
        (prof,) = _resolve_profile_args(args.profile)
    except ValueError as err:
        print(err)
        return 2
    compiler = TISCC(
        dx=args.dx, dz=args.dz, tile_rows=shape[0], tile_cols=shape[1], rounds=args.rounds,
        profile=prof,
    )
    compiled = compiler.compile(build(), operation=args.op, simd=args.simd)
    print(
        f"# compiled {args.op} (dx={args.dx}, dz={args.dz}{_profile_note([prof])}): "
        f"{len(compiled.circuit)} native instructions, "
        f"makespan {compiled.circuit.makespan / 1000:.3f} ms, "
        f"{compiled.logical_timesteps} logical time-step(s), "
        f"junction conflicts resolved: {compiler.grid.junction_conflicts}"
    )
    if compiled.simd_report is not None:
        r = compiled.simd_report
        print(
            f"# simd: beam passes {r.baseline_passes} -> {r.beam_passes} "
            f"({r.pass_reduction:.1%} reduction, utilization {r.utilization:.3f}), "
            f"makespan ratio {r.makespan_ratio:.3f} [{r.mode}"
            + (f", width {r.width}" if r.width else "")
            + (f", overhead {r.overhead_us:g} us" if r.overhead_us else "")
            + "]"
        )
    if args.timings:
        simd_part = (
            f", simd {compiled.simd_seconds:.3f} s" if compiled.simd_report is not None else ""
        )
        print(
            f"# phase timings: compile {compiled.compile_seconds:.3f} s"
            + simd_part
            + f", validate {compiled.validate_seconds:.3f} s, "
            f"estimate {compiled.estimate_seconds:.3f} s"
        )
    if args.resources and compiled.resources:
        print(format_resource_table([compiled.resources]))
    if args.print_circuit:
        print(compiled.to_text())
    if args.simulate:
        result = compiler.simulate(compiled, seed=args.seed)
        outcomes = {
            r.name: r.value(result) for r in compiled.results if r.value is not None
        }
        print(f"# simulated (seed {args.seed}); logical outcomes: {outcomes}")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    from repro.core.compiler import TISCC

    try:
        build, shape = OPERATION_PROGRAMS[args.op]
    except KeyError:
        print(f"unknown operation {args.op!r}; choose from {sorted(OPERATION_PROGRAMS)}")
        return 2
    if args.shots < 1:
        print("--shots must be at least 1")
        return 2
    try:
        (prof,) = _resolve_profile_args(args.profile)
    except ValueError as err:
        print(err)
        return 2
    compiler = TISCC(
        dx=args.dx, dz=args.dz, tile_rows=shape[0], tile_cols=shape[1], rounds=args.rounds,
        profile=prof,
    )
    compiled = compiler.compile(build(), operation=args.op)
    t0 = time.perf_counter()
    batch = compiler.simulate_shots(
        compiled, args.shots, seed=args.seed, independent_streams=not args.fast
    )
    elapsed = time.perf_counter() - t0
    print(
        f"# sampled {args.op} (dx={args.dx}, dz={args.dz}): {args.shots} shots in "
        f"{elapsed:.3f} s ({args.shots / elapsed:.0f} shots/s, "
        f"{'shared-stream' if args.fast else 'per-shot-stream'} mode, seed {args.seed})"
    )
    print(format_logical_summary(compiled, batch, title="logical outcomes"))
    if args.outcomes:
        print(format_outcome_summary(batch, title="measurement outcomes", limit=args.max_labels))
    return 0


def _validate_distances(distances: list[int]) -> str | None:
    """One-line complaint for invalid code distances, or None when fine.

    Surface-code distances on this layout are odd and at least 3 — an even
    ``d`` silently builds a different (and weaker) code, so it is rejected
    rather than compiled.
    """
    for d in distances:
        if d < 3:
            return f"code distances must be at least 3 (got {d})"
        if d % 2 == 0:
            return (
                f"code distances must be odd (got {d}); even distances are "
                "not surface codes on this layout"
            )
    return None


def _validate_sweep_distances(distances: list[int]) -> str | None:
    """One-line complaint for invalid resource-sweep distances, or None.

    Resource sweeps intentionally accept even distances (the estimator can
    price a d=2 patch even though it is not a code the lfr path would
    decode), but anything below 2 has no patch to compile.
    """
    for d in distances:
        if d < 2:
            return f"--distances must be at least 2 for resource sweeps (got {d})"
    return None


def _add_profile_argument(parser: argparse.ArgumentParser, repeatable: bool = False) -> None:
    """``--profile NAME|PATH``: hardware profile selection.

    ``repeatable=True`` (the sweep front-ends) lets the flag appear several
    times, making the profile a first-class sweep axis.
    """
    extra = "; repeat the flag to sweep several profiles" if repeatable else ""
    parser.add_argument(
        "--profile",
        action="append" if repeatable else "store",
        default=None,
        metavar="NAME|PATH",
        help="hardware profile: a shipped/registered name (see `tiscc profiles "
        f"list`) or a TOML/JSON file path{extra}",
    )


def _add_simd_argument(parser: argparse.ArgumentParser) -> None:
    """``--simd``: run the beam-pass rescheduling phase on every compile."""
    parser.add_argument(
        "--simd",
        action="store_true",
        help="SIMD beam-pass scheduling: batch identical gates into beam "
        "passes and compact the schedule (knobs come from the profile's "
        "simd_* fields)",
    )


def _add_job_arguments(parser: argparse.ArgumentParser) -> None:
    """Sharding/checkpointing options shared by the sweep front-ends."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cell execution (1 = in-process, the oracle path)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint directory: completed cells are persisted there "
        "(content-addressed) and served on --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed cells from an existing --checkpoint directory",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, refreshing any checkpoint entries",
    )


def _validate_job_args(args: argparse.Namespace) -> str | None:
    """One-line complaint for inconsistent sharding options, or None."""
    if args.jobs < 1:
        return f"--jobs must be at least 1 (got {args.jobs})"
    if args.resume and args.checkpoint is None:
        return "--resume requires --checkpoint DIR (there is nothing to resume from)"
    return None


def _print_job_summary(args: argparse.Namespace, stats: dict) -> None:
    """One status line about sharded execution (only when it was requested)."""
    if args.jobs <= 1 and args.checkpoint is None:
        return
    extra = ", degraded to in-process" if stats.get("degraded") else ""
    print(
        f"# sweep cells: {stats.get('cache_hits', 0)} served from cache, "
        f"{stats.get('executed', 0)} computed ({args.jobs} worker(s){extra})"
    )


def _validate_window_args(args: argparse.Namespace) -> str | None:
    """One-line complaint for inconsistent sliding-window options, or None."""
    if args.commit is not None and args.window is None:
        return "--commit requires --window W (there is no window to commit into)"
    if args.window is not None and args.window < 2:
        return f"--window must span at least 2 time slices (got {args.window})"
    if args.commit is not None and args.commit < 1:
        return f"--commit must be at least 1 slice (got {args.commit})"
    if args.window is not None and args.commit is not None and args.commit >= args.window:
        return (
            f"--commit ({args.commit}) must be smaller than --window "
            f"({args.window}); the trailing buffer absorbs boundary artifacts"
        )
    if args.window is not None or args.commit is not None:
        from repro.decode.base import decoder_class

        effective = args.decoder or "union_find"
        if not decoder_class(effective).wants_layout:
            return (
                f"--window/--commit only apply to windowed decoders, not "
                f"{effective!r} (try --decoder union_find_windowed)"
            )
    if args.shot_shards < 1:
        return f"--shot-shards must be at least 1 (got {args.shot_shards})"
    if args.shot_shards > 1 and args.jobs <= 1 and args.checkpoint is None:
        return "--shot-shards needs --jobs N or --checkpoint DIR to fan out over"
    if args.shot_shards > 1 and args.engine != "frame":
        return "--shot-shards requires --engine frame (per-shot seed streams)"
    return None


def _validate_rates(
    rates: list[float] | None,
    scales: list[float] | None = None,
    flag: str = "--rates",
) -> str | None:
    """One-line complaint for invalid physical rates/scales, or None.

    ``flag`` names the offending option in the message (``--rates`` for
    ``lfr``, ``--rate`` for ``dem``).
    """
    for p in rates or ():
        if p < 0:
            return f"{flag} must be non-negative probabilities (got {p:g})"
        if p > 1:
            return f"{flag} must be probabilities in [0, 1] (got {p:g})"
    for s in scales or ():
        if s < 0:
            return f"--scales must be non-negative (got {s:g})"
    return None


def _cmd_lfr(args: argparse.Namespace) -> int:
    import json

    from repro.estimator.sweep import logical_error_sweep
    from repro.sim.noise import NoiseModel

    if args.shots < 2:
        print("--shots must be at least 2")
        return 2
    complaint = (
        _validate_distances(args.distances)
        or _validate_rates(args.rates, args.scales)
        or _validate_job_args(args)
        or _validate_window_args(args)
    )
    if complaint:
        print(complaint)
        return 2
    stats: dict = {}
    try:
        profiles = _resolve_profile_args(args.profile)
        if args.rates is not None:
            models = [NoiseModel.uniform(p) for p in args.rates]
        else:
            # Preset specs resolve against each profile inside the sweep,
            # so "near_term" means each architecture's own calibration.
            models = [(args.noise, s) for s in args.scales]
        t0 = time.perf_counter()
        reports = logical_error_sweep(
            args.distances,
            noise_models=models,
            shots=args.shots,
            basis=args.basis,
            rounds=args.rounds,
            seed=args.seed,
            engine=args.engine,
            decoder=args.decoder,
            profile=profiles,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            use_cache=not args.no_cache,
            resume=args.resume,
            stats=stats,
            window=args.window,
            commit=args.commit,
            shot_shards=args.shot_shards,
            simd=args.simd,
        )
    except ValueError as err:
        # Bad rates/scales/distances/decoders/profiles — and unusable
        # checkpoint directories — surface as one-line messages, not
        # tracebacks (the lookup decoder rejects large graphs here too).
        print(err)
        return 2
    elapsed = time.perf_counter() - t0
    print(
        f"# logical error rates: {args.basis}-basis memory, distances "
        f"{args.distances}, {args.shots} shots each, seed {args.seed}, "
        f"{args.engine} engine, {args.decoder or 'union_find'} decoder"
        + (", simd scheduling" if args.simd else "")
        + f"{_profile_note(profiles)} ({elapsed:.1f} s total)"
    )
    _print_job_summary(args, stats)
    print(format_logical_error_table(reports, title="decoded logical error rates"))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"# wrote {args.json}")
    return 0


def _cmd_dem(args: argparse.Namespace) -> int:
    import json
    from collections import Counter

    from repro.decode.memory import MemoryExperiment
    from repro.sim.noise import NoiseModel

    complaint = _validate_distances([args.distance]) or _validate_rates(
        None if args.rate is None else [args.rate], flag="--rate"
    )
    if complaint:
        print(complaint)
        return 2
    if args.rounds is not None and args.rounds < 1:
        print(f"--rounds must be at least 1 (got {args.rounds})")
        return 2
    try:
        (prof,) = _resolve_profile_args(args.profile)
        model = (
            NoiseModel.uniform(args.rate)
            if args.rate is not None
            else NoiseModel.preset(args.noise, profile=prof)
        )
    except ValueError as err:
        # Unknown presets/profiles surface as one-line messages, not tracebacks.
        print(err)
        return 2
    experiment = MemoryExperiment(
        distance=args.distance, rounds=args.rounds, basis=args.basis, profile=prof
    )
    t0 = time.perf_counter()
    table = experiment.fault_table(model)
    extract_seconds = time.perf_counter() - t0
    dem = experiment.detector_error_model(model)
    elapsed = time.perf_counter() - t0
    kinds = table.kind_counts()
    sizes = Counter(len(dets) for dets in dem.detectors)
    stats = {
        "extraction_seconds": extract_seconds,
        "n_sites": table.n_sites,
        "n_mechanisms": dem.n_mechanisms,
        "path": table.method,
    }
    print(
        f"# detector error model: {args.basis}-basis memory, d={args.distance}, "
        f"{experiment.rounds} round(s), noise {model.name}{_profile_note([prof])} "
        f"({elapsed:.2f} s extraction)"
    )
    if args.stats:
        print(
            f"stats: extraction {stats['extraction_seconds']:.4f} s "
            f"({stats['path']} path), n_sites {stats['n_sites']}, "
            f"n_mechanisms {stats['n_mechanisms']}"
        )
    print(
        f"detectors: {dem.n_detectors}  observables: {dem.n_observables}  "
        f"fault sites: {table.n_sites}  mechanisms: {dem.n_mechanisms}"
    )
    print("sites by kind: " + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())))
    print(
        "mechanisms by detector count: "
        + ", ".join(f"|D|={k}: {v}" for k, v in sorted(sizes.items()))
    )
    if dem.n_mechanisms:
        print(
            f"mechanism probabilities: min {dem.probs.min():.3g}, "
            f"max {dem.probs.max():.3g}, total weight {dem.probs.sum():.3g}"
        )
        print(
            f"analytic marginals: mean detector rate "
            f"{dem.detection_rates().mean():.4g}, raw observable flip rate "
            f"{float(dem.observable_rates()[0]):.4g}"
        )
    if args.decoder is not None:
        try:
            graph = experiment.matching_graph(model)
            experiment.decoder_for(model, args.decoder)  # validates buildability
        except ValueError as err:
            # e.g. the lookup decoder refusing a too-large graph.
            print(err)
            return 2
        ws = [e.weight for e in graph.edges]
        span = f"weights {min(ws):.3g}..{max(ws):.3g}" if ws else "no edges"
        print(
            f"decoding graph ({args.decoder}): {graph.n_detectors} detectors, "
            f"{graph.n_edges} edges, {span}"
        )
    if args.json:
        payload = dem.to_dict()
        if args.stats:
            # --stats + --json is not an error: the same fields ride along
            # inside the artifact.
            payload["stats"] = stats
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"# wrote {args.json}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.code.patch_layout import PatchLayout
    from repro.hardware.grid import grid_for_patch

    arrangement = Arrangement[args.arrangement.upper()]
    try:
        (prof,) = _resolve_profile_args(args.profile)
    except ValueError as err:
        print(err)
        return 2
    grid = grid_for_patch(prof, args.dx, args.dz)
    layout = PatchLayout(grid, args.dx, args.dz, arrangement=arrangement)
    print(
        f"# {arrangement.name} arrangement, dx={args.dx}, dz={args.dz} "
        "(D data, x/z measure-ion homes, M/O/J sites)"
    )
    print(layout.render_ascii())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    complaint = _validate_sweep_distances(args.distances) or _validate_job_args(args)
    if complaint:
        print(complaint)
        return 2
    stats: dict = {}
    try:
        profiles = _resolve_profile_args(args.profile)
        reports = sweep_operation(
            args.op,
            args.distances,
            rounds=args.rounds,
            profile=profiles,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            use_cache=not args.no_cache,
            resume=args.resume,
            stats=stats,
            simd=args.simd,
        )
    except ValueError as err:
        # Unknown operations/profiles and unusable checkpoint directories
        # surface as one-line messages, not tracebacks (App. B style).
        print(err)
        return 2
    print(format_resource_table(reports, title=f"{args.op} resource sweep (§3.4)"))
    _print_job_summary(args, stats)
    return 0


def _cmd_profiles_list(args: argparse.Namespace) -> int:
    from repro.hardware.profile import available_profiles, get_profile

    print(
        f"{'name':<16} {'fingerprint':<12} {'move_us':>8} {'junction_us':>11} "
        f"{'presets':<28} description"
    )
    try:
        for name in available_profiles():
            p = get_profile(name)
            presets = ",".join(p.preset_names)
            print(
                f"{p.name:<16} {p.fingerprint[:12]:<12} {p.move_us:>8g} "
                f"{p.junction_us:>11g} {presets:<28} {p.description}"
            )
    except ValueError as err:
        # A malformed shipped/registered profile file: one line, no traceback.
        print(err)
        return 2
    return 0


def _cmd_profiles_show(args: argparse.Namespace) -> int:
    from repro.hardware.profile import get_profile

    try:
        p = get_profile(args.name)
    except ValueError as err:
        print(err)
        return 2
    if args.json:
        print(p.dumps())
        return 0
    print(f"# hardware profile {p.name} (fingerprint {p.fingerprint})")
    if p.description:
        print(f"# {p.description}")
    print(
        f"topology: {p.topology}  zone_pitch_um: {p.zone_pitch_um:g}  "
        f"move_us: {p.move_us:g}  junction_us: {p.junction_us:g} "
        f"(hop {p.junction_hop_us:g})"
    )
    print("gate times [us]:")
    for gate, t in p.gate_times_us:
        print(f"  {gate:<12} {t:g}")
    print("noise presets:")
    for name in p.preset_names:
        params = p.preset_params(name)
        knobs = "  ".join(f"{k}={v:g}" for k, v in params.items() if v is not None)
        print(f"  {name:<12} {knobs}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tiscc",
        description="TISCC reproduction: surface-code compiler and resource "
        "estimator for trapped-ion processors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile one surface-code operation")
    p_compile.add_argument("--op", required=True)
    p_compile.add_argument("--dx", type=int, default=3)
    p_compile.add_argument("--dz", type=int, default=3)
    p_compile.add_argument("--rounds", type=int, default=None)
    p_compile.add_argument("--resources", action="store_true")
    p_compile.add_argument("--print-circuit", action="store_true")
    p_compile.add_argument(
        "--timings",
        action="store_true",
        help="print per-phase wall-clock timings (compile/simd/validate/estimate)",
    )
    p_compile.add_argument("--simulate", action="store_true")
    p_compile.add_argument("--seed", type=int, default=0)
    _add_profile_argument(p_compile)
    _add_simd_argument(p_compile)
    p_compile.set_defaults(fn=_cmd_compile)

    p_sample = sub.add_parser(
        "sample", help="batched Monte-Carlo sampling of one operation (§4.1)"
    )
    p_sample.add_argument("--op", required=True)
    p_sample.add_argument("--dx", type=int, default=3)
    p_sample.add_argument("--dz", type=int, default=3)
    p_sample.add_argument("--rounds", type=int, default=None)
    p_sample.add_argument("--shots", type=int, default=500)
    p_sample.add_argument("--seed", type=int, default=0)
    p_sample.add_argument(
        "--fast",
        action="store_true",
        help="one shared rng stream (fastest; not relatable to single-shot replays)",
    )
    p_sample.add_argument(
        "--outcomes", action="store_true", help="also print per-label outcome statistics"
    )
    p_sample.add_argument("--max-labels", type=int, default=16)
    _add_profile_argument(p_sample)
    p_sample.set_defaults(fn=_cmd_sample)

    p_lfr = sub.add_parser(
        "lfr",
        help="logical error rate: noisy batched sampling + union-find decoding",
    )
    p_lfr.add_argument("--distances", type=int, nargs="+", default=[3, 5])
    p_lfr.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        help="physical rates; each p becomes the single-knob uniform(p) model",
    )
    p_lfr.add_argument(
        "--noise",
        default="near_term",
        help="noise preset (used when --rates is not given)",
    )
    p_lfr.add_argument(
        "--scales",
        type=float,
        nargs="+",
        default=[1.0],
        help="scale factors applied to the preset's rates",
    )
    p_lfr.add_argument("--shots", type=int, default=1000)
    p_lfr.add_argument("--basis", choices=["Z", "X"], default="Z")
    p_lfr.add_argument("--rounds", type=int, default=None)
    p_lfr.add_argument("--seed", type=int, default=0)
    p_lfr.add_argument(
        "--engine",
        choices=["frame", "tableau"],
        default="frame",
        help="sampling path: DEM frame sampler (fast, default) or packed-tableau replay",
    )
    p_lfr.add_argument(
        "--decoder",
        choices=available_decoders(),
        default=None,
        help="registered decoder (default: weighted union-find on the DEM graph)",
    )
    p_lfr.add_argument(
        "--window",
        type=int,
        default=None,
        help="sliding-window width in time slices for --decoder "
        "union_find_windowed (default: 2*distance)",
    )
    p_lfr.add_argument(
        "--commit",
        type=int,
        default=None,
        help="slices committed per window advance (default: distance; "
        "must be < --window)",
    )
    p_lfr.add_argument(
        "--shot-shards",
        type=int,
        default=1,
        help="split each cell's shot axis into N disjoint shards so decode "
        "fans out across --jobs workers (frame engine only)",
    )
    p_lfr.add_argument("--json", default=None, help="also write reports to a JSON file")
    _add_profile_argument(p_lfr, repeatable=True)
    _add_simd_argument(p_lfr)
    _add_job_arguments(p_lfr)
    p_lfr.set_defaults(fn=_cmd_lfr)

    p_dem = sub.add_parser(
        "dem",
        help="extract and summarize a detector error model for a memory experiment",
    )
    p_dem.add_argument("--distance", type=int, default=3)
    p_dem.add_argument("--basis", choices=["Z", "X"], default="Z")
    p_dem.add_argument("--rounds", type=int, default=None)
    p_dem.add_argument(
        "--rate", type=float, default=None, help="uniform(p) single-knob physical rate"
    )
    p_dem.add_argument(
        "--noise", default="near_term", help="noise preset (used when --rate is not given)"
    )
    p_dem.add_argument(
        "--decoder",
        choices=available_decoders(),
        default=None,
        help="also summarize the DEM-built decoding graph for this decoder",
    )
    p_dem.add_argument("--json", default=None, help="write the full DEM to a JSON file")
    p_dem.add_argument(
        "--stats",
        action="store_true",
        help="print extraction stats (seconds, sites, mechanisms, periodic-vs-full "
        "path); with --json the same fields are embedded in the artifact",
    )
    _add_profile_argument(p_dem)
    p_dem.set_defaults(fn=_cmd_dem)

    p_render = sub.add_parser("render", help="render a patch layout (Fig 1/Fig 2)")
    p_render.add_argument("--dx", type=int, default=3)
    p_render.add_argument("--dz", type=int, default=3)
    p_render.add_argument("--arrangement", default="standard")
    _add_profile_argument(p_render)
    p_render.set_defaults(fn=_cmd_render)

    p_sweep = sub.add_parser("sweep", help="resource sweep over code distances")
    p_sweep.add_argument("--op", required=True)
    p_sweep.add_argument("--distances", type=int, nargs="+", default=[3, 5])
    p_sweep.add_argument("--rounds", type=int, default=None)
    _add_profile_argument(p_sweep, repeatable=True)
    _add_simd_argument(p_sweep)
    _add_job_arguments(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_profiles = sub.add_parser(
        "profiles", help="list or inspect declarative hardware profiles"
    )
    profiles_sub = p_profiles.add_subparsers(dest="profiles_command", required=True)
    pp_list = profiles_sub.add_parser("list", help="list shipped/registered profiles")
    pp_list.set_defaults(fn=_cmd_profiles_list)
    pp_show = profiles_sub.add_parser(
        "show", help="show one profile's calibration in full"
    )
    pp_show.add_argument("name", help="profile name or TOML/JSON file path")
    pp_show.add_argument(
        "--json", action="store_true", help="print the profile as canonical JSON"
    )
    pp_show.set_defaults(fn=_cmd_profiles_show)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
