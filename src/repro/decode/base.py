"""Decoder protocol and registry: the pluggable half of the decode pipeline.

Every decoder consumes a fixed :class:`~repro.decode.graph.MatchingGraph`
and honours one batch contract — :meth:`Decoder.decode_batch` maps a
``(n_shots, n_detectors)`` 0/1 syndrome matrix to a ``(n_shots,)`` uint8
vector of predicted logical-frame flips.  Implementations register under a
string name (``@register_decoder``), and callers select them at run time::

    from repro.decode import get_decoder
    decoder = get_decoder("union_find", graph)
    flips = decoder.decode_batch(syndromes)

Built-in entries:

* ``"union_find"`` — weighted union-find (cluster growth + peeling) with
  batch-level vectorization; respects the graph's log-likelihood edge
  weights (on a unit-weight graph it reduces to the unweighted decoder);
* ``"union_find_unweighted"`` — the same engine forced onto unit weights
  (the ablation arm of weighted-vs-unweighted comparisons);
* ``"lookup"`` — an exact minimum-weight lookup table over the full
  syndrome space, viable only for small graphs (d=3 memories) and used as
  the equivalence oracle of the test suite;
* ``"union_find_windowed"`` — sliding-window (overlapping-commit) driver
  over the weighted union-find engine: O(window) decoder state for
  rounds ≫ d experiments.  It needs the detector layout and window shape
  at construction, which it declares via the class attribute
  ``wants_layout = True`` — callers that know the layout (e.g.
  :meth:`MemoryExperiment.decoder_for`) check
  ``decoder_class(name).wants_layout`` and pass ``n_faces``/``window``/
  ``commit`` through :func:`get_decoder`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.decode.graph import MatchingGraph

__all__ = [
    "Decoder",
    "register_decoder",
    "get_decoder",
    "decoder_class",
    "available_decoders",
    "integer_weights",
]


class Decoder(abc.ABC):
    """A syndrome decoder bound to one :class:`MatchingGraph`.

    Subclasses set the class attribute ``name`` (the registry key) and
    implement :meth:`decode_batch`; :meth:`decode` has a default
    single-shot implementation in terms of the batch path, so both entry
    points always agree.

    Instances may keep preallocated per-shot scratch state (the union-find
    implementations do), so a single instance is **not** safe for
    concurrent ``decode_batch`` calls — parallelize over *instances*
    (``get_decoder`` builds an independent one per call), not over threads
    sharing one.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: True when the constructor needs the detector layout (``n_faces``)
    #: and window shape (``window``/``commit``) in addition to the graph.
    wants_layout: bool = False

    def __init__(self, graph: MatchingGraph):
        self.graph = graph
        self.n = graph.n_detectors

    # ------------------------------------------------------------ contract
    @abc.abstractmethod
    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Per-shot predicted logical flips for a ``(n_shots, n_detectors)`` batch."""

    def decode(self, syndrome: np.ndarray) -> int:
        """Predicted logical-frame flip (0/1) for one detector bit vector."""
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        if syndrome.shape != (self.n,):
            raise ValueError(
                f"syndrome shape {syndrome.shape} does not match {self.n} detectors"
            )
        return int(self.decode_batch(syndrome[np.newaxis, :])[0])

    # ------------------------------------------------------------- helpers
    def _validate_batch(self, syndromes: np.ndarray) -> np.ndarray:
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        if syndromes.ndim != 2 or syndromes.shape[1] != self.n:
            raise ValueError(
                f"syndromes shape {syndromes.shape} does not match "
                f"(n_shots, {self.n})"
            )
        return syndromes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} over {self.graph!r}>"


_REGISTRY: dict[str, type[Decoder]] = {}


def register_decoder(cls: type[Decoder]) -> type[Decoder]:
    """Class decorator: add ``cls`` to the decoder registry under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty registry name")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_builtin_decoders() -> None:
    """Import the built-in decoder modules so their registrations run."""
    from repro.decode import lookup, union_find, window  # noqa: F401


def available_decoders() -> list[str]:
    """Sorted registry names (``["lookup", "union_find", ...]``)."""
    _ensure_builtin_decoders()
    return sorted(_REGISTRY)


def get_decoder(name: str, graph: MatchingGraph, **kwargs) -> Decoder:
    """Instantiate the registered decoder ``name`` over ``graph``.

    Unknown names raise a one-line :class:`ValueError` listing the
    available choices (the CLI surfaces it verbatim).
    """
    _ensure_builtin_decoders()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown decoder {name!r}; choose from {available_decoders()}"
        ) from None
    return cls(graph, **kwargs)


def decoder_class(name: str) -> type[Decoder]:
    """The registered decoder class for ``name`` without instantiating it.

    Lets callers inspect class-level protocol flags (``wants_layout``)
    before deciding which constructor arguments to supply.
    """
    _ensure_builtin_decoders()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown decoder {name!r}; choose from {available_decoders()}"
        ) from None


def integer_weights(
    weights: np.ndarray, unit: int = 16, max_weight: int = 2048
) -> np.ndarray:
    """Quantize positive edge weights to integer growth capacities.

    The cheapest edge maps to ``unit`` and every other edge to
    ``round(unit * w / w_min)`` clipped to ``max_weight`` — heavier (less
    probable) edges take proportionally longer to traverse.  ``unit`` sets
    the quantization resolution only: the union-find growth is
    event-driven (it fast-forwards to the next edge completion), so finer
    capacities cost nothing, and on a unit-weight graph any ``unit``
    reproduces the classic unweighted half-step growth exactly.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        return np.zeros(0, dtype=np.int64)
    if not (w > 0).all():
        raise ValueError("edge weights must be positive")
    scaled = np.rint(unit * w / w.min())
    return np.clip(scaled, unit, max_weight).astype(np.int64)
