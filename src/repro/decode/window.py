"""Sliding-window (overlapping-commit) decoding over the time axis.

The whole-block union-find decoder holds the full ``(rounds + 1) x faces``
detector volume in memory and only answers after the last round — the
opposite of what a real-time decoder needs when ``rounds >> d`` (algorithm-
scale memory experiments, streaming hardware decoders).
:class:`WindowedUnionFindDecoder` restores an O(window) profile: the time
axis is cut into overlapping windows of ``window`` slices advancing by
``commit`` slices, each window is decoded with the existing weighted
union-find engine over *its own* subgraph, and only the correction edges
whose earliest endpoint lies in the first ``commit`` slices are trusted:

* a **committed** edge contributes its logical-frame bit to the shot's
  verdict, and its endpoint defects are XORed away — an endpoint in the
  overlap region thereby *carries a boundary defect forward* into the next
  window (the committed half of a matched pair straddling the commit
  boundary leaves a residual defect the next window must re-match);
* an **uncommitted** edge (entirely inside the trailing buffer of
  ``window - commit`` slices) is discarded: its defects are still present
  when the next window re-decodes that region with real future context.

The final window extends to the last slice and commits everything.  With a
buffer of at least ``d`` slices the windowed verdicts are statistically
indistinguishable from whole-block decoding (the acceptance gate in
``benchmarks/bench_decode.py --window`` holds them inside each other's
Wilson intervals at every standard sweep point), while decoder state —
inner graphs, scratch arrays, per-shot buffers — scales with ``window``,
never with ``rounds``.

Two entry points share the engine: :meth:`~WindowedUnionFindDecoder.
decode_batch` (the registry contract, fed column slices of a materialized
syndrome matrix) and :meth:`~WindowedUnionFindDecoder.decode_stream`, which
consumes an *iterator* of per-slice ``(n_shots, faces)`` detector arrays
and buffers only the active window — the streaming shape a bounded-latency
hardware decoder has, and the path :meth:`MemoryExperiment._run_frame`
drives chunk by chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.decode.base import Decoder, get_decoder, register_decoder
from repro.decode.graph import BOUNDARY, DetectorEdge, MatchingGraph
from repro.decode.union_find import UnionFindDecoder

__all__ = ["WindowedUnionFindDecoder", "window_spans"]


def window_spans(n_slices: int, window: int, commit: int) -> list[tuple[int, int, int]]:
    """The ``(start, stop, commit_end)`` slice spans covering ``n_slices``.

    Windows start every ``commit`` slices and are ``window`` slices wide;
    the last window is the first one whose natural end reaches the final
    slice — it is extended to ``n_slices`` and commits everything.  Every
    slice is committed by exactly one window, and every edge of a
    time-local matching graph (endpoints at most one slice apart) lies
    fully inside at least one window because ``commit < window``.
    """
    if window < 2:
        raise ValueError(f"window must span at least 2 time slices (got {window})")
    if commit < 1:
        raise ValueError(f"commit must be at least 1 slice (got {commit})")
    if commit >= window:
        raise ValueError(
            f"commit ({commit}) must be smaller than window ({window}); the "
            "buffer of window - commit slices is what absorbs boundary artifacts"
        )
    spans: list[tuple[int, int, int]] = []
    s0 = 0
    while True:
        if s0 + window >= n_slices:
            spans.append((s0, n_slices, n_slices))
            return spans
        spans.append((s0, s0 + window, s0 + commit))
        s0 += commit


@dataclass
class _WindowKind:
    """One distinct window subgraph shared by every span with its structure.

    Interior windows of a time-translation-invariant graph are identical up
    to a slice offset, so the (comparatively expensive) inner decoder is
    built once per *kind* and reused across spans; only the first and last
    windows usually differ.  ``min_slice[k]`` is the earliest real-endpoint
    slice of local edge ``k`` relative to the window start — the commit
    test — and ``endpoints[k]`` its real local detector ids (boundary
    endpoints dropped), the XOR footprint a committed edge applies.
    """

    decoder: Decoder
    min_slice: list[int]
    frame: list[int]
    endpoints: list[tuple[int, ...]]

    @property
    def n_detectors(self) -> int:
        return self.decoder.graph.n_detectors


@register_decoder
class WindowedUnionFindDecoder(Decoder):
    """Sliding-window union-find over a time-sliced matching graph.

    ``n_faces`` is the number of detectors per time slice (the graph must
    hold ``n_slices * n_faces`` detectors laid out ``t * n_faces + f``,
    exactly the :meth:`MemoryExperiment.syndromes` layout); ``window`` and
    ``commit`` are counted in slices.  ``inner`` names the registered
    decoder run on each window subgraph (weighted union-find by default —
    it must expose ``decode_edges``).

    Like the inner engine, one instance keeps mutable per-call scratch and
    must not run concurrent decodes; parallelize over instances.
    """

    name = "union_find_windowed"
    #: :meth:`MemoryExperiment.decoder_for` passes the detector layout
    #: (``n_faces``) plus its window/commit configuration to decoders that
    #: set this flag — plain decoders keep the bare ``(graph)`` signature.
    wants_layout = True

    def __init__(
        self,
        graph: MatchingGraph,
        n_faces: int,
        window: int,
        commit: int,
        inner: str = "union_find",
    ):
        super().__init__(graph)
        if n_faces < 1 or graph.n_detectors % n_faces != 0:
            raise ValueError(
                f"graph with {graph.n_detectors} detectors is not a whole "
                f"number of {n_faces}-detector time slices"
            )
        self.n_faces = n_faces
        self.n_slices = graph.n_detectors // n_faces
        self.window = int(window)
        self.commit = int(commit)
        self.inner = inner
        self._spans = window_spans(self.n_slices, self.window, self.commit)

        # Flatten the graph once into per-edge endpoint/slice arrays, then
        # carve each span's subgraph out of them.  Edges are assigned to a
        # window when *all* real endpoints lie inside it; edges crossing a
        # window's trailing end always reappear whole in a later window
        # (their earliest endpoint sits in the buffer, never the commit
        # region, because commit < window).
        e_u = [e.u for e in graph.edges]
        e_v = [e.v for e in graph.edges]
        lo = np.empty(graph.n_edges, dtype=np.int64)
        hi = np.empty(graph.n_edges, dtype=np.int64)
        for k, (u, v) in enumerate(zip(e_u, e_v)):
            slices = [node // n_faces for node in (u, v) if node != BOUNDARY]
            lo[k], hi[k] = min(slices), max(slices)

        kinds: dict[tuple, _WindowKind] = {}
        self._span_kinds: list[_WindowKind] = []
        for s0, s1, _ in self._spans:
            mask = np.nonzero((lo >= s0) & (hi < s1))[0]
            offset = s0 * n_faces
            signature = (
                (s1 - s0),
                tuple(
                    (
                        e_u[k] - offset if e_u[k] != BOUNDARY else BOUNDARY,
                        e_v[k] - offset if e_v[k] != BOUNDARY else BOUNDARY,
                        graph.edges[k].frame,
                        graph.edges[k].weight,
                    )
                    for k in mask
                ),
            )
            kind = kinds.get(signature)
            if kind is None:
                local_edges = [
                    DetectorEdge(u, v, frame, graph.edges[k].kind, weight)
                    for (u, v, frame, weight), k in zip(signature[1], mask)
                ]
                local = MatchingGraph((s1 - s0) * n_faces, local_edges)
                kind = _WindowKind(
                    decoder=get_decoder(inner, local),
                    min_slice=[int(lo[k] - s0) for k in mask],
                    frame=[int(graph.edges[k].frame) for k in mask],
                    endpoints=[
                        tuple(n for n in (u, v) if n != BOUNDARY)
                        for u, v, _, _ in signature[1]
                    ],
                    )
                if not hasattr(kind.decoder, "decode_edges"):
                    raise ValueError(
                        f"inner decoder {inner!r} does not expose decode_edges; "
                        "windowed decoding needs explicit correction edges"
                    )
                kinds[signature] = kind
            self._span_kinds.append(kind)
        #: Distinct window subgraphs actually built (interior windows share).
        self.n_window_kinds = len(kinds)
        #: Largest inner decoding graph, in detectors — the O(window) state
        #: bound the memory benchmark asserts (compare
        #: :attr:`~repro.decode.base.Decoder.n`, the whole-block count).
        self.peak_window_detectors = max(k.n_detectors for k in kinds.values())

    # -------------------------------------------------------------- decoding
    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Window-decode a materialized ``(n_shots, n_detectors)`` batch.

        A thin wrapper over :meth:`decode_stream` feeding one column slice
        per round — byte-for-byte the verdicts the streaming path produces.
        """
        syndromes = self._validate_batch(syndromes)
        F = self.n_faces
        return self.decode_stream(
            (syndromes[:, t * F : (t + 1) * F] for t in range(self.n_slices)),
            n_shots=syndromes.shape[0],
        )

    def decode_stream(
        self, slices: Iterable[np.ndarray], n_shots: int | None = None
    ) -> np.ndarray:
        """Decode from an iterator of per-slice ``(n_shots, n_faces)`` arrays.

        Slices arrive in time order (one per detector round, ``n_slices``
        in total); only the active window is ever buffered, so peak memory
        is ``O(n_shots * window * n_faces)`` regardless of experiment
        length.  Returns the per-shot predicted logical flips, identical to
        :meth:`decode_batch` on the concatenated matrix.
        """
        it: Iterator[np.ndarray] = iter(slices)
        F = self.n_faces
        buf: np.ndarray | None = None  # active window, (n_shots, <= window*F)
        width = 0  # valid columns in buf
        filled = 0  # time slices consumed from the iterator
        out: np.ndarray | None = None
        if n_shots is not None:
            out = np.zeros(n_shots, dtype=np.uint8)
            buf = np.zeros((n_shots, self.window * F), dtype=np.uint8)
        # Per-(kind, local commit) verdict caches for this call: low-noise
        # batches repeat a handful of local syndromes thousands of times.
        caches: dict[tuple[int, int], dict[bytes, tuple[int, np.ndarray]]] = {}

        for (s0, s1, commit_end), kind in zip(self._spans, self._span_kinds):
            while filled < s1:
                try:
                    sl = next(it)
                except StopIteration:
                    raise ValueError(
                        f"slice stream ended after {filled} of "
                        f"{self.n_slices} time slices"
                    ) from None
                sl = np.asarray(sl, dtype=np.uint8)
                if sl.ndim != 2 or sl.shape[1] != F:
                    raise ValueError(
                        f"slice {filled} has shape {sl.shape}, expected "
                        f"(n_shots, {F})"
                    )
                if buf is None:
                    n_shots = sl.shape[0]
                    out = np.zeros(n_shots, dtype=np.uint8)
                    buf = np.zeros((n_shots, self.window * F), dtype=np.uint8)
                if sl.shape[0] != n_shots:
                    raise ValueError(
                        f"slice {filled} holds {sl.shape[0]} shots, expected {n_shots}"
                    )
                buf[:, width : width + F] = sl
                width += F
                filled += 1
            assert buf is not None and out is not None
            local_commit = commit_end - s0
            cache = caches.setdefault((id(kind), local_commit), {})
            window_view = buf[:, :width]
            for shot in np.nonzero(window_view.any(axis=1))[0]:
                row = window_view[shot]
                key = row.tobytes()
                hit = cache.get(key)
                if hit is None:
                    hit = self._decode_window(kind, row, local_commit)
                    cache[key] = hit
                flip, pattern = hit
                out[shot] ^= flip
                row ^= pattern
            # Retire the committed slices; the residual overlap (original
            # defects minus committed corrections, i.e. carried boundary
            # defects included) slides to the front for the next window.
            drop = (commit_end - s0) * F
            if drop < width:
                window_view[:, : width - drop] = window_view[:, drop:width]
            width -= drop
        if filled < self.n_slices or next(it, None) is not None:
            raise ValueError(
                f"slice stream did not match the graph's {self.n_slices} time slices"
            )
        assert out is not None
        return out

    def _decode_window(
        self, kind: _WindowKind, row: np.ndarray, local_commit: int
    ) -> tuple[int, np.ndarray]:
        """Decode one window-local syndrome; split committed vs deferred.

        Returns ``(flip, pattern)``: the committed correction's logical
        parity and its endpoint XOR footprint over the window (applying the
        pattern clears committed defects and toggles the carried boundary
        defects in the overlap region).
        """
        edges = kind.decoder.decode_edges(np.nonzero(row)[0])
        flip = 0
        pattern = np.zeros(row.shape[0], dtype=np.uint8)
        min_slice, frames, endpoints = kind.min_slice, kind.frame, kind.endpoints
        for k in edges:
            if min_slice[k] >= local_commit:
                continue  # buffer-only: re-decoded with future context
            flip ^= frames[k]
            for node in endpoints[k]:
                pattern[node] ^= 1
        return flip, pattern

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WindowedUnionFindDecoder window={self.window} commit={self.commit} "
            f"({self.n_window_kinds} kinds, peak {self.peak_window_detectors} of "
            f"{self.n} detectors) over {self.graph!r}>"
        )


# Referenced for the wants-layout protocol and the default inner engine.
_ = UnionFindDecoder
