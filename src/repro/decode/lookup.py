"""Exact lookup-table decoder for small matching graphs (d=3 memories).

Enumerates the *entire* syndrome space once: a vectorized Dijkstra (Dial's
algorithm over integer edge weights) on the ``2**n_detectors`` syndrome
states finds, for every possible syndrome, the minimum-weight edge subset
producing it and records that subset's logical-frame parity.  Decoding a
batch is then a single table gather — and, because the table is exact
minimum-weight matching over the full graph (not a growth heuristic), the
decoder doubles as the equivalence oracle the test suite holds the
union-find implementations against.

The state space doubles per detector, so construction is only viable for
small graphs; :class:`LookupDecoder` refuses graphs beyond
:data:`MAX_LOOKUP_DETECTORS` detectors (a d=3 memory has 16, a d=5 memory's
72 are far out of reach — use ``"union_find"`` there).
"""

from __future__ import annotations

import numpy as np

from repro.decode.base import Decoder, integer_weights, register_decoder
from repro.decode.graph import BOUNDARY, MatchingGraph

__all__ = ["LookupDecoder", "MAX_LOOKUP_DETECTORS"]

#: Hard ceiling on table construction (2**20 states, a few MB).
MAX_LOOKUP_DETECTORS = 20


@register_decoder
class LookupDecoder(Decoder):
    """Exact minimum-weight decoding via a precomputed full-syndrome table."""

    name = "lookup"

    def __init__(self, graph: MatchingGraph, weighted: bool = True):
        super().__init__(graph)
        if self.n > MAX_LOOKUP_DETECTORS:
            raise ValueError(
                f"lookup decoding enumerates 2**n_detectors syndromes; "
                f"{self.n} detectors exceeds the {MAX_LOOKUP_DETECTORS}-detector "
                "limit — use 'union_find' for larger graphs"
            )
        self.weighted = bool(weighted) and graph.is_weighted
        toggles = np.zeros(graph.n_edges, dtype=np.int64)
        frames = np.zeros(graph.n_edges, dtype=np.uint8)
        for k, e in enumerate(graph.edges):
            mask = 0
            for node in (e.u, e.v):
                if node != BOUNDARY:
                    mask ^= 1 << node
            toggles[k] = mask
            frames[k] = e.frame
        if self.weighted:
            weights = integer_weights(
                np.array([e.weight for e in graph.edges], dtype=np.float64)
            )
        else:
            weights = np.full(graph.n_edges, 2, dtype=np.int64)
        self._build_table(toggles, frames, weights)

    def _build_table(
        self, toggles: np.ndarray, frames: np.ndarray, weights: np.ndarray
    ) -> None:
        """Dial's algorithm over syndrome states, vectorized per weight class.

        ``dist[s]`` is the minimum total weight of an edge subset whose
        detector footprint is the bit pattern ``s``; ``frame[s]`` that
        subset's logical parity.  States are relaxed bucket-by-bucket in
        increasing distance; within a bucket the first-discovered
        predecessor wins, which makes ties deterministic for a fixed edge
        order.
        """
        n_states = 1 << self.n
        dist = np.full(n_states, -1, dtype=np.int64)
        frame = np.zeros(n_states, dtype=np.uint8)
        dist[0] = 0
        # Group edges by integer weight so each bucket relaxes per class.
        classes: list[tuple[int, np.ndarray, np.ndarray]] = []
        for w in np.unique(weights):
            sel = weights == w
            classes.append((int(w), toggles[sel], frames[sel]))
        buckets: dict[int, list[np.ndarray]] = {0: [np.zeros(1, dtype=np.int64)]}
        d = 0
        while buckets:
            if d not in buckets:
                d += 1
                continue
            states = np.unique(np.concatenate(buckets.pop(d)))
            states = states[dist[states] == d]  # lazy deletion of superseded entries
            if states.size == 0:
                d += 1
                continue
            state_frames = frame[states]
            for w, tog, frm in classes:
                nd = d + w
                cand = (states[:, None] ^ tog[None, :]).ravel()
                cand_frame = (state_frames[:, None] ^ frm[None, :]).ravel()
                old = dist[cand]
                improve = (old < 0) | (nd < old)
                if not improve.any():
                    continue
                cand, cand_frame = cand[improve], cand_frame[improve]
                # First occurrence wins among duplicates in this relaxation.
                uniq, first = np.unique(cand, return_index=True)
                dist[uniq] = nd
                frame[uniq] = cand_frame[first]
                buckets.setdefault(nd, []).append(uniq)
            d += 1
        self._table = frame
        self._reachable = dist >= 0

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        syndromes = self._validate_batch(syndromes)
        if syndromes.shape[0] == 0:
            return np.zeros(0, dtype=np.uint8)
        powers = 1 << np.arange(self.n, dtype=np.int64)
        states = syndromes.astype(np.int64) @ powers
        if not self._reachable[states].all():
            raise RuntimeError(
                "syndrome is not producible by any edge subset of this graph"
            )
        return self._table[states]
