"""Matching graphs: detector structure of a repeated syndrome schedule.

A *detector* is the XOR of two syndrome measurements that is deterministic
(zero) in the absence of faults.  For a memory experiment with ``R`` rounds
of error correction over one stabilizer sector (the faces whose outcomes the
tracked logical depends on), the detectors form ``R + 1`` time slices of the
face lattice:

* slice ``0`` compares round 0 against the transversally prepared state
  (whose relevant stabilizer outcomes are deterministic),
* slice ``t`` (``1 <= t < R``) compares rounds ``t`` and ``t - 1``, and
* slice ``R`` compares the face parities recomputed from the final
  transversal data measurements against round ``R - 1``.

Every single Pauli fault flips at most two detectors, which is what makes
the structure a *matching* graph:

* a data error between rounds flips the slice-``t`` detectors of the (at
  most two) same-sector faces containing that qubit — a **space** edge, or a
  **boundary** edge when only one face checks the qubit;
* a syndrome-measurement error in round ``t`` flips slices ``t`` and
  ``t + 1`` of the same face — a **time** edge (readout errors of the final
  transversal measurement behave like space edges in slice ``R``);
* a data error in the *middle* of round ``t`` — after the early face's
  measure-ion visit but before the late face's (§3.3 Z/N pattern layers) —
  is caught by the late face this round and the early face only next round:
  a **diagonal** edge from the late face at slice ``t`` to the early face at
  slice ``t + 1``, emitted when the caller supplies the schedule's per-face
  visit layers.

Each space/boundary edge records whether its data qubit lies on the tracked
logical operator's support (``frame = 1``): the decoder's correction flips
the logical verdict once per frame edge it uses.

Two constructions produce :class:`MatchingGraph` instances:

* :func:`build_memory_graph` derives the structure from the compiled
  stabilizer *schedule* (face supports, visit layers) with unit edge
  weights — the legacy construction, kept as a noise-free cross-check;
* :func:`build_dem_graph` derives it from an extracted
  :class:`~repro.sim.dem.DetectorErrorModel`, so every edge is an actual
  error *mechanism* of the noisy circuit carrying a log-likelihood weight
  ``log((1 - p) / p)`` — the graph weighted union-find growth consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BOUNDARY",
    "DetectorEdge",
    "MatchingGraph",
    "build_memory_graph",
    "build_dem_graph",
]

#: Virtual node index for the open boundary of the patch.
BOUNDARY = -1

#: Probability floor/ceiling when converting mechanism rates to weights
#: (keeps ``log((1-p)/p)`` finite and positive).
_MIN_PROBABILITY = 1e-12
_MAX_PROBABILITY = 0.5 - 1e-12


@dataclass(frozen=True)
class DetectorEdge:
    """One fault mechanism connecting two detectors (or one and the boundary).

    ``u``/``v`` are detector node ids (``v`` may be :data:`BOUNDARY`),
    ``frame`` is 1 when the fault flips the tracked logical operator,
    ``kind`` tags the mechanism (``"space"``, ``"time"``, ``"diagonal"``,
    or ``"dem"`` for DEM-derived edges), and ``weight`` is the
    log-likelihood cost of traversing the edge (1.0 for unweighted
    schedule-built graphs).
    """

    u: int
    v: int
    frame: int = 0
    kind: str = "space"
    weight: float = 1.0


class MatchingGraph:
    """A decoding graph over ``n_detectors`` nodes plus one open boundary.

    ``period`` (optional) is the detector-id stride of one bulk QEC round
    when the graph's interior is time-translation invariant — propagated
    from :attr:`~repro.sim.dem.DetectorErrorModel.period` by
    :func:`build_dem_graph`.  It certifies what the windowed decoder's
    structural-signature sharing discovers per window: interior window
    subgraphs are exact translates, so one inner decoder serves all of
    them.  ``None`` means no such certificate (schedule-built graphs,
    full-walk DEMs).
    """

    def __init__(
        self,
        n_detectors: int,
        edges: list[DetectorEdge],
        period: int | None = None,
    ):
        if n_detectors < 1:
            raise ValueError("need at least one detector")
        for e in edges:
            for node in (e.u, e.v):
                if node != BOUNDARY and not 0 <= node < n_detectors:
                    raise ValueError(f"edge {e} references unknown detector {node}")
            if e.u == e.v:
                raise ValueError(f"self-loop edge {e}")
            if not e.weight > 0:
                raise ValueError(f"edge {e} has non-positive weight")
        self.n_detectors = n_detectors
        self.edges = list(edges)
        self.period = period

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    @property
    def is_weighted(self) -> bool:
        """True when edge weights are not all identical."""
        if not self.edges:
            return False
        w0 = self.edges[0].weight
        return any(abs(e.weight - w0) > 1e-12 for e in self.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "weighted, " if self.is_weighted else ""
        return f"<MatchingGraph {tag}{self.n_detectors} detectors, {self.n_edges} edges>"


def build_memory_graph(
    face_supports: list[set[int]],
    logical_sites: set[int],
    rounds: int,
    visit_layers: list[dict[int, int]] | None = None,
) -> MatchingGraph:
    """Decoding graph for ``rounds`` QEC rounds over one stabilizer sector.

    ``face_supports[f]`` is the set of data qsites checked by face ``f`` (all
    faces of the sector anticommuting with the error type that flips the
    tracked logical); ``logical_sites`` the tracked logical operator's data
    support.  Detector ``(f, t)`` gets node id ``t * F + f`` for time slices
    ``t = 0 .. rounds`` — the layout syndrome extraction must follow.

    ``visit_layers[f]`` maps each of face ``f``'s data qsites to the layer
    (1-4) in which its measure ion visits that qubit; when given, mid-round
    data errors on shared qubits get their exact diagonal edges (without
    them a single such fault needs two edges, which noticeably degrades the
    union-find decoder's effective distance).
    """
    if rounds < 1:
        raise ValueError("need at least one round of error correction")
    n_faces = len(face_supports)
    if n_faces < 1:
        raise ValueError("need at least one face in the decoded sector")

    site_faces: dict[int, list[int]] = {}
    for f, support in enumerate(face_supports):
        for site in support:
            site_faces.setdefault(site, []).append(f)

    edges: list[DetectorEdge] = []
    slices = rounds + 1
    for t in range(slices):
        base = t * n_faces
        for site, faces in sorted(site_faces.items()):
            frame = 1 if site in logical_sites else 0
            if len(faces) == 2:
                edges.append(
                    DetectorEdge(base + faces[0], base + faces[1], frame, "space")
                )
            elif len(faces) == 1:
                edges.append(DetectorEdge(base + faces[0], BOUNDARY, frame, "space"))
            else:
                raise ValueError(
                    f"data site {site} is checked by {len(faces)} same-sector "
                    "faces; a surface-code sector allows at most two"
                )
    for t in range(slices - 1):
        for f in range(n_faces):
            edges.append(
                DetectorEdge(t * n_faces + f, (t + 1) * n_faces + f, 0, "time")
            )
    if visit_layers is not None:
        if len(visit_layers) != n_faces:
            raise ValueError("visit_layers must give one site->layer map per face")
        for site, faces in sorted(site_faces.items()):
            if len(faces) != 2:
                continue  # boundary qubits are covered at both adjacent slices
            frame = 1 if site in logical_sites else 0
            early, late = sorted(faces, key=lambda f: visit_layers[f][site])
            if visit_layers[early][site] == visit_layers[late][site]:
                raise ValueError(
                    f"faces {early} and {late} both visit site {site} in "
                    "the same layer; the Z/N pattern forbids this"
                )
            for t in range(slices - 1):
                edges.append(
                    DetectorEdge(
                        t * n_faces + late, (t + 1) * n_faces + early, frame, "diagonal"
                    )
                )
    return MatchingGraph(slices * n_faces, edges)


def build_dem_graph(dem, observable: int = 0) -> MatchingGraph:
    """Decoding graph built from a :class:`~repro.sim.dem.DetectorErrorModel`.

    Every DEM mechanism becomes (or merges into) one edge: one-detector
    mechanisms attach to the open boundary, two-detector mechanisms connect
    their detectors, and mechanisms firing more than two detectors are
    rejected (they would be hyperedges — the memory experiments this graph
    serves never produce them because the schedule-built diagonal edges
    already split mid-round faults).  Mechanisms sharing a detector pair are
    XOR-combined (``p <- p_a(1-p_b) + p_b(1-p_a)``) and the frame bit of
    the most probable contributor wins; each edge's ``weight`` is the
    log-likelihood cost ``log((1 - p) / p)`` of its combined probability.

    Mechanisms that flip *no* detector are skipped: they are undetectable,
    so no graph decoder can act on them (their observable flips are an
    irreducible error floor).  ``observable`` selects which observable's
    flips define the frame bits (memory experiments have exactly one).
    """
    if not 0 <= observable < dem.n_observables:
        raise ValueError(
            f"observable {observable} out of range for {dem.n_observables} observables"
        )
    # pair -> [combined probability, frame of strongest source, strongest p]
    merged: dict[tuple[int, int], list] = {}
    for p, dets, mask in zip(dem.probs, dem.detectors, dem.observables):
        p = float(p)
        if p <= 0.0:
            continue
        frame = int(mask) >> observable & 1
        if len(dets) == 0:
            continue  # undetectable: invisible to every detector
        if len(dets) == 1:
            pair = (int(dets[0]), BOUNDARY)
        elif len(dets) == 2:
            pair = (int(dets[0]), int(dets[1]))
        else:
            raise ValueError(
                f"mechanism fires {len(dets)} detectors {tuple(dets)}; a "
                "matching graph needs at most two — decompose hyperedges first"
            )
        entry = merged.get(pair)
        if entry is None:
            merged[pair] = [p, frame, p]
        else:
            entry[0] = entry[0] * (1.0 - p) + p * (1.0 - entry[0])
            if p > entry[2]:
                entry[1], entry[2] = frame, p
    # Periodic DEMs repeat the same handful of probabilities across every
    # bulk round, so memoize the (expensive-ish) log per distinct float —
    # same scalar op, same bits, one call per unique value.
    weight_of: dict[float, float] = {}
    edges = []
    for (u, v), (p, frame, _) in sorted(merged.items()):
        p = min(max(p, _MIN_PROBABILITY), _MAX_PROBABILITY)
        weight = weight_of.get(p)
        if weight is None:
            weight = weight_of[p] = math.log((1.0 - p) / p)
        edges.append(DetectorEdge(u, v, frame, "dem", weight))
    return MatchingGraph(dem.n_detectors, edges, period=getattr(dem, "period", None))
