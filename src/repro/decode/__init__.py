"""Syndrome decoding: matching graphs, pluggable decoders, memory experiments.

Closes the loop from compiled stabilizer schedules to logical error rates:
:mod:`repro.decode.graph` holds the detector structure (schedule-built
unweighted graphs and DEM-built graphs carrying log-likelihood edge
weights), :mod:`repro.decode.base` defines the :class:`Decoder` protocol
and registry (``get_decoder("union_find" | "union_find_unweighted" |
"lookup")``), :mod:`repro.decode.union_find` implements the batched
weighted union-find hot path, :mod:`repro.decode.lookup` the exact
small-graph table decoder, :mod:`repro.decode.window` the sliding-window
streaming driver (``union_find_windowed``) with O(window) decoder state,
and :mod:`repro.decode.memory` packages the standard memory experiment
that drives distance/rate sweeps and the ``tiscc lfr`` CLI.
"""

from repro.decode.base import (
    Decoder,
    available_decoders,
    decoder_class,
    get_decoder,
    register_decoder,
)
from repro.decode.graph import (
    BOUNDARY,
    DetectorEdge,
    MatchingGraph,
    build_dem_graph,
    build_memory_graph,
)
from repro.decode.lookup import LookupDecoder
from repro.decode.memory import MemoryExperiment
from repro.decode.union_find import UnionFindDecoder, UnweightedUnionFindDecoder
from repro.decode.window import WindowedUnionFindDecoder

__all__ = [
    "BOUNDARY",
    "DetectorEdge",
    "MatchingGraph",
    "build_memory_graph",
    "build_dem_graph",
    "Decoder",
    "available_decoders",
    "decoder_class",
    "get_decoder",
    "register_decoder",
    "UnionFindDecoder",
    "UnweightedUnionFindDecoder",
    "WindowedUnionFindDecoder",
    "LookupDecoder",
    "MemoryExperiment",
]
