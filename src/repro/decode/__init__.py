"""Syndrome decoding: matching graphs, union-find decoding, memory experiments.

Closes the loop from compiled stabilizer schedules to logical error rates:
:mod:`repro.decode.graph` extracts the detector structure (syndrome
differences between QEC rounds plus boundary nodes), :mod:`repro.decode.union_find`
decodes whole shot batches with cluster growth + peeling, and
:mod:`repro.decode.memory` packages the standard memory experiment that
drives distance/rate sweeps and the ``tiscc lfr`` CLI.
"""

from repro.decode.graph import BOUNDARY, DetectorEdge, MatchingGraph, build_memory_graph
from repro.decode.memory import MemoryExperiment
from repro.decode.union_find import UnionFindDecoder

__all__ = [
    "BOUNDARY",
    "DetectorEdge",
    "MatchingGraph",
    "build_memory_graph",
    "UnionFindDecoder",
    "MemoryExperiment",
]
