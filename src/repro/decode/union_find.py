"""Union-find decoder (cluster growth + peeling) over a matching graph.

The weighted-growth union-find decoder of Delfosse & Nickerson on unit
weights: odd (defect-carrying) clusters grow all of their boundary edges by
half steps; clusters merge when an edge is fully grown, and stop being
active once their defect parity is even or they touch the open boundary.
The grown support is then *peeled*: a spanning forest of each cluster is
traversed leaf-to-root, emitting a correction edge for every leaf that
carries a defect.  The decoder's verdict is the parity of logical-frame
edges in that correction — exactly what the logical-operator readout must
be XORed with.

Decoding is exact on single faults and linear-time on the graph size; shots
are decoded independently, but :meth:`UnionFindDecoder.decode_batch`
deduplicates identical syndromes first (at sub-threshold error rates most
shots share the trivial or a low-weight syndrome, so batches decode far
faster than shots x single-shot time).
"""

from __future__ import annotations

import numpy as np

from repro.decode.graph import BOUNDARY, MatchingGraph

__all__ = ["UnionFindDecoder"]


class UnionFindDecoder:
    """Decodes syndromes over a fixed :class:`MatchingGraph`."""

    def __init__(self, graph: MatchingGraph):
        self.graph = graph
        self.n = graph.n_detectors
        # The open boundary is materialized as one extra node with index n.
        self._eu = np.empty(graph.n_edges, dtype=np.int64)
        self._ev = np.empty(graph.n_edges, dtype=np.int64)
        self._frame = np.empty(graph.n_edges, dtype=np.uint8)
        for k, e in enumerate(graph.edges):
            self._eu[k] = self.n if e.u == BOUNDARY else e.u
            self._ev[k] = self.n if e.v == BOUNDARY else e.v
            self._frame[k] = e.frame
        #: node -> [(edge, neighbour)] including the boundary node.
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(self.n + 1)]
        for k in range(graph.n_edges):
            u, v = int(self._eu[k]), int(self._ev[k])
            self._adj[u].append((k, v))
            self._adj[v].append((k, u))

    # ------------------------------------------------------------ union-find
    @staticmethod
    def _find(parent: list, a: int) -> int:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:  # path compression
            parent[a], a = root, parent[a]
        return root

    # -------------------------------------------------------------- decoding
    def decode(self, syndrome: np.ndarray) -> int:
        """Predicted logical-frame flip (0/1) for one detector bit vector."""
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        if syndrome.shape != (self.n,):
            raise ValueError(
                f"syndrome shape {syndrome.shape} does not match {self.n} detectors"
            )
        defects = np.nonzero(syndrome)[0].tolist()
        if not defects:
            return 0
        support = self._grow(defects, syndrome)
        return self._peel(support, syndrome)

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Per-shot predicted logical flips for a ``(n_shots, n_detectors)`` batch.

        Identical syndrome rows are decoded once and the verdict broadcast.
        """
        syndromes = np.asarray(syndromes, dtype=np.uint8)
        if syndromes.ndim != 2 or syndromes.shape[1] != self.n:
            raise ValueError(
                f"syndromes shape {syndromes.shape} does not match "
                f"(n_shots, {self.n})"
            )
        unique, inverse = np.unique(syndromes, axis=0, return_inverse=True)
        verdicts = np.array([self.decode(row) for row in unique], dtype=np.uint8)
        return verdicts[inverse.reshape(-1)]

    # ---------------------------------------------------------------- growth
    def _grow(self, defects: list, syndrome: np.ndarray) -> np.ndarray:
        """Grow odd clusters until neutral; return the fully-grown edge mask."""
        n, b = self.n, self.n
        parent = list(range(n + 1))
        parity = syndrome.astype(np.int8).tolist() + [0]
        growth = np.zeros(self.graph.n_edges, dtype=np.int8)
        eu, ev = self._eu, self._ev
        find = self._find

        for _ in range(2 * (self.graph.n_edges + 1)):
            boundary_root = find(parent, b)
            active = {
                r
                for r in {find(parent, d) for d in defects}
                if parity[r] % 2 == 1 and r != boundary_root
            }
            if not active:
                return growth >= 2
            for k in np.nonzero(growth < 2)[0]:
                u, v = int(eu[k]), int(ev[k])
                ru, rv = find(parent, u), find(parent, v)
                step = (ru in active) + (rv in active)
                if step == 0:
                    continue
                growth[k] += step
                if growth[k] >= 2 and ru != rv:
                    parent[ru] = rv
                    parity[rv] += parity[ru]
        raise RuntimeError("union-find growth failed to converge")  # pragma: no cover

    # --------------------------------------------------------------- peeling
    def _peel(self, support: np.ndarray, syndrome: np.ndarray) -> int:
        """Peel the grown support's spanning forest into a correction parity."""
        n, b = self.n, self.n
        visited = [False] * (n + 1)
        defect = syndrome.astype(np.int8).tolist() + [0]
        parent_edge = [-1] * (n + 1)
        parent_node = [-1] * (n + 1)
        flip = 0

        # Roots: the boundary first (absorbs any defect), then any node still
        # unvisited — covers interior clusters without boundary contact.
        order: list[int] = []
        for root in [b] + list(range(n)):
            if visited[root]:
                continue
            if root != b and not any(support[k] for k, _ in self._adj[root]):
                continue  # isolated node: nothing to peel
            visited[root] = True
            queue = [root]
            while queue:
                cur = queue.pop(0)
                order.append(cur)
                for k, other in self._adj[cur]:
                    if not support[k] or visited[other]:
                        continue
                    visited[other] = True
                    parent_edge[other] = k
                    parent_node[other] = cur
                    queue.append(other)

        for v in reversed(order):
            if parent_edge[v] < 0 or not defect[v]:
                continue
            flip ^= int(self._frame[parent_edge[v]])
            defect[v] = 0
            defect[parent_node[v]] ^= 1
        defect[b] = 0
        if any(defect):
            raise RuntimeError(
                "peeling left unmatched defects; grown support disconnected"
            )  # pragma: no cover
        return flip
