"""Weighted union-find decoder (cluster growth + peeling) over a matching graph.

The weighted-growth union-find decoder of Delfosse & Nickerson: odd
(defect-carrying) clusters grow their boundary edges in integer steps, where
each edge's capacity is its quantized log-likelihood weight (see
:func:`~repro.decode.base.integer_weights`) — cheap, high-probability edges
are traversed in few steps while improbable ones take proportionally longer,
so the grown support concentrates on likely error patterns.  On a
unit-weight graph every capacity is two half-steps and the algorithm reduces
exactly to the classic unweighted decoder.  Clusters merge when an edge is
fully grown and stop being active once their defect parity is even or they
touch the open boundary.  The grown support is then *peeled*: a spanning
forest of each cluster is traversed leaf-to-root, emitting a correction edge
for every leaf that carries a defect.  The decoder's verdict is the parity
of logical-frame edges in that correction — exactly what the
logical-operator readout must be XORed with.

The hot path is built for batches:

* construction flattens the graph into CSR adjacency plus preallocated
  flat ``parent``/``parity``/``growth`` arrays that are scrubbed (only the
  touched entries) after every shot, so no per-shot allocation scales with
  the graph;
* growth walks only the *frontier* edges of active clusters — never the
  whole edge list — so sparse sub-threshold syndromes cost time
  proportional to the error support, not the spacetime volume;
* :meth:`UnionFindDecoder.decode_batch` vectorizes at the batch level:
  all-zero shots short-circuit, single-defect shots resolve through a
  precomputed min-weight boundary-matching table, and the remaining rows
  are deduplicated so each distinct syndrome is decoded exactly once.

Decoding is exact on single faults and linear-time on the grown support.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.decode.base import Decoder, integer_weights, register_decoder
from repro.decode.graph import BOUNDARY, MatchingGraph

__all__ = ["UnionFindDecoder", "UnweightedUnionFindDecoder"]


@register_decoder
class UnionFindDecoder(Decoder):
    """Decodes syndromes over a fixed :class:`MatchingGraph`.

    ``weighted=True`` (default) derives integer growth capacities from the
    graph's edge weights; ``weighted=False`` forces unit capacities (the
    ablation arm — also registered as ``"union_find_unweighted"``).

    Decoding reuses preallocated scratch arrays, so one instance must not
    run concurrent ``decode_batch`` calls; build one decoder per thread
    (see :class:`~repro.decode.base.Decoder`).
    """

    name = "union_find"

    def __init__(self, graph: MatchingGraph, weighted: bool = True):
        super().__init__(graph)
        self.weighted = bool(weighted) and graph.is_weighted
        n, n_edges = self.n, graph.n_edges
        # The open boundary is materialized as one extra node with index n.
        eu = np.empty(n_edges, dtype=np.int64)
        ev = np.empty(n_edges, dtype=np.int64)
        frame = np.empty(n_edges, dtype=np.uint8)
        for k, e in enumerate(graph.edges):
            eu[k] = n if e.u == BOUNDARY else e.u
            ev[k] = n if e.v == BOUNDARY else e.v
            frame[k] = e.frame
        if self.weighted:
            weights = np.array([e.weight for e in graph.edges], dtype=np.float64)
        else:
            weights = np.ones(n_edges, dtype=np.float64)
        #: Integer growth capacity per edge (quantized log-likelihood weight).
        cap = integer_weights(weights)

        # Flat CSR adjacency over the n + 1 nodes (boundary included).
        degree = np.zeros(n + 2, dtype=np.int64)
        for k in range(n_edges):
            degree[eu[k] + 1] += 1
            degree[ev[k] + 1] += 1
        indptr = np.cumsum(degree)
        adj_edge = np.empty(2 * n_edges, dtype=np.int64)
        cursor = indptr[:-1].copy()
        for k in range(n_edges):
            for node in (eu[k], ev[k]):
                adj_edge[cursor[node]] = k
                cursor[node] += 1

        # Preallocated per-shot state, scrubbed (touched entries only) after
        # every decode so batches never reallocate.  Kept as flat Python
        # lists: the growth loop is scalar-indexed, where list access is
        # several times faster than numpy item access.
        self._parent: list[int] = list(range(n + 1))
        self._parity: list[int] = [0] * (n + 1)
        self._growth: list[int] = [0] * n_edges
        self._rate: list[int] = [0] * n_edges
        self._peel_adj: list[list[tuple[int, int]]] = [[] for _ in range(n + 1)]
        self._peel_seen: list[bool] = [False] * (n + 1)
        self._peel_defect: list[int] = [0] * (n + 1)

        # Plain-int mirrors of the read-only arrays, for the same reason
        # (the numpy intermediates above are not retained).
        self._eu_list: list[int] = eu.tolist()
        self._ev_list: list[int] = ev.tolist()
        self._frame_list: list[int] = frame.tolist()
        self._cap_list: list[int] = cap.tolist()
        self._adj_lists: list[list[int]] = [
            adj_edge[indptr[i] : indptr[i + 1]].tolist() for i in range(n + 1)
        ]

        self._build_single_defect_table()

    # ---------------------------------------------------------- fast tables
    def _build_single_defect_table(self) -> None:
        """Min-weight boundary matching for every lone defect, via Dijkstra.

        A weight-1 syndrome fires exactly one detector; the maximum-
        likelihood correction is the cheapest path from that detector to the
        open boundary, and the verdict is that path's frame parity.  One
        Dijkstra sweep from the boundary node over the integer capacities
        precomputes all of them.
        """
        n, b = self.n, self.n
        adj, eu, ev = self._adj_lists, self._eu_list, self._ev_list
        frame, cap = self._frame_list, self._cap_list
        dist = [math.inf] * (n + 1)
        par = [0] * (n + 1)
        dist[b] = 0.0
        heap: list[tuple[float, int]] = [(0.0, b)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for k in adj[u]:
                v = ev[k] if eu[k] == u else eu[k]
                nd = d + cap[k]
                if nd < dist[v]:
                    dist[v] = nd
                    par[v] = par[u] ^ frame[k]
                    heapq.heappush(heap, (nd, v))
        self._single_verdict = np.array(par[:n], dtype=np.uint8)
        self._single_reachable = np.array(
            [dist[i] < math.inf for i in range(n)], dtype=bool
        )

    # -------------------------------------------------------------- decoding
    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Per-shot predicted logical flips for a ``(n_shots, n_detectors)`` batch.

        Empty batches and all-zero rows return immediately without entering
        the growth loop; single-defect rows resolve through the precomputed
        boundary-matching table; the remaining rows are deduplicated and
        each distinct syndrome is decoded once.
        """
        syndromes = self._validate_batch(syndromes)
        n_shots = syndromes.shape[0]
        out = np.zeros(n_shots, dtype=np.uint8)
        if n_shots == 0:
            return out
        counts = syndromes.sum(axis=1, dtype=np.int64)
        ones = np.nonzero(counts == 1)[0]
        if ones.size:
            det = syndromes[ones].argmax(axis=1)
            if not self._single_reachable[det].all():
                raise RuntimeError(
                    "lone defect on a detector with no path to the boundary"
                )
            out[ones] = self._single_verdict[det]
        multi = np.nonzero(counts >= 2)[0]
        if multi.size:
            # Hash-based dedup (cheaper than a lexicographic row sort): each
            # distinct syndrome is decoded exactly once.
            rows = np.ascontiguousarray(syndromes[multi])
            cache: dict[bytes, int] = {}
            for i, shot in enumerate(multi):
                key = rows[i].tobytes()
                verdict = cache.get(key)
                if verdict is None:
                    verdict = self._decode_defects(np.nonzero(rows[i])[0])
                    cache[key] = verdict
                out[shot] = verdict
        return out

    def decode_edges(self, defect_ids) -> list[int]:
        """Correction *edge ids* for one syndrome's fired detector indices.

        The same grow-and-peel pass as :meth:`decode`, but instead of
        collapsing the correction to its logical-frame parity it returns
        the edges the peeling emitted — the explicit correction set a
        sliding-window decoder needs to decide which edges fall inside its
        commit region and which residual defects to carry forward.  An
        empty ``defect_ids`` returns an empty list.
        """
        defect_ids = np.asarray(defect_ids, dtype=np.int64)
        if defect_ids.size == 0:
            return []
        collect: list[int] = []
        self._decode_defects(defect_ids, collect=collect)
        return collect

    # ------------------------------------------------------------ union-find
    @staticmethod
    def _find(parent: list[int], a: int) -> int:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:  # path compression
            parent[a], a = root, parent[a]
        return root

    def _decode_defects(
        self, defect_ids: np.ndarray, collect: list[int] | None = None
    ) -> int:
        """Grow + peel one syndrome given its fired detector indices.

        ``collect`` (when given) receives the correction's edge ids as the
        peeling emits them — see :meth:`decode_edges`.
        """
        b = self.n
        parent, parity, growth = self._parent, self._parity, self._growth
        adj, eu, ev, cap = self._adj_lists, self._eu_list, self._ev_list, self._cap_list
        find = self._find

        defects = [int(d) for d in defect_ids]
        touched_nodes = list(defects) + [b]
        touched_edges: list[int] = []
        #: Cluster root -> frontier edge ids (lazily filtered).
        frontier: dict[int, list[int]] = {}
        for d in defects:
            parity[d] = 1
            frontier[d] = list(adj[d])
        active = list(defects)

        try:
            for _ in range(len(self._eu_list) + 2):
                if not active:
                    break
                # Half-step growth, event-driven: every frontier edge of an
                # active cluster grows at rate 1 per incident active cluster;
                # advance all of them by the largest time step that still
                # completes at least one edge (fast-forwarding the uniform
                # growth — identical cluster history, far fewer rounds, and
                # it makes finely quantized weights free).
                rate = self._rate
                scanned: list[int] = []
                delta = 1 << 30  # min rounds until some frontier edge completes
                for root in active:
                    lst = frontier[root]
                    stale = False
                    for k in lst:
                        slack = cap[k] - growth[k]
                        if slack <= 0:
                            stale = True  # fully grown: no longer frontier
                            continue
                        # Edges that became internal (both endpoints in one
                        # cluster via another path) are NOT filtered here —
                        # root lookups per edge per round would dominate the
                        # decode; they harmlessly grow to capacity and the
                        # merge step discards them on the root comparison.
                        r = rate[k]
                        if r == 0:
                            scanned.append(k)
                        rate[k] = r = r + 1
                        steps = (slack + r - 1) // r
                        if steps < delta:
                            delta = steps
                    if stale:  # rebuild only when something completed
                        frontier[root] = [k for k in lst if growth[k] < cap[k]]
                if not scanned:
                    raise RuntimeError(
                        "union-find growth stalled: defects cannot reach "
                        "each other or the boundary"
                    )
                merges: list[int] = []
                for k in scanned:
                    g = growth[k]
                    if g == 0:
                        touched_edges.append(k)
                    g += rate[k] * delta
                    growth[k] = g
                    rate[k] = 0
                    if g >= cap[k]:
                        merges.append(k)
                for k in merges:
                    ru, rv = find(parent, eu[k]), find(parent, ev[k])
                    if ru == rv:
                        continue
                    fu = frontier.get(ru)
                    if fu is None:  # fresh node (or the boundary) joins
                        fu = list(adj[ru]) if ru != b else []
                        touched_nodes.append(ru)
                    fv = frontier.get(rv)
                    if fv is None:
                        fv = list(adj[rv]) if rv != b else []
                        touched_nodes.append(rv)
                    if len(fu) < len(fv):  # keep the larger frontier list
                        ru, rv, fu, fv = rv, ru, fv, fu
                    parent[rv] = ru
                    parity[ru] += parity[rv]
                    fu.extend(fv)
                    frontier[ru] = fu
                    frontier.pop(rv, None)
                broot = find(parent, b)
                seen: set[int] = set()
                active = []
                for d in defects:
                    r = find(parent, d)
                    if r not in seen:
                        seen.add(r)
                        if r != broot and parity[r] & 1:
                            active.append(r)
            if active:
                raise RuntimeError(
                    "union-find growth failed to converge"
                )  # pragma: no cover
            support = [k for k in touched_edges if growth[k] >= cap[k]]
            return self._peel(support, defects, collect=collect)
        finally:
            for node in touched_nodes:
                parent[node] = node
                parity[node] = 0
            for k in touched_edges:
                growth[k] = 0

    # --------------------------------------------------------------- peeling
    def _peel(
        self,
        support: list[int],
        defects: list[int],
        collect: list[int] | None = None,
    ) -> int:
        """Peel the grown support's spanning forest into a correction parity."""
        b = self.n
        eu, ev, frame = self._eu_list, self._ev_list, self._frame_list
        adj, seen, defect = self._peel_adj, self._peel_seen, self._peel_defect
        nodes: list[int] = []
        try:
            for k in support:
                u, v = eu[k], ev[k]
                if not adj[u]:
                    nodes.append(u)
                adj[u].append((k, v))
                if not adj[v]:
                    nodes.append(v)
                adj[v].append((k, u))
            for d in defects:
                if not adj[d]:
                    raise RuntimeError(
                        "peeling left unmatched defects; grown support disconnected"
                    )  # pragma: no cover
                defect[d] = 1

            order: list[int] = []
            parent_edge: dict[int, int] = {}
            parent_node: dict[int, int] = {}
            # Roots: the boundary first (absorbs any defect), then any node
            # still unvisited — covers clusters without boundary contact.
            for root in [b, *nodes]:
                if seen[root] or not adj[root]:
                    continue
                seen[root] = True
                queue = [root]
                head = 0
                while head < len(queue):
                    cur = queue[head]
                    head += 1
                    order.append(cur)
                    for k, other in adj[cur]:
                        if seen[other]:
                            continue
                        seen[other] = True
                        parent_edge[other] = k
                        parent_node[other] = cur
                        queue.append(other)

            flip = 0
            for v in reversed(order):
                if not defect[v] or v not in parent_edge:
                    continue
                flip ^= frame[parent_edge[v]]
                if collect is not None:
                    collect.append(parent_edge[v])
                defect[v] = 0
                defect[parent_node[v]] ^= 1
            defect[b] = 0
            if any(defect[nd] for nd in nodes):
                raise RuntimeError(
                    "peeling left unmatched defects; grown support disconnected"
                )  # pragma: no cover
            return flip
        finally:
            for nd in nodes:
                adj[nd].clear()
                seen[nd] = False
                defect[nd] = 0
            seen[b] = False


@register_decoder
class UnweightedUnionFindDecoder(UnionFindDecoder):
    """The same growth/peeling engine forced onto unit edge weights."""

    name = "union_find_unweighted"

    def __init__(self, graph: MatchingGraph):
        super().__init__(graph, weighted=False)
