"""Memory experiments: compile, noisily sample, and decode one patch.

The canonical benchmark behind every "logical error rate vs distance" plot:
prepare a logical |0> (or |+>), run ``R`` rounds of error correction, and
measure the logical operator transversally.  :class:`MemoryExperiment`
compiles that program once through the TISCC stack, extracts the detector
structure from the compiled stabilizer schedule (the per-round face outcome
labels of the patch's :class:`~repro.code.stabilizer_circuits.RoundRecord`
bookkeeping plus the final transversal data labels), and decodes whole
:class:`~repro.sim.batch.BatchResult` batches with any registered decoder
(weighted union-find by default, over the DEM-built matching graph when a
noise model is in play).

Only the stabilizer sector that checks the tracked logical is decoded: a
Z-basis memory tracks logical Z, which is flipped by X data errors, which
fire the Z faces (and symmetrically for X memories).  The complementary
sector's outcomes are simulated but carry no information about this
logical, so they never enter the matching graph.

Two sampling engines share the detector layout: the packed-tableau replay
(:meth:`MemoryExperiment.sample` + :meth:`MemoryExperiment.syndromes`, the
reference) and the detector-error-model fast path
(:meth:`MemoryExperiment.detector_error_model` +
:meth:`MemoryExperiment.sample_frame`, no tableau at all) — select with
``run(engine="frame")``, which falls back to the tableau automatically for
non-Clifford schedules.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import TISCC
from repro.decode.base import Decoder, decoder_class, get_decoder
from repro.hardware.profile import DEFAULT_PROFILE, HardwareProfile, get_profile
from repro.decode.graph import MatchingGraph, build_dem_graph, build_memory_graph
from repro.estimator.report import LogicalErrorReport
from repro.sim.batch import BatchResult
from repro.sim.dem import (
    DemExtractionError,
    DetectorErrorModel,
    FaultTable,
    PeriodicTemplate,
    build_dem,
    dem_structure_key,
    extract_fault_table,
    make_periodic_template,
)
from repro.sim.frame import FrameSampler, FrameSamples
from repro.sim.noise import NoiseModel, NoiseParams

__all__ = ["MemoryExperiment", "memory_cache_key"]


def memory_cache_key(
    dx: int,
    dz: int,
    rounds: int | None,
    basis: str,
    noise: NoiseModel | NoiseParams | None,
    profile: HardwareProfile | str | None = None,
    simd: bool = False,
) -> tuple:
    """Canonical cache-key components of one memory-experiment cell.

    This is the pure-parameter identity the sharded sweep layer
    (:mod:`repro.estimator.jobs`) hashes into content-addressed result
    keys, exported from here so it stays in lock-step with what a
    :class:`MemoryExperiment` actually computes:

    * ``rounds`` is normalized exactly like :func:`_memory_core` does
      (``None`` means ``max(dx, dz)``), so explicit and defaulted rounds
      share a cache entry;
    * the noise model enters as its :func:`~repro.sim.dem.dem_structure_key`
      (which channels can fire — the part that shapes the fault table) plus
      the raw rate values — but **not** the cosmetic ``params.name``, so
      renamed-but-identical models hit the same cache entry;
    * a non-default hardware profile joins as its canonical
      :attr:`~repro.hardware.profile.HardwareProfile.fingerprint` (physical
      content only, never the profile's name), so two profiles can never
      share a cached artifact while default-profile keys — and therefore
      existing checkpoints — are unchanged;
    * SIMD beam-pass scheduling joins as a ``"simd"`` marker only when
      enabled, same non-default-only pattern: pre-SIMD checkpoints keep
      their keys.
    """
    n_rounds = rounds if rounds is not None else max(dx, dz)
    params = noise.params if isinstance(noise, NoiseModel) else noise
    if params is None:
        noise_part: tuple = ("none",)
    else:
        noise_part = tuple(dem_structure_key(params)) + (
            params.p1,
            params.p2,
            params.p_prep,
            params.p_meas,
            params.t2_us,
        )
    key = ("memory", dx, dz, n_rounds, basis) + noise_part
    prof = get_profile(profile)
    if prof.fingerprint != DEFAULT_PROFILE.fingerprint:
        key += (("profile", prof.fingerprint),)
    if simd:
        key += ("simd",)
    return key


@dataclass
class _MemoryCore:
    """The shareable compile-time state of one memory experiment.

    Everything here is a pure function of ``(dx, dz, rounds, basis)`` — the
    compiled circuit, detector layout, and schedule graph — plus the mutable
    caches keyed by noise parameters.  Cached per key so repeated
    :class:`MemoryExperiment` constructions (rate sweeps, CLI invocations,
    benchmarks) compile each distance at most once per process.

    ``fault_tables`` entries may be lazily-tiled periodic tables (built
    from the rounds-independent ``_TEMPLATE_CACHE`` below rather than a
    walk of this core's own circuit); their contents are bit-identical to
    a full walk either way.
    """

    compiler: TISCC
    compiled: object
    rounds: int
    faces: list
    logical_sites: set[int]
    round_labels: list[list[str]]
    final_labels: list[list[str]]
    logical_value: object
    observable_labels: list[str]
    detector_labels: list[list[str]]
    graph: MatchingGraph
    fault_tables: dict = field(default_factory=dict)
    dem_graphs: dict = field(default_factory=dict)
    frame_samplers: dict = field(default_factory=dict)


#: (dx, dz, rounds, basis, profile fingerprint) -> compiled core, LRU-capped.
_CORE_CACHE: OrderedDict[tuple, _MemoryCore] = OrderedDict()
_CORE_CACHE_MAX = 32

#: Rounds of the periodic-extraction template compile: the smallest memory
#: whose replay block carries enough copies for the template's translation
#: self-check (>= 6; 9 rounds -> 8 copies) with a couple to spare.
_TEMPLATE_ROUNDS = 9

#: (dx, dz, basis, profile fingerprint, dem_structure_key) ->
#: :class:`~repro.sim.dem.PeriodicTemplate` or ``None`` (template
#: construction failed; cached so the failure is only diagnosed once).
#: Rounds-independent by construction — every experiment over the same
#: patch/basis/profile/noise-structure shares one entry no matter its
#: ``rounds``, so changing ``rounds`` never re-walks a circuit.
_TEMPLATE_CACHE: OrderedDict[tuple, PeriodicTemplate | None] = OrderedDict()
_TEMPLATE_CACHE_MAX = 16


def _periodic_template(
    dx: int,
    dz: int,
    basis: str,
    profile: HardwareProfile | None,
    params: NoiseParams,
) -> PeriodicTemplate | None:
    """The shared extraction template for one patch/basis/profile/structure.

    Compiles a ``_TEMPLATE_ROUNDS``-round memory (through the ordinary
    ``_memory_core`` cache) and full-walks it exactly once; the resulting
    :class:`~repro.sim.dem.PeriodicTemplate` then serves every round count
    via :func:`~repro.sim.dem.extract_fault_table`'s tiling path.
    """
    profile = get_profile(profile)
    key = (dx, dz, basis, profile.fingerprint, dem_structure_key(params))
    if key in _TEMPLATE_CACHE:
        _TEMPLATE_CACHE.move_to_end(key)
        return _TEMPLATE_CACHE[key]
    core = _memory_core(dx, dz, _TEMPLATE_ROUNDS, basis, profile)
    template = make_periodic_template(
        core.compiled.circuit,
        core.compiled.initial_occupancy,
        params,
        core.detector_labels,
        [core.observable_labels],
    )
    _TEMPLATE_CACHE[key] = template
    while len(_TEMPLATE_CACHE) > _TEMPLATE_CACHE_MAX:
        _TEMPLATE_CACHE.popitem(last=False)
    return template


def _memory_core(
    dx: int,
    dz: int,
    rounds: int | None,
    basis: str,
    profile: HardwareProfile | None = None,
    simd: bool = False,
) -> _MemoryCore:
    profile = get_profile(profile)
    key = (
        dx,
        dz,
        rounds if rounds is not None else max(dx, dz),
        basis,
        profile.fingerprint,
    ) + (("simd",) if simd else ())
    core = _CORE_CACHE.get(key)
    if core is not None:
        _CORE_CACHE.move_to_end(key)
        return core

    compiler = TISCC(dx=dx, dz=dz, tile_rows=1, tile_cols=1, rounds=rounds, profile=profile)
    program = [(f"Prepare{basis}", (0, 0)), (f"Measure{basis}", (0, 0))]
    compiled = compiler.compile(program, operation=f"{basis}Memory", simd=simd)

    patch = compiler.tiles[(0, 0)].patch
    assert patch is not None
    n_rounds = len(patch.round_records)
    faces = [p for p in patch.plaquettes if p.pauli == basis]
    logical = patch.logical_z if basis == "Z" else patch.logical_x
    logical_sites = set(logical.pauli.support)

    round_labels = [
        [rec.outcome_labels[p.face] for p in faces] for rec in patch.round_records
    ]
    measure_result = compiled.results[-1]
    site_label = {
        patch.layout.data_site(*ij): label
        for ij, label in measure_result.labels.items()
    }
    final_labels = [
        [site_label[s] for s in sorted(p.data_sites.values())] for p in faces
    ]
    observable_labels = [site_label[s] for s in sorted(logical_sites)] + list(
        logical.corrections
    )
    n_faces = len(faces)
    detector_labels: list[list[str]] = []
    for t in range(n_rounds + 1):
        for f in range(n_faces):
            if t == 0:
                labels = [round_labels[0][f]]
            elif t < n_rounds:
                labels = [round_labels[t][f], round_labels[t - 1][f]]
            else:
                labels = final_labels[f] + [round_labels[t - 1][f]]
            detector_labels.append(labels)

    graph = build_memory_graph(
        [set(p.data_sites.values()) for p in faces],
        logical_sites,
        n_rounds,
        visit_layers=[
            {p.data_sites[corner]: layer for layer, corner in p.visits()}
            for p in faces
        ],
    )
    core = _MemoryCore(
        compiler=compiler,
        compiled=compiled,
        rounds=n_rounds,
        faces=faces,
        logical_sites=logical_sites,
        round_labels=round_labels,
        final_labels=final_labels,
        logical_value=measure_result.value,
        observable_labels=observable_labels,
        detector_labels=detector_labels,
        graph=graph,
    )
    _CORE_CACHE[key] = core
    while len(_CORE_CACHE) > _CORE_CACHE_MAX:
        _CORE_CACHE.popitem(last=False)
    return core


class MemoryExperiment:
    """A distance-``d`` memory experiment with a prebuilt decoder.

    ``basis`` selects the tracked logical: ``"Z"`` prepares |0>, idles for
    ``rounds`` rounds (default ``max(dx, dz)``), measures every data qubit
    in Z, and decodes the Z-face detector graph; ``"X"`` is the transversal
    dual.  Compilation and graph construction happen once in the
    constructor; :meth:`run` then samples and decodes arbitrarily many
    batches against the same compiled circuit.

    ``decoder`` names the registered decoder (see
    :func:`~repro.decode.base.get_decoder`) used by default; :meth:`run`
    and :meth:`decode_batch` accept a per-call override.  When a noise
    model is in play, decoding runs over the DEM-built matching graph
    (log-likelihood edge weights, cached per parameter set); the
    schedule-built graph remains on :attr:`graph` as the noise-free
    cross-check and the fallback for non-Clifford schedules.
    """

    def __init__(
        self,
        distance: int | None = None,
        dx: int | None = None,
        dz: int | None = None,
        rounds: int | None = None,
        basis: str = "Z",
        decoder: str = "union_find",
        profile: HardwareProfile | str | None = None,
        window: int | None = None,
        commit: int | None = None,
        simd: bool = False,
    ):
        if basis not in ("Z", "X"):
            raise ValueError("memory basis must be 'Z' or 'X'")
        if commit is not None and window is None:
            raise ValueError("commit without window makes no sense")
        if distance is not None:
            dx = dz = distance
        if dx is None or dz is None:
            raise ValueError("give either distance or both dx and dz")
        self.basis = basis
        #: Hardware profile the experiment compiles and caches under.
        self.profile = get_profile(profile)
        #: Whether the compiled circuit went through SIMD beam-pass
        #: rescheduling (profile ``simd_*`` fields set the pass's knobs).
        self.simd = simd
        # Compilation, label extraction, and graph construction are shared
        # per (dx, dz, rounds, basis) across every instance in the process:
        # rate sweeps and repeated constructions pay for the compile once.
        # The shared bundle is treated as immutable — code that mutates
        # :attr:`compiled` (e.g. splicing instructions into the circuit)
        # must call :meth:`clear_compile_cache` around the experiment to
        # avoid leaking the mutation into later constructions.
        core = _memory_core(dx, dz, rounds, basis, self.profile, simd=simd)
        self._core = core
        self.compiler = core.compiler
        self.compiled = core.compiled
        self.rounds = core.rounds
        self.faces = core.faces
        self.logical_sites = core.logical_sites
        #: Face outcome labels per round, in face order: ``[round][face]``.
        self.round_labels: list[list[str]] = core.round_labels
        #: Final transversal data labels per face, in face order.
        self.final_labels: list[list[str]] = core.final_labels
        self._logical_value = core.logical_value
        #: Labels whose XOR parity is the logical readout: the transversal
        #: labels on the tracked logical's data support, plus any correction
        #: labels the operator ledger accumulated (empty for plain memory).
        self.observable_labels: list[str] = core.observable_labels
        #: Per-detector label sets, id ``t * F + f`` matching :meth:`syndromes`:
        #: slice 0 is round 0 alone, slice t XORs rounds t/t-1, slice R XORs
        #: the recomputed final face parity against round R-1.
        self.detector_labels: list[list[str]] = core.detector_labels
        #: Fault tables cached per noise-structure key (footprints are
        #: rate-independent, so a rate sweep extracts at most once); shared
        #: with every other instance of the same core.
        self._fault_tables: dict[tuple, FaultTable] = core.fault_tables
        self.graph: MatchingGraph = core.graph
        #: Default decoder name; validated here by building the schedule-
        #: graph decoder (kept on :attr:`decoder` for direct use).
        self.decoder_name = decoder
        #: DEM-built matching graphs cached per noise-parameter key.
        self._dem_graphs: dict[tuple, MatchingGraph] = core.dem_graphs
        #: Sliding-window shape for layout-aware decoders (``None`` means
        #: the decoder's defaults, ``2 * max(dx, dz)`` / ``max(dx, dz)``);
        #: ignored by whole-block decoders.
        self.window = window
        self.commit = commit
        #: Built decoders cached per (name, graph key) — deliberately
        #: *per instance*, never on the shared core: decoders carry mutable
        #: scratch state, and the documented way to parallelize is one
        #: experiment (hence one decoder) per worker.
        self._decoders: dict[tuple, Decoder] = {}
        self.decoder: Decoder = self._build_decoder(decoder, self.graph)
        self._decoders[self._decoder_key("schedule", decoder)] = self.decoder

    @staticmethod
    def clear_compile_cache() -> None:
        """Drop every cached compiled memory experiment (mainly for tests).

        Also drops the periodic-extraction template cache, which holds
        references into cached compiles.
        """
        _CORE_CACHE.clear()
        _TEMPLATE_CACHE.clear()

    def cache_key(self, noise: NoiseModel | None = None) -> tuple:
        """This experiment's canonical cache-key components under ``noise``.

        See :func:`memory_cache_key` — the identity the sharded sweep layer
        hashes into content-addressed result keys.
        """
        return memory_cache_key(
            self.dx,
            self.dz,
            self.rounds,
            self.basis,
            noise,
            profile=self.profile,
            simd=self.simd,
        )

    # ------------------------------------------------------------- plumbing
    @property
    def dx(self) -> int:
        return self.compiled.dx

    @property
    def dz(self) -> int:
        return self.compiled.dz

    @property
    def n_detectors(self) -> int:
        """Detector count of the syndrome layout: ``(rounds + 1) * faces``.

        Computed from the schedule itself (not from any graph), so the
        guard in :meth:`decoder_for` can catch a decoder built over a graph
        of the wrong shape before it silently decodes garbage.
        """
        return (self.rounds + 1) * len(self.faces)

    # ------------------------------------------------------------- sampling
    def sample(
        self,
        n_shots: int,
        noise: NoiseModel | None = None,
        seed: int | None = 0,
        noise_seed: int | None = None,
        independent_streams: bool = False,
    ) -> BatchResult:
        """Noisy batched replay of the compiled memory circuit.

        Defaults to the shared-stream (maximum-throughput) rng mode: memory
        experiments only ever consume batch statistics.
        """
        return self.compiler.simulate_shots(
            self.compiled,
            n_shots,
            seed=seed,
            independent_streams=independent_streams,
            noise=noise,
            noise_seed=noise_seed,
        )

    # ---------------------------------------------------------- fast path
    def fault_table(self, noise: NoiseModel) -> FaultTable:
        """Rate-independent fault footprints for a noise model's structure.

        Cached per :func:`~repro.sim.dem.dem_structure_key` (which channels
        are nonzero) — sweeping a rate knob rebuilds only the cheap
        probability layer.  For ``rounds >= _TEMPLATE_ROUNDS`` extraction
        goes through the periodic tiling path: one shared
        ``_TEMPLATE_ROUNDS``-round template per (patch, basis, profile,
        noise structure) is full-walked once and tiled onto this
        experiment's round count, so the cost is O(prologue + one bulk
        round + epilogue) regardless of ``rounds``, and changing ``rounds``
        never re-walks a circuit.  The full walk runs instead — producing a
        bit-identical table — whenever the periodic preconditions fail: the
        compiler's template replay fell back to round-by-round scheduling
        (no replay metadata), the replica region is not an exact
        translation of the template's, or any translation check
        (labels, detectors, observables, idle-gap durations) misses.
        """
        key = dem_structure_key(noise.params)
        table = self._fault_tables.get(key)
        if table is None:
            # SIMD-rescheduled circuits drop replay provenance (the rows
            # are re-timed individually), so the periodic preconditions can
            # never hold — skip straight to the full-walk oracle path.
            template = (
                _periodic_template(self.dx, self.dz, self.basis, self.profile, noise.params)
                if self.rounds >= _TEMPLATE_ROUNDS and not self.simd
                else None
            )
            table = extract_fault_table(
                self.compiled.circuit,
                self.compiled.initial_occupancy,
                noise.params,
                self.detector_labels,
                [self.observable_labels],
                template=template,
            )
            self._fault_tables[key] = table
        return table

    def detector_error_model(
        self, noise: NoiseModel, keep_sources: bool = False
    ) -> DetectorErrorModel:
        """Stim-style DEM of this memory experiment under ``noise``.

        The underlying :meth:`fault_table` is rounds-independent to build
        for long memories (periodic template tiling, see its docstring for
        the fallback conditions), and :func:`~repro.sim.dem.build_dem`
        folds in the noise rates as one vectorized pass per channel kind —
        both paths bit-identical to the original per-instruction walk.
        """
        return build_dem(self.fault_table(noise), noise.params, keep_sources=keep_sources)

    # ------------------------------------------------------------- decoders
    @staticmethod
    def _params_key(noise: NoiseModel) -> tuple:
        p = noise.params
        return (p.p1, p.p2, p.p_prep, p.p_meas, p.t2_us)

    def matching_graph(self, noise: NoiseModel | None = None) -> MatchingGraph:
        """The decoding graph for ``noise``: DEM-built and weighted when possible.

        With a non-trivial noise model the graph is rebuilt from the
        :meth:`detector_error_model` (every edge an actual mechanism of the
        noisy circuit, weighted ``log((1-p)/p)``) and cached per parameter
        set; without one — or when the schedule cannot be folded into a DEM
        — the schedule-built :attr:`graph` is returned instead.
        """
        if noise is None or noise.is_trivial:
            return self.graph
        key = self._params_key(noise)
        cached = self._dem_graphs.get(key)
        if cached is None:
            try:
                cached = build_dem_graph(self.detector_error_model(noise))
            except DemExtractionError:
                cached = self.graph  # non-Clifford schedule: legacy fallback
            self._dem_graphs[key] = cached
        return cached

    def _decoder_key(self, graph_key, name: str) -> tuple:
        """Cache key of one built decoder.

        Layout-aware decoders additionally key on the experiment's window
        shape, so two experiments over the same core that differ only in
        ``(window, commit)`` never share an instance.
        """
        key: tuple = (graph_key, name)
        if decoder_class(name).wants_layout:
            key += (self.window, self.commit)
        return key

    def _build_decoder(self, name: str, graph: MatchingGraph) -> Decoder:
        """Instantiate decoder ``name`` over ``graph`` with layout kwargs if wanted."""
        if decoder_class(name).wants_layout:
            d = max(self.dx, self.dz)
            return get_decoder(
                name,
                graph,
                n_faces=len(self.faces),
                window=self.window if self.window is not None else 2 * d,
                commit=self.commit if self.commit is not None else d,
            )
        return get_decoder(name, graph)

    def decoder_for(
        self, noise: NoiseModel | None = None, decoder: str | None = None
    ) -> Decoder:
        """A cached decoder instance for ``noise`` (see :meth:`matching_graph`).

        Raises :class:`ValueError` when the selected graph's detector count
        disagrees with this experiment's :attr:`n_detectors` — a mismatch
        would otherwise decode garbage silently.  The guard runs *before*
        the freshly built decoder enters the cache (a rejected decoder used
        to be cached anyway, wedging every later call with the same key)
        and again on cache hits, so externally injected instances are
        checked too.
        """
        name = decoder if decoder is not None else self.decoder_name
        graph = self.matching_graph(noise)
        key = self._decoder_key(
            "schedule" if graph is self.graph else self._params_key(noise), name
        )
        built = self._decoders.get(key)
        if built is None:
            built = self._build_decoder(name, graph)
            if built.graph.n_detectors != self.n_detectors:
                raise ValueError(
                    f"decoder graph has {built.graph.n_detectors} detectors but "
                    f"this experiment produces {self.n_detectors}; the decoder "
                    "was built for a different detector layout"
                )
            self._decoders[key] = built
        elif built.graph.n_detectors != self.n_detectors:
            raise ValueError(
                f"decoder graph has {built.graph.n_detectors} detectors but "
                f"this experiment produces {self.n_detectors}; the decoder "
                "was built for a different detector layout"
            )
        return built

    def frame_sampler(self, noise: NoiseModel | None = None) -> FrameSampler:
        """The cached :class:`FrameSampler` for ``noise``.

        Samplers are pure functions of the detector error model, so they are
        cached per noise-parameter key on the shared core alongside
        ``_dem_graphs`` — repeated :meth:`sample_frame` / :meth:`run` calls
        (shot-sharded sweeps especially) stop rebuilding the sampler's index
        arrays on every call.
        """
        model = noise if noise is not None else NoiseModel.preset("ideal")
        key = self._params_key(model)
        sampler = self._core.frame_samplers.get(key)
        if sampler is None:
            sampler = FrameSampler(self.detector_error_model(model))
            self._core.frame_samplers[key] = sampler
        return sampler

    def sample_frame(
        self,
        n_shots: int,
        noise: NoiseModel | None = None,
        seed: int | None = 0,
        shot_offset: int = 0,
    ) -> FrameSamples:
        """Tableau-free sampling: detection events + logical flips via the DEM.

        Orders of magnitude faster than :meth:`sample` + :meth:`syndromes`
        (no quantum state is simulated); raises
        :class:`~repro.sim.dem.DemExtractionError` if the compiled schedule
        is not Clifford.  Results are chunk-invariant in ``shot_offset``.
        """
        return self.frame_sampler(noise).sample(
            n_shots, seed=seed, shot_offset=shot_offset
        )

    # ------------------------------------------------------------ detectors
    def syndromes(self, batch: BatchResult) -> np.ndarray:
        """Detector bit matrix ``(n_shots, n_detectors)`` for a batch.

        Slice 0 is the first round's face outcomes (deterministic for the
        prepared state), slices ``1..R-1`` are consecutive-round XORs, and
        slice ``R`` XORs the last round against face parities recomputed
        from the final transversal data measurements.
        """
        n_faces = len(self.faces)
        det = np.empty((batch.n_shots, self.n_detectors), dtype=np.uint8)
        prev = np.zeros((batch.n_shots, n_faces), dtype=np.uint8)
        for t, labels in enumerate(self.round_labels):
            cur = np.stack([batch.outcomes[lab] for lab in labels], axis=1)
            det[:, t * n_faces : (t + 1) * n_faces] = cur ^ prev
            prev = cur
        final = np.zeros((batch.n_shots, n_faces), dtype=np.uint8)
        for f, labels in enumerate(self.final_labels):
            for lab in labels:
                final[:, f] ^= batch.outcomes[lab]
        det[:, self.rounds * n_faces :] = final ^ prev
        return det

    def measured_flips(self, batch: BatchResult) -> np.ndarray:
        """Raw (undecoded) logical flips per shot: measured sign != prepared."""
        values = np.asarray(self._logical_value(batch))
        return (values < 0).astype(np.uint8)

    # -------------------------------------------------------------- decoding
    def decode_batch(
        self,
        batch: BatchResult,
        noise: NoiseModel | None = None,
        decoder: str | None = None,
    ) -> np.ndarray:
        """Decoded logical verdicts: raw flip XOR decoder-predicted flip.

        A nonzero entry is a *logical error* — the decoder failed to undo
        the flip (or introduced one).  ``noise`` selects the DEM-weighted
        decoding graph (see :meth:`decoder_for`); ``decoder`` overrides the
        experiment's default decoder for this call.
        """
        dec = self.decoder_for(noise, decoder)
        predicted = dec.decode_batch(self.syndromes(batch))
        return self.measured_flips(batch) ^ predicted

    def run(
        self,
        n_shots: int,
        noise: NoiseModel | None = None,
        seed: int | None = 0,
        noise_seed: int | None = None,
        engine: str = "tableau",
        max_batch: int | None = None,
        decoder: str | None = None,
        shot_offset: int = 0,
    ) -> LogicalErrorReport:
        """Sample ``n_shots``, decode them, and summarize the logical fidelity.

        ``engine`` selects the sampling path.  ``"frame"`` — what rate
        sweeps and the CLI actually run — samples detection events directly
        from the detector error model with no tableau at all, decoding each
        ``max_batch`` chunk as it is produced so peak memory stays
        O(max_batch × n_detectors) however many shots are requested.
        ``"tableau"`` (the constructor-validated default, kept as the
        reference) replays the packed stabilizer engine per batch; the
        frame path falls back to it automatically if the schedule cannot be
        folded into a DEM (non-Clifford instructions).  Per-shot streams
        make frame results identical for any ``max_batch`` chunking.

        On the frame path *all* randomness is noise randomness, so
        ``noise_seed`` (when given) selects the mechanism-sampling streams
        and ``seed`` is only the fallback when it is unset — mirroring the
        tableau path, where a fixed ``noise_seed`` pins the noise draws.

        ``decoder`` overrides the experiment's default decoder name for
        this run (recorded on the report's ``decoder`` column).

        ``shot_offset`` starts the frame path's chunk-invariant per-shot
        streams at a later global shot index, so disjoint shards
        ``(0, k), (k, 2k), ...`` of one logical run can be drawn by
        different workers and merged with no overlap — the shot-axis
        sharding :func:`repro.estimator.jobs.run_cells` uses.  The tableau
        engine has no such stream structure; a nonzero offset there is an
        error rather than a silent statistical lie.
        """
        if engine not in ("frame", "tableau"):
            raise ValueError(f"engine must be 'frame' or 'tableau', got {engine!r}")
        if engine == "frame":
            try:
                return self._run_frame(
                    n_shots,
                    noise,
                    seed if noise_seed is None else noise_seed,
                    max_batch,
                    decoder,
                    shot_offset,
                )
            except DemExtractionError:
                pass  # automatic fallback to the reference engine
        if shot_offset:
            raise ValueError(
                "shot_offset requires the frame engine's per-shot streams; "
                "the tableau engine cannot shard the shot axis"
            )

        dec = self.decoder_for(noise, decoder)
        t0 = time.perf_counter()
        batch = self.sample(n_shots, noise=noise, seed=seed, noise_seed=noise_seed)
        sim_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        syndromes = self.syndromes(batch)
        raw = self.measured_flips(batch)
        failures = raw ^ dec.decode_batch(syndromes)
        decode_seconds = time.perf_counter() - t0

        return self._report(
            noise,
            n_shots,
            failures=int(failures.sum()),
            raw_failures=int(raw.sum()),
            mean_defects=float(syndromes.sum(axis=1).mean()),
            sim_seconds=sim_seconds,
            decode_seconds=decode_seconds,
            engine="tableau",
            decoder=dec.name,
        )

    def _run_frame(
        self,
        n_shots: int,
        noise: NoiseModel | None,
        seed: int | None,
        max_batch: int | None,
        decoder: str | None = None,
        shot_offset: int = 0,
    ) -> LogicalErrorReport:
        """Frame-engine body of :meth:`run` (DEM built/cached up front).

        Streams: each ``max_batch`` chunk is sampled, decoded, and reduced
        to integer failure/defect counts before the next chunk is drawn, so
        peak memory is one chunk's detector matrix — ``max_batch`` really
        is the memory bound it claims to be (the whole batch used to be
        concatenated and decoded as one block).  Per-shot seeding makes the
        counts identical for every chunking.
        """
        sampler = self.frame_sampler(noise)
        dec = self.decoder_for(noise, decoder)

        step = max_batch if max_batch is not None and max_batch >= 1 else n_shots
        failures = 0
        raw_failures = 0
        defect_total = 0
        sim_seconds = 0.0
        decode_seconds = 0.0
        for off in range(0, n_shots, step):
            t0 = time.perf_counter()
            part = sampler.sample(
                min(step, n_shots - off), seed=seed, shot_offset=shot_offset + off
            )
            t1 = time.perf_counter()
            raw = part.observables[:, 0]
            fail = raw ^ dec.decode_batch(part.detectors)
            t2 = time.perf_counter()
            sim_seconds += t1 - t0
            decode_seconds += t2 - t1
            failures += int(fail.sum())
            raw_failures += int(raw.sum())
            defect_total += int(part.detectors.sum())

        return self._report(
            noise,
            n_shots,
            failures=failures,
            raw_failures=raw_failures,
            mean_defects=defect_total / n_shots if n_shots else 0.0,
            sim_seconds=sim_seconds,
            decode_seconds=decode_seconds,
            engine="frame",
            decoder=dec.name,
        )

    def _report(
        self,
        noise: NoiseModel | None,
        n_shots: int,
        **kwargs,
    ) -> LogicalErrorReport:
        params = noise.params if noise is not None else None
        return LogicalErrorReport(
            operation=self.compiled.operation,
            dx=self.dx,
            dz=self.dz,
            rounds=self.rounds,
            n_shots=n_shots,
            noise_name=noise.name if noise is not None else "none",
            physical_rate=params.p2 if params is not None else None,
            profile=self.profile.name,
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MemoryExperiment {self.basis} dx={self.dx} dz={self.dz} "
            f"rounds={self.rounds} detectors={self.n_detectors}>"
        )
