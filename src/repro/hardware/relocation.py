"""Ion relocation with step-aside maneuvers.

Parked data ions partition the grid into per-plaquette clusters (this is by
design: syndrome-extraction traffic stays local, §3.3).  Whenever an ion
must travel further — re-homing measure ions after a merge, a corner
movement, or a Swap Left — blocking ions temporarily step into a free side
branch across a junction, let the traveler pass, and return.  This is a
standard QCCD shuttling maneuver; every move goes through the grid's
calendars, so the resulting circuit remains valid and fully timed.
"""

from __future__ import annotations

from collections import deque

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.util.geometry import SiteType

__all__ = ["relocate_ion", "RelocationError"]


class RelocationError(RuntimeError):
    """No step-aside plan could realize the requested relocation."""


def _hops(grid: GridManager, path: list[int]) -> list[int]:
    """Zone-only waypoints of a route (junction entries folded away)."""
    return [s for s in path if grid.site_type(s) is not SiteType.JUNCTION]


def _aside_route(
    grid: GridManager,
    blocker_site: int,
    forbidden_final: set[int],
) -> list[int] | None:
    """A <=2-zone-hop route taking the blocker to a free off-path zone.

    Transit through path sites is allowed (the calendars serialize it); only
    the final parking site must be free and outside ``forbidden_final``.
    """
    start = blocker_site
    frontier: deque[tuple[int, list[int]]] = deque([(start, [start])])
    seen = {start}
    while frontier:
        cur, path = frontier.popleft()
        zones_so_far = len(_hops(grid, path)) - 1
        if zones_so_far >= 2:
            continue
        for nxt in grid.neighbors(cur):
            if nxt in seen:
                continue
            seen.add(nxt)
            if grid.site_type(nxt) is SiteType.JUNCTION:
                frontier.append((nxt, path + [nxt]))
                continue
            if grid.ion_at(nxt) is not None:
                continue
            new_path = path + [nxt]
            if nxt not in forbidden_final:
                return new_path
            frontier.append((nxt, new_path))
    return None


def relocate_ion(
    grid: GridManager,
    circuit: HardwareCircuit,
    ion: int,
    dst: int,
    t_min: float | None = None,
) -> float:
    """Move ``ion`` to ``dst``, stepping blocking ions aside as needed.

    Returns the arrival time.  Raises :class:`RelocationError` when some
    blocker has no free side branch to retreat into.
    """
    t = grid.now if t_min is None else t_min
    src = grid.site_of(ion)
    if src == dst:
        return grid.ion_ready(ion)
    if grid.ion_at(dst) is not None:
        raise RelocationError(f"destination {dst} is occupied")
    # Data ions are pinned: the route must go around them (vertical corridors
    # and the ancilla strip always provide a data-free detour on this
    # architecture).  Parked measure ions are soft blockers that step aside.
    hard = {
        s
        for s, k in grid.occupancy().items()
        if ":d" in grid.ion_tag(k) and k != ion and s != dst
    }
    try:
        path = grid.route(src, dst, avoid=hard, ignore_occupancy=True)
    except ValueError:
        path = grid.route(src, dst, ignore_occupancy=True)
    waypoints = _hops(grid, path)
    remaining = set(waypoints)
    parked_aside: list[tuple[int, int]] = []  # (blocker, original site)

    for k in range(1, len(waypoints)):
        step = waypoints[k]
        remaining.discard(waypoints[k - 1])
        blocker = grid.ion_at(step)
        if blocker is not None:
            aside = _aside_route(grid, step, forbidden_final=remaining | {src})
            if aside is None:
                raise RelocationError(
                    f"blocker ion {blocker} at site {step} has no side branch"
                )
            grid.schedule_route(circuit, blocker, aside, t_min=t)
            parked_aside.append((blocker, step))
        _, t = grid.schedule_move(circuit, ion, step, t_min=t)

    # Traveler through, blockers return home (reverse order).  A blocker
    # whose way back is sealed (e.g. two stale ions shuffled into the same
    # spare segment) stays at its aside site — callers that re-home active
    # measure ions re-staff from actual positions, so this is safe.
    for blocker, original in reversed(parked_aside):
        try:
            back = grid.route(grid.site_of(blocker), original)
        except ValueError:
            continue
        grid.schedule_route(circuit, blocker, back, t_min=t)
    return t
