"""The grid of trapping zones and junctions, plus ion scheduling.

``GridManager`` (paper App. B) provides "access to an array representation of
the trapped-ion architecture along with functions to help navigate it" and
"enforces validity of the final hardware circuit by tracking qubit movement".

The fine grid tiles the repeating unit ``{M, O, M, J, M, O, M}`` of §3.1 (see
:mod:`repro.util.geometry`).  Scheduling semantics:

* ions rest only on trapping zones (M/O sites), never on junctions (§3.2);
* a one-site move between adjacent zones takes 5.25 µs; crossing a junction
  is emitted as a single ``Move zoneA zoneB`` between the two zones flanking
  the junction and is allocated the time of two Junction operations
  (2 x 105 µs = 210 µs, §3.2);
* during a move both endpoint sites are held, so ions can never swap through
  each other or co-occupy a site;
* when two ions contend for the same junction the later move is delayed until
  the junction frees up, and the conflict is counted
  (§3.3 junction-conflict resolution).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.profile import DEFAULT_PROFILE, HardwareProfile, get_profile
from repro.util.geometry import SiteType, site_exists, site_type_at

__all__ = [
    "GridManager",
    "SiteBlockedError",
    "grid_for_patch",
    "MOVE_US",
    "JUNCTION_HOP_US",
]

#: Duration of a zone-to-zone move: 420 µm at 80 m/s (§3.2).  A view of the
#: default :class:`~repro.hardware.profile.HardwareProfile`; per-scenario
#: values live on ``grid.profile``.
MOVE_US = DEFAULT_PROFILE.move_us
#: Duration of a junction crossing: two Junction ops at 105 µs each (§3.2).
#: Default-profile view, like :data:`MOVE_US`.
JUNCTION_HOP_US = DEFAULT_PROFILE.junction_hop_us


class SiteBlockedError(RuntimeError):
    """A move targets a site occupied by a parked ion with no scheduled departure."""

    def __init__(self, site: int, occupant: int):
        super().__init__(f"site {site} is parked-on by ion {occupant}")
        self.site = site
        self.occupant = occupant


def _earliest_slot(intervals: list[tuple[float, float]], t: float, dur: float) -> float:
    """Earliest start >= t such that [start, start+dur) avoids all intervals."""
    start = t
    moved = True
    while moved:
        moved = False
        for a, b in intervals:
            if start < b and a < start + dur:
                start = b
                moved = True
    return start


class GridManager:
    """Grid navigation, ion registry, and movement scheduling.

    Accepts either the legacy ``GridManager(unit_rows, unit_cols)`` call
    (default profile) or the profile-first ``GridManager(profile,
    unit_rows, unit_cols)`` / ``GridManager(unit_rows, unit_cols,
    profile=...)`` forms; transport durations come from ``self.profile``.
    """

    def __init__(self, *args, profile: HardwareProfile | str | None = None):
        if args and isinstance(args[0], HardwareProfile):
            if profile is not None:
                raise TypeError("profile passed both positionally and by keyword")
            profile, args = args[0], args[1:]
        if len(args) != 2:
            raise TypeError(
                "GridManager takes (unit_rows, unit_cols) or (profile, unit_rows, unit_cols)"
            )
        unit_rows, unit_cols = args
        self.profile = get_profile(profile)
        self.move_us = self.profile.move_us
        self.junction_hop_us = self.profile.junction_hop_us
        if unit_rows < 1 or unit_cols < 1:
            raise ValueError("grid must be at least 1x1 repeating units")
        self.unit_rows = unit_rows
        self.unit_cols = unit_cols
        self.height = 4 * unit_rows + 1
        self.width = 4 * unit_cols + 1
        self.n_positions = self.height * self.width

        # --- ion registry -------------------------------------------------
        self._next_ion = 0
        self._site_of: dict[int, int] = {}  # ion -> site
        self._occupant: dict[int, int] = {}  # site -> ion
        self._occupied_since: dict[int, float] = {}  # site -> time parked
        self._ion_ready: dict[int, float] = {}  # ion -> next free time
        self._ion_tag: dict[int, str] = {}

        # --- calendars ----------------------------------------------------
        self._site_busy: dict[int, list[tuple[float, float]]] = {}
        self._junction_busy: dict[int, list[tuple[float, float]]] = {}

        #: Count of junction conflicts resolved by serialization (§3.3).
        self.junction_conflicts = 0
        #: Count of moves delayed by transient site reservations.
        self.site_delays = 0
        #: Latest time any committed schedule state (ion clocks, site or
        #: junction calendar intervals) extends to.  A block of work starting
        #: at ``t >= t_horizon`` cannot be perturbed by history, which is the
        #: eligibility condition for QEC-round template replay.
        self.t_horizon = 0.0

        # --- geometry caches (built lazily; the grid is immutable) --------
        self._zone_mask_arr: "np.ndarray | None" = None
        self._zone_list: list[bool] | None = None
        self._neighbor_table: list[list[int]] | None = None
        self._junction_map: dict[tuple[int, int], int] | None = None
        # Highest interval end per site/junction calendar: lets the common
        # "no history can overlap" case skip the interval scan entirely.
        self._site_busy_horizon: dict[int, float] = {}
        self._junction_busy_horizon: dict[int, float] = {}

    # ------------------------------------------------------------- geometry
    def index(self, r: int, c: int) -> int:
        if not (0 <= r < self.height and 0 <= c < self.width):
            raise ValueError(f"({r}, {c}) outside the {self.height}x{self.width} grid")
        if not site_exists(r, c):
            raise ValueError(f"({r}, {c}) is a cell interior, not a site")
        return r * self.width + c

    def coords(self, site: int) -> tuple[int, int]:
        if not (0 <= site < self.n_positions):
            raise ValueError(f"qsite {site} out of range")
        return divmod(site, self.width)

    def site_type(self, site: int) -> SiteType:
        r, c = self.coords(site)
        return site_type_at(r, c)

    def zone_mask(self) -> np.ndarray:
        """``(n_positions,)`` bool array: True where a site is a trapping zone.

        Built once per grid (the geometry is immutable); shared by the
        vectorized validity checker and resource estimator.
        """
        if self._zone_mask_arr is None:
            mask = np.zeros(self.n_positions, dtype=bool)
            for r in range(self.height):
                base = r * self.width
                for c in range(self.width):
                    if site_exists(r, c) and site_type_at(r, c) is not SiteType.JUNCTION:
                        mask[base + c] = True
            self._zone_mask_arr = mask
        return self._zone_mask_arr

    def _neighbors_of(self) -> list[list[int]]:
        if self._neighbor_table is None:
            width, height = self.width, self.height
            table: list[list[int]] = [[] for _ in range(self.n_positions)]
            for r in range(height):
                for c in range(width):
                    if not site_exists(r, c):
                        continue
                    out = table[r * width + c]
                    for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                        if 0 <= rr < height and 0 <= cc < width and site_exists(rr, cc):
                            out.append(rr * width + cc)
            self._neighbor_table = table
        return self._neighbor_table

    def is_zone(self, site: int) -> bool:
        if self._zone_list is None:
            self._zone_list = self.zone_mask().tolist()
        if not (0 <= site < self.n_positions):
            raise ValueError(f"qsite {site} out of range")
        return self._zone_list[site]

    def neighbors(self, site: int) -> list[int]:
        """Lattice-adjacent existing sites (including junctions)."""
        if not (0 <= site < self.n_positions):
            raise ValueError(f"qsite {site} out of range")
        return self._neighbors_of()[site]

    def adjacent_zones(self, site: int) -> list[int]:
        mask = self.zone_mask()
        return [s for s in self.neighbors(site) if mask[s]]

    def junction_between(self, a: int, b: int) -> int | None:
        """The junction adjacent to both zones ``a`` and ``b``, if any.

        Resolved from a lazily-built lookup of every (zone, zone) pair
        flanking a junction; ties (diagonal pairs reachable through two
        junctions) keep the first junction in neighbor order, matching the
        original scan.
        """
        if self._junction_map is None:
            mask = self.zone_mask()
            table = self._neighbors_of()
            jmap: dict[tuple[int, int], int] = {}
            for za in range(self.n_positions):
                if not mask[za]:
                    continue
                for j in table[za]:  # neighbor order = the original scan order
                    if mask[j]:
                        continue
                    for zb in table[j]:
                        if zb != za and mask[zb]:
                            jmap.setdefault((za, zb), j)
            self._junction_map = jmap
        if not (self.is_zone(a) and self.is_zone(b)):
            return None
        return self._junction_map.get((a, b))

    def gate_adjacent(self, a: int, b: int) -> bool:
        """Two-qubit gates act between lattice-adjacent trapping zones."""
        return self.is_zone(a) and self.is_zone(b) and b in self.neighbors(a)

    def all_sites(self) -> Iterable[int]:
        for r in range(self.height):
            for c in range(self.width):
                if site_exists(r, c):
                    yield r * self.width + c

    def zone_sites(self) -> list[int]:
        return [s for s in self.all_sites() if self.is_zone(s)]

    def zones_in_bbox(self, r0: int, c0: int, r1: int, c1: int) -> int:
        """Number of trapping zones with r0<=r<=r1, c0<=c<=c1."""
        count = 0
        for r in range(max(0, r0), min(self.height, r1 + 1)):
            for c in range(max(0, c0), min(self.width, c1 + 1)):
                if site_exists(r, c) and site_type_at(r, c) is not SiteType.JUNCTION:
                    count += 1
        return count

    # ----------------------------------------------------------------- ions
    def add_ion(self, site: int, tag: str = "", t: float = 0.0) -> int:
        if not self.is_zone(site):
            raise ValueError(f"ions cannot rest on junction site {site}")
        if site in self._occupant:
            raise ValueError(f"site {site} already holds ion {self._occupant[site]}")
        ion = self._next_ion
        self._next_ion += 1
        self._site_of[ion] = site
        self._occupant[site] = ion
        self._occupied_since[site] = t
        self._ion_ready[ion] = t
        self._ion_tag[ion] = tag
        self.t_horizon = max(self.t_horizon, t)
        return ion

    def load_ion(
        self, circuit: HardwareCircuit, site: int, tag: str = "", t: float | None = None
    ) -> int:
        """Register a new ion mid-circuit, emitting a ``Load`` pseudo-instruction.

        Trapped-ion systems draw fresh ions from a reservoir; Table 5 has no
        explicit load operation, so loading is modelled as instantaneous (see
        DESIGN.md).  The instruction lets the simulator's replay know when
        and where the ion appears.
        """
        t = self.now if t is None else t
        ion = self.add_ion(site, tag, t)
        circuit.append("Load", (site,), t, 0.0)
        return ion

    def ensure_ion(
        self, circuit: HardwareCircuit, site: int, tag: str = "", t: float | None = None
    ) -> int:
        """Reuse the ion parked at ``site`` or load a fresh one."""
        existing = self.ion_at(site)
        if existing is not None:
            return existing
        return self.load_ion(circuit, site, tag, t)

    def remove_ion(self, ion: int, t: float | None = None) -> None:
        site = self._site_of.pop(ion)
        del self._occupant[site]
        since = self._occupied_since.pop(site)
        end = self._ion_ready[ion] if t is None else max(t, since)
        self._commit_site(site, since, end)
        self.t_horizon = max(self.t_horizon, end)
        del self._ion_ready[ion]
        del self._ion_tag[ion]

    def ion_at(self, site: int) -> int | None:
        return self._occupant.get(site)

    def site_of(self, ion: int) -> int:
        return self._site_of[ion]

    def ion_ready(self, ion: int) -> float:
        return self._ion_ready[ion]

    def ion_tag(self, ion: int) -> str:
        return self._ion_tag[ion]

    def ions(self) -> dict[int, int]:
        """ion -> site mapping (snapshot)."""
        return dict(self._site_of)

    def occupancy(self) -> dict[int, int]:
        """site -> ion mapping (snapshot)."""
        return dict(self._occupant)

    @property
    def now(self) -> float:
        """Latest per-ion clock — a lower bound on when new work can start."""
        return max(self._ion_ready.values(), default=0.0)

    # ------------------------------------------------------------- routing
    def route(
        self,
        src: int,
        dst: int,
        avoid: Sequence[int] = (),
        ignore_occupancy: bool = False,
    ) -> list[int]:
        """Shortest path of sites from src to dst (BFS), skirting parked ions.

        The returned path includes junction sites in transit positions; use
        :meth:`schedule_route` to realize it.  ``avoid`` adds extra blocked
        sites.  Occupied zones block the path unless ``ignore_occupancy``.
        """
        blocked = set(avoid)
        if not ignore_occupancy:
            blocked |= set(self._occupant) - {src, dst}
        if src == dst:
            return [src]
        prev: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self.neighbors(cur):
                if nxt in prev or nxt in blocked:
                    continue
                prev[nxt] = cur
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    return path[::-1]
                queue.append(nxt)
        raise ValueError(f"no free path from {src} to {dst}")

    def route_until(
        self,
        src: int,
        goal,
        avoid: Sequence[int] = (),
    ) -> list[int]:
        """BFS from ``src`` through free sites to the first zone where
        ``goal(site)`` is true.  Used to evacuate stale ions to safe parking.
        """
        blocked = set(avoid) | (set(self._occupant) - {src})
        if self.is_zone(src) and goal(src):
            return [src]
        prev: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self.neighbors(cur):
                if nxt in prev or nxt in blocked:
                    continue
                prev[nxt] = cur
                if self.is_zone(nxt) and goal(nxt):
                    path = [nxt]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    return path[::-1]
                queue.append(nxt)
        raise ValueError(f"no reachable site satisfying the goal from {src}")

    # ---------------------------------------------------------- scheduling
    def _reserve_site(self, site: int, t: float, dur: float) -> float:
        if t >= self._site_busy_horizon.get(site, 0.0):
            return t  # every recorded interval ends at or before t
        return _earliest_slot(self._site_busy.setdefault(site, []), t, dur)

    def _commit_site(self, site: int, t0: float, t1: float) -> None:
        self._site_busy.setdefault(site, []).append((t0, t1))
        if t1 > self._site_busy_horizon.get(site, 0.0):
            self._site_busy_horizon[site] = t1

    def schedule_move(
        self,
        circuit: HardwareCircuit,
        ion: int,
        dst: int,
        t_min: float = 0.0,
    ) -> tuple[float, float]:
        """Schedule one hop (zone-zone or across a junction) for ``ion``.

        Returns (start, end) in µs.  Raises :class:`SiteBlockedError` when the
        destination is parked-on, ``ValueError`` when dst is not reachable in
        one hop.
        """
        src = self._site_of[ion]
        if dst == src:
            return (self._ion_ready[ion], self._ion_ready[ion])
        if not self.is_zone(dst):
            raise ValueError(f"ion cannot stop on junction site {dst}")
        junction = None
        if dst in self.neighbors(src):
            dur = self.move_us
        else:
            junction = self.junction_between(src, dst)
            if junction is None:
                raise ValueError(f"sites {src} and {dst} are not one hop apart")
            dur = self.junction_hop_us

        occupant = self._occupant.get(dst)
        if occupant is not None:
            raise SiteBlockedError(dst, occupant)

        t = max(t_min, self._ion_ready[ion])
        t_site = self._reserve_site(dst, t, dur)
        if t_site > t:
            self.site_delays += 1
        t = t_site
        if junction is not None:
            intervals = self._junction_busy.setdefault(junction, [])
            if t >= self._junction_busy_horizon.get(junction, 0.0):
                t_junction = t  # no recorded crossing extends past t
            else:
                t_junction = _earliest_slot(intervals, t, dur)
            if t_junction > t:
                self.junction_conflicts += 1
                # Re-check the destination slot at the pushed-back time.
                t_junction = self._reserve_site(dst, t_junction, dur)
            t = t_junction
            intervals.append((t, t + dur))
            if t + dur > self._junction_busy_horizon.get(junction, 0.0):
                self._junction_busy_horizon[junction] = t + dur

        # Close out the origin occupancy (held through the transit) and park
        # the ion on the destination from the start of the transit.
        since = self._occupied_since.pop(src)
        self._commit_site(src, since, t + dur)
        del self._occupant[src]
        self._occupant[dst] = ion
        self._occupied_since[dst] = t
        self._site_of[ion] = dst
        self._ion_ready[ion] = t + dur
        self.t_horizon = max(self.t_horizon, t + dur)
        circuit.append("Move", (src, dst), t, dur)
        return (t, t + dur)

    def schedule_route(
        self,
        circuit: HardwareCircuit,
        ion: int,
        path: Sequence[int],
        t_min: float = 0.0,
    ) -> float:
        """Realize a path (as returned by :meth:`route`) as scheduled moves.

        Junction entries in the path are folded into single junction-crossing
        moves.  Returns the arrival time.
        """
        if not path:
            return self._ion_ready[ion]
        if path[0] != self._site_of[ion]:
            raise ValueError("path must start at the ion's current site")
        t_end = max(t_min, self._ion_ready[ion])
        i = 1
        while i < len(path):
            step = path[i]
            if self.site_type(step) is SiteType.JUNCTION:
                if i + 1 >= len(path):
                    raise ValueError("path may not end on a junction")
                _, t_end = self.schedule_move(circuit, ion, path[i + 1], t_min)
                i += 2
            else:
                _, t_end = self.schedule_move(circuit, ion, step, t_min)
                i += 1
        return t_end

    def schedule_gate1(
        self,
        circuit: HardwareCircuit,
        name: str,
        ion: int,
        duration: float,
        t_min: float = 0.0,
        label: str | None = None,
    ) -> tuple[float, float]:
        """Schedule a single-qubit native operation on ``ion`` at its site."""
        t = max(t_min, self._ion_ready[ion])
        site = self._site_of[ion]
        circuit.append(name, (site,), t, duration, label)
        self._ion_ready[ion] = t + duration
        self.t_horizon = max(self.t_horizon, t + duration)
        return (t, t + duration)

    def schedule_gate2(
        self,
        circuit: HardwareCircuit,
        name: str,
        ion_a: int,
        ion_b: int,
        duration: float,
        t_min: float = 0.0,
    ) -> tuple[float, float]:
        """Schedule a two-qubit native gate between adjacent-zone ions."""
        site_a = self._site_of[ion_a]
        site_b = self._site_of[ion_b]
        if not self.gate_adjacent(site_a, site_b):
            raise ValueError(
                f"two-qubit gate requires adjacent zones, got {site_a} and {site_b}"
            )
        t = max(t_min, self._ion_ready[ion_a], self._ion_ready[ion_b])
        circuit.append(name, (site_a, site_b), t, duration)
        self._ion_ready[ion_a] = t + duration
        self._ion_ready[ion_b] = t + duration
        self.t_horizon = max(self.t_horizon, t + duration)
        return (t, t + duration)

    def sync_ions(self, ions: Iterable[int], t_min: float = 0.0) -> float:
        """Barrier: raise every listed ion's clock to the common max."""
        ions = list(ions)
        t = max([t_min] + [self._ion_ready[i] for i in ions])
        for i in ions:
            self._ion_ready[i] = t
        self.t_horizon = max(self.t_horizon, t)
        return t

    def shift_ions(self, ions: Iterable[int], dt: float) -> None:
        """Advance clocks after a replayed block of scheduled work.

        Used by QEC-round template replay: the listed ions' ready times and
        parked-since stamps move forward by ``dt`` as if the replicated
        rounds had been scheduled move by move.  Calendar intervals inside
        the replayed span are *not* recorded — they lie entirely before the
        new horizon, where they can no longer influence scheduling.
        """
        if dt <= 0:
            return
        for ion in ions:
            self._ion_ready[ion] += dt
            self._occupied_since[self._site_of[ion]] += dt
            self.t_horizon = max(self.t_horizon, self._ion_ready[ion])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GridManager {self.unit_rows}x{self.unit_cols} units, "
            f"{len(self._site_of)} ions>"
        )


def grid_for_patch(
    profile: HardwareProfile | str | None,
    dx: int,
    dz: int,
    margin: tuple[int, int] = (2, 2),
) -> GridManager:
    """Grid sized for one standalone dx-by-dz patch plus working margin.

    The single home of the ``(dz + margin_rows, dx + margin_cols)`` unit
    convention previously duplicated across the CLI and the verification
    protocols: margin rows/cols give ancilla ions room to shuttle around
    the patch boundary.
    """
    return GridManager(get_profile(profile), dz + margin[0], dx + margin[1])
