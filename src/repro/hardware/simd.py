"""SIMD beam-pass rescheduling of a compiled hardware circuit.

TISCC's scheduler (and the per-site pricing of §3.4) treats every gate as
its own laser event, but trapped-ion hardware drives many *identical* gates
in one global beam pass — TrapSIMD (arXiv:2504.17886) shows batching
same-mnemonic gates is the dominant backend-compiler lever on 2D junction
grids.  This module adds that backend phase: :func:`simd_schedule` takes a
compiled :class:`~repro.hardware.circuit.HardwareCircuit`, regroups its
laser gates into wide same-``(mnemonic, duration)`` beam passes, compacts
the time axis, and co-schedules transport so groups form as early and as
wide as possible.

The pass is a *pure retiming*: it never reorders two instructions that
share a site (or a junction), so the rescheduled circuit passes the
reference validity checker and — because detector error models depend only
on the per-site instruction order and on idle gaps derived from the
schedule — yields the same DEM as the input up to idle-window durations.
For dephasing-free noise the mechanism structure (detector footprints and
observable masks) is *identical* and every probability agrees to within a
few ulp: retiming can permute the XOR-combine fold order inside a
mechanism, which is the only float-level freedom left.  Fixed-seed
frame-engine logical-error counters are identical in practice — a sampled
bit flips only when a uniform draw lands inside that ulp-wide sliver —
and tests and ``bench_simd`` enforce both properties.

Scheduling model
----------------

* **Laser rows** are the mnemonics priced in
  :attr:`HardwareProfile.gate_times_us`; ``Move``/``Load`` are transport
  and are never beam-limited — they drain eagerly between passes.
* **Resources** are trap sites, plus one pseudo-resource per junction for
  junction-crossing ``Move`` rows (two swaps through one junction must
  serialize, matching the validity checker's junction rule).
* The scheduler is a readiness-driven list scheduler: per-resource
  last-user chains define the dependency DAG; at each step every ready
  transport row fires at its earliest start, then the ready laser class
  with the earliest member start fires as one pass (chunked to
  ``width`` members when the profile caps group width).  Ready members of
  one class are provably resource-disjoint, so firing them together is
  always conflict-free.
* ``site_parallel`` (default): a pass occupies only its member sites;
  per-pass overhead extends each member's busy window.  ``pass_serial``:
  one global beam serializes passes — each pass waits for the beam and
  holds it for ``duration + overhead``; this prices beam-limited hardware
  and can *lengthen* the circuit, which is the point of the model.

The result is rebuilt through :meth:`HardwareCircuit.from_columns`;
template-replay provenance is consumed (the replayed rounds are already
materialized columns), so downstream DEM extraction uses the full-walk
oracle path for rescheduled circuits.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.profile import SIMD_MODES

__all__ = ["SimdReport", "simd_schedule", "baseline_beam_passes", "SIMD_MODES"]


@dataclass(frozen=True)
class SimdReport:
    """What one :func:`simd_schedule` run did to a circuit.

    ``utilization`` is mean group width over the effective beam capacity —
    the width cap when one is set, else the widest group actually formed —
    so 1.0 means every pass was as wide as the hardware allows.
    """

    n_rows: int
    n_laser_rows: int
    baseline_passes: int
    beam_passes: int
    max_group_width: int
    mean_group_width: float
    utilization: float
    baseline_makespan_us: float
    makespan_us: float
    width: int
    mode: str
    overhead_us: float

    @property
    def pass_reduction(self) -> float:
        """Fraction of baseline beam passes eliminated (0 when none existed)."""
        if self.baseline_passes == 0:
            return 0.0
        return 1.0 - self.beam_passes / self.baseline_passes

    @property
    def makespan_ratio(self) -> float:
        """Compacted / original circuit duration (1.0 for an empty circuit)."""
        if self.baseline_makespan_us == 0.0:
            return 1.0
        return self.makespan_us / self.baseline_makespan_us

    def to_dict(self) -> dict:
        import dataclasses

        out = dataclasses.asdict(self)
        out["pass_reduction"] = self.pass_reduction
        out["makespan_ratio"] = self.makespan_ratio
        return out


def _laser_names(profile) -> frozenset[str]:
    return frozenset(name for name, _ in profile.gate_times_us)


def _row_resources(grid, names, s0, s1, ns):
    """Per-row resource tuples: sites, plus a junction pseudo-resource for
    junction-crossing Moves (two swaps through one junction serialize)."""
    npos = grid.n_positions
    n = len(names)
    resources = [()] * n
    for i in range(n):
        if ns[i] == 2:
            if names[i] == "Move":
                j = grid.junction_between(s0[i], s1[i])
                if j is None:
                    resources[i] = (s0[i], s1[i])
                else:
                    resources[i] = (s0[i], s1[i], npos + j)
            else:
                resources[i] = (s0[i], s1[i])
        elif ns[i] == 1:
            resources[i] = (s0[i],)
    return resources


def baseline_beam_passes(circuit: HardwareCircuit, profile, width: int = 0) -> int:
    """Beam passes the *unscheduled* circuit needs: distinct
    ``(mnemonic, start, duration)`` groups of laser rows, chunked to
    ``width`` members when the hardware caps group width (0 = unlimited).

    This is the honest baseline — gates the original scheduler already
    started at the same instant ride one pass for free.
    """
    if width < 0:
        raise ValueError(f"width must be >= 0, got {width}")
    cols = circuit.sorted_columns()
    laser = _laser_names(profile)
    names = cols.names
    t = cols.t.tolist()
    dur = cols.duration.tolist()
    groups: dict[tuple, int] = defaultdict(int)
    for i in range(cols.n):
        if names[i] in laser:
            groups[(int(cols.codes[i]), t[i], dur[i])] += 1
    if width:
        return sum(-(-count // width) for count in groups.values())
    return len(groups)


def simd_schedule(
    circuit: HardwareCircuit,
    grid,
    width: int = 0,
    mode: str = "site_parallel",
    overhead_us: float = 0.0,
) -> tuple[HardwareCircuit, SimdReport]:
    """Reschedule ``circuit`` into SIMD beam passes on ``grid``.

    ``width`` caps members per pass (0 = unlimited), ``mode`` selects the
    beam timing discipline (:data:`SIMD_MODES`), ``overhead_us`` is the
    per-pass setup cost.  Returns the retimed circuit (same rows, same
    per-site order, new start times) and a :class:`SimdReport`.
    """
    if mode not in SIMD_MODES:
        raise ValueError(f"mode must be one of {SIMD_MODES}, got {mode!r}")
    if width < 0:
        raise ValueError(f"width must be >= 0, got {width}")
    if not (overhead_us >= 0.0 and np.isfinite(overhead_us)):
        raise ValueError(f"overhead_us must be finite and >= 0, got {overhead_us}")

    cols = circuit.sorted_columns()
    n = cols.n
    if n and int(cols.nsites.max()) > 2:
        raise ValueError("simd_schedule does not support arity>2 rows")
    profile = grid.profile
    laser = _laser_names(profile)
    names = cols.names
    s0 = cols.site0.tolist()
    s1 = cols.site1.tolist()
    ns = cols.nsites.tolist()
    dur = cols.duration.tolist()
    is_laser = [nm in laser for nm in names]

    resources = _row_resources(grid, names, s0, s1, ns)

    # Dependency DAG from per-resource last-user chains: row i depends on
    # the previous user of each of its resources.  Edges follow the sorted
    # stream, so per-site order is preserved by construction.
    succs: dict[int, list[int]] = defaultdict(list)
    indeg = [0] * n
    last_user: dict[int, int] = {}
    for i in range(n):
        preds = set()
        for res in resources[i]:
            prev = last_user.get(res)
            if prev is not None:
                preds.add(prev)
            last_user[res] = i
        indeg[i] = len(preds)
        for p in preds:
            succs[p].append(i)

    avail: dict[int, float] = defaultdict(float)
    est = [0.0] * n  # earliest start, finalized when the row becomes ready
    new_t = [0.0] * n
    beam_free = 0.0
    n_passes = 0
    n_laser = sum(is_laser)
    max_group = 0
    ready_transport: list[int] = []
    ready_laser: dict[tuple[str, float], list[int]] = defaultdict(list)

    def release(i: int) -> None:
        earliest = 0.0
        for res in resources[i]:
            a = avail[res]
            if a > earliest:
                earliest = a
        est[i] = earliest
        if is_laser[i]:
            ready_laser[(names[i], dur[i])].append(i)
        else:
            ready_transport.append(i)

    for i in range(n):
        if indeg[i] == 0:
            release(i)

    scheduled = 0
    while scheduled < n:
        # Transport is not beam-limited: drain every ready Move/Load at its
        # earliest start (in sorted-stream order, for determinism) before
        # committing the next pass, so pass groups form as wide as possible.
        while ready_transport:
            batch = sorted(ready_transport)
            ready_transport.clear()
            for i in batch:
                start = est[i]
                new_t[i] = start
                end = start + dur[i]
                for res in resources[i]:
                    avail[res] = end
                scheduled += 1
                for nxt in succs[i]:
                    indeg[nxt] -= 1
                    if indeg[nxt] == 0:
                        release(nxt)
        if scheduled >= n:
            break
        # Fire the laser class whose earliest ready member can start first
        # (ties broken by mnemonic then duration, for determinism).
        best_key = None
        best_rank = None
        for key, rows in ready_laser.items():
            if not rows:
                continue
            rank = (min(est[i] for i in rows), key[0], key[1])
            if best_rank is None or rank < best_rank:
                best_rank, best_key = rank, key
        if best_key is None:  # pragma: no cover - the DAG is acyclic
            raise RuntimeError("SIMD scheduler deadlocked with unscheduled rows")
        members = sorted(ready_laser.pop(best_key))
        duration = best_key[1]
        cap = width if width else len(members)
        for c0 in range(0, len(members), cap):
            chunk = members[c0 : c0 + cap]
            start = max(est[i] for i in chunk)
            if mode == "pass_serial":
                if beam_free > start:
                    start = beam_free
                beam_free = start + duration + overhead_us
                busy_end = start + duration
            else:
                busy_end = start + duration + overhead_us
            for i in chunk:
                new_t[i] = start
                for res in resources[i]:
                    avail[res] = busy_end
                scheduled += 1
            n_passes += 1
            if len(chunk) > max_group:
                max_group = len(chunk)
            for i in chunk:
                for nxt in succs[i]:
                    indeg[nxt] -= 1
                    if indeg[nxt] == 0:
                        release(nxt)

    t_arr = np.array(new_t, dtype=np.float64)
    new = HardwareCircuit.from_columns(cols, t=t_arr, measure_count=circuit._measure_count)

    mean_group = n_laser / n_passes if n_passes else 0.0
    capacity = width if width else max_group
    report = SimdReport(
        n_rows=n,
        n_laser_rows=n_laser,
        baseline_passes=baseline_beam_passes(circuit, profile, width),
        beam_passes=n_passes,
        max_group_width=max_group,
        mean_group_width=mean_group,
        utilization=mean_group / capacity if capacity else 0.0,
        baseline_makespan_us=circuit.makespan,
        makespan_us=float(np.max(t_arr + cols.duration)) if n else 0.0,
        width=width,
        mode=mode,
        overhead_us=overhead_us,
    )
    return new, report
