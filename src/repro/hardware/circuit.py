"""Time-resolved hardware circuits, stored column-wise.

TISCC output circuits are lists of native instructions, each annotated with
the qsites it acts on and the nominal start time at which it should occur
(paper §3.4: "The circuits output by TISCC are time-resolved ... considering
operations that are done in parallel").  :class:`HardwareCircuit` is that
container plus serialization to/from the text format consumed by the
simulator's parser.

Internally the circuit is a structure-of-arrays: gate names are interned to
small integer codes, sites/times/durations live in parallel columns, and
measurement labels sit in a sparse side table (row -> label).  Single
instructions append onto plain-list column builders; bulk operations —
most importantly :meth:`replay_block`, which the syndrome scheduler uses to
replay a compiled QEC-round template as vectorized time-shifted copies —
land as prebuilt array chunks, so a circuit that is mostly replayed rounds
materializes its columns with a handful of concatenations.  The legacy
object API (:meth:`append`, iteration, :meth:`sorted_instructions`,
:meth:`to_text`) is preserved as views that build :class:`Instruction`
objects on demand, while the validity checker, resource estimator, and
simulation engines consume the columns directly (:meth:`columns`,
:meth:`sorted_columns`) without any per-object iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Instruction", "HardwareCircuit", "CircuitColumns", "ReplayBlock"]

# --------------------------------------------------------------------- names
# Gate names are interned into one process-wide pool: circuits store int32
# codes, and every circuit shares the same code -> name mapping.  The pool
# only ever grows (a handful of native names plus whatever tests invent).
_CODE_OF: dict[str, int] = {}
_NAME_OF: list[str] = []


def _intern(name: str) -> int:
    code = _CODE_OF.get(name)
    if code is None:
        code = len(_NAME_OF)
        _CODE_OF[name] = code
        _NAME_OF.append(name)
    return code


_LOAD_CODE = _intern("Load")


def name_code(name: str) -> int | None:
    """The interned code for a gate name, or ``None`` if never seen.

    Lets columnar consumers (validity checker, estimators) build masks by
    integer comparison against :attr:`CircuitColumns.codes` instead of
    string comparisons row by row.
    """
    return _CODE_OF.get(name)


def _name_rank() -> np.ndarray:
    """code -> rank of the name in lexicographic order (for sorting)."""
    rank = np.empty(len(_NAME_OF), dtype=np.int32)
    rank[np.argsort(np.array(_NAME_OF))] = np.arange(len(_NAME_OF), dtype=np.int32)
    return rank


@dataclass(frozen=True)
class Instruction:
    """One native hardware instruction.

    ``name`` is a native gate name from Table 5 (plus the signed-angle
    variants), ``sites`` the qsite indices it acts on (two for ``ZZ`` and
    ``Move``), ``t`` the nominal start time and ``duration`` its length, both
    in microseconds.  Measurements carry a ``label`` (``m0``, ``m1``, ...)
    used to refer to their outcome in post-processing.
    """

    name: str
    sites: tuple[int, ...]
    t: float
    duration: float
    label: str | None = None

    @property
    def t_end(self) -> float:
        return self.t + self.duration

    def to_text(self) -> str:
        parts = [self.name, *map(str, self.sites), f"@{self.t:.3f}"]
        if self.label is not None:
            parts += ["->", self.label]
        return " ".join(parts)


@dataclass
class CircuitColumns:
    """A read-only columnar snapshot of a circuit (one row per instruction).

    ``codes`` indexes the shared gate-name pool (decode via :attr:`names`);
    ``site0``/``site1`` hold the first/second qsite with ``-1`` meaning
    absent, ``nsites`` the true arity.  ``labels`` is the sparse
    measurement-label side table (row -> label).  :attr:`names` and
    :attr:`sites` are decoded lazily and cached — the replay engines index
    them in tight loops without building :class:`Instruction` objects.
    """

    codes: np.ndarray
    site0: np.ndarray
    site1: np.ndarray
    nsites: np.ndarray
    t: np.ndarray
    duration: np.ndarray
    labels: dict[int, str] = field(default_factory=dict)

    _names: list[str] | None = None
    _sites: list[tuple[int, ...]] | None = None

    @property
    def n(self) -> int:
        return len(self.codes)

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def names(self) -> list[str]:
        """Per-row gate names (decoded once, then cached)."""
        if self._names is None:
            pool = _NAME_OF
            self._names = [pool[c] for c in self.codes.tolist()]
        return self._names

    @property
    def sites(self) -> list[tuple[int, ...]]:
        """Per-row site tuples (decoded once, then cached)."""
        if self._sites is None:
            s0 = self.site0.tolist()
            s1 = self.site1.tolist()
            ns = self.nsites.tolist()
            self._sites = [
                (a, b) if k == 2 else ((a,) if k == 1 else ())
                for a, b, k in zip(s0, s1, ns)
            ]
        return self._sites

    @property
    def t_end(self) -> np.ndarray:
        return self.t + self.duration

    def instruction(self, i: int) -> Instruction:
        """Materialize row ``i`` as an :class:`Instruction` (error paths)."""
        return Instruction(
            self.names[i], self.sites[i], float(self.t[i]), float(self.duration[i]),
            self.labels.get(i),
        )

    def instructions(self) -> list[Instruction]:
        names, sites, labels = self.names, self.sites, self.labels
        ts, durs = self.t.tolist(), self.duration.tolist()
        return [
            Instruction(names[i], sites[i], ts[i], durs[i], labels.get(i))
            for i in range(len(names))
        ]


#: One frozen block of rows: (codes, site0, site1, nsites, t, duration).
_Chunk = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class ReplayBlock:
    """Provenance record of one :meth:`HardwareCircuit.replay_block` call.

    All row indices are append-order: the template block occupied rows
    ``[start, stop)`` and copy ``k`` (1-based) occupies rows
    ``[chunk_start + (k-1)*block, chunk_start + k*block)`` with
    ``block = stop - start``.  ``label_maps[k-1]`` maps each template
    measurement label to copy ``k``'s fresh label.  The DEM extractor uses
    these records to recognize the periodic bulk of a replayed circuit and
    tile fault footprints instead of re-walking every round.
    """

    start: int
    stop: int
    chunk_start: int
    copies: int
    dt: float
    overridden: bool
    label_maps: tuple[dict[str, str], ...]

    @property
    def block(self) -> int:
        return self.stop - self.start

    def shifted(self, offset: int) -> "ReplayBlock":
        """The same record with every row index moved by ``offset``."""
        return ReplayBlock(
            self.start + offset,
            self.stop + offset,
            self.chunk_start + offset,
            self.copies,
            self.dt,
            self.overridden,
            self.label_maps,
        )


class HardwareCircuit:
    """Append-only, time-annotated instruction stream (structure-of-arrays).

    Instructions may be appended out of time order (different ions progress
    independently during compilation); :meth:`sorted_instructions` and
    serialization return them ordered by start time, matching the
    "master hardware circuit" of §3.4.
    """

    def __init__(self) -> None:
        # Frozen array chunks (bulk appends) + live plain-list builders.
        self._frozen: list[_Chunk] = []
        self._frozen_len = 0
        self._codes: list[int] = []
        self._site0: list[int] = []
        self._site1: list[int] = []
        self._nsites: list[int] = []
        self._t: list[float] = []
        self._dur: list[float] = []
        #: Sparse label table: append-order row index -> label.
        self._label_of: dict[int, str] = {}
        #: Rows with arity > 2 (never produced by the compiler, but the
        #: container stays general): row index -> full site tuple.
        self._extra_sites: dict[int, tuple[int, ...]] = {}
        self._measure_count = 0
        #: Provenance of every bulk template replay (see :class:`ReplayBlock`).
        self._replays: list[ReplayBlock] = []
        # Cached derived views, invalidated on mutation.
        self._cols: CircuitColumns | None = None
        self._sorted_cols: CircuitColumns | None = None
        self._sort_order: np.ndarray | None = None
        self._sorted_instr: list[Instruction] | None = None
        self._used_sites: set[int] | None = None

    def _invalidate(self) -> None:
        self._cols = None
        self._sorted_cols = None
        self._sort_order = None
        self._sorted_instr = None
        self._used_sites = None

    def _freeze_builder(self) -> None:
        """Move the live list builders into a frozen array chunk."""
        if not self._codes:
            return
        self._frozen.append(
            (
                np.array(self._codes, dtype=np.int32),
                np.array(self._site0, dtype=np.int64),
                np.array(self._site1, dtype=np.int64),
                np.array(self._nsites, dtype=np.int8),
                np.array(self._t, dtype=np.float64),
                np.array(self._dur, dtype=np.float64),
            )
        )
        self._frozen_len += len(self._codes)
        self._codes = []
        self._site0 = []
        self._site1 = []
        self._nsites = []
        self._t = []
        self._dur = []

    # ------------------------------------------------------------------ build
    def append(
        self,
        name: str,
        sites: Iterable[int],
        t: float,
        duration: float,
        label: str | None = None,
    ) -> None:
        """Append one instruction (hot path: a few column appends, no object)."""
        sites = tuple(sites)
        n = len(sites)
        if n > 2:
            self._extra_sites[self._frozen_len + len(self._codes)] = tuple(
                int(s) for s in sites
            )
        if label is not None:
            self._label_of[self._frozen_len + len(self._codes)] = label
        code = _CODE_OF.get(name)
        self._codes.append(_intern(name) if code is None else code)
        self._site0.append(sites[0] if n >= 1 else -1)
        self._site1.append(sites[1] if n >= 2 else -1)
        self._nsites.append(n)
        self._t.append(t)
        self._dur.append(duration)
        if self._cols is not None:
            self._invalidate()

    def new_measure_label(self) -> str:
        label = f"m{self._measure_count}"
        self._measure_count += 1
        return label

    def extend(self, other: "HardwareCircuit") -> None:
        """Absorb another circuit's instructions (labels are not re-numbered)."""
        offset = len(self)
        self._freeze_builder()
        other._freeze_builder()
        self._frozen.extend(other._frozen)
        self._frozen_len += other._frozen_len
        for row, sites in other._extra_sites.items():
            self._extra_sites[offset + row] = sites
        for row, label in other._label_of.items():
            self._label_of[offset + row] = label
        self._replays.extend(rec.shifted(offset) for rec in other._replays)
        self._measure_count = max(self._measure_count, other._measure_count)
        self._invalidate()

    @classmethod
    def from_columns(
        cls,
        columns: CircuitColumns,
        t: np.ndarray | None = None,
        measure_count: int = 0,
    ) -> "HardwareCircuit":
        """Rebuild a circuit from one columnar snapshot, optionally retimed.

        ``columns`` becomes a single frozen chunk in append order == column
        order; ``t`` (when given) replaces the start times — the retiming
        hook the SIMD beam-pass scheduler uses.  Labels are carried over at
        the same row indices.  Replay provenance is *not* carried: the rows
        are already materialized, and a retimed stream no longer matches the
        uniform time-shift contract of :class:`ReplayBlock`.
        """
        if columns.n and int(columns.nsites.max()) > 2:
            raise ValueError("from_columns does not support arity>2 rows")
        if t is None:
            t = columns.t
        t = np.ascontiguousarray(t, dtype=np.float64)
        if t.shape != (columns.n,):
            raise ValueError(f"t must have shape ({columns.n},), got {t.shape}")
        new = cls()
        new._frozen.append(
            (
                columns.codes.copy(),
                columns.site0.copy(),
                columns.site1.copy(),
                columns.nsites.copy(),
                t.copy(),
                columns.duration.copy(),
            )
        )
        new._frozen_len = columns.n
        new._label_of = dict(columns.labels)
        new._measure_count = measure_count
        return new

    def replay_block(
        self,
        start: int,
        stop: int,
        copies: int,
        dt: float,
        override: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> list[dict[str, str]]:
        """Append ``copies`` time-shifted replicas of rows ``[start, stop)``.

        Copy ``k`` (1-based) is shifted by ``k * dt`` microseconds; labeled
        rows receive fresh measurement labels from :meth:`new_measure_label`.
        ``override`` — ``(block_positions, base_times)`` — re-anchors the
        given block-relative rows instead: in copy ``k`` they start at
        ``base_times + (k - 1) * dt`` (the syndrome scheduler uses this for
        operations that anchor to an ion's own clock rather than the round
        start).  Returns one ``{template label -> replica label}`` map per
        copy.  The replicas are built as one tiled array chunk — this is
        the QEC-round template-replay primitive.
        """
        if not (0 <= start <= stop <= len(self)):
            raise ValueError(f"replay block [{start}, {stop}) out of range")
        if any(start <= row < stop for row in self._extra_sites):
            raise ValueError("cannot replay a block containing arity>2 rows")
        if copies < 1 or start == stop:
            return [{} for _ in range(max(copies, 0))]
        cols = self.columns()
        block = stop - start
        chunk_start = len(self)
        offsets = np.repeat(np.arange(1, copies + 1, dtype=np.float64) * dt, block)
        tiled_t = np.tile(cols.t[start:stop], copies) + offsets
        if override is not None:
            positions, times = override
            for c in range(copies):
                tiled_t[c * block + positions] = times + c * dt
        self._freeze_builder()
        self._frozen.append(
            (
                np.tile(cols.codes[start:stop], copies),
                np.tile(cols.site0[start:stop], copies),
                np.tile(cols.site1[start:stop], copies),
                np.tile(cols.nsites[start:stop], copies),
                tiled_t,
                np.tile(cols.duration[start:stop], copies),
            )
        )
        self._frozen_len += block * copies
        labeled = sorted(row for row in self._label_of if start <= row < stop)
        maps: list[dict[str, str]] = []
        for k in range(copies):
            relabel: dict[str, str] = {}
            for row in labeled:
                new = self.new_measure_label()
                relabel[self._label_of[row]] = new
                self._label_of[chunk_start + k * block + (row - start)] = new
            maps.append(relabel)
        self._replays.append(
            ReplayBlock(
                start,
                stop,
                chunk_start,
                copies,
                float(dt),
                override is not None,
                tuple(maps),
            )
        )
        self._invalidate()
        return maps

    # ------------------------------------------------------------------ query
    @property
    def replay_blocks(self) -> tuple[ReplayBlock, ...]:
        """Provenance of every :meth:`replay_block` call, in call order.

        Rows appended *after* a replay (the final measurement block, say)
        are not covered by any record; the DEM extractor treats them as the
        epilogue it walks explicitly.
        """
        return tuple(self._replays)

    def sort_order(self) -> np.ndarray:
        """Append-order row index per execution-order position (read-only).

        ``sort_order()[p]`` is the append-order row occupying position ``p``
        of :meth:`sorted_columns` — the bridge between :class:`ReplayBlock`
        row ranges and the sorted stream the DEM extractor walks.  Callers
        must not mutate the returned array.
        """
        return self._order()

    def __len__(self) -> int:
        return self._frozen_len + len(self._codes)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.sorted_instructions())

    def columns(self) -> CircuitColumns:
        """Columnar snapshot in append order (compile order, not time order)."""
        if self._cols is None:
            self._freeze_builder()
            chunks = self._frozen
            if len(chunks) == 1:
                parts = chunks[0]
            elif chunks:
                parts = tuple(
                    np.concatenate([c[k] for c in chunks]) for k in range(6)
                )
                self._frozen = [parts]  # keep future snapshots cheap
            else:
                parts = (
                    np.empty(0, dtype=np.int32),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int8),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.float64),
                )
            self._cols = CircuitColumns(*parts, labels=self._label_of)
            if self._extra_sites:
                sites = self._cols.sites  # force decode, then patch arity>2 rows
                for row, tup in self._extra_sites.items():
                    sites[row] = tup
        return self._cols

    def _order(self) -> np.ndarray:
        """Execution order: by ``(t, Load-first, sites, name)``, stable.

        ``Load`` pseudo-instructions sort before anything else at the same
        timestamp so a freshly loaded ion exists before it is operated on.
        The ``-1`` site sentinels sort below every real site index, which
        reproduces tuple prefix ordering (``(s,) < (s, s')``) exactly.
        """
        if self._sort_order is None:
            cols = self.columns()
            if self._extra_sites:
                # Rare general-arity path: defer to the reference sort key.
                instrs = cols.instructions()
                self._sort_order = np.array(
                    sorted(
                        range(len(instrs)),
                        key=lambda i: (
                            instrs[i].t,
                            0 if instrs[i].name == "Load" else 1,
                            instrs[i].sites,
                            instrs[i].name,
                        ),
                    ),
                    dtype=np.int64,
                )
            else:
                rank = _name_rank()[cols.codes].astype(np.int64)
                load = np.where(cols.codes == _LOAD_CODE, np.int64(0), np.int64(1))
                max_site = max(
                    int(cols.site0.max(initial=-1)), int(cols.site1.max(initial=-1))
                )
                if max_site + 1 < (1 << 21) and len(_NAME_OF) < (1 << 10):
                    # Fold the four tie-break keys into one int64 (load-
                    # first, site0, site1, name rank — 1+21+21+10 bits) so
                    # the sort is a two-key lexsort with time as primary.
                    tiebreak = (
                        (load << np.int64(52))
                        | ((cols.site0 + 1) << np.int64(31))
                        | ((cols.site1 + 1) << np.int64(10))
                        | rank
                    )
                    self._sort_order = np.lexsort((tiebreak, cols.t))
                else:  # pragma: no cover - gigantic grids only
                    self._sort_order = np.lexsort(
                        (rank, cols.site1, cols.site0, load, cols.t)
                    )
        return self._sort_order

    def sorted_columns(self) -> CircuitColumns:
        """Columnar snapshot in execution order — the hot-path view."""
        if self._sorted_cols is None:
            cols = self.columns()
            order = self._order()
            labels: dict[int, str] = {}
            if cols.labels:
                inverse = np.empty(cols.n, dtype=np.int64)
                inverse[order] = np.arange(cols.n, dtype=np.int64)
                for row, label in cols.labels.items():
                    labels[int(inverse[row])] = label
            sorted_cols = CircuitColumns(
                codes=cols.codes[order],
                site0=cols.site0[order],
                site1=cols.site1[order],
                nsites=cols.nsites[order],
                t=cols.t[order],
                duration=cols.duration[order],
                labels=labels,
            )
            if self._extra_sites:
                all_sites = cols.sites
                sorted_cols._sites = [all_sites[i] for i in order.tolist()]
            self._sorted_cols = sorted_cols
        return self._sorted_cols

    @property
    def instructions(self) -> list[Instruction]:
        """Instructions in append order (compile order, not time order)."""
        return self.columns().instructions()

    def sorted_instructions(self) -> list[Instruction]:
        """Instructions ordered by start time — the executable stream."""
        if self._sorted_instr is None:
            self._sorted_instr = self.sorted_columns().instructions()
        return list(self._sorted_instr)

    @property
    def makespan(self) -> float:
        """Total execution time in µs (latest instruction end)."""
        if not len(self):
            return 0.0
        cols = self.columns()
        return float((cols.t + cols.duration).max())

    @property
    def t_start(self) -> float:
        if not len(self):
            return 0.0
        return float(self.columns().t.min())

    def used_sites(self) -> set[int]:
        if self._used_sites is None:
            cols = self.columns()
            sites = np.unique(np.concatenate([cols.site0, cols.site1]))
            used = set(sites[sites >= 0].tolist())
            for tup in self._extra_sites.values():
                used.update(tup)
            self._used_sites = used
        return set(self._used_sites)

    def count(self, name: str) -> int:
        code = _CODE_OF.get(name)
        if code is None or not len(self):
            return 0
        return int((self.columns().codes == code).sum())

    def gate_histogram(self) -> dict[str, int]:
        if not len(self):
            return {}
        counts = np.bincount(self.columns().codes, minlength=len(_NAME_OF))
        hist = {_NAME_OF[c]: int(n) for c, n in enumerate(counts) if n > 0}
        return dict(sorted(hist.items()))

    def measurements(self) -> list[Instruction]:
        cols = self.sorted_columns()
        return [cols.instruction(i) for i in sorted(cols.labels)]

    # -------------------------------------------------------------- serialize
    def to_text(self, header: str | None = None) -> str:
        lines = []
        if header:
            lines.append(f"# {header}")
        cols = self.sorted_columns()
        names, sites, labels = cols.names, cols.sites, cols.labels
        ts = cols.t.tolist()
        for i in range(cols.n):
            parts = [names[i], *map(str, sites[i]), f"@{ts[i]:.3f}"]
            label = labels.get(i)
            if label is not None:
                parts += ["->", label]
            lines.append(" ".join(parts))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HardwareCircuit {len(self)} instructions, makespan {self.makespan:.1f} µs>"
