"""Time-resolved hardware circuits.

TISCC output circuits are lists of native instructions, each annotated with
the qsites it acts on and the nominal start time at which it should occur
(paper §3.4: "The circuits output by TISCC are time-resolved ... considering
operations that are done in parallel").  :class:`HardwareCircuit` is that
container plus serialization to/from the text format consumed by the
simulator's parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Instruction", "HardwareCircuit"]


@dataclass(frozen=True)
class Instruction:
    """One native hardware instruction.

    ``name`` is a native gate name from Table 5 (plus the signed-angle
    variants), ``sites`` the qsite indices it acts on (two for ``ZZ`` and
    ``Move``), ``t`` the nominal start time and ``duration`` its length, both
    in microseconds.  Measurements carry a ``label`` (``m0``, ``m1``, ...)
    used to refer to their outcome in post-processing.
    """

    name: str
    sites: tuple[int, ...]
    t: float
    duration: float
    label: str | None = None

    @property
    def t_end(self) -> float:
        return self.t + self.duration

    def to_text(self) -> str:
        parts = [self.name, *map(str, self.sites), f"@{self.t:.3f}"]
        if self.label is not None:
            parts += ["->", self.label]
        return " ".join(parts)


class HardwareCircuit:
    """Append-only, time-annotated instruction stream.

    Instructions may be appended out of time order (different ions progress
    independently during compilation); :meth:`sorted_instructions` and
    serialization return them ordered by start time, matching the
    "master hardware circuit" of §3.4.
    """

    def __init__(self) -> None:
        self._instructions: list[Instruction] = []
        self._measure_count = 0

    # ------------------------------------------------------------------ build
    def append(
        self,
        name: str,
        sites: Iterable[int],
        t: float,
        duration: float,
        label: str | None = None,
    ) -> Instruction:
        inst = Instruction(name, tuple(int(s) for s in sites), float(t), float(duration), label)
        self._instructions.append(inst)
        return inst

    def new_measure_label(self) -> str:
        label = f"m{self._measure_count}"
        self._measure_count += 1
        return label

    def extend(self, other: "HardwareCircuit") -> None:
        """Absorb another circuit's instructions (labels are not re-numbered)."""
        self._instructions.extend(other._instructions)
        self._measure_count = max(self._measure_count, other._measure_count)

    # ------------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.sorted_instructions())

    @property
    def instructions(self) -> list[Instruction]:
        """Instructions in append order (compile order, not time order)."""
        return list(self._instructions)

    def sorted_instructions(self) -> list[Instruction]:
        """Instructions ordered by start time — the executable stream.

        ``Load`` pseudo-instructions sort before anything else at the same
        timestamp so a freshly loaded ion exists before it is operated on.
        """
        return sorted(
            self._instructions,
            key=lambda i: (i.t, 0 if i.name == "Load" else 1, i.sites, i.name),
        )

    @property
    def makespan(self) -> float:
        """Total execution time in µs (latest instruction end)."""
        if not self._instructions:
            return 0.0
        return max(i.t_end for i in self._instructions)

    @property
    def t_start(self) -> float:
        if not self._instructions:
            return 0.0
        return min(i.t for i in self._instructions)

    def used_sites(self) -> set[int]:
        sites: set[int] = set()
        for inst in self._instructions:
            sites.update(inst.sites)
        return sites

    def count(self, name: str) -> int:
        return sum(1 for i in self._instructions if i.name == name)

    def gate_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for inst in self._instructions:
            hist[inst.name] = hist.get(inst.name, 0) + 1
        return dict(sorted(hist.items()))

    def measurements(self) -> list[Instruction]:
        return [i for i in self.sorted_instructions() if i.label is not None]

    # -------------------------------------------------------------- serialize
    def to_text(self, header: str | None = None) -> str:
        lines = []
        if header:
            lines.append(f"# {header}")
        lines += [inst.to_text() for inst in self.sorted_instructions()]
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HardwareCircuit {len(self)} instructions, makespan {self.makespan:.1f} µs>"
