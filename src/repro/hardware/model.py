"""Native trapped-ion gate set, timings, and gate compilation (paper §3.2).

The native set is specialized to surface-code compilation: Pauli-axis
rotations ``P_theta = exp(-i * theta * P)`` with ``P in {X, Y, Z}`` and
``theta in {pi/2, +/-pi/4, +/-pi/8}``, the Molmer-Sorensen-style entangler
``ZZ = (ZZ)_{pi/4} = exp(-i pi/4 Z (x) Z)``, state preparation, measurement,
and movement.  Durations are the literature-derived values of Table 5 / Fig 5.

``HardwareModel`` "compiles gates requested by LogicalQubit to the native
gate set and adds native gates to a time-resolved hardware circuit"
(paper App. B).  All composite decompositions below are verified as exact
unitaries (up to global phase) in ``tests/test_hardware_model.py``:

* ``H = Y_{pi/4} . Z_{pi/2}``  (apply Z-rotation first),
* ``CZ = (Z_{-pi/4} (x) Z_{-pi/4}) . ZZ_{pi/4}``  (up to global phase),
* ``CNOT(c,t) = (I (x) H) . CZ . (I (x) H)`` with the two adjacent Z-axis
  rotations on the target fused (``Z_{-pi/4} . Z_{pi/2} = Z_{pi/4}``).
"""

from __future__ import annotations

import warnings

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.profile import DEFAULT_PROFILE, HardwareProfile

__all__ = ["GATE_TIMES_US", "HardwareModel", "NATIVE_GATES", "SINGLE_QUBIT_GATES"]


class _GateTimeTable(dict):
    """Read-mostly view of the default profile's gate-time table.

    Mutation still works (legacy scripts monkey-patch timings) but warns
    once per call site: edits here are invisible to profile fingerprints,
    so cached results would silently go stale.  Define a
    :class:`~repro.hardware.profile.HardwareProfile` instead.
    """

    _WARNING = (
        "mutating GATE_TIMES_US is deprecated; define a HardwareProfile "
        "(repro.hardware.profile) so caches and sweeps see the change"
    )

    def _warn(self) -> None:
        warnings.warn(self._WARNING, DeprecationWarning, stacklevel=3)

    def __setitem__(self, key, value):
        self._warn()
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._warn()
        super().__delitem__(key)

    def update(self, *args, **kwargs):
        self._warn()
        super().update(*args, **kwargs)

    def pop(self, *args):
        self._warn()
        return super().pop(*args)

    def popitem(self):
        self._warn()
        return super().popitem()

    def clear(self):
        self._warn()
        super().clear()

    def setdefault(self, key, default=None):
        if key not in self:
            self._warn()
        return super().setdefault(key, default)


#: Native operation durations in microseconds — paper Table 5 / Fig 5.
#: A view of :data:`~repro.hardware.profile.DEFAULT_PROFILE`; per-scenario
#: tables live on ``HardwareProfile.gate_times`` (mutating this one warns).
GATE_TIMES_US: dict[str, float] = _GateTimeTable(DEFAULT_PROFILE.gate_times)

#: Names that may appear in compiled circuit output.
NATIVE_GATES = frozenset(GATE_TIMES_US) - {"Junction"}

#: Native gates acting as single-qubit unitaries (shared with the noise model).
SINGLE_QUBIT_GATES = frozenset(
    n for n in NATIVE_GATES if n not in {"ZZ", "Move", "Prepare_Z", "Measure_Z"}
)


class HardwareModel:
    """Compiles requested gates into timed native instructions on a grid.

    All methods schedule through the :class:`GridManager` so that ion clocks,
    site calendars, and junction conflicts are accounted for.  Methods return
    ``(t_start, t_end)`` of the emitted sequence.
    """

    def __init__(self, grid: GridManager, profile: HardwareProfile | None = None):
        self.grid = grid
        self.profile = profile or getattr(grid, "profile", DEFAULT_PROFILE)
        self._times = self.profile.gate_times

    # ----------------------------------------------------------- primitives
    def duration(self, name: str) -> float:
        try:
            return self._times[name]
        except KeyError:
            raise ValueError(f"unknown native operation {name!r}") from None

    def native1(
        self,
        circuit: HardwareCircuit,
        name: str,
        ion: int,
        t_min: float = 0.0,
        label: str | None = None,
    ) -> tuple[float, float]:
        if name not in self._times or name in {"ZZ", "Move", "Junction"}:
            raise ValueError(f"{name!r} is not a single-site native operation")
        return self.grid.schedule_gate1(circuit, name, ion, self.duration(name), t_min, label)

    def _seq1(
        self, circuit: HardwareCircuit, names: list[str], ion: int, t_min: float
    ) -> tuple[float, float]:
        t0 = None
        t1 = t_min
        for name in names:
            a, t1 = self.native1(circuit, name, ion, t_min)
            t0 = a if t0 is None else t0
        return (t0 if t0 is not None else t_min, t1)

    # ------------------------------------------------------- prep / measure
    def prepare_z(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """Reset to |0>."""
        return self.native1(circuit, "Prepare_Z", ion, t_min)

    def prepare_x(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """Prepare |+> = Y_{pi/4} |0>."""
        return self._seq1(circuit, ["Prepare_Z", "Y_pi/4"], ion, t_min)

    def prepare_y(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """Prepare |+i> = X_{-pi/4} |0>."""
        return self._seq1(circuit, ["Prepare_Z", "X_-pi/4"], ion, t_min)

    def measure_z(self, circuit, ion, t_min=0.0) -> tuple[tuple[float, float], str]:
        label = circuit.new_measure_label()
        span = self.native1(circuit, "Measure_Z", ion, t_min, label=label)
        return span, label

    def measure_x(self, circuit, ion, t_min=0.0) -> tuple[tuple[float, float], str]:
        """Measure X: rotate X->Z with Y_{-pi/4}, then Measure_Z."""
        t0, _ = self.native1(circuit, "Y_-pi/4", ion, t_min)
        (_, t1), label = self.measure_z(circuit, ion)
        return (t0, t1), label

    def measure_y(self, circuit, ion, t_min=0.0) -> tuple[tuple[float, float], str]:
        """Measure Y: rotate Y->Z with X_{pi/4}, then Measure_Z."""
        t0, _ = self.native1(circuit, "X_pi/4", ion, t_min)
        (_, t1), label = self.measure_z(circuit, ion)
        return (t0, t1), label

    # ------------------------------------------------------------ 1q gates
    def pauli_x(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """Pauli X up to global phase: X_{pi/2} = -iX."""
        return self.native1(circuit, "X_pi/2", ion, t_min)

    def pauli_y(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        return self.native1(circuit, "Y_pi/2", ion, t_min)

    def pauli_z(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        return self.native1(circuit, "Z_pi/2", ion, t_min)

    def hadamard(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """H = Y_{pi/4} . Z_{pi/2} up to global phase (Z applied first)."""
        return self._seq1(circuit, ["Z_pi/2", "Y_pi/4"], ion, t_min)

    def s_gate(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """S = diag(1, i) up to phase: Z_{pi/4}."""
        return self.native1(circuit, "Z_pi/4", ion, t_min)

    def s_dagger(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        return self.native1(circuit, "Z_-pi/4", ion, t_min)

    def t_gate(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        """T = diag(1, e^{i pi/4}) up to phase: Z_{pi/8} (non-Clifford)."""
        return self.native1(circuit, "Z_pi/8", ion, t_min)

    def t_dagger(self, circuit, ion, t_min=0.0) -> tuple[float, float]:
        return self.native1(circuit, "Z_-pi/8", ion, t_min)

    # ------------------------------------------------------------ 2q gates
    def zz(self, circuit, ion_a, ion_b, t_min=0.0) -> tuple[float, float]:
        """Native entangler (ZZ)_{pi/4} between adjacent-zone ions."""
        return self.grid.schedule_gate2(circuit, "ZZ", ion_a, ion_b, self.duration("ZZ"), t_min)

    def cz(self, circuit, ion_a, ion_b, t_min=0.0) -> tuple[float, float]:
        """CZ = (Z_{-pi/4} (x) Z_{-pi/4}) . ZZ_{pi/4}, up to global phase."""
        t0, _ = self.zz(circuit, ion_a, ion_b, t_min)
        self.native1(circuit, "Z_-pi/4", ion_a)
        _, t1 = self.native1(circuit, "Z_-pi/4", ion_b)
        # The two trailing Z rotations act on different ions in parallel.
        t1 = max(self.grid.ion_ready(ion_a), self.grid.ion_ready(ion_b))
        return (t0, t1)

    def cnot(self, circuit, control, target, t_min=0.0) -> tuple[float, float]:
        """CNOT via one ZZ: (I (x) H) CZ (I (x) H) with fused Z rotations."""
        t0, _ = self._seq1(circuit, ["Z_pi/2", "Y_pi/4"], target, t_min)
        self.zz(circuit, control, target)
        self.native1(circuit, "Z_-pi/4", control)
        self._seq1(circuit, ["Z_pi/4", "Y_pi/4"], target, 0.0)
        t1 = max(self.grid.ion_ready(control), self.grid.ion_ready(target))
        return (t0, t1)
