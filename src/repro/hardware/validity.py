"""Independent hardware-circuit validity checking (paper §3.3).

"In TISCC, we implement basic hardware validity checks such as that two
qubits do not move through the same junction at the same time, and that two
qubits do not occupy the same site at the same time."

:func:`check_circuit` replays a compiled, time-resolved circuit against an
initial site occupancy and raises :class:`CircuitValidityError` on the first
violation.  It is deliberately independent of the scheduling logic in
:class:`~repro.hardware.grid.GridManager` so that it can double-check any
compiled circuit, exactly as ORQCS re-models the hardware on its side.

Two implementations share the contract:

* :func:`check_circuit_reference` — the original instruction-by-instruction
  replay over :class:`Instruction` objects, kept verbatim as the executable
  specification (and the error-reporting path);
* :func:`check_circuit` — the production path, which consumes the circuit's
  sorted columns directly: static legality (arities, zone membership, move
  durations, hop geometry) is verified with vectorized array expressions,
  ion-busy and junction-overlap constraints with sorted-array sweeps, and
  only the occupancy state machine (who is where, in time order) runs as a
  tight scalar loop over the move/load rows.  Any detected violation defers
  to the reference checker so the raised error is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.circuit import HardwareCircuit, Instruction, name_code
from repro.hardware.grid import GridManager

__all__ = [
    "CircuitValidityError",
    "ValidityReport",
    "check_circuit",
    "check_circuit_reference",
]

_EPS = 1e-9


class CircuitValidityError(RuntimeError):
    """A hardware circuit violates an occupancy/movement/timing constraint."""

    def __init__(self, message: str, instruction: Instruction | None = None):
        if instruction is not None:
            message = f"{message} (at {instruction.to_text()!r})"
        super().__init__(message)
        self.instruction = instruction


@dataclass
class ValidityReport:
    """Summary statistics from a successful validity replay."""

    n_instructions: int = 0
    n_moves: int = 0
    n_junction_crossings: int = 0
    junctions_used: set[int] = field(default_factory=set)
    sites_used: set[int] = field(default_factory=set)
    final_occupancy: dict[int, int] = field(default_factory=dict)
    makespan: float = 0.0


def check_circuit_reference(
    grid: GridManager,
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
) -> ValidityReport:
    """Replay ``circuit`` from ``initial_occupancy`` (site -> ion).

    Verifies, instruction by instruction in time order:

    * moves are single hops between adjacent zones (5.25 µs) or junction
      crossings between the two zones flanking one junction (210 µs);
    * an ion never starts an operation before its previous one finished;
    * a move's destination has been fully vacated before the transit begins;
    * no two ions cross the same junction at overlapping times;
    * gates/preps/measurements act on occupied zones, with ZZ requiring
      lattice adjacency.

    This is the executable specification: one Python iteration per
    instruction.  :func:`check_circuit` is the vectorized production path.
    """
    occupant: dict[int, int] = dict(initial_occupancy)
    site_release: dict[int, float] = {}
    ion_free: dict[int, float] = {ion: 0.0 for ion in occupant.values()}
    junction_free: dict[int, float] = {}
    report = ValidityReport(final_occupancy=occupant)

    for site, ion in occupant.items():
        if not grid.is_zone(site):
            raise CircuitValidityError(f"initial occupancy places ion {ion} on junction {site}")
    if len(set(occupant.values())) != len(occupant):
        raise CircuitValidityError("initial occupancy maps two sites to the same ion")

    for inst in circuit.sorted_instructions():
        report.n_instructions += 1
        report.sites_used.update(inst.sites)
        t, dur = inst.t, inst.duration

        if inst.name == "Load":
            (s,) = inst.sites
            if s in occupant:
                raise CircuitValidityError(f"Load onto occupied site {s}", inst)
            if not grid.is_zone(s):
                raise CircuitValidityError("ions load onto trapping zones only", inst)
            if t + _EPS < site_release.get(s, 0.0):
                raise CircuitValidityError(f"site {s} not vacated at load time", inst)
            new_ion = max(ion_free, default=-1) + 1
            occupant[s] = new_ion
            ion_free[new_ion] = t

        elif inst.name == "Move":
            if len(inst.sites) != 2:
                raise CircuitValidityError("Move takes exactly two qsites", inst)
            src, dst = inst.sites
            ion = occupant.get(src)
            if ion is None:
                raise CircuitValidityError(f"Move from unoccupied site {src}", inst)
            if ion_free.get(ion, 0.0) > t + _EPS:
                raise CircuitValidityError(
                    f"ion {ion} busy until {ion_free[ion]:.3f}, move starts at {t:.3f}", inst
                )
            if dst in occupant:
                raise CircuitValidityError(
                    f"Move into occupied site {dst} (ion {occupant[dst]})", inst
                )
            if t + _EPS < site_release.get(dst, 0.0):
                raise CircuitValidityError(
                    f"site {dst} not vacated until {site_release[dst]:.3f}", inst
                )
            if not grid.is_zone(dst) or not grid.is_zone(src):
                raise CircuitValidityError("moves must start and end on trapping zones", inst)
            junction = grid.junction_between(src, dst)
            if dst in grid.neighbors(src):
                if abs(dur - grid.move_us) > _EPS:
                    raise CircuitValidityError(
                        f"adjacent-zone move must take {grid.move_us} µs", inst
                    )
            elif junction is not None:
                if abs(dur - grid.junction_hop_us) > _EPS:
                    raise CircuitValidityError(
                        f"junction crossing must take {grid.junction_hop_us} µs", inst
                    )
                if t + _EPS < junction_free.get(junction, 0.0):
                    raise CircuitValidityError(
                        f"junction {junction} busy until {junction_free[junction]:.3f}", inst
                    )
                junction_free[junction] = t + dur
                report.n_junction_crossings += 1
                report.junctions_used.add(junction)
            else:
                raise CircuitValidityError(f"{src} -> {dst} is not a legal hop", inst)
            del occupant[src]
            occupant[dst] = ion
            site_release[src] = t + dur
            ion_free[ion] = t + dur
            report.n_moves += 1

        elif inst.name == "ZZ":
            if len(inst.sites) != 2:
                raise CircuitValidityError("ZZ takes exactly two qsites", inst)
            a, b = inst.sites
            if not grid.gate_adjacent(a, b):
                raise CircuitValidityError(f"ZZ between non-adjacent zones {a}, {b}", inst)
            for s in (a, b):
                ion = occupant.get(s)
                if ion is None:
                    raise CircuitValidityError(f"ZZ on unoccupied site {s}", inst)
                if ion_free.get(ion, 0.0) > t + _EPS:
                    raise CircuitValidityError(f"ion {ion} busy at {t:.3f}", inst)
            for s in (a, b):
                ion_free[occupant[s]] = t + dur

        else:  # single-site native operation
            if len(inst.sites) != 1:
                raise CircuitValidityError(f"{inst.name} takes exactly one qsite", inst)
            (s,) = inst.sites
            ion = occupant.get(s)
            if ion is None:
                raise CircuitValidityError(f"{inst.name} on unoccupied site {s}", inst)
            if ion_free.get(ion, 0.0) > t + _EPS:
                raise CircuitValidityError(f"ion {ion} busy at {t:.3f}", inst)
            ion_free[ion] = t + dur

        report.makespan = max(report.makespan, t + dur)

    report.final_occupancy = occupant
    return report


def _move_geometry(
    grid: GridManager, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Classify move hops: (is_adjacent_zone_hop, junction id or -1).

    Vectorized equivalent of ``dst in grid.neighbors(src)`` plus
    ``grid.junction_between(src, dst)``: adjacency is a unit Manhattan step
    between existing sites; junction crossings are resolved through the
    grid's flanking-pair lookup.
    """
    width = grid.width
    r0, c0 = np.divmod(src, width)
    r1, c1 = np.divmod(dst, width)
    manhattan = np.abs(r1 - r0) + np.abs(c1 - c0)
    zone = grid.zone_mask()
    # Unit steps between two zones are always between *existing* sites.
    adjacent = (manhattan == 1) & zone[src] & zone[dst]
    junction = np.full(len(src), -1, dtype=np.int64)
    # Junction resolution per *unique* hop pair: a circuit reuses the same
    # few corridor hops thousands of times.
    todo = np.nonzero(~adjacent)[0]
    if len(todo):
        pair = src[todo] * np.int64(grid.n_positions) + dst[todo]
        unique, inverse = np.unique(pair, return_inverse=True)
        resolved = np.empty(len(unique), dtype=np.int64)
        for k, p in enumerate(unique.tolist()):
            j = grid.junction_between(p // grid.n_positions, p % grid.n_positions)
            resolved[k] = -1 if j is None else j
        junction[todo] = resolved[inverse]
    return adjacent, junction


def check_circuit(
    grid: GridManager,
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
) -> ValidityReport:
    """Columnar validity replay; see :func:`check_circuit_reference`.

    Operates on :meth:`HardwareCircuit.sorted_columns`: all static checks
    and the busy/overlap sweeps are vectorized; only occupancy evolution
    (which ion is where) runs as a scalar loop over move/load rows.  On the
    first sign of trouble the reference checker re-runs the replay so the
    raised :class:`CircuitValidityError` is byte-identical to the original
    implementation's.
    """
    for site, ion in initial_occupancy.items():
        if not grid.is_zone(site):
            raise CircuitValidityError(f"initial occupancy places ion {ion} on junction {site}")
    if len(set(initial_occupancy.values())) != len(initial_occupancy):
        raise CircuitValidityError("initial occupancy maps two sites to the same ion")

    cols = circuit.sorted_columns()
    n = cols.n
    report = ValidityReport(final_occupancy=dict(initial_occupancy))
    if n == 0:
        return report

    site0, site1, nsites = cols.site0, cols.site1, cols.nsites
    t, dur = cols.t, cols.duration
    end = t + dur

    def fail() -> ValidityReport:
        # Re-run the reference replay: it raises the chronologically-first
        # violation with the exact legacy message.  (Returning its report
        # also covers the impossible false-positive case.)
        return check_circuit_reference(grid, circuit, initial_occupancy)

    if (site0 >= grid.n_positions).any() or (site1 >= grid.n_positions).any():
        return fail()

    codes = cols.codes

    def mask_of(name: str) -> np.ndarray:
        code = name_code(name)
        return codes == (np.int32(-1) if code is None else np.int32(code))

    is_move = mask_of("Move")
    is_load = mask_of("Load")
    is_zz = mask_of("ZZ")
    is_single = ~(is_move | is_load | is_zz)

    # --- arity and zone-membership checks (vectorized) -------------------
    if (
        (nsites[is_move | is_zz] != 2).any()
        or (nsites[is_load | is_single] != 1).any()
    ):
        return fail()
    zone = grid.zone_mask()
    if is_load.any() and not zone[site0[is_load]].all():
        return fail()
    if is_zz.any():
        a, b = site0[is_zz], site1[is_zz]
        r0, c0 = np.divmod(a, grid.width)
        r1, c1 = np.divmod(b, grid.width)
        gate_ok = (np.abs(r1 - r0) + np.abs(c1 - c0) == 1) & zone[a] & zone[b]
        if not gate_ok.all():
            return fail()

    # --- move legality: zones, single hops, exact durations --------------
    move_idx = np.nonzero(is_move)[0]
    junction_ids = np.empty(0, dtype=np.int64)
    if len(move_idx):
        src, dst = site0[move_idx], site1[move_idx]
        if not (zone[src] & zone[dst]).all():
            return fail()
        adjacent, junction = _move_geometry(grid, src, dst)
        crossing = junction >= 0
        if not (adjacent | crossing).all():
            return fail()
        if (np.abs(dur[move_idx[adjacent]] - grid.move_us) > _EPS).any():
            return fail()
        if (np.abs(dur[move_idx[crossing]] - grid.junction_hop_us) > _EPS).any():
            return fail()
        junction_ids = junction[crossing]
        # Junction exclusivity: within each junction's crossings (already in
        # time order), each must start after the previous one ended.
        cross_rows = move_idx[crossing]
        order = np.argsort(junction_ids, kind="stable")
        jt, je = t[cross_rows][order], end[cross_rows][order]
        same = junction_ids[order][1:] == junction_ids[order][:-1]
        if (same & (jt[1:] + _EPS < je[:-1])).any():
            return fail()

    # --- per-site event sweep (fully vectorized) -------------------------
    # Flatten the replay into one entry stream: every row contributes an
    # operation interval at each site it touches; Move rows additionally
    # open an occupancy episode at the destination and close one at the
    # source, Loads open one, and the initial occupancy seeds an episode
    # per occupied site.  Grouped by site and swept in execution order,
    # three segmented passes reproduce every dynamic constraint of the
    # reference replay:
    #
    # * interval chaining -- an entry may not start before the previous
    #   entry at its site ended.  Within an episode that is exactly the
    #   per-ion busy rule (an ion parked at a site does nothing anywhere
    #   else, and the moves that carry it between sites appear in both
    #   sites' streams); across episodes it is the site-vacancy rule.
    # * episode alternation -- a running (+1 arrival, -1 departure) count
    #   catches moves/loads onto occupied sites, moves from empty sites,
    #   and operations on unoccupied sites.
    # * ion identity -- each move-arrival's ion is the ion of the episode
    #   its source-departure closed; resolved for all chains at once by
    #   pointer doubling over the governing-arrival links.
    move_rows = np.nonzero(is_move)[0]
    load_rows = np.nonzero(is_load)[0]
    zz_rows = np.nonzero(is_zz)[0]
    op_rows = np.nonzero(is_single | is_zz)[0]
    n_init, n_load, n_move = len(initial_occupancy), len(load_rows), len(move_rows)
    n_op = len(op_rows)
    init_sites = np.fromiter(initial_occupancy, dtype=np.int64, count=n_init)

    # Entry stream: [initial | load-arrivals | move-departures |
    #               move-arrivals | op intervals (gates/preps/measures,
    #               ZZ at both sites)].  Moves and Loads already carry
    #               their busy interval on their episode entries.
    e_site = np.concatenate(
        [init_sites, site0[load_rows], site0[move_rows], site1[move_rows],
         site0[op_rows], site1[zz_rows]]
    )
    # Execution position per entry; the initial occupancy precedes row 0.
    # A row touches each site at most once, so (site, order) is unique and
    # entries at one site sort into exact replay order.
    e_order = np.concatenate(
        [np.full(n_init, -1, dtype=np.int64), load_rows, move_rows, move_rows,
         op_rows, zz_rows]
    )
    e_t = np.concatenate(
        [np.full(n_init, -np.inf), t[load_rows], t[move_rows], t[move_rows],
         t[op_rows], t[zz_rows]]
    )
    e_end = np.concatenate(
        [np.zeros(n_init), t[load_rows], end[move_rows], end[move_rows],
         end[op_rows], end[zz_rows]]
    )
    # +1 opens an episode, -1 closes one, 0 is a plain operation interval.
    e_delta = np.concatenate(
        [np.ones(n_init, dtype=np.int8),
         np.ones(n_load, dtype=np.int8),
         np.full(n_move, -1, dtype=np.int8),
         np.ones(n_move, dtype=np.int8),
         np.zeros(n_op + len(zz_rows), dtype=np.int8)]
    )
    # Arrival-event ids: [0, n_init) initial, then loads, then move dsts.
    n_events = n_init + n_load + n_move
    e_event = np.full(len(e_site), -1, dtype=np.int64)
    e_event[:n_init] = np.arange(n_init)
    e_event[n_init : n_init + n_load] = n_init + np.arange(n_load)
    arr0 = n_init + n_load + n_move
    e_event[arr0 : arr0 + n_move] = n_init + n_load + np.arange(n_move)

    # (site, order) pairs are unique, so a single fused int64 key sorts the
    # stream with one argsort pass.
    order = np.argsort(e_site * np.int64(n + 2) + (e_order + 1))
    s_site = e_site[order]
    s_t = e_t[order]
    s_end = e_end[order]
    s_delta = e_delta[order]
    s_event = e_event[order]

    same_site = s_site[1:] == s_site[:-1]
    # Interval chaining: busy-ion and site-vacancy violations in one test.
    if (same_site & (s_t[1:] + _EPS < s_end[:-1])).any():
        return fail()
    # Episode alternation via a segmented running occupancy count.
    new_group = np.r_[True, ~same_site]
    grp_id = np.cumsum(new_group) - 1
    csum = np.cumsum(s_delta)
    base = (csum - s_delta)[new_group]
    count = csum - base[grp_id]
    if count.min() < 0 or count.max() > 1:
        return fail()
    if ((s_delta == 0) & (count == 0)).any():
        return fail()

    # Governing arrival per position: segmented running max of arrival
    # positions (the additive group offset keeps maxima from leaking
    # across site groups).
    big = np.int64(len(s_site) + 2)
    pos = np.arange(len(s_site), dtype=np.int64)
    marked = np.where(s_event >= 0, pos, np.int64(-1))
    gov_pos = np.maximum.accumulate(marked + grp_id * big) - grp_id * big

    # Ion identity by pointer doubling: a move-arrival's parent is the
    # arrival governing its source departure (alternation above guarantees
    # it exists); initial and Load events are the chain roots.
    entry_pos = np.empty(len(s_site), dtype=np.int64)
    entry_pos[order] = pos  # original entry index -> sorted position
    dep0 = n_init + n_load
    dep_positions = entry_pos[dep0 : dep0 + n_move]
    parent = np.arange(n_events, dtype=np.int64)
    parent[n_init + n_load :] = s_event[gov_pos[dep_positions]]
    while True:
        hop = parent[parent]
        if np.array_equal(hop, parent):
            break
        parent = hop
    event_ion = np.empty(n_events, dtype=np.int64)
    event_ion[:n_init] = np.fromiter(
        initial_occupancy.values(), dtype=np.int64, count=n_init
    )
    # Loads allocate ids above every id seen so far, in execution order.
    max_ion = int(event_ion[:n_init].max()) if n_init else -1
    event_ion[n_init : n_init + n_load] = max_ion + 1 + np.arange(n_load)
    event_ion = event_ion[parent]

    # Final occupancy: a site group whose last entry leaves the running
    # count at 1 still holds the ion of its governing arrival.
    group_last = np.r_[~same_site, True]
    occupant: dict[int, int] = {}
    for p in np.nonzero(group_last & (count == 1))[0].tolist():
        occupant[int(s_site[p])] = int(event_ion[s_event[gov_pos[p]]])

    # --- report ----------------------------------------------------------
    report.n_instructions = n
    report.n_moves = int(len(move_idx))
    report.n_junction_crossings = int(len(junction_ids))
    report.junctions_used = set(np.unique(junction_ids).tolist())
    report.sites_used = circuit.used_sites()  # cached, shared with §3.4
    report.final_occupancy = occupant
    report.makespan = float(end.max())
    return report
