"""Independent hardware-circuit validity checking (paper §3.3).

"In TISCC, we implement basic hardware validity checks such as that two
qubits do not move through the same junction at the same time, and that two
qubits do not occupy the same site at the same time."

:func:`check_circuit` replays a compiled, time-resolved circuit against an
initial site occupancy and raises :class:`CircuitValidityError` on the first
violation.  It is deliberately independent of the scheduling logic in
:class:`~repro.hardware.grid.GridManager` so that it can double-check any
compiled circuit, exactly as ORQCS re-models the hardware on its side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.circuit import HardwareCircuit, Instruction
from repro.hardware.grid import GridManager, JUNCTION_HOP_US, MOVE_US

__all__ = ["CircuitValidityError", "ValidityReport", "check_circuit"]

_EPS = 1e-9


class CircuitValidityError(RuntimeError):
    """A hardware circuit violates an occupancy/movement/timing constraint."""

    def __init__(self, message: str, instruction: Instruction | None = None):
        if instruction is not None:
            message = f"{message} (at {instruction.to_text()!r})"
        super().__init__(message)
        self.instruction = instruction


@dataclass
class ValidityReport:
    """Summary statistics from a successful validity replay."""

    n_instructions: int = 0
    n_moves: int = 0
    n_junction_crossings: int = 0
    junctions_used: set[int] = field(default_factory=set)
    sites_used: set[int] = field(default_factory=set)
    final_occupancy: dict[int, int] = field(default_factory=dict)
    makespan: float = 0.0


def check_circuit(
    grid: GridManager,
    circuit: HardwareCircuit,
    initial_occupancy: dict[int, int],
) -> ValidityReport:
    """Replay ``circuit`` from ``initial_occupancy`` (site -> ion).

    Verifies, instruction by instruction in time order:

    * moves are single hops between adjacent zones (5.25 µs) or junction
      crossings between the two zones flanking one junction (210 µs);
    * an ion never starts an operation before its previous one finished;
    * a move's destination has been fully vacated before the transit begins;
    * no two ions cross the same junction at overlapping times;
    * gates/preps/measurements act on occupied zones, with ZZ requiring
      lattice adjacency.
    """
    occupant: dict[int, int] = dict(initial_occupancy)
    site_release: dict[int, float] = {}
    ion_free: dict[int, float] = {ion: 0.0 for ion in occupant.values()}
    junction_free: dict[int, float] = {}
    report = ValidityReport(final_occupancy=occupant)

    for site, ion in occupant.items():
        if not grid.is_zone(site):
            raise CircuitValidityError(f"initial occupancy places ion {ion} on junction {site}")
    if len(set(occupant.values())) != len(occupant):
        raise CircuitValidityError("initial occupancy maps two sites to the same ion")

    for inst in circuit.sorted_instructions():
        report.n_instructions += 1
        report.sites_used.update(inst.sites)
        t, dur = inst.t, inst.duration

        if inst.name == "Load":
            (s,) = inst.sites
            if s in occupant:
                raise CircuitValidityError(f"Load onto occupied site {s}", inst)
            if not grid.is_zone(s):
                raise CircuitValidityError("ions load onto trapping zones only", inst)
            if t + _EPS < site_release.get(s, 0.0):
                raise CircuitValidityError(f"site {s} not vacated at load time", inst)
            new_ion = max(ion_free, default=-1) + 1
            occupant[s] = new_ion
            ion_free[new_ion] = t

        elif inst.name == "Move":
            if len(inst.sites) != 2:
                raise CircuitValidityError("Move takes exactly two qsites", inst)
            src, dst = inst.sites
            ion = occupant.get(src)
            if ion is None:
                raise CircuitValidityError(f"Move from unoccupied site {src}", inst)
            if ion_free.get(ion, 0.0) > t + _EPS:
                raise CircuitValidityError(
                    f"ion {ion} busy until {ion_free[ion]:.3f}, move starts at {t:.3f}", inst
                )
            if dst in occupant:
                raise CircuitValidityError(
                    f"Move into occupied site {dst} (ion {occupant[dst]})", inst
                )
            if t + _EPS < site_release.get(dst, 0.0):
                raise CircuitValidityError(
                    f"site {dst} not vacated until {site_release[dst]:.3f}", inst
                )
            if not grid.is_zone(dst) or not grid.is_zone(src):
                raise CircuitValidityError("moves must start and end on trapping zones", inst)
            junction = grid.junction_between(src, dst)
            if dst in grid.neighbors(src):
                if abs(dur - MOVE_US) > _EPS:
                    raise CircuitValidityError(f"adjacent-zone move must take {MOVE_US} µs", inst)
            elif junction is not None:
                if abs(dur - JUNCTION_HOP_US) > _EPS:
                    raise CircuitValidityError(
                        f"junction crossing must take {JUNCTION_HOP_US} µs", inst
                    )
                if t + _EPS < junction_free.get(junction, 0.0):
                    raise CircuitValidityError(
                        f"junction {junction} busy until {junction_free[junction]:.3f}", inst
                    )
                junction_free[junction] = t + dur
                report.n_junction_crossings += 1
                report.junctions_used.add(junction)
            else:
                raise CircuitValidityError(f"{src} -> {dst} is not a legal hop", inst)
            del occupant[src]
            occupant[dst] = ion
            site_release[src] = t + dur
            ion_free[ion] = t + dur
            report.n_moves += 1

        elif inst.name == "ZZ":
            if len(inst.sites) != 2:
                raise CircuitValidityError("ZZ takes exactly two qsites", inst)
            a, b = inst.sites
            if not grid.gate_adjacent(a, b):
                raise CircuitValidityError(f"ZZ between non-adjacent zones {a}, {b}", inst)
            for s in (a, b):
                ion = occupant.get(s)
                if ion is None:
                    raise CircuitValidityError(f"ZZ on unoccupied site {s}", inst)
                if ion_free.get(ion, 0.0) > t + _EPS:
                    raise CircuitValidityError(f"ion {ion} busy at {t:.3f}", inst)
            for s in (a, b):
                ion_free[occupant[s]] = t + dur

        else:  # single-site native operation
            if len(inst.sites) != 1:
                raise CircuitValidityError(f"{inst.name} takes exactly one qsite", inst)
            (s,) = inst.sites
            ion = occupant.get(s)
            if ion is None:
                raise CircuitValidityError(f"{inst.name} on unoccupied site {s}", inst)
            if ion_free.get(ion, 0.0) > t + _EPS:
                raise CircuitValidityError(f"ion {ion} busy at {t:.3f}", inst)
            ion_free[ion] = t + dur

        report.makespan = max(report.makespan, t + dur)

    report.final_occupancy = occupant
    return report
