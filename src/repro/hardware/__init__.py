"""Trapped-ion hardware substrate.

Implements the paper's §3: the M/O/J grid of trapping zones
(:class:`~repro.hardware.grid.GridManager`), the native gate set and timing
model (:class:`~repro.hardware.model.HardwareModel`, Table 5), time-resolved
hardware circuits (:class:`~repro.hardware.circuit.HardwareCircuit`),
movement-validity checking with junction-conflict resolution
(:mod:`repro.hardware.validity`), and space-time resource accounting
(:mod:`repro.hardware.resources`).
"""

from repro.hardware.circuit import HardwareCircuit, Instruction
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel, GATE_TIMES_US
from repro.hardware.resources import ResourceReport, estimate_resources
from repro.hardware.validity import CircuitValidityError, check_circuit

__all__ = [
    "HardwareCircuit",
    "Instruction",
    "GridManager",
    "HardwareModel",
    "GATE_TIMES_US",
    "ResourceReport",
    "estimate_resources",
    "CircuitValidityError",
    "check_circuit",
]
