"""Trapped-ion hardware substrate.

Implements the paper's §3: the M/O/J grid of trapping zones
(:class:`~repro.hardware.grid.GridManager`), the native gate set and timing
model (:class:`~repro.hardware.model.HardwareModel`, Table 5), time-resolved
hardware circuits (:class:`~repro.hardware.circuit.HardwareCircuit`),
movement-validity checking with junction-conflict resolution
(:mod:`repro.hardware.validity`), space-time resource accounting
(:mod:`repro.hardware.resources`), and SIMD beam-pass rescheduling
(:mod:`repro.hardware.simd`).  All calibration constants are views of
a declarative, fingerprinted :class:`~repro.hardware.profile.HardwareProfile`
(:mod:`repro.hardware.profile`; shipped calibrations under ``profiles/``).
"""

from repro.hardware.circuit import HardwareCircuit, Instruction
from repro.hardware.grid import GridManager, grid_for_patch
from repro.hardware.model import HardwareModel, GATE_TIMES_US
from repro.hardware.profile import (
    DEFAULT_PROFILE,
    HardwareProfile,
    ProfileError,
    available_profiles,
    get_profile,
    register_profile,
)
from repro.hardware.resources import ResourceReport, estimate_resources
from repro.hardware.simd import SimdReport, baseline_beam_passes, simd_schedule
from repro.hardware.validity import CircuitValidityError, check_circuit

__all__ = [
    "HardwareCircuit",
    "Instruction",
    "GridManager",
    "grid_for_patch",
    "HardwareModel",
    "GATE_TIMES_US",
    "HardwareProfile",
    "ProfileError",
    "DEFAULT_PROFILE",
    "get_profile",
    "register_profile",
    "available_profiles",
    "ResourceReport",
    "estimate_resources",
    "SimdReport",
    "simd_schedule",
    "baseline_beam_passes",
    "CircuitValidityError",
    "check_circuit",
]
