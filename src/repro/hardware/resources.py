"""Space-time resource estimation for compiled circuits (paper §3.4).

"Using the master hardware circuit for a given operation, resources such as
grid area (in m^2), computation time (in s), space-time volume (s * m^2),
number of trapping zones, trapping zone-seconds, and active trapping
zone-seconds are calculated."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager

__all__ = ["ResourceReport", "estimate_resources"]


@dataclass(frozen=True)
class ResourceReport:
    """Resource accounting for one compiled surface-code operation."""

    operation: str
    dx: int
    dz: int
    #: Wall-clock execution time of the time-resolved circuit, seconds.
    computation_time_s: float
    #: Physical bounding-box area of the sites touched, m^2.
    grid_area_m2: float
    #: computation_time_s * grid_area_m2.
    spacetime_volume_s_m2: float
    #: Trapping zones inside the bounding box.
    n_trapping_zones: int
    #: n_trapping_zones * computation_time_s.
    zone_seconds: float
    #: Sum over instructions of duration * (sites involved): zones actively in use.
    active_zone_seconds: float
    #: Total native instruction count.
    n_instructions: int
    #: Per-gate-name instruction counts.
    gate_histogram: dict[str, int]
    #: Name of the hardware profile the circuit was compiled under.
    profile: str = "baseline"
    #: Laser beam passes the schedule needs (None: SIMD scheduling off).
    beam_passes: int | None = None
    #: Mean SIMD group width over the effective beam capacity (None: off).
    simd_utilization: float | None = None

    ROW_FIELDS = (
        "operation",
        "dx",
        "dz",
        "computation_time_s",
        "grid_area_m2",
        "spacetime_volume_s_m2",
        "n_trapping_zones",
        "zone_seconds",
        "active_zone_seconds",
        "n_instructions",
    )

    def row(self, with_profile: bool = False, with_simd: bool = False) -> str:
        prefix = f"{self.profile:<16} " if with_profile else ""
        suffix = ""
        if with_simd:
            passes = "-" if self.beam_passes is None else str(self.beam_passes)
            util = "-" if self.simd_utilization is None else f"{self.simd_utilization:.3f}"
            suffix = f" {passes:>11} {util:>9}"
        return prefix + (
            f"{self.operation:<22} {self.dx:>3} {self.dz:>3} "
            f"{self.computation_time_s:>12.6f} {self.grid_area_m2:>12.4e} "
            f"{self.spacetime_volume_s_m2:>14.4e} {self.n_trapping_zones:>6} "
            f"{self.zone_seconds:>12.6f} {self.active_zone_seconds:>14.6f} "
            f"{self.n_instructions:>8}"
        ) + suffix

    @staticmethod
    def header(with_profile: bool = False, with_simd: bool = False) -> str:
        prefix = f"{'profile':<16} " if with_profile else ""
        suffix = f" {'beam_passes':>11} {'simd_util':>9}" if with_simd else ""
        return prefix + (
            f"{'operation':<22} {'dx':>3} {'dz':>3} {'time_s':>12} {'area_m2':>12} "
            f"{'volume_s_m2':>14} {'zones':>6} {'zone_s':>12} {'active_zone_s':>14} "
            f"{'n_instr':>8}"
        ) + suffix

    def to_dict(self) -> dict:
        """JSON-friendly form (checkpoint payloads, benchmark artifacts).

        Resource estimation is fully deterministic, so the round trip
        through :meth:`from_dict` is exact — the sharded sweep layer relies
        on cached resource payloads being bit-identical to fresh compiles.
        """
        import dataclasses

        out = dataclasses.asdict(self)
        # SIMD columns appear only when the scheduler ran, so pre-SIMD
        # checkpoint payloads (and their content fingerprints) are unchanged.
        if self.beam_passes is None:
            del out["beam_passes"]
            del out["simd_utilization"]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ResourceReport":
        """Rebuild a report from a :meth:`to_dict` payload."""
        import dataclasses

        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def estimate_resources(
    grid: GridManager,
    circuit: HardwareCircuit,
    operation: str = "",
    dx: int = 0,
    dz: int = 0,
    simd_report=None,
) -> ResourceReport:
    """Compute the §3.4 resource figures from a time-resolved circuit.

    Everything is reduced directly from the circuit's columns: the time
    span and active zone-seconds are array reductions, the bounding box
    comes from vectorized site-coordinate min/max, the zone count from the
    grid's cached zone mask, and the gate histogram from a ``bincount``
    over the interned gate codes.
    """
    cols = circuit.columns()
    if cols.n:
        time_s = float((cols.t + cols.duration).max() - cols.t.min()) * 1e-6
    else:
        time_s = 0.0

    pitch_m = grid.profile.zone_pitch_m
    sites = np.fromiter(circuit.used_sites(), dtype=np.int64, count=-1)
    if len(sites):
        r, c = np.divmod(sites, grid.width)
        r0, r1 = int(r.min()), int(r.max())
        c0, c1 = int(c.min()), int(c.max())
        area = ((r1 - r0 + 1) * pitch_m) * ((c1 - c0 + 1) * pitch_m)
        zone_grid = grid.zone_mask().reshape(grid.height, grid.width)
        zones = int(zone_grid[r0 : r1 + 1, c0 : c1 + 1].sum())
    else:
        area = 0.0
        zones = 0

    active = float((cols.duration * cols.nsites).sum()) * 1e-6

    return ResourceReport(
        operation=operation,
        dx=dx,
        dz=dz,
        computation_time_s=time_s,
        grid_area_m2=area,
        spacetime_volume_s_m2=time_s * area,
        n_trapping_zones=zones,
        zone_seconds=zones * time_s,
        active_zone_seconds=active,
        n_instructions=cols.n,
        gate_histogram=circuit.gate_histogram(),
        profile=grid.profile.name,
        beam_passes=None if simd_report is None else simd_report.beam_passes,
        simd_utilization=None if simd_report is None else simd_report.utilization,
    )
