"""Declarative hardware profiles: one object holds a whole trap scenario.

A :class:`HardwareProfile` bundles everything the compiler, noise model,
and estimator previously read from scattered module constants — the grid
unit topology and zone pitch (§3.1), transport durations (``Move``,
junction crossings, §3.2), the full native gate-time table (Table 5), and
the named noise presets — into one frozen, validated, content-addressed
value.  The profile is the single source of truth: ``GridManager``,
``HardwareModel``, ``NoiseModel.preset``, ``TISCC``, ``MemoryExperiment``,
and the sweep layer all take one, and the legacy module constants
(``GATE_TIMES_US``, ``MOVE_US``, ``JUNCTION_HOP_US``, ``NOISE_PRESETS``)
remain as views of :data:`DEFAULT_PROFILE`.

Profiles load from TOML or JSON files (:meth:`HardwareProfile.load`) or
resolve by registered name (:func:`get_profile`); three ship with the
package (``baseline``, ``slow_junction``, ``fast_projected``) under
:data:`PROFILE_DIR`.  Because scenario comparisons are only meaningful
when results can never be cross-contaminated, every compile/DEM/decoder/
sweep cache key incorporates :attr:`HardwareProfile.fingerprint` — a
SHA-256 over the physical content of the profile (names and descriptions
are cosmetic and excluded), so two profiles differing in a single gate
time can never share a cached artifact, while a renamed-but-identical
profile hits the same entries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from functools import cached_property
from pathlib import Path
from typing import Mapping

__all__ = [
    "HardwareProfile",
    "ProfileError",
    "DEFAULT_PROFILE",
    "PROFILE_DIR",
    "REQUIRED_GATES",
    "SIMD_MODES",
    "get_profile",
    "register_profile",
    "available_profiles",
]


class ProfileError(ValueError):
    """A hardware profile failed to load or validate (one-line message)."""


#: Directory of profile files shipped with the package.
PROFILE_DIR = Path(__file__).parent / "profiles"

#: Gate names every profile's time table must price (the compiler emits
#: exactly these; transport is priced by ``move_us``/``junction_us``).
REQUIRED_GATES: tuple[str, ...] = (
    "Prepare_Z",
    "Measure_Z",
    "X_pi/2",
    "X_pi/4",
    "X_-pi/4",
    "Y_pi/2",
    "Y_pi/4",
    "Y_-pi/4",
    "Z_pi/2",
    "Z_pi/4",
    "Z_-pi/4",
    "Z_pi/8",
    "Z_-pi/8",
    "ZZ",
)

#: Grid topologies the geometry layer implements.
SUPPORTED_TOPOLOGIES: tuple[str, ...] = ("2d_junction",)

#: Beam timing disciplines the SIMD scheduler implements
#: (see :mod:`repro.hardware.simd`).
SIMD_MODES: tuple[str, ...] = ("site_parallel", "pass_serial")

#: Field order of one noise preset's canonical tuple form.
_NOISE_FIELDS: tuple[str, ...] = ("p1", "p2", "p_prep", "p_meas", "t2_us")

_BASELINE_GATE_TIMES: tuple[tuple[str, float], ...] = (
    ("Measure_Z", 120.0),
    ("Prepare_Z", 10.0),
    ("X_-pi/4", 10.0),
    ("X_pi/2", 10.0),
    ("X_pi/4", 10.0),
    ("Y_-pi/4", 10.0),
    ("Y_pi/2", 10.0),
    ("Y_pi/4", 10.0),
    ("ZZ", 2000.0),
    ("Z_-pi/4", 3.0),
    ("Z_-pi/8", 3.0),
    ("Z_pi/2", 3.0),
    ("Z_pi/4", 3.0),
    ("Z_pi/8", 3.0),
)

_BASELINE_PRESETS: tuple[tuple[str, tuple[tuple[str, float | None], ...]], ...] = (
    (
        "ideal",
        (("p1", 0.0), ("p2", 0.0), ("p_prep", 0.0), ("p_meas", 0.0), ("t2_us", None)),
    ),
    (
        "near_term",
        (("p1", 2e-4), ("p2", 2e-3), ("p_prep", 2e-3), ("p_meas", 3e-3), ("t2_us", 2e6)),
    ),
    (
        "projected",
        (("p1", 1e-5), ("p2", 2e-4), ("p_prep", 2e-4), ("p_meas", 3e-4), ("t2_us", 2e7)),
    ),
)


def _freeze_gate_times(table: Mapping[str, float]) -> tuple[tuple[str, float], ...]:
    return tuple(sorted((str(k), float(v)) for k, v in dict(table).items()))


def _freeze_presets(presets) -> tuple:
    frozen = []
    for name in sorted(dict(presets)):
        values = dict(dict(presets)[name])
        unknown = sorted(set(values) - set(_NOISE_FIELDS))
        if unknown:
            raise ProfileError(
                f"noise preset {name!r} has unknown parameter(s) {unknown}; "
                f"allowed: {list(_NOISE_FIELDS)}"
            )
        row = tuple(
            (f, None if values.get(f) is None else float(values.get(f, 0.0)))
            for f in _NOISE_FIELDS
        )
        frozen.append((str(name), row))
    return tuple(frozen)


@dataclass(frozen=True)
class HardwareProfile:
    """One declarative trapped-ion hardware scenario (frozen, hashable).

    ``gate_times_us`` and ``noise_presets`` accept plain mappings and are
    canonicalized to sorted tuples, so profiles compare, hash, and pickle
    by value — a :class:`HardwareProfile` can sit inside a frozen
    ``SweepCell`` and travel to pool workers unchanged.

    ``name``/``description`` are cosmetic: they never enter
    :attr:`fingerprint`, so renaming a profile cannot invalidate (or,
    worse, alias) cached results.
    """

    name: str = "baseline"
    description: str = ""
    #: Grid unit topology; only the §3.1 ``{M, O, M, J, M, O, M}`` 2D
    #: junction tiling is implemented today, but the knob is validated so a
    #: file written for a future topology fails loudly, not silently.
    topology: str = "2d_junction"
    #: Trapping-zone pitch in µm (§3.2: 420 µm) — drives grid area.
    zone_pitch_um: float = 420.0
    #: Zone-to-zone transport duration in µs.
    move_us: float = 5.25
    #: One junction operation in µs; a crossing costs two (§3.2).
    junction_us: float = 105.0
    gate_times_us: tuple[tuple[str, float], ...] = _BASELINE_GATE_TIMES
    noise_presets: tuple = _BASELINE_PRESETS
    #: SIMD beam capacity: max gates per beam pass (0 = unlimited width).
    simd_width: int = 0
    #: Per-beam-pass setup overhead in µs (calibration, beam steering).
    simd_pass_overhead_us: float = 0.0
    #: Beam timing discipline: ``site_parallel`` (passes on disjoint sites
    #: overlap freely) or ``pass_serial`` (one global beam serializes all
    #: passes — beam-pass-limited hardware).
    simd_mode: str = "site_parallel"
    #: Extra free-form metadata (citation, calibration date); not fingerprinted.
    meta: tuple[tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.gate_times_us, tuple):
            object.__setattr__(self, "gate_times_us", _freeze_gate_times(self.gate_times_us))
        if not isinstance(self.noise_presets, tuple):
            object.__setattr__(self, "noise_presets", _freeze_presets(self.noise_presets))
        if not isinstance(self.meta, tuple):
            object.__setattr__(
                self, "meta", tuple(sorted((str(k), str(v)) for k, v in dict(self.meta).items()))
            )
        self.validate()

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`ProfileError` with a one-line message on any defect."""
        if not self.name:
            raise ProfileError("profile name must be a non-empty string")
        if self.topology not in SUPPORTED_TOPOLOGIES:
            raise ProfileError(
                f"unsupported topology {self.topology!r}; "
                f"implemented: {list(SUPPORTED_TOPOLOGIES)}"
            )
        for knob in ("zone_pitch_um", "move_us", "junction_us"):
            v = getattr(self, knob)
            if not isinstance(v, (int, float)) or not v > 0 or v != v:
                raise ProfileError(f"{knob}={v!r} must be a positive number")
        table = dict(self.gate_times_us)
        for reserved in ("Move", "Junction", "Load"):
            if reserved in table:
                raise ProfileError(
                    f"gate_times_us may not contain {reserved!r}; transport is "
                    "priced by move_us/junction_us (Load is instantaneous)"
                )
        missing = [g for g in REQUIRED_GATES if g not in table]
        if missing:
            raise ProfileError(f"gate_times_us is missing required gate(s) {missing}")
        for gate, dur in table.items():
            if not dur > 0 or dur != dur:
                raise ProfileError(f"gate_times_us[{gate!r}]={dur!r} must be a positive duration")
        if (
            isinstance(self.simd_width, bool)
            or not isinstance(self.simd_width, int)
            or self.simd_width < 0
        ):
            raise ProfileError(
                f"simd_width={self.simd_width!r} must be an integer >= 0 (0 = unlimited)"
            )
        ov = self.simd_pass_overhead_us
        if not isinstance(ov, (int, float)) or not (ov >= 0) or ov != ov or ov == float("inf"):
            raise ProfileError(
                f"simd_pass_overhead_us={ov!r} must be a finite number >= 0"
            )
        if self.simd_mode not in SIMD_MODES:
            raise ProfileError(
                f"simd_mode={self.simd_mode!r} must be one of {list(SIMD_MODES)}"
            )
        for preset, row in self.noise_presets:
            for fname, v in row:
                if fname == "t2_us":
                    if v is not None and not v > 0:
                        raise ProfileError(
                            f"noise preset {preset!r}: t2_us={v!r} must be positive (or omitted)"
                        )
                elif not (isinstance(v, (int, float)) and 0.0 <= v <= 1.0):
                    raise ProfileError(
                        f"noise preset {preset!r}: {fname}={v!r} is not a probability"
                    )

    # ------------------------------------------------------------ derived
    @property
    def junction_hop_us(self) -> float:
        """Duration of one junction crossing: two junction operations."""
        return 2.0 * self.junction_us

    @property
    def zone_pitch_m(self) -> float:
        return self.zone_pitch_um * 1e-6

    @cached_property
    def gate_times(self) -> dict[str, float]:
        """Full duration table including transport — treat as read-only.

        Keyed exactly like the legacy ``GATE_TIMES_US`` constant:
        the declared gates plus ``Move`` and ``Junction``.
        """
        table = dict(self.gate_times_us)
        table["Move"] = self.move_us
        table["Junction"] = self.junction_us
        return table

    @cached_property
    def native_gates(self) -> frozenset[str]:
        """Names that may appear in compiled circuit output."""
        return frozenset(dict(self.gate_times_us)) | {"Move"}

    @property
    def preset_names(self) -> list[str]:
        return [name for name, _ in self.noise_presets]

    def preset_params(self, name: str) -> dict[str, float | None]:
        """Parameter dict of one named noise preset (for ``NoiseParams``)."""
        for preset, row in self.noise_presets:
            if preset == name:
                return dict(row)
        raise ProfileError(
            f"profile {self.name!r} has no noise preset {name!r}; "
            f"available: {self.preset_names}"
        )

    # ------------------------------------------------------------ identity
    @cached_property
    def fingerprint(self) -> str:
        """SHA-256 of the profile's physical content (not its name).

        This string joins every compile/DEM/decoder/sweep cache key, so two
        profiles differing in any physical value can never share a cached
        artifact, while renamed-but-identical profiles do.
        """
        payload = {
            "topology": self.topology,
            "zone_pitch_um": self.zone_pitch_um,
            "move_us": self.move_us,
            "junction_us": self.junction_us,
            "gate_times_us": list(self.gate_times_us),
            "noise_presets": [[name, list(row)] for name, row in self.noise_presets],
        }
        # Appended only when non-default (PR 7/8 pattern): profiles written
        # before SIMD scheduling existed keep their fingerprints, so every
        # pre-existing checkpoint and content-addressed cache entry stays
        # valid.
        if self._simd_nondefault():
            payload["simd"] = {
                "width": self.simd_width,
                "pass_overhead_us": self.simd_pass_overhead_us,
                "mode": self.simd_mode,
            }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _simd_nondefault(self) -> bool:
        return bool(
            self.simd_width
            or self.simd_pass_overhead_us
            or self.simd_mode != "site_parallel"
        )

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """JSON/TOML-friendly form; :meth:`from_dict` is the exact inverse."""
        out: dict = {
            "name": self.name,
            "description": self.description,
            "topology": self.topology,
            "zone_pitch_um": self.zone_pitch_um,
            "move_us": self.move_us,
            "junction_us": self.junction_us,
            "gate_times_us": dict(self.gate_times_us),
            "noise_presets": {
                name: {f: v for f, v in row if v is not None}
                for name, row in self.noise_presets
            },
        }
        if self._simd_nondefault():
            out["simd_width"] = self.simd_width
            out["simd_pass_overhead_us"] = self.simd_pass_overhead_us
            out["simd_mode"] = self.simd_mode
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping, name: str | None = None) -> "HardwareProfile":
        """Build and validate a profile from a parsed TOML/JSON document.

        Unknown top-level keys are rejected with a one-line error — a typo
        like ``juction_us`` must not silently fall back to the default.
        """
        if not isinstance(payload, Mapping):
            raise ProfileError(f"profile document must be a table/object, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProfileError(
                f"unknown profile key(s) {unknown}; allowed: {sorted(known)}"
            )
        data = dict(payload)
        if name is not None:
            data.setdefault("name", name)
        try:
            return cls(**data)
        except TypeError as err:
            raise ProfileError(f"bad profile document: {err}") from None

    @classmethod
    def load(cls, path: str | Path) -> "HardwareProfile":
        """Load a profile from a ``.toml`` or ``.json`` file.

        The file's ``name`` key wins; otherwise the file stem names the
        profile.  Every load re-validates, so a hand-edited file fails with
        a one-line :class:`ProfileError`, never a deep traceback.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as err:
            raise ProfileError(f"cannot read profile file {path}: {err}") from None
        if path.suffix.lower() == ".json":
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as err:
                raise ProfileError(f"{path} is not valid JSON: {err}") from None
        else:
            payload = _parse_toml(text, path)
        return cls.from_dict(payload, name=path.stem)

    def dumps(self) -> str:
        """Canonical JSON text of :meth:`to_dict` (loadable by :meth:`load`)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def dump(self, path: str | Path) -> Path:
        """Write the profile as JSON (the stdlib cannot emit TOML)."""
        path = Path(path)
        path.write_text(self.dumps())
        return path

    def renamed(self, name: str, description: str | None = None) -> "HardwareProfile":
        """Cosmetic copy under a new name — same :attr:`fingerprint`."""
        return replace(
            self, name=name, description=self.description if description is None else description
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HardwareProfile {self.name!r} move={self.move_us:g}us "
            f"junction_hop={self.junction_hop_us:g}us ZZ={self.gate_times['ZZ']:g}us "
            f"presets={self.preset_names} fp={self.fingerprint[:12]}>"
        )


# --------------------------------------------------------------- TOML input
def _parse_toml(text: str, path: Path) -> dict:
    """Parse TOML via stdlib ``tomllib``, or a minimal fallback on 3.10.

    The fallback accepts the subset profile files actually use — dotted
    ``[table.subtable]`` headers, quoted/bare keys, string/number/boolean
    values, full-line comments — and rejects everything else loudly.
    """
    try:
        import tomllib
    except ModuleNotFoundError:
        return _parse_toml_minimal(text, path)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as err:
        raise ProfileError(f"{path} is not valid TOML: {err}") from None


def _parse_toml_minimal(text: str, path: Path) -> dict:
    root: dict = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].split("."):
                key = part.strip().strip('"')
                table = table.setdefault(key, {})
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ProfileError(f"{path}:{lineno}: expected 'key = value', got {line!r}")
        table[key.strip().strip('"')] = _toml_value(value.strip(), path, lineno)
    return root


def _toml_value(token: str, path: Path, lineno: int):
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise ProfileError(f"{path}:{lineno}: unterminated string {token!r}")
        return token[1:-1]
    token = token.split("#", 1)[0].strip()  # inline comment after a bare value
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ProfileError(f"{path}:{lineno}: unsupported TOML value {token!r}") from None


# ----------------------------------------------------------------- registry
#: The profile every legacy constructor and module constant reflects —
#: bit-identical to the hard-coded scenario this codebase shipped with.
DEFAULT_PROFILE = HardwareProfile(
    name="baseline",
    description="Paper Table 5 / Fig 5 calibrations on the 2D junction grid (§3.1-§3.2)",
)

_REGISTRY: dict[str, HardwareProfile] = {"baseline": DEFAULT_PROFILE}


def register_profile(profile: HardwareProfile, overwrite: bool = False) -> HardwareProfile:
    """Register ``profile`` under its name for :func:`get_profile` lookup."""
    existing = _REGISTRY.get(profile.name)
    if existing is not None and not overwrite and existing != profile:
        raise ProfileError(
            f"a different profile is already registered as {profile.name!r}; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[profile.name] = profile
    return profile


def available_profiles() -> list[str]:
    """Registered names plus shipped profile files, sorted."""
    names = set(_REGISTRY)
    if PROFILE_DIR.is_dir():
        names.update(p.stem for p in PROFILE_DIR.glob("*.toml"))
        names.update(p.stem for p in PROFILE_DIR.glob("*.json"))
    return sorted(names)


def get_profile(spec: "HardwareProfile | str | Path | None") -> HardwareProfile:
    """Resolve a profile: an instance, a registered/shipped name, or a path.

    ``None`` means :data:`DEFAULT_PROFILE`.  Shipped profiles load once and
    stay registered; an explicit file path loads fresh every call (editing
    the file between calls is honoured — the fingerprint keeps caches safe).
    """
    if spec is None:
        return DEFAULT_PROFILE
    if isinstance(spec, HardwareProfile):
        return spec
    name = str(spec)
    cached = _REGISTRY.get(name)
    if cached is not None:
        return cached
    for suffix in (".toml", ".json"):
        shipped = PROFILE_DIR / f"{name}{suffix}"
        if shipped.is_file():
            return register_profile(HardwareProfile.load(shipped))
    path = Path(name)
    if path.suffix.lower() in (".toml", ".json") or path.is_file():
        if not path.is_file():
            raise ProfileError(f"profile file {name!r} does not exist")
        return HardwareProfile.load(path)
    raise ProfileError(
        f"unknown hardware profile {name!r}; choose from {available_profiles()} "
        "or give a TOML/JSON file path"
    )
