"""Parameter sweeps: resource estimates across code distances (paper §3.4).

Each Table 1/Table 3 operation is compiled at a range of code distances on
a fresh tile grid and its §3.4 resource figures are collected — the
co-design workflow the paper motivates in the introduction (resource
estimation "for fault-tolerant implementations of quantum algorithms using
a realistic hardware model").
"""

from __future__ import annotations

from repro.core.compiler import TISCC
from repro.hardware.resources import ResourceReport

__all__ = ["OPERATION_PROGRAMS", "sweep_operation", "sweep_all"]

#: Operation name -> (program builder, tile grid shape).
OPERATION_PROGRAMS: dict[str, tuple] = {
    "PrepareZ": (lambda: [("PrepareZ", (0, 0))], (1, 1)),
    "PrepareX": (lambda: [("PrepareX", (0, 0))], (1, 1)),
    "InjectY": (lambda: [("InjectY", (0, 0))], (1, 1)),
    "MeasureZ": (lambda: [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))], (1, 1)),
    "PauliX": (lambda: [("PrepareZ", (0, 0)), ("PauliX", (0, 0))], (1, 1)),
    "Hadamard": (lambda: [("PrepareZ", (0, 0)), ("Hadamard", (0, 0))], (1, 1)),
    "Idle": (lambda: [("PrepareZ", (0, 0)), ("Idle", (0, 0))], (1, 1)),
    "MeasureZZ": (
        lambda: [("PrepareZ", (0, 0)), ("PrepareZ", (0, 1)), ("MeasureZZ", (0, 0), (0, 1))],
        (1, 2),
    ),
    "MeasureXX": (
        lambda: [("PrepareZ", (0, 0)), ("PrepareZ", (1, 0)), ("MeasureXX", (0, 0), (1, 0))],
        (2, 1),
    ),
    "BellPrepare": (lambda: [("BellPrepare", (0, 0), (0, 1))], (1, 2)),
    "Move": (lambda: [("PrepareZ", (0, 0)), ("Move", (0, 0))], (1, 2)),
    "ExtendSplit": (lambda: [("PrepareZ", (0, 0)), ("ExtendSplit", (0, 0))], (1, 2)),
}


def sweep_operation(
    name: str,
    distances: list[int],
    rounds: int | None = None,
) -> list[ResourceReport]:
    """Compile ``name`` at each distance and collect resource reports."""
    try:
        build, shape = OPERATION_PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown operation {name!r}; choose from {sorted(OPERATION_PROGRAMS)}"
        ) from None
    reports = []
    for d in distances:
        compiler = TISCC(dx=d, dz=d, tile_rows=shape[0], tile_cols=shape[1], rounds=rounds)
        compiled = compiler.compile(build(), operation=name)
        assert compiled.resources is not None
        reports.append(compiled.resources)
    return reports


def sweep_all(distances: list[int], rounds: int | None = None) -> dict[str, list[ResourceReport]]:
    return {name: sweep_operation(name, distances, rounds) for name in OPERATION_PROGRAMS}
