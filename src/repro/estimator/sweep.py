"""Parameter sweeps: resource estimates across code distances (paper §3.4)
and decoded logical error rates across distances and physical rates.

Each Table 1/Table 3 operation is compiled at a range of code distances on
a fresh tile grid and its §3.4 resource figures are collected — the
co-design workflow the paper motivates in the introduction (resource
estimation "for fault-tolerant implementations of quantum algorithms using
a realistic hardware model").  :func:`logical_error_sweep` extends that
workflow to the quantity that actually justifies a code distance: the
decoded logical error rate of a memory experiment under hardware-calibrated
noise, which exhibits the threshold-like crossover (increasing the distance
helps below a critical physical rate and hurts above it).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.compiler import TISCC
from repro.core.router import lattice_surgery_cnot_program
from repro.estimator.report import LogicalErrorReport
from repro.hardware.profile import HardwareProfile, get_profile
from repro.hardware.resources import ResourceReport
from repro.sim.noise import NoiseModel

__all__ = [
    "OPERATION_PROGRAMS",
    "sweep_operation",
    "sweep_all",
    "logical_error_sweep",
]

def _profiles(
    profile: HardwareProfile | str | Sequence[HardwareProfile | str] | None,
) -> list[HardwareProfile]:
    """Resolve a profile spec (or list of specs) to concrete profiles.

    ``None`` means the default profile; a list sweeps each entry in order
    (the profile-major axis of a multi-architecture comparison).
    """
    if profile is None or isinstance(profile, (HardwareProfile, str)):
        return [get_profile(profile)]
    profs = [get_profile(p) for p in profile]
    return profs or [get_profile(None)]


def _resolve_noise(models: Sequence, profile: HardwareProfile) -> list[NoiseModel]:
    """Resolve noise specs against one hardware profile.

    Concrete :class:`NoiseModel` instances pass through unchanged; a string
    names one of the profile's presets; a ``(name, scale)`` pair scales that
    preset — so a preset-named sweep over several profiles uses each
    architecture's own calibration, not the default one.
    """
    resolved: list[NoiseModel] = []
    for m in models:
        if isinstance(m, str):
            resolved.append(NoiseModel.preset(m, profile=profile))
        elif isinstance(m, tuple):
            name, scale = m
            base = NoiseModel.preset(name, profile=profile)
            resolved.append(base.scaled(scale) if scale != 1.0 else base)
        else:
            resolved.append(m)
    return resolved


#: Operation name -> (program builder, tile grid shape).
OPERATION_PROGRAMS: dict[str, tuple] = {
    "PrepareZ": (lambda: [("PrepareZ", (0, 0))], (1, 1)),
    "PrepareX": (lambda: [("PrepareX", (0, 0))], (1, 1)),
    "InjectY": (lambda: [("InjectY", (0, 0))], (1, 1)),
    "MeasureZ": (lambda: [("PrepareZ", (0, 0)), ("MeasureZ", (0, 0))], (1, 1)),
    "PauliX": (lambda: [("PrepareZ", (0, 0)), ("PauliX", (0, 0))], (1, 1)),
    "Hadamard": (lambda: [("PrepareZ", (0, 0)), ("Hadamard", (0, 0))], (1, 1)),
    "Idle": (lambda: [("PrepareZ", (0, 0)), ("Idle", (0, 0))], (1, 1)),
    "MeasureZZ": (
        lambda: [("PrepareZ", (0, 0)), ("PrepareZ", (0, 1)), ("MeasureZZ", (0, 0), (0, 1))],
        (1, 2),
    ),
    "MeasureXX": (
        lambda: [("PrepareZ", (0, 0)), ("PrepareZ", (1, 0)), ("MeasureXX", (0, 0), (1, 0))],
        (2, 1),
    ),
    "BellPrepare": (lambda: [("BellPrepare", (0, 0), (0, 1))], (1, 2)),
    "Move": (lambda: [("PrepareZ", (0, 0)), ("Move", (0, 0))], (1, 2)),
    "ExtendSplit": (lambda: [("PrepareZ", (0, 0)), ("ExtendSplit", (0, 0))], (1, 2)),
    "CNOT": (lattice_surgery_cnot_program, (2, 2)),
}


def sweep_operation(
    name: str,
    distances: list[int],
    rounds: int | None = None,
    *,
    profile: HardwareProfile | str | Sequence[HardwareProfile | str] | None = None,
    jobs: int = 1,
    checkpoint: str | None = None,
    use_cache: bool = True,
    resume: bool = True,
    stats: dict | None = None,
    simd: bool = False,
) -> list[ResourceReport]:
    """Compile ``name`` at each distance and collect resource reports.

    With the default ``jobs=1`` and no ``checkpoint`` this is the serial
    in-process oracle.  ``jobs > 1`` shards the distances over a process
    pool and ``checkpoint`` persists (and, on a rerun, serves) each
    distance's report through the content-addressed cache — see
    :mod:`repro.estimator.jobs`.

    ``profile`` selects the hardware calibration (name, path, instance, or
    a list of those).  A list makes the profile a sweep axis: reports come
    back profile-major, so one call prices the same operation on several
    architectures side by side.

    ``simd`` runs the beam-pass rescheduling phase on every compile
    (:mod:`repro.hardware.simd`): reports price the compacted schedule and
    carry beam-pass counts; cache keys extend only for SIMD cells, so
    existing checkpoints stay valid.
    """
    try:
        build, shape = OPERATION_PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown operation {name!r}; choose from {sorted(OPERATION_PROGRAMS)}"
        ) from None
    profs = _profiles(profile)
    if jobs > 1 or checkpoint is not None:
        from repro.estimator.jobs import resource_cells, run_cells

        cells = []
        for prof in profs:
            cells.extend(
                resource_cells([name], distances, rounds, profile=prof, simd=simd)
            )
        payloads = run_cells(
            cells,
            jobs=jobs,
            checkpoint=checkpoint,
            use_cache=use_cache,
            resume=resume,
            stats=stats,
        )
        return [ResourceReport.from_dict(p) for p in payloads]
    reports = []
    for prof in profs:
        for d in distances:
            compiler = TISCC(
                dx=d, dz=d, tile_rows=shape[0], tile_cols=shape[1], rounds=rounds,
                profile=prof,
            )
            compiled = compiler.compile(build(), operation=name, simd=simd)
            assert compiled.resources is not None
            reports.append(compiled.resources)
    return reports


def sweep_all(
    distances: list[int],
    rounds: int | None = None,
    *,
    profile: HardwareProfile | str | Sequence[HardwareProfile | str] | None = None,
    jobs: int = 1,
    checkpoint: str | None = None,
    use_cache: bool = True,
    resume: bool = True,
    stats: dict | None = None,
    simd: bool = False,
) -> dict[str, list[ResourceReport]]:
    """Resource sweeps for every registered operation.

    ``jobs``/``checkpoint`` shard the full (operation x distance) cell grid
    over the job layer in one batch — one pool, one checkpoint — instead
    of one sweep per operation.  ``profile`` threads a hardware profile (or
    a list of them — profile-major within each operation) through every
    compile.
    """
    if jobs > 1 or checkpoint is not None:
        from repro.estimator.jobs import resource_cells, run_cells

        ops = list(OPERATION_PROGRAMS)
        profs = _profiles(profile)
        cells = []
        for op in ops:
            for prof in profs:
                cells.extend(
                    resource_cells([op], distances, rounds, profile=prof, simd=simd)
                )
        payloads = run_cells(
            cells,
            jobs=jobs,
            checkpoint=checkpoint,
            use_cache=use_cache,
            resume=resume,
            stats=stats,
        )
        reports = [ResourceReport.from_dict(p) for p in payloads]
        n = len(profs) * len(distances)
        return {op: reports[i * n : (i + 1) * n] for i, op in enumerate(ops)}
    return {
        name: sweep_operation(name, distances, rounds, profile=profile, simd=simd)
        for name in OPERATION_PROGRAMS
    }


def logical_error_sweep(
    distances: list[int],
    noise_models: list | None = None,
    rates: list[float] | None = None,
    shots: int = 1000,
    basis: str = "Z",
    rounds: int | None = None,
    seed: int = 0,
    engine: str = "frame",
    max_batch: int | None = None,
    decoder: str | None = None,
    profile: HardwareProfile | str | Sequence[HardwareProfile | str] | None = None,
    jobs: int = 1,
    checkpoint: str | None = None,
    use_cache: bool = True,
    resume: bool = True,
    stats: dict | None = None,
    window: int | None = None,
    commit: int | None = None,
    shot_shards: int = 1,
    simd: bool = False,
) -> list[LogicalErrorReport]:
    """Decoded logical error rate across code distances and noise strengths.

    Give either ``noise_models`` explicitly or ``rates`` (each rate ``p``
    becomes the single-knob ``NoiseModel.uniform(p)``).  Each distance is
    compiled once (:class:`~repro.decode.memory.MemoryExperiment` reuses its
    circuit and decoder across noise settings); reports come back
    distance-major, matching the nesting of the loops.

    ``engine="frame"`` (default) samples each point from the detector
    error model — extracted once per distance and re-weighted per noise
    model, orders of magnitude faster than the packed-tableau replay —
    falling back to the tableau engine automatically for schedules that
    cannot be folded into a DEM.  ``engine="tableau"`` forces the
    reference path.  ``max_batch`` chunks frame sampling; per-shot
    ``SeedSequence.spawn`` streams make sweep results identical for any
    chunking (a property the test suite locks down).

    ``decoder`` names a registered decoder (``"union_find"``,
    ``"union_find_unweighted"``, ``"union_find_windowed"``, ``"lookup"``,
    ...); ``None`` keeps each experiment's default (weighted union-find
    over the DEM-built graph).  ``window``/``commit`` set the sliding-
    window shape for layout-aware decoders (ignored by whole-block ones).

    ``shot_shards > 1`` splits every cell's shot axis into that many
    disjoint slices of the per-shot seed streams so *decode* work fans out
    across pool workers even when the sweep has fewer cells than workers;
    the shard payloads are merged back into one report per cell
    (bit-identical counters vs the unsharded run).  Requires the jobs path
    (``jobs > 1`` or a checkpoint) and the frame engine.

    With the default ``jobs=1`` and no ``checkpoint`` the serial in-process
    loop below runs — the oracle every other execution mode must match
    bit-for-bit.  ``jobs > 1`` shards the (distance x noise) cells over a
    process pool, and ``checkpoint`` persists each completed cell to a
    content-addressed on-disk cache so a killed sweep resumes where it
    stopped and a repeated sweep is pure file reads — see
    :mod:`repro.estimator.jobs` for the cell/key/resume semantics.

    ``profile`` selects the hardware calibration — a name, path, instance,
    or a list of those, which makes the profile the outermost sweep axis
    (reports come back profile-major).  ``noise_models`` entries may also
    be preset *names* (or ``(name, scale)`` pairs): those are resolved
    against each profile in turn, so e.g. ``"near_term"`` means each
    architecture's own near-term calibration rather than the default one.

    ``simd`` compiles every memory circuit through the beam-pass
    rescheduling phase (:mod:`repro.hardware.simd`) with each profile's
    ``simd_*`` knobs — the compacted schedule shrinks idle-dephasing
    windows, so dephasing-aware presets see a (usually lower) logical
    error rate.  SIMD cells extend their cache keys non-default-only, so
    existing checkpoints stay valid.
    """
    from repro.decode.memory import MemoryExperiment

    if (noise_models is None) == (rates is None):
        raise ValueError("give exactly one of noise_models or rates")
    if noise_models is None:
        assert rates is not None
        noise_models = [NoiseModel.uniform(p) for p in rates]
    profs = _profiles(profile)
    if jobs > 1 or checkpoint is not None:
        from repro.estimator.jobs import (
            logical_error_cells,
            merge_shard_payloads,
            run_cells,
            shard_cell,
        )

        cells = []
        for prof in profs:
            cells.extend(
                logical_error_cells(
                    distances,
                    _resolve_noise(noise_models, prof),
                    shots=shots,
                    basis=basis,
                    rounds=rounds,
                    seed=seed,
                    engine=engine,
                    max_batch=max_batch,
                    decoder=decoder,
                    profile=prof,
                    window=window,
                    commit=commit,
                    simd=simd,
                )
            )
        groups = [shard_cell(c, shot_shards) for c in cells]
        payloads = run_cells(
            [shard for group in groups for shard in group],
            jobs=jobs,
            checkpoint=checkpoint,
            use_cache=use_cache,
            resume=resume,
            stats=stats,
        )
        it = iter(payloads)
        merged = [merge_shard_payloads([next(it) for _ in group]) for group in groups]
        return [LogicalErrorReport.from_dict(p) for p in merged]
    if shot_shards > 1:
        raise ValueError(
            "shot_shards requires the jobs path (jobs > 1 or a checkpoint); "
            "the serial oracle has nothing to fan decode work out to"
        )
    reports = []
    for prof in profs:
        models = _resolve_noise(noise_models, prof)
        for d in distances:
            experiment = MemoryExperiment(
                distance=d,
                rounds=rounds,
                basis=basis,
                profile=prof,
                window=window,
                commit=commit,
                simd=simd,
            )
            for model in models:
                reports.append(
                    experiment.run(
                        shots,
                        noise=model,
                        seed=seed,
                        engine=engine,
                        max_batch=max_batch,
                        decoder=decoder,
                    )
                )
    return reports
