"""Sharded, checkpointed sweep execution over independent cells.

A sweep — ``logical_error_sweep``, ``sweep_operation``, ``sweep_all`` — is
decomposed into independent :class:`SweepCell` units, each a pure function
of its parameters: one ``(op, dx/dz, rounds, basis, noise, decoder,
engine, shots, seed)`` point.  Each cell has a deterministic content key
(:func:`cell_key`: SHA-256 over the canonical cell parameters, with the
noise model fingerprinted via
:func:`repro.decode.memory.memory_cache_key`), which addresses its result
in an on-disk :class:`~repro.estimator.cache.ResultCache`.  The driver

* serves every cached cell with a hash-verified file read,
* executes missing cells on a ``ProcessPoolExecutor`` (``jobs > 1``) with
  per-cell retry and timeout, degrading gracefully to in-process execution
  when workers die (``BrokenProcessPool`` after a SIGKILL, say),
* appends each completed cell to the checkpoint (atomic result write +
  manifest append), so a killed sweep resumes by replaying the manifest
  and submitting only the missing cells.

**Determinism contract.**  A cell's randomness is rooted in the sweep seed
exactly as the serial oracle roots it: the engines spawn per-shot streams
via ``SeedSequence(seed, spawn_key=(shot,))`` (PR 3), a derivation that
depends on neither the executing worker, the submission order, nor any
chunk size — so *any* sharding of the cell list merges to bit-identical
reports vs the single-process sweep (the property suite in
``tests/test_sweep_jobs.py`` locks this down).  ``max_batch`` is therefore
an execution knob excluded from the cell key.  Wall-clock timing fields
are the one nondeterministic part of a payload; compare runs with
:func:`payload_fingerprint`, which drops them.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.estimator.cache import CheckpointError, ResultCache, content_hash
from repro.hardware.profile import DEFAULT_PROFILE, HardwareProfile, get_profile
from repro.sim.noise import NoiseModel, NoiseParams

__all__ = [
    "SweepCell",
    "cell_key",
    "cell_seed",
    "sweep_fingerprint",
    "payload_fingerprint",
    "logical_error_cells",
    "resource_cells",
    "shard_cell",
    "merge_shard_payloads",
    "execute_cell",
    "run_cells",
    "new_stats",
]

#: Payload fields that record wall-clock measurements — the only
#: nondeterministic content of a cell result.
TIMING_FIELDS = frozenset({"sim_seconds", "decode_seconds"})


@dataclass(frozen=True)
class SweepCell:
    """One independently executable unit of a sweep.

    ``kind`` selects the workload: ``"memory_lfr"`` runs a decoded memory
    experiment (one row of :func:`~repro.estimator.sweep.logical_error_sweep`),
    ``"resource"`` compiles one operation at one distance (one row of
    :func:`~repro.estimator.sweep.sweep_operation`).  ``max_batch`` chunks
    frame sampling inside a cell; results are chunk-invariant in it (per-shot
    seed streams), so it does not enter the cell key.
    """

    kind: str
    op: str
    dx: int
    dz: int
    rounds: int | None
    basis: str = "Z"
    noise: NoiseParams | None = None
    decoder: str = "union_find"
    engine: str = "frame"
    shots: int = 0
    seed: int = 0
    max_batch: int | None = None
    #: Hardware profile the cell compiles under (``None`` = default).  The
    #: profile is frozen/hashable, so the cell stays hashable and picklable.
    profile: HardwareProfile | None = None
    #: First global shot index of this cell's slice of the per-shot seed
    #: streams (frame engine only).  Nonzero for shot-axis shards produced
    #: by :func:`shard_cell`; enters the key only when nonzero, so
    #: unsharded keys — and existing checkpoints — are unchanged.
    shot_offset: int = 0
    #: Sliding-window shape for layout-aware decoders (``union_find_windowed``);
    #: ``None`` defers to the decoder defaults and keeps legacy keys stable.
    window: int | None = None
    commit: int | None = None
    #: SIMD beam-pass rescheduling of the compiled circuit; enters the key
    #: only when True, so pre-SIMD checkpoints stay valid.
    simd: bool = False

    def key_payload(self) -> dict:
        """The canonical parameter dict hashed into this cell's key.

        A non-default hardware profile joins as its canonical fingerprint
        (for memory cells, inside :func:`memory_cache_key`), so two
        profiles never share a content-addressed result while
        default-profile keys match pre-profile checkpoints exactly.

        The DEM *extraction path* (periodic template tiling vs full walk,
        see :meth:`MemoryExperiment.fault_table`) is deliberately absent
        from the key: both paths produce bit-identical fault tables and
        DEMs by construction, so results — and therefore existing
        checkpoints — are path-independent.
        """
        if self.kind == "memory_lfr":
            from repro.decode.memory import memory_cache_key

            return {
                "kind": self.kind,
                "memory": list(
                    memory_cache_key(
                        self.dx,
                        self.dz,
                        self.rounds,
                        self.basis,
                        self.noise,
                        profile=self.profile,
                        simd=self.simd,
                    )
                ),
                "decoder": self.decoder,
                "engine": self.engine,
                "shots": self.shots,
                "seed": self.seed,
                # Non-default extensions join conditionally so the keys of
                # every pre-existing cell (and checkpoint) are unchanged.
                **({"shot_offset": self.shot_offset} if self.shot_offset else {}),
                **({"window": self.window} if self.window is not None else {}),
                **({"commit": self.commit} if self.commit is not None else {}),
            }
        if self.kind == "resource":
            payload = {
                "kind": self.kind,
                "op": self.op,
                "dx": self.dx,
                "dz": self.dz,
                "rounds": self.rounds,
            }
            prof = get_profile(self.profile)
            if prof.fingerprint != DEFAULT_PROFILE.fingerprint:
                payload["profile"] = prof.fingerprint
            if self.simd:
                payload["simd"] = True
            return payload
        raise ValueError(f"unknown sweep cell kind {self.kind!r}")

    def key(self) -> str:
        return content_hash(self.key_payload())


def cell_key(cell: SweepCell) -> str:
    """Content-address of one cell: SHA-256 of its canonical parameters."""
    return cell.key()


def cell_seed(cell: SweepCell) -> int:
    """The seed a cell's engines are rooted in — the sweep seed, verbatim.

    The serial oracle hands every ``(distance, noise)`` point the same
    sweep-level seed; reproducing that here (rather than deriving a
    per-cell seed) is what makes the process-parallel merge bit-identical
    to the serial sweep.  Chunk-invariance *within* the cell comes from the
    engines' per-shot ``SeedSequence(seed, spawn_key=(shot,))`` streams,
    which never see the worker or chunk layout.
    """
    return cell.seed


def sweep_fingerprint(keys: list[str]) -> str:
    """Order-independent identity of a whole sweep: hash of its cell keys."""
    return content_hash(sorted(set(keys)))


def payload_fingerprint(payload: dict) -> str:
    """Hash of a payload's deterministic content (timing fields dropped)."""
    return content_hash({k: v for k, v in payload.items() if k not in TIMING_FIELDS})


# ------------------------------------------------------------- cell builders
def logical_error_cells(
    distances: list[int],
    noise_models: list[NoiseModel],
    *,
    shots: int,
    basis: str = "Z",
    rounds: int | None = None,
    seed: int = 0,
    engine: str = "frame",
    max_batch: int | None = None,
    decoder: str | None = None,
    profile: HardwareProfile | str | None = None,
    window: int | None = None,
    commit: int | None = None,
    simd: bool = False,
) -> list[SweepCell]:
    """Cells of a logical-error sweep, distance-major like the serial loop."""
    prof = get_profile(profile)
    return [
        SweepCell(
            kind="memory_lfr",
            op=f"{basis}Memory",
            dx=d,
            dz=d,
            rounds=rounds,
            basis=basis,
            noise=model.params,
            decoder=decoder if decoder is not None else "union_find",
            engine=engine,
            shots=shots,
            seed=seed,
            max_batch=max_batch,
            profile=prof,
            window=window,
            commit=commit,
            simd=simd,
        )
        for d in distances
        for model in noise_models
    ]


def resource_cells(
    ops: list[str],
    distances: list[int],
    rounds: int | None = None,
    profile: HardwareProfile | str | None = None,
    simd: bool = False,
) -> list[SweepCell]:
    """Cells of a resource sweep, operation-major then distance-major."""
    prof = get_profile(profile)
    return [
        SweepCell(
            kind="resource", op=op, dx=d, dz=d, rounds=rounds, profile=prof, simd=simd
        )
        for op in ops
        for d in distances
    ]


def shard_cell(cell: SweepCell, shards: int) -> list[SweepCell]:
    """Split one cell's shot axis into up to ``shards`` disjoint sub-cells.

    Each shard covers a contiguous ``[shot_offset, shot_offset + shots)``
    slice of the cell's global per-shot seed streams, so the shards sample
    exactly the shots the unsharded cell would — decode work fans out over
    workers while :func:`merge_shard_payloads` restores the single-cell
    report.  Only frame-engine ``memory_lfr`` cells shard (the tableau
    engine has no per-shot streams to slice); anything else — including a
    cell with fewer shots than ``shards`` asks for — comes back as fewer
    (possibly one) cells rather than empty ones.
    """
    if shards <= 1 or cell.kind != "memory_lfr" or cell.shots <= 0:
        return [cell]
    if cell.engine != "frame":
        raise ValueError(
            f"shot-axis sharding requires the frame engine, not {cell.engine!r}"
        )
    shards = min(shards, cell.shots)
    base, extra = divmod(cell.shots, shards)
    out: list[SweepCell] = []
    offset = cell.shot_offset
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        out.append(replace(cell, shots=size, shot_offset=offset))
        offset += size
    return out


def merge_shard_payloads(payloads: list[dict]) -> dict:
    """Recombine the payloads of one cell's disjoint shot shards.

    Counters (``n_shots``, ``failures``, ``raw_failures``) and timings sum;
    ``mean_defects`` is re-derived from the recovered integer defect totals
    (``round(mean * n_shots)`` is exact — float64 carries the sums of
    billions of unit defects with error far below 0.5), so the merged value
    equals the unsharded run's bit for bit.  Every other field is identical
    across shards and passes through.
    """
    if not payloads:
        raise ValueError("no shard payloads to merge")
    if len(payloads) == 1:
        return payloads[0]
    merged = dict(payloads[0])
    total = sum(int(p["n_shots"]) for p in payloads)
    defects = sum(round(float(p["mean_defects"]) * int(p["n_shots"])) for p in payloads)
    merged["n_shots"] = total
    merged["failures"] = sum(int(p["failures"]) for p in payloads)
    merged["raw_failures"] = sum(int(p["raw_failures"]) for p in payloads)
    merged["mean_defects"] = defects / total if total else 0.0
    for field_name in ("sim_seconds", "decode_seconds"):
        merged[field_name] = float(sum(float(p[field_name]) for p in payloads))
    # Re-derive the dependent columns (logical_error_rate, stderr, ...) from
    # the merged counters — copying them from shard 0 would serve the first
    # shard's rates under the full cell's shot count.
    from repro.estimator.report import LogicalErrorReport

    return LogicalErrorReport.from_dict(merged).to_dict()


# --------------------------------------------------------------- execution
def _maybe_inject_fault(key: str) -> None:
    """Crash/exception injection hook for the fault-tolerance test suite.

    Set ``TISCC_SWEEP_FAULT`` to ``"kill"`` (SIGKILL the executing process),
    ``"hang"`` (record this PID in the fault dir, then sleep far past any
    test timeout — the stand-in for a wedged worker the degrade path must
    terminate), or ``"raise"`` (raise from the cell), and
    ``TISCC_SWEEP_FAULT_KEY`` to a cell-key prefix to target.  When
    ``TISCC_SWEEP_FAULT_DIR`` names a directory, an ``O_EXCL`` marker file
    arbitrates so the fault fires exactly once across all workers — the
    retry/resume path then has to finish the job.  Inert unless the
    environment variables are set.
    """
    mode = os.environ.get("TISCC_SWEEP_FAULT")
    if not mode:
        return
    prefix = os.environ.get("TISCC_SWEEP_FAULT_KEY", "")
    if prefix and not key.startswith(prefix):
        return
    marker_dir = os.environ.get("TISCC_SWEEP_FAULT_DIR")
    if marker_dir:
        marker = os.path.join(marker_dir, f"fault-fired-{prefix or 'any'}")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        if marker_dir:
            pid_file = os.path.join(marker_dir, "hang-pid")
            with open(pid_file, "w", encoding="utf-8") as fh:
                fh.write(str(os.getpid()))
        time.sleep(600.0)
        return
    raise RuntimeError(f"injected fault for cell {key[:12]}")


def execute_cell(cell: SweepCell) -> dict:
    """Run one cell to completion and return its JSON-ready payload.

    Pure in the cell parameters (modulo timing fields) and picklable, so it
    runs identically in the driver process and in pool workers.
    """
    _maybe_inject_fault(cell.key())
    if cell.kind == "memory_lfr":
        from repro.decode.memory import MemoryExperiment

        experiment = MemoryExperiment(
            dx=cell.dx,
            dz=cell.dz,
            rounds=cell.rounds,
            basis=cell.basis,
            profile=cell.profile,
            window=cell.window,
            commit=cell.commit,
            simd=cell.simd,
        )
        model = NoiseModel(cell.noise) if cell.noise is not None else None
        report = experiment.run(
            cell.shots,
            noise=model,
            seed=cell_seed(cell),
            engine=cell.engine,
            max_batch=cell.max_batch,
            decoder=cell.decoder,
            shot_offset=cell.shot_offset,
        )
        return report.to_dict()
    if cell.kind == "resource":
        from repro.estimator.sweep import sweep_operation

        report = sweep_operation(
            cell.op, [cell.dx], rounds=cell.rounds, profile=cell.profile, simd=cell.simd
        )[0]
        return report.to_dict()
    raise ValueError(f"unknown sweep cell kind {cell.kind!r}")


def new_stats() -> dict:
    """A fresh execution-statistics record for :func:`run_cells`."""
    return {
        "cells": 0,
        "cache_hits": 0,
        "executed": 0,
        "retried": 0,
        "timed_out": 0,
        "degraded": False,
    }


def _sweep_summary(cells: list[SweepCell]) -> dict:
    """Human-readable sweep description pinned into the checkpoint meta."""
    return {
        "kinds": sorted({c.kind for c in cells}),
        "ops": sorted({c.op for c in cells}),
        "distances": sorted({c.dx for c in cells} | {c.dz for c in cells}),
        "bases": sorted({c.basis for c in cells}),
        "noise": sorted({c.noise.name if c.noise is not None else "none" for c in cells}),
        "shots": sorted({c.shots for c in cells}),
        "seeds": sorted({c.seed for c in cells}),
        "profiles": sorted({get_profile(c.profile).name for c in cells}),
        "cells": len(cells),
    }


def run_cells(
    cells: list[SweepCell],
    *,
    jobs: int = 1,
    checkpoint: str | os.PathLike | None = None,
    use_cache: bool = True,
    resume: bool = True,
    retries: int = 1,
    timeout: float | None = None,
    stats: dict | None = None,
) -> list[dict]:
    """Execute ``cells`` and return their payloads, in cell order.

    ``checkpoint`` names a :class:`ResultCache` directory: completed cells
    are durably recorded there as they finish, and (with ``use_cache``)
    already-recorded cells are served from disk instead of recomputed.
    ``resume=False`` refuses a checkpoint that already holds completed
    cells — the explicit-opt-in behaviour the CLI's ``--resume`` flag
    exposes; library callers default to resuming.  A checkpoint written
    for *different* cell parameters raises :class:`CheckpointError` either
    way.

    ``jobs > 1`` fans missing cells out over a process pool; each failed
    cell is retried up to ``retries`` times, ``timeout`` (seconds) bounds
    how long the driver waits without *any* cell completing, and a broken
    pool (killed workers) degrades to in-process execution of whatever
    remains.  ``stats`` (see :func:`new_stats`) is updated in place with
    cache/execution counters.
    """
    if stats is None:
        stats = new_stats()
    else:
        for k, v in new_stats().items():
            stats.setdefault(k, v)
    stats["cells"] += len(cells)

    keys = [c.key() for c in cells]
    cache: ResultCache | None = None
    if checkpoint is not None:
        cache = ResultCache(checkpoint)
        cache.ensure_meta(sweep_fingerprint(keys), _sweep_summary(cells))
        if not resume and use_cache and len(cache):
            raise CheckpointError(
                f"checkpoint {checkpoint} already holds {len(cache)} completed "
                "cell(s); pass --resume to reuse them (or --no-cache to recompute)"
            )

    results: dict[str, dict] = {}
    pending: list[tuple[str, SweepCell]] = []
    seen: set[str] = set()
    for key, cell in zip(keys, cells):
        if key in seen:
            continue  # identical cells share one execution (and one payload)
        seen.add(key)
        payload = cache.get(key) if (cache is not None and use_cache) else None
        if payload is not None:
            results[key] = payload
            stats["cache_hits"] += 1
        else:
            pending.append((key, cell))

    def record(key: str, payload: dict) -> None:
        results[key] = payload
        stats["executed"] += 1
        if cache is not None:
            cache.put(key, payload)

    if pending:
        leftovers = pending
        if jobs > 1:
            leftovers = _run_pool(pending, jobs, retries, timeout, record, stats)
        for key, cell in leftovers:
            record(key, execute_cell(cell))

    return [results[key] for key in keys]


def _terminate_pool_workers(pool: ProcessPoolExecutor, grace: float = 5.0) -> None:
    """Forcefully stop a degraded pool's worker processes.

    ``shutdown(cancel_futures=True)`` only cancels *queued* futures; a
    worker already executing a cell keeps running to completion — which,
    for the wedged workers that trigger the timeout degrade, means an
    orphaned process burning CPU on a cell the driver is about to redo
    in-process.  Terminate every worker, escalating to SIGKILL for any
    that outlives the grace period (a worker stuck in native code ignores
    SIGTERM).
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for p in procs:
        try:
            p.terminate()
        except Exception:
            pass
    deadline = time.monotonic() + grace
    for p in procs:
        try:
            p.join(max(0.0, deadline - time.monotonic()))
            if p.is_alive():
                p.kill()
                p.join(1.0)
        except Exception:
            pass


def _run_pool(
    pending: list[tuple[str, SweepCell]],
    jobs: int,
    retries: int,
    timeout: float | None,
    record,
    stats: dict,
) -> list[tuple[str, SweepCell]]:
    """Pool-execute cells; return the ones that must finish in-process.

    Cells come back to the caller (for in-process execution) when their
    retry budget is exhausted, when the pool breaks (a worker died — the
    classic SIGKILL/OOM case), or when no cell completes within
    ``timeout`` seconds.  Either degrade path terminates the pool's
    workers before handing cells back, so an in-process redo never races
    an orphaned worker still computing the same cell.
    """
    leftovers: list[tuple[str, SweepCell]] = []
    attempts: dict[str, int] = {}
    done_keys: set[str] = set()
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = {pool.submit(execute_cell, cell): (key, cell) for key, cell in pending}
        while futures:
            done, not_done = wait(futures, timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                # Nothing finished within the timeout: stop trusting the
                # pool and run the rest in-process.
                stats["timed_out"] += len(not_done)
                stats["degraded"] = True
                _terminate_pool_workers(pool)
                break
            for fut in done:
                key, cell = futures.pop(fut)
                try:
                    payload = fut.result()
                except BrokenProcessPool:
                    raise
                except Exception:
                    attempts[key] = attempts.get(key, 0) + 1
                    stats["retried"] += 1
                    if attempts[key] <= retries:
                        futures[pool.submit(execute_cell, cell)] = (key, cell)
                    else:
                        leftovers.append((key, cell))
                    continue
                record(key, payload)
                done_keys.add(key)
    except BrokenProcessPool:
        # One or more workers died (SIGKILL, OOM, segfault).  Everything
        # in flight is lost; degrade gracefully to in-process execution of
        # whatever has not been recorded yet — after stopping any workers
        # the broken pool still has alive.
        stats["degraded"] = True
        _terminate_pool_workers(pool)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    finished = done_keys | {key for key, _ in leftovers}
    leftovers.extend((key, cell) for key, cell in pending if key not in finished)
    return leftovers
