"""Resource-estimation front end (paper §3.4): reports, parameter sweeps,
and batched shot statistics (logical-error / outcome summaries)."""

from repro.estimator.report import (
    format_logical_summary,
    format_outcome_summary,
    format_resource_table,
    logical_outcome_statistics,
    outcome_statistics,
)
from repro.estimator.cache import CheckpointError, ResultCache
from repro.estimator.jobs import SweepCell, payload_fingerprint, run_cells
from repro.estimator.sweep import sweep_operation, OPERATION_PROGRAMS

__all__ = [
    "format_resource_table",
    "format_outcome_summary",
    "format_logical_summary",
    "outcome_statistics",
    "logical_outcome_statistics",
    "sweep_operation",
    "OPERATION_PROGRAMS",
    "CheckpointError",
    "ResultCache",
    "SweepCell",
    "payload_fingerprint",
    "run_cells",
]
