"""Resource-estimation front end (paper §3.4): reports and parameter sweeps."""

from repro.estimator.report import format_resource_table
from repro.estimator.sweep import sweep_operation, OPERATION_PROGRAMS

__all__ = ["format_resource_table", "sweep_operation", "OPERATION_PROGRAMS"]
