"""Content-addressed, crash-tolerant on-disk cache for sweep results.

One checkpoint directory holds the durable state of one sweep::

    <root>/meta.json         # sweep fingerprint + human-readable summary
    <root>/manifest.jsonl    # one {"key", "sha256"} line per completed cell
    <root>/results/<key>.json  # {"key", "sha256", "payload"} per cell

The unit of storage is a *cell* (see :mod:`repro.estimator.jobs`): its key
is the SHA-256 of the canonical JSON of its parameters, so the same
question always lands on the same file and a repeated query is a file read,
never a simulation.  Durability discipline:

* **Result files are atomic.**  Payloads are written to a temp file in the
  same directory and ``os.replace``-d into place, so a crash leaves either
  the complete record or nothing — never a half-written result.
* **The manifest is append-only and torn-line tolerant.**  Each completed
  cell appends one fsync'd JSON line; a line truncated by a crash fails to
  parse and is skipped (and the cell is simply recomputed).  A key is never
  appended twice — recomputation that changes a payload (``--no-cache``)
  rewrites the manifest atomically instead of appending a duplicate.
* **Reads are hash-verified.**  :meth:`ResultCache.get` recomputes the
  payload's content hash and compares it against both the embedded and the
  manifest copy; any mismatch (bit rot, manual edits, torn writes rescued
  from ``results/``) evicts the entry so the cell is recomputed rather than
  served corrupt.
* **The manifest is an index, not the truth.**  On open, result files that
  a crash left unlisted (killed between result rename and manifest append)
  are rescued back into the index.

:meth:`ResultCache.ensure_meta` pins the sweep's parameter fingerprint into
``meta.json`` on first use and refuses — with a one-line
:class:`CheckpointError` — to serve a directory whose manifest was written
for different cell parameters.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["CheckpointError", "ResultCache", "canonical_json", "content_hash"]


class CheckpointError(ValueError):
    """A checkpoint directory cannot be (re)used as requested.

    Subclasses :class:`ValueError` so CLI front-ends surface it through the
    same one-line-message path as every other input problem.
    """


def canonical_json(obj) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj) -> str:
    """SHA-256 hex digest of an object's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


class ResultCache:
    """One checkpoint directory of hash-verified cell results."""

    MANIFEST = "manifest.jsonl"
    META = "meta.json"
    RESULTS = "results"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.results_dir = self.root / self.RESULTS
        self.results_dir.mkdir(parents=True, exist_ok=True)
        #: key -> sha256 recorded in the manifest (authoritative when present).
        self._manifest: dict[str, str] = {}
        #: every key believed to have a result file.
        self._known: set[str] = set()
        self.stats = {"hits": 0, "misses": 0, "corrupt": 0, "torn_lines": 0, "rescued": 0}
        self._load()

    # -------------------------------------------------------------- loading
    def _load(self) -> None:
        path = self.root / self.MANIFEST
        if path.exists():
            for line in path.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                    key, sha = rec["key"], rec["sha256"]
                except (ValueError, KeyError, TypeError):
                    # A crash mid-append tears at most the final line; the
                    # cell it described is recomputed, nothing else is lost.
                    self.stats["torn_lines"] += 1
                    continue
                if not (isinstance(key, str) and isinstance(sha, str)):
                    self.stats["torn_lines"] += 1
                    continue
                self._manifest[key] = sha
                self._known.add(key)
        for f in self.results_dir.glob("*.json"):
            # Rescue results a crash left unlisted (killed between the
            # atomic result rename and the manifest append).
            if f.stem not in self._known:
                self._known.add(f.stem)
                self.stats["rescued"] += 1

    # ------------------------------------------------------------ inventory
    def __len__(self) -> int:
        return len(self._known)

    def __contains__(self, key: str) -> bool:
        return key in self._known

    def keys(self) -> set[str]:
        return set(self._known)

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    # --------------------------------------------------------------- access
    def get(self, key: str) -> dict | None:
        """The hash-verified payload for ``key``, or None.

        Corrupt entries (unreadable file, payload hash disagreeing with the
        embedded or manifest record) are evicted and reported as missing so
        the caller recomputes them.
        """
        if key not in self._known:
            self.stats["misses"] += 1
            return None
        try:
            record = json.loads(self.result_path(key).read_text())
            payload, sha = record["payload"], record["sha256"]
        except (OSError, ValueError, KeyError, TypeError):
            self._evict(key)
            return None
        expected = self._manifest.get(key, sha)
        if sha != expected or content_hash(payload) != sha:
            self._evict(key)
            return None
        self.stats["hits"] += 1
        return payload

    def _evict(self, key: str) -> None:
        self._known.discard(key)
        self._manifest.pop(key, None)
        self.stats["corrupt"] += 1
        try:
            self.result_path(key).unlink()
        except OSError:
            pass

    def put(self, key: str, payload: dict) -> None:
        """Durably record ``payload`` under ``key`` (atomic write + append)."""
        sha = content_hash(payload)
        record = canonical_json({"key": key, "sha256": sha, "payload": payload})
        path = self.result_path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(record)
        os.replace(tmp, path)  # same directory => atomic on POSIX
        if key not in self._manifest:
            self._append_manifest(key, sha)
        elif self._manifest[key] != sha:
            # Recomputation changed the payload (e.g. --no-cache refresh with
            # new timings): rewrite the whole manifest atomically rather than
            # appending a duplicate key line.
            self._manifest[key] = sha
            self._rewrite_manifest()
        self._known.add(key)
        self._manifest[key] = sha

    def _append_manifest(self, key: str, sha: str) -> None:
        with open(self.root / self.MANIFEST, "a") as fh:
            fh.write(json.dumps({"key": key, "sha256": sha}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _rewrite_manifest(self) -> None:
        tmp = self.root / f".{self.MANIFEST}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            for key, sha in self._manifest.items():
                fh.write(json.dumps({"key": key, "sha256": sha}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.root / self.MANIFEST)

    # ----------------------------------------------------------------- meta
    def ensure_meta(self, fingerprint: str, summary: dict) -> None:
        """Pin (or check) the sweep this checkpoint directory belongs to.

        The first sweep to use the directory writes ``meta.json``; every
        later open must present the same parameter fingerprint or gets a
        one-line :class:`CheckpointError` — a checkpoint written for
        different cell parameters is never silently mixed into a new sweep.
        """
        meta_path = self.root / self.META
        if meta_path.exists():
            try:
                stored = json.loads(meta_path.read_text())
            except ValueError:
                raise CheckpointError(
                    f"checkpoint {self.root} has an unreadable meta.json; "
                    "use a fresh --checkpoint directory"
                ) from None
            if stored.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"checkpoint {self.root} was written for a different sweep "
                    f"({stored.get('summary')}); use a fresh --checkpoint directory"
                )
            return
        tmp = meta_path.with_name(f".{self.META}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps({"fingerprint": fingerprint, "summary": summary}, indent=2))
        os.replace(tmp, meta_path)
