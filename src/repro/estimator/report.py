"""Tabular formatting of resource estimates (paper §3.4)."""

from __future__ import annotations

from repro.hardware.resources import ResourceReport

__all__ = ["format_resource_table"]


def format_resource_table(reports: list[ResourceReport], title: str = "") -> str:
    """Render resource reports as the rows the paper's estimator prints."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(ResourceReport.header())
    lines.extend(r.row() for r in reports)
    return "\n".join(lines)
