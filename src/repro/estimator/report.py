"""Tabular formatting of resource estimates (paper §3.4) and of batched
shot statistics (logical-error / outcome summaries over the §4 sampler)."""

from __future__ import annotations

import numpy as np

from repro.hardware.resources import ResourceReport

__all__ = [
    "format_resource_table",
    "outcome_statistics",
    "format_outcome_summary",
    "logical_outcome_statistics",
    "format_logical_summary",
]


def format_resource_table(reports: list[ResourceReport], title: str = "") -> str:
    """Render resource reports as the rows the paper's estimator prints."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(ResourceReport.header())
    lines.extend(r.row() for r in reports)
    return "\n".join(lines)


def _table(header: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(v).ljust(w) for v, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def outcome_statistics(batch) -> list[dict]:
    """Per-label statistics of a :class:`~repro.sim.batch.BatchResult`.

    One row per measurement label, in circuit order: counts of 0/1 outcomes,
    the fraction of 1s, and the fraction of shots in which the outcome was
    deterministic (forced by the state).
    """
    rows = []
    for label, bits in batch.outcomes.items():
        ones = int(bits.sum())
        det = batch.deterministic[label]
        rows.append(
            {
                "label": label,
                "zeros": batch.n_shots - ones,
                "ones": ones,
                "p_one": ones / batch.n_shots,
                "deterministic": float(det.mean()),
            }
        )
    return rows


def format_outcome_summary(batch, title: str = "", limit: int | None = 16) -> str:
    """Render the measurement-outcome distribution of a batched run."""
    stats = outcome_statistics(batch)
    shown = stats if limit is None else stats[: max(0, limit)]
    rows = [
        [s["label"], s["zeros"], s["ones"], f"{s['p_one']:.3f}", f"{s['deterministic']:.2f}"]
        for s in shown
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_table(["label", "zeros", "ones", "P(1)", "det."], rows))
    if len(stats) > len(shown):
        lines.append(f"... ({len(stats) - len(shown)} more labels)")
    return "\n".join(lines)


def logical_outcome_statistics(compiled, batch) -> list[dict]:
    """Logical measurement statistics of a compiled operation over a batch.

    Evaluates each instruction's ``value`` callable — a product of
    measurement signs — vectorized over the batch (``BatchResult.sign``
    returns per-shot arrays), and folds the quasi-probability shot weights
    into the §4.1 estimator: ``<M> = E[weight * value]`` with its standard
    error, plus the weighted logical-error frequency ``P(-1)``.
    """
    rows = []
    for res in compiled.results:
        if res.value is None:
            continue
        values = np.broadcast_to(
            np.asarray(res.value(batch), dtype=np.float64), (batch.n_shots,)
        )
        if batch.n_shots > 1:
            mean, stderr = batch.estimate(values)
        else:
            mean, stderr = float((batch.weights * values).mean()), 0.0
        p_minus = float(np.mean(batch.weights * (values < 0)))
        rows.append(
            {
                "name": res.name,
                "mean": mean,
                "stderr": stderr,
                "p_minus": p_minus,
                "n_shots": batch.n_shots,
            }
        )
    return rows


def format_logical_summary(compiled, batch, title: str = "") -> str:
    """Render logical-outcome statistics (weighted means and error rates)."""
    stats = logical_outcome_statistics(compiled, batch)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not stats:
        lines.append("(no logical measurement outcomes in this operation)")
        return "\n".join(lines)
    rows = [
        [
            s["name"],
            f"{s['mean']:+.4f}",
            f"{s['stderr']:.4f}",
            f"{s['p_minus']:.4f}",
            s["n_shots"],
        ]
        for s in stats
    ]
    lines.append(_table(["instruction", "<M>", "stderr", "P(-1)", "shots"], rows))
    return "\n".join(lines)
