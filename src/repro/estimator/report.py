"""Tabular formatting of resource estimates (paper §3.4), batched shot
statistics (logical-error / outcome summaries over the §4 sampler), and
decoded logical-error-rate reports (noisy sampling + union-find decoding)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.resources import ResourceReport

__all__ = [
    "format_resource_table",
    "outcome_statistics",
    "format_outcome_summary",
    "logical_outcome_statistics",
    "format_logical_summary",
    "LogicalErrorReport",
    "format_logical_error_table",
]


def format_resource_table(reports: list[ResourceReport], title: str = "") -> str:
    """Render resource reports as the rows the paper's estimator prints.

    A ``profile`` column appears only when some report was produced under a
    non-default hardware profile, and the SIMD columns (beam passes,
    utilization) only when some report came from a SIMD-scheduled compile —
    keeping default single-scenario output identical to the historical
    format.
    """
    with_profile = any(r.profile != "baseline" for r in reports)
    with_simd = any(r.beam_passes is not None for r in reports)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(ResourceReport.header(with_profile=with_profile, with_simd=with_simd))
    lines.extend(r.row(with_profile=with_profile, with_simd=with_simd) for r in reports)
    return "\n".join(lines)


def _table(header: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(v).ljust(w) for v, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def outcome_statistics(batch) -> list[dict]:
    """Per-label statistics of a :class:`~repro.sim.batch.BatchResult`.

    One row per measurement label, in circuit order: counts of 0/1 outcomes,
    the fraction of 1s, and the fraction of shots in which the outcome was
    deterministic (forced by the state).
    """
    rows = []
    for label, bits in batch.outcomes.items():
        ones = int(bits.sum())
        det = batch.deterministic[label]
        rows.append(
            {
                "label": label,
                "zeros": batch.n_shots - ones,
                "ones": ones,
                "p_one": ones / batch.n_shots,
                "deterministic": float(det.mean()),
            }
        )
    return rows


def format_outcome_summary(batch, title: str = "", limit: int | None = 16) -> str:
    """Render the measurement-outcome distribution of a batched run."""
    stats = outcome_statistics(batch)
    shown = stats if limit is None else stats[: max(0, limit)]
    rows = [
        [s["label"], s["zeros"], s["ones"], f"{s['p_one']:.3f}", f"{s['deterministic']:.2f}"]
        for s in shown
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_table(["label", "zeros", "ones", "P(1)", "det."], rows))
    if len(stats) > len(shown):
        lines.append(f"... ({len(stats) - len(shown)} more labels)")
    return "\n".join(lines)


def logical_outcome_statistics(compiled, batch) -> list[dict]:
    """Logical measurement statistics of a compiled operation over a batch.

    Evaluates each instruction's ``value`` callable — a product of
    measurement signs — vectorized over the batch (``BatchResult.sign``
    returns per-shot arrays), and folds the quasi-probability shot weights
    into the §4.1 estimator: ``<M> = E[weight * value]`` with its standard
    error, plus the weighted logical-error frequency ``P(-1)``.
    """
    rows = []
    for res in compiled.results:
        if res.value is None:
            continue
        values = np.broadcast_to(
            np.asarray(res.value(batch), dtype=np.float64), (batch.n_shots,)
        )
        if batch.n_shots > 1:
            mean, stderr = batch.estimate(values)
        else:
            mean, stderr = float((batch.weights * values).mean()), 0.0
        p_minus = float(np.mean(batch.weights * (values < 0)))
        rows.append(
            {
                "name": res.name,
                "mean": mean,
                "stderr": stderr,
                "p_minus": p_minus,
                "n_shots": batch.n_shots,
            }
        )
    return rows


@dataclass
class LogicalErrorReport:
    """Decoded logical fidelity of one noisy memory-experiment batch.

    ``failures`` counts shots whose decoded logical verdict was wrong
    (measured logical flip XOR decoder prediction); ``raw_failures`` counts
    undecoded logical flips — the gap between the two is what the decoder
    buys.  ``mean_defects`` is the average number of fired detectors per
    shot (a proxy for the physical error burden the decoder saw).
    ``engine`` records which sampling path produced the batch:
    ``"tableau"`` (packed stabilizer replay) or ``"frame"`` (detector-
    error-model Pauli-frame sampling, the fast path); ``decoder`` the
    registered decoder name that produced the verdicts.
    """

    operation: str
    dx: int
    dz: int
    rounds: int
    n_shots: int
    noise_name: str
    physical_rate: float | None
    failures: int
    raw_failures: int
    mean_defects: float
    sim_seconds: float
    decode_seconds: float
    engine: str = "tableau"
    decoder: str = "union_find"
    #: Hardware profile the experiment was compiled under.
    profile: str = "baseline"

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.n_shots

    @property
    def raw_error_rate(self) -> float:
        return self.raw_failures / self.n_shots

    @property
    def stderr(self) -> float:
        """Binomial standard error of the decoded logical error rate."""
        p = self.logical_error_rate
        return float(np.sqrt(p * (1.0 - p) / self.n_shots))

    @staticmethod
    def header(with_profile: bool = False) -> list[str]:
        cols = [
            "operation", "dx", "dz", "rounds", "noise", "shots", "LER", "stderr",
            "raw", "defects/shot", "engine", "decoder", "sim [s]", "decode [s]",
        ]
        if with_profile:
            cols.insert(5, "profile")
        return cols

    def row(self, with_profile: bool = False) -> list[str]:
        cols = [
            self.operation,
            str(self.dx),
            str(self.dz),
            str(self.rounds),
            self.noise_name,
            str(self.n_shots),
            f"{self.logical_error_rate:.4f}",
            f"{self.stderr:.4f}",
            f"{self.raw_error_rate:.4f}",
            f"{self.mean_defects:.2f}",
            self.engine,
            self.decoder,
            f"{self.sim_seconds:.2f}",
            f"{self.decode_seconds:.2f}",
        ]
        if with_profile:
            cols.insert(5, self.profile)
        return cols

    @classmethod
    def from_dict(cls, payload: dict) -> "LogicalErrorReport":
        """Rebuild a report from a :meth:`to_dict` payload.

        The inverse the sharded sweep layer uses to serve cached results:
        derived columns (``logical_error_rate``, ``stderr``, ...) are
        recomputed from the stored counts, and the ``noise`` key maps back
        onto ``noise_name``.
        """
        import dataclasses

        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in names}
        if "noise" in payload:
            kwargs["noise_name"] = payload["noise"]
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """JSON-friendly summary (used by benchmark artifacts and the CLI)."""
        return {
            "operation": self.operation,
            "dx": self.dx,
            "dz": self.dz,
            "rounds": self.rounds,
            "n_shots": self.n_shots,
            "noise": self.noise_name,
            "physical_rate": self.physical_rate,
            "failures": self.failures,
            "raw_failures": self.raw_failures,
            "logical_error_rate": self.logical_error_rate,
            "raw_error_rate": self.raw_error_rate,
            "stderr": self.stderr,
            "mean_defects": self.mean_defects,
            "engine": self.engine,
            "decoder": self.decoder,
            "profile": self.profile,
            "sim_seconds": self.sim_seconds,
            "decode_seconds": self.decode_seconds,
        }


def format_logical_error_table(reports: list[LogicalErrorReport], title: str = "") -> str:
    """Render decoded logical-error-rate reports, one row per batch.

    The ``profile`` column appears only when some report was produced under
    a non-default hardware profile (see :func:`format_resource_table`).
    """
    with_profile = any(r.profile != "baseline" for r in reports)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        _table(
            LogicalErrorReport.header(with_profile=with_profile),
            [r.row(with_profile=with_profile) for r in reports],
        )
    )
    return "\n".join(lines)


def format_logical_summary(compiled, batch, title: str = "") -> str:
    """Render logical-outcome statistics (weighted means and error rates)."""
    stats = logical_outcome_statistics(compiled, batch)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not stats:
        lines.append("(no logical measurement outcomes in this operation)")
        return "\n".join(lines)
    rows = [
        [
            s["name"],
            f"{s['mean']:+.4f}",
            f"{s['stderr']:.4f}",
            f"{s['p_minus']:.4f}",
            s["n_shots"],
        ]
        for s in stats
    ]
    lines.append(_table(["instruction", "<M>", "stderr", "P(-1)", "shots"], rows))
    return "\n".join(lines)
