"""Verification of compiled circuits (paper §4).

State and process tomography in the logical subspace
(:mod:`repro.verify.tomography`, following Nielsen & Chuang), Pauli-frame
helpers for combining measurement outcomes with logical-operator
expectations (:mod:`repro.verify.frames`, §4.5), and the end-to-end
verification protocols used in §4.2-§4.4
(:mod:`repro.verify.protocols`).
"""

from repro.verify.tomography import (
    state_tomography_1q,
    process_tomography_1q,
    chi_matrix_1q,
    fidelity,
    IDEAL_CHI,
)
from repro.verify.frames import corrected_expectation, logical_state_vector
from repro.verify.protocols import (
    verify_preparation,
    verify_one_tile_identity,
    verify_process,
)

__all__ = [
    "state_tomography_1q",
    "process_tomography_1q",
    "chi_matrix_1q",
    "fidelity",
    "IDEAL_CHI",
    "corrected_expectation",
    "logical_state_vector",
    "verify_preparation",
    "verify_one_tile_identity",
    "verify_process",
]
