"""Quantum state and process tomography (paper §4.2-§4.4, Nielsen & Chuang).

Single-qubit process tomography by linear inversion: prepare the
informationally complete inputs {|0>, |1>, |+>, |+i>}, reconstruct each
output density matrix from logical Pauli expectations, and assemble the chi
matrix in the {I, X, Y, Z} basis.  Since the stabilizer backend returns
exact expectations, ideal operations reproduce their chi matrices exactly
(process fidelity 1 up to floating point), as in §4: "All verification is
performed in the absence of simulated hardware errors."
"""

from __future__ import annotations

import numpy as np

from repro.sim.gates import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z

__all__ = [
    "state_tomography_1q",
    "process_tomography_1q",
    "chi_matrix_1q",
    "fidelity",
    "IDEAL_CHI",
    "INPUT_STATES_1Q",
]

_PAULIS = (PAULI_I, PAULI_X, PAULI_Y, PAULI_Z)

#: Informationally complete single-qubit input states (density matrices).
INPUT_STATES_1Q: dict[str, np.ndarray] = {
    "0": np.array([[1, 0], [0, 0]], dtype=complex),
    "1": np.array([[0, 0], [0, 1]], dtype=complex),
    "+": np.array([[1, 1], [1, 1]], dtype=complex) / 2,
    "+i": np.array([[1, -1j], [1j, 1]], dtype=complex) / 2,
}


def state_tomography_1q(ex: float, ey: float, ez: float) -> np.ndarray:
    """Density matrix from Pauli expectations (§4.2 reconstruction)."""
    return (PAULI_I + ex * PAULI_X + ey * PAULI_Y + ez * PAULI_Z) / 2


def process_tomography_1q(outputs: dict[str, np.ndarray]) -> np.ndarray:
    """Linear-inversion process map from the four canonical outputs.

    ``outputs[k]`` is the reconstructed output density matrix for input
    ``INPUT_STATES_1Q[k]``.  Returns the process as a 4x4 superoperator
    acting on vectorized density matrices (column stacking).
    """
    required = set(INPUT_STATES_1Q)
    if set(outputs) != required:
        raise ValueError(f"need outputs for inputs {sorted(required)}")
    # Build E(rho) on the matrix-unit basis |i><j| by linearity:
    # E(|0><0|) = E(rho_0); E(|1><1|) = E(rho_1);
    # E(|0><1|) = E(rho_+) + i E(rho_{+i}) - (1+i)/2 (E(rho_0)+E(rho_1)).
    e00 = outputs["0"]
    e11 = outputs["1"]
    e01 = outputs["+"] + 1j * outputs["+i"] - (1 + 1j) / 2 * (e00 + e11)
    e10 = e01.conj().T
    basis_out = {(0, 0): e00, (0, 1): e01, (1, 0): e10, (1, 1): e11}
    s = np.zeros((4, 4), dtype=complex)
    for (i, j), mat in basis_out.items():
        col = np.zeros((2, 2), dtype=complex)
        col[i, j] = 1
        s[:, np.ravel_multi_index((j, i), (2, 2))] = mat.reshape(-1, order="F")
    return s


def chi_matrix_1q(outputs: dict[str, np.ndarray]) -> np.ndarray:
    """Chi (process) matrix in the {I, X, Y, Z} basis (Nielsen & Chuang 8.4.2).

    E(rho) = sum_{mn} chi_{mn} P_m rho P_n^dag, reconstructed by linear
    inversion from the superoperator.
    """
    s = process_tomography_1q(outputs)
    # Transfer matrix from chi: S = sum_mn chi_mn (P_n^T (x) P_m) with column
    # stacking; invert via the orthogonality of the Pauli basis.
    chi = np.zeros((4, 4), dtype=complex)
    for m, pm in enumerate(_PAULIS):
        for n, pn in enumerate(_PAULIS):
            basis_op = np.kron(pn.conj(), pm)
            chi[m, n] = np.trace(basis_op.conj().T @ s) / 4
    return chi


def chi_of_unitary(u: np.ndarray) -> np.ndarray:
    """Ideal chi matrix of a single-qubit unitary."""
    coeffs = np.array([np.trace(p.conj().T @ u) / 2 for p in _PAULIS])
    return np.outer(coeffs, coeffs.conj())


def fidelity(chi: np.ndarray, chi_ideal: np.ndarray) -> float:
    """Process fidelity Tr[chi chi_ideal] / (Tr chi  Tr chi_ideal)."""
    num = np.trace(chi @ chi_ideal).real
    den = (np.trace(chi) * np.trace(chi_ideal)).real
    if den <= 0:
        raise ValueError("degenerate chi matrices")
    return float(num / den)


#: Ideal chi matrices of the verified one-tile operations.
IDEAL_CHI: dict[str, np.ndarray] = {
    "I": chi_of_unitary(PAULI_I),
    "X": chi_of_unitary(PAULI_X),
    "Y": chi_of_unitary(PAULI_Y),
    "Z": chi_of_unitary(PAULI_Z),
    "H": chi_of_unitary((PAULI_X + PAULI_Z) / np.sqrt(2)),
    "S": chi_of_unitary(np.diag([1, 1j])),
}
