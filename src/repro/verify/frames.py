"""Pauli-frame post-processing (paper §4.5).

"One typically tracks the Pauli frame to reconstruct logical operators post
hoc ... TISCC gives users the needed information to combine measurement
outcomes with expectation values of logical operators to obtain correct
results."  The ledgers live on
:class:`~repro.code.logical_qubit.TrackedOperator`; these helpers apply them
to simulation results.
"""

from __future__ import annotations

import numpy as np

from repro.code.logical_qubit import LogicalQubit, TrackedOperator
from repro.sim.interpreter import RunResult

__all__ = ["corrected_expectation", "logical_state_vector", "logical_pauli_vector"]


def corrected_expectation(result: RunResult, op: TrackedOperator) -> float:
    """<L> = raw expectation of the representative x product of ledger signs."""
    value = float(result.expectation(op.pauli))
    for label in op.corrections:
        value *= result.sign(label)
    return value


def logical_pauli_vector(result: RunResult, lq: LogicalQubit) -> tuple[float, float, float]:
    """(<X_L>, <Y_L>, <Z_L>) with all ledger corrections applied."""
    return (
        corrected_expectation(result, lq.logical_x),
        corrected_expectation(result, lq.logical_y()),
        corrected_expectation(result, lq.logical_z),
    )


def logical_state_vector(result: RunResult, lq: LogicalQubit) -> np.ndarray:
    """Logical single-qubit density matrix from Pauli expectations.

    rho = (I + <X>X + <Y>Y + <Z>Z) / 2 — the §4.2 state-tomography
    reconstruction (Nielsen & Chuang) applied to the logical subspace.
    """
    from repro.sim.gates import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z

    ex, ey, ez = logical_pauli_vector(result, lq)
    return (PAULI_I + ex * PAULI_X + ey * PAULI_Y + ez * PAULI_Z) / 2
