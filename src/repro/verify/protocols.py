"""End-to-end verification protocols (paper §4.2-§4.4).

Implements the paper's procedure: prepare encoded logical states with the
verified preparation circuits, apply the operation under test, reconstruct
logical density/process matrices from exact stabilizer expectations, and
compare with expectations.  "All verification is performed in the absence
of simulated hardware errors."
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import grid_for_patch
from repro.hardware.model import HardwareModel
from repro.sim.interpreter import CircuitInterpreter
from repro.verify.frames import logical_pauli_vector
from repro.verify.tomography import (
    IDEAL_CHI,
    INPUT_STATES_1Q,
    chi_matrix_1q,
    fidelity,
    state_tomography_1q,
)

__all__ = [
    "prepare_logical_input",
    "verify_preparation",
    "verify_process",
    "verify_one_tile_identity",
]


def _fresh(dx: int, dz: int, arrangement: Arrangement, margin: tuple[int, int] = (2, 2)):
    grid = grid_for_patch(None, dx, dz, margin)
    model = HardwareModel(grid)
    lq = LogicalQubit(grid, model, dx=dx, dz=dz, arrangement=arrangement)
    occ0 = grid.occupancy()
    circuit = HardwareCircuit()
    return grid, model, lq, circuit, occ0


def prepare_logical_input(
    lq: LogicalQubit, circuit: HardwareCircuit, key: str, rounds: int = 1
) -> None:
    """Encode one of the informationally complete inputs {0, 1, +, +i}.

    Built from the §4.2-verified preparation circuits: Prepare Z/X for the
    stabilizer states, a logical Pauli X for |1>, and Inject Y for |+i>.
    """
    if key == "0":
        lq.prepare(circuit, basis="Z", rounds=rounds)
    elif key == "1":
        lq.prepare(circuit, basis="Z", rounds=rounds)
        lq.apply_pauli(circuit, "X")
    elif key == "+":
        lq.prepare(circuit, basis="X", rounds=rounds)
    elif key == "+i":
        lq.inject_state(circuit, "Y", rounds=rounds)
    else:
        raise ValueError(f"unknown input state {key!r}")


def verify_preparation(
    dx: int,
    dz: int,
    arrangement: Arrangement = Arrangement.STANDARD,
    state: str = "0",
    rounds: int = 1,
    seed: int = 0,
    margin: tuple[int, int] = (2, 2),
) -> float:
    """State-tomography fidelity of a preparation circuit (§4.2).

    Returns the fidelity <psi| rho |psi> of the reconstructed logical
    density matrix against the ideal state; exactly 1.0 for correct
    circuits on the noiseless backend.
    """
    grid, _model, lq, circuit, occ0 = _fresh(dx, dz, arrangement, margin)
    prepare_logical_input(lq, circuit, state, rounds)
    result = CircuitInterpreter(grid, seed=seed).run(circuit, occ0)
    ex, ey, ez = logical_pauli_vector(result, lq)
    rho = state_tomography_1q(ex, ey, ez)
    ideal = INPUT_STATES_1Q[state]
    return float(np.real(np.trace(rho @ ideal)))


def verify_process(
    dx: int,
    dz: int,
    arrangement: Arrangement,
    apply_fn: Callable[[LogicalQubit, HardwareCircuit], LogicalQubit | None],
    ideal: str | np.ndarray = "I",
    rounds: int = 1,
    seed: int = 0,
    margin: tuple[int, int] = (2, 2),
) -> float:
    """Single-qubit process-tomography fidelity of a one-tile operation (§4.3).

    ``apply_fn(lq, circuit)`` applies the operation (returning the possibly
    re-labelled LogicalQubit).  ``ideal`` names an entry of
    :data:`~repro.verify.tomography.IDEAL_CHI` or provides a chi matrix.
    """
    outputs: dict[str, np.ndarray] = {}
    for key in INPUT_STATES_1Q:
        grid, _model, lq, circuit, occ0 = _fresh(dx, dz, arrangement, margin)
        prepare_logical_input(lq, circuit, key, rounds)
        lq_out = apply_fn(lq, circuit) or lq
        result = CircuitInterpreter(grid, seed=seed).run(circuit, occ0)
        ex, ey, ez = logical_pauli_vector(result, lq_out)
        outputs[key] = state_tomography_1q(ex, ey, ez)
    chi = chi_matrix_1q(outputs)
    chi_ideal = IDEAL_CHI[ideal] if isinstance(ideal, str) else ideal
    return fidelity(chi, chi_ideal)


def verify_one_tile_identity(
    dx: int,
    dz: int,
    arrangement: Arrangement,
    apply_fn: Callable[[LogicalQubit, HardwareCircuit], LogicalQubit | None],
    rounds: int = 1,
    seed: int = 0,
    margin: tuple[int, int] = (2, 2),
) -> float:
    """Process fidelity against the identity — for Idle, Flip Patch,
    Swap Left, and Move Right, which are "expected (and verified) to yield a
    process matrix that is consistent with the identity process" (§4.3)."""
    return verify_process(dx, dz, arrangement, apply_fn, "I", rounds, seed, margin)
