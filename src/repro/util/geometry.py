"""Fine-grid geometry shared by the hardware and surface-code layers.

The trapped-ion architecture (paper §3.1) tiles a repeating unit
``{M, O, M, J, M, O, M}`` — two three-zone straight segments, one pointing
right and one pointing down, joined by a junction — over the plane.  In fine
coordinates with a 420 µm pitch this means a site exists at ``(r, c)`` iff
``r % 4 == 0`` or ``c % 4 == 0``:

* ``J`` (junction) when both are ``0 (mod 4)``;
* ``O`` (operation zone) at the centre of each segment
  (``r % 4 == 0 and c % 4 == 2`` or ``c % 4 == 0 and r % 4 == 2``);
* ``M`` (memory zone) at the remaining lattice positions.

qsite indices are ``r * width + c`` over the fine grid.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["SiteType", "site_type_at", "site_exists", "ZONE_PITCH_M"]

#: Trapping-zone width (fine-grid pitch) in metres — paper §3.2: 420 µm.
ZONE_PITCH_M = 420e-6


class SiteType(str, Enum):
    """Role of a fine-grid site in the trapped-ion architecture."""

    MEMORY = "M"
    OPERATION = "O"
    JUNCTION = "J"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SiteType.{self.name}"


def site_exists(r: int, c: int) -> bool:
    """A fine-grid position holds a site iff it lies on a segment or junction."""
    return r % 4 == 0 or c % 4 == 0


def site_type_at(r: int, c: int) -> SiteType:
    """Classify the fine-grid position ``(r, c)``; raises off-lattice."""
    rm, cm = r % 4, c % 4
    if rm == 0 and cm == 0:
        return SiteType.JUNCTION
    if rm == 0:
        return SiteType.OPERATION if cm == 2 else SiteType.MEMORY
    if cm == 0:
        return SiteType.OPERATION if rm == 2 else SiteType.MEMORY
    raise ValueError(f"({r}, {c}) is not a lattice site (cell interior)")
