"""Dependency-free statistics for cross-engine equivalence checks.

The frame-sampling path is only trustworthy if its samples are
statistically indistinguishable from the packed-tableau engine's, so the
test suite and benchmarks need two standard tools without pulling in
scipy: Wilson score intervals for logical-error-rate agreement, and a
chi-square homogeneity test over per-detector firing marginals (one 2x2
table per detector, statistics summed, survival function via the
Wilson-Hilferty cube-root normal approximation — accurate to ~1e-3 in the
tail for the degrees of freedom used here, which is far tighter than the
test thresholds).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "wilson_interval",
    "intervals_overlap",
    "chi2_sf",
    "two_proportion_chi2",
    "detector_marginal_chi2",
]


def wilson_interval(successes: int, n: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Well-behaved at 0 and 1 (never collapses to a point at the boundary),
    which is what makes it the right interval for comparing small logical
    error rates between engines.
    """
    if n < 1:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def intervals_overlap(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Do two (lo, hi) intervals intersect?"""
    return a[0] <= b[1] and b[0] <= a[1]


def chi2_sf(stat: float, dof: int) -> float:
    """Chi-square survival function P(X >= stat) via Wilson-Hilferty.

    ``(X/k)^(1/3)`` is approximately normal with mean ``1 - 2/(9k)`` and
    variance ``2/(9k)``; the tail probability follows from ``erfc``.
    """
    if dof < 1:
        raise ValueError("need at least one degree of freedom")
    if stat <= 0:
        return 1.0
    mean = 1.0 - 2.0 / (9.0 * dof)
    sd = math.sqrt(2.0 / (9.0 * dof))
    zscore = ((stat / dof) ** (1.0 / 3.0) - mean) / sd
    return 0.5 * math.erfc(zscore / math.sqrt(2.0))


def two_proportion_chi2(k_a: int, n_a: int, k_b: int, n_b: int) -> float:
    """Pearson chi-square statistic (1 dof) of a 2x2 homogeneity table.

    Tests whether two Bernoulli samples (``k`` successes of ``n``) share a
    rate.  Returns 0 when the pooled rate is degenerate (0 or 1).
    """
    n = n_a + n_b
    k = k_a + k_b
    if n == 0 or k == 0 or k == n:
        return 0.0
    p = k / n
    stat = 0.0
    for ki, ni in ((k_a, n_a), (k_b, n_b)):
        e1 = ni * p
        e0 = ni * (1 - p)
        stat += (ki - e1) ** 2 / e1 + ((ni - ki) - e0) ** 2 / e0
    return stat


def detector_marginal_chi2(
    counts_a: np.ndarray, n_a: int, counts_b: np.ndarray, n_b: int
) -> tuple[float, int, float]:
    """Summed per-detector chi-square between two engines' marginals.

    ``counts_x[d]`` is how many of ``n_x`` shots fired detector ``d``.
    Detectors whose pooled count is degenerate (never fired, or always
    fired, in both samples) carry no information and are excluded from the
    degrees of freedom.  Returns ``(statistic, dof, p_value)``; a tiny
    p-value means the two samples are distinguishable.
    """
    counts_a = np.asarray(counts_a, dtype=np.int64)
    counts_b = np.asarray(counts_b, dtype=np.int64)
    if counts_a.shape != counts_b.shape:
        raise ValueError("detector count vectors must have matching shape")
    stat = 0.0
    dof = 0
    for k_a, k_b in zip(counts_a.tolist(), counts_b.tolist()):
        k = k_a + k_b
        if k == 0 or k == n_a + n_b:
            continue
        stat += two_proportion_chi2(k_a, n_a, k_b, n_b)
        dof += 1
    if dof == 0:
        return (0.0, 0, 1.0)
    return (stat, dof, chi2_sf(stat, dof))
