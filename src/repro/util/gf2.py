"""Dense GF(2) linear algebra on uint8 NumPy arrays.

Every routine takes and returns arrays whose entries are 0/1 (dtype uint8).
These are the workhorses behind parity-check-matrix maintenance in
:class:`repro.code.logical_qubit.LogicalQubit` and behind Pauli-string
membership tests in the stabilizer simulator.  Matrices here are small
(a few hundred rows at most), so a dense vectorized implementation is the
right trade-off per the make-it-work-first optimization workflow.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
    "gf2_nullspace",
    "gf2_row_reduce_tracked",
    "gf2_in_rowspace",
    "gf2_decompose",
]


def _as_gf2(a: np.ndarray) -> np.ndarray:
    arr = np.asarray(a, dtype=np.uint8) & 1
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def gf2_rref(a: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(rref_matrix, pivot_columns)``.  Zero rows are kept (trailing).
    """
    m = _as_gf2(a).copy()
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        hits = np.nonzero(m[r:, c])[0]
        if hits.size == 0:
            continue
        pivot = r + int(hits[0])
        if pivot != r:
            m[[r, pivot]] = m[[pivot, r]]
        # Clear column c everywhere except the pivot row (vectorized XOR).
        mask = m[:, c].astype(bool)
        mask[r] = False
        m[mask] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def gf2_rank(a: np.ndarray) -> int:
    """Rank of ``a`` over GF(2)."""
    _, pivots = gf2_rref(a)
    return len(pivots)


def gf2_row_reduce_tracked(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Row reduce ``a`` while tracking the transformation.

    Returns ``(rref, T, pivots)`` with ``T @ a == rref (mod 2)``.  ``T`` is the
    product of the elementary row operations, useful to express each reduced
    row as a combination of the original rows (e.g. to write a stabilizer as a
    product of the original generators).
    """
    m = _as_gf2(a).copy()
    rows, cols = m.shape
    t = np.eye(rows, dtype=np.uint8)
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        hits = np.nonzero(m[r:, c])[0]
        if hits.size == 0:
            continue
        pivot = r + int(hits[0])
        if pivot != r:
            m[[r, pivot]] = m[[pivot, r]]
            t[[r, pivot]] = t[[pivot, r]]
        mask = m[:, c].astype(bool)
        mask[r] = False
        m[mask] ^= m[r]
        t[mask] ^= t[r]
        pivots.append(c)
        r += 1
    return m, t, pivots


def gf2_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Solve ``x @ a == b`` over GF(2) for a row vector ``x``.

    ``a`` is (rows x cols), ``b`` is (cols,).  Returns one solution as a
    uint8 vector of length ``rows`` or ``None`` when ``b`` is not in the
    row space of ``a``.
    """
    a = _as_gf2(a)
    b = np.asarray(b, dtype=np.uint8) & 1
    if b.shape != (a.shape[1],):
        raise ValueError(f"shape mismatch: a is {a.shape}, b is {b.shape}")
    rref, t, pivots = gf2_row_reduce_tracked(a)
    x = np.zeros(a.shape[0], dtype=np.uint8)
    residual = b.copy()
    for row_idx, col in enumerate(pivots):
        if residual[col]:
            residual ^= rref[row_idx]
            x ^= t[row_idx]
    if residual.any():
        return None
    return x


def gf2_in_rowspace(a: np.ndarray, b: np.ndarray) -> bool:
    """True when row vector ``b`` lies in the GF(2) row space of ``a``."""
    return gf2_solve(a, b) is not None


def gf2_decompose(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Alias of :func:`gf2_solve`: coefficients expressing ``b`` over rows of ``a``."""
    return gf2_solve(a, b)


def gf2_nullspace(a: np.ndarray) -> np.ndarray:
    """Basis of the right null space: rows ``v`` with ``a @ v == 0 (mod 2)``.

    Returns an array of shape (dim_null, cols); empty (0, cols) when trivial.
    """
    a = _as_gf2(a)
    rows, cols = a.shape
    rref, pivots = gf2_rref(a)
    pivot_set = set(pivots)
    free_cols = [c for c in range(cols) if c not in pivot_set]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for k, fc in enumerate(free_cols):
        basis[k, fc] = 1
        for row_idx, pc in enumerate(pivots):
            if rref[row_idx, fc]:
                basis[k, pc] = 1
    return basis
