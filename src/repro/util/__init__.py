"""Shared low-level utilities: GF(2) linear algebra, grid geometry, and
the statistics helpers behind the cross-engine equivalence checks."""

from repro.util.stats import (
    chi2_sf,
    detector_marginal_chi2,
    intervals_overlap,
    two_proportion_chi2,
    wilson_interval,
)
from repro.util.gf2 import (
    gf2_rank,
    gf2_rref,
    gf2_solve,
    gf2_nullspace,
    gf2_row_reduce_tracked,
    gf2_in_rowspace,
    gf2_decompose,
)

__all__ = [
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
    "gf2_nullspace",
    "gf2_row_reduce_tracked",
    "gf2_in_rowspace",
    "gf2_decompose",
    "wilson_interval",
    "intervals_overlap",
    "chi2_sf",
    "two_proportion_chi2",
    "detector_marginal_chi2",
]
