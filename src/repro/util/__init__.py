"""Shared low-level utilities: GF(2) linear algebra and grid geometry."""

from repro.util.gf2 import (
    gf2_rank,
    gf2_rref,
    gf2_solve,
    gf2_nullspace,
    gf2_row_reduce_tracked,
    gf2_in_rowspace,
    gf2_decompose,
)

__all__ = [
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
    "gf2_nullspace",
    "gf2_row_reduce_tracked",
    "gf2_in_rowspace",
    "gf2_decompose",
]
