"""Top-level TISCC compiler facade (paper App. B usage pattern).

"To use TISCC, one typically initializes the GridManager with the size of
the hardware grid.  Then, LogicalQubit(s) are added.  Finally, primitive
operations from Table 2 are appended using the appropriate LogicalQubit
methods.  Lastly, validity of the hardware circuit is enforced through the
GridManager and the circuit and/or final resource counts are printed."

:class:`TISCC` wraps that flow at the tile level: allocate a tile grid,
execute Table 1/Table 3 instructions by name, and collect the time-resolved
circuit, validity report, resource estimate, and (optionally) a simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.derived import DerivedInstructions
from repro.core.instructions import InstructionResult
from repro.core.tiles import TileGrid
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.profile import HardwareProfile
from repro.hardware.resources import ResourceReport, estimate_resources
from repro.hardware.simd import SimdReport, simd_schedule
from repro.hardware.validity import ValidityReport, check_circuit
from repro.sim.batch import BatchResult, BatchRunner
from repro.sim.interpreter import CircuitInterpreter, RunResult
from repro.sim.noise import NoiseModel

__all__ = ["TISCC", "CompiledOperation"]


@dataclass
class CompiledOperation:
    """A compiled program: circuit, per-instruction results, bookkeeping."""

    circuit: HardwareCircuit
    results: list[InstructionResult]
    initial_occupancy: dict[int, int]
    operation: str = ""
    dx: int = 0
    dz: int = 0
    validity: ValidityReport | None = None
    resources: ResourceReport | None = None
    #: Wall-clock phase timings of :meth:`TISCC.compile`, in seconds.
    compile_seconds: float = 0.0
    validate_seconds: float = 0.0
    estimate_seconds: float = 0.0
    simd_seconds: float = 0.0
    #: What the SIMD rescheduling pass did (None when it did not run).
    simd_report: SimdReport | None = None
    #: The pre-SIMD schedule — kept as the equivalence oracle when the
    #: rescheduling pass ran, None otherwise.
    unscheduled_circuit: HardwareCircuit | None = None

    @property
    def logical_timesteps(self) -> int:
        return sum(r.logical_timesteps for r in self.results)

    def to_text(self) -> str:
        return self.circuit.to_text(header=f"TISCC {self.operation} dx={self.dx} dz={self.dz}")


class TISCC:
    """Compile tile-level programs to trapped-ion hardware circuits.

    A program is a list of steps ``(mnemonic, *args)``; supported mnemonics
    cover Table 1 and Table 3 (see ``MNEMONICS``).  ``rounds`` overrides the
    number of error-correction rounds per logical time-step (default dt).
    """

    MNEMONICS = (
        "PrepareZ", "PrepareX", "InjectY", "InjectT", "MeasureZ", "MeasureX",
        "PauliX", "PauliY", "PauliZ", "Hadamard", "Idle", "MeasureZZ",
        "MeasureXX", "BellPrepare", "BellMeasure", "Move", "ExtendSplit",
        "MergeContract", "PatchExtension",
    )

    def __init__(
        self,
        dx: int,
        dz: int,
        tile_rows: int = 1,
        tile_cols: int = 2,
        rounds: int | None = None,
        profile: "HardwareProfile | str | None" = None,
    ):
        self.tiles = TileGrid(tile_rows, tile_cols, dx, dz, profile=profile)
        self.ops = DerivedInstructions(self.tiles, rounds=rounds)

    @property
    def grid(self):
        return self.tiles.grid

    @property
    def profile(self) -> "HardwareProfile":
        """The hardware profile every compiled circuit is timed against."""
        return self.tiles.grid.profile

    #: Mnemonic -> human-readable argument signature and accepted arity range.
    SIGNATURES: dict[str, tuple[str, int, int]] = {
        "PrepareZ": ("(tile)", 1, 1),
        "PrepareX": ("(tile)", 1, 1),
        "InjectY": ("(tile)", 1, 1),
        "InjectT": ("(tile)", 1, 1),
        "MeasureZ": ("(tile)", 1, 1),
        "MeasureX": ("(tile)", 1, 1),
        "PauliX": ("(tile)", 1, 1),
        "PauliY": ("(tile)", 1, 1),
        "PauliZ": ("(tile)", 1, 1),
        "Hadamard": ("(tile)", 1, 1),
        "Idle": ("(tile)", 1, 1),
        "MeasureZZ": ("(tile_a, tile_b)", 2, 2),
        "MeasureXX": ("(tile_a, tile_b)", 2, 2),
        "BellPrepare": ("(tile_a, tile_b)", 2, 2),
        "BellMeasure": ("(tile_a, tile_b)", 2, 2),
        "Move": ("(tile, direction='right')", 1, 2),
        "ExtendSplit": ("(tile, direction='right')", 1, 2),
        "MergeContract": ("(tile_a, tile_b, keep='near')", 2, 3),
        "PatchExtension": ("(tile, direction='right')", 1, 2),
    }

    def compile(
        self,
        program: list[tuple],
        operation: str = "",
        validate: bool = True,
        estimate: bool = True,
        simd: bool = False,
    ) -> CompiledOperation:
        """Execute a program, returning the compiled operation bundle.

        ``validate``/``estimate`` toggle the §3.3 validity replay and §3.4
        resource estimation (both on by default); per-phase wall-clock
        timings are recorded on the returned bundle.  ``simd`` runs the
        beam-pass rescheduling backend phase (:mod:`repro.hardware.simd`)
        with the profile's ``simd_*`` fields: the bundle's ``circuit``
        becomes the compacted schedule, the original stays on
        ``unscheduled_circuit`` as the equivalence oracle, and validation /
        estimation apply to the rescheduled circuit.
        """
        occ0 = self.tiles.occupancy_snapshot()
        circuit = HardwareCircuit()
        results = []
        t0 = time.perf_counter()
        for step in program:
            mnemonic, *args = step
            results.append(self._dispatch(circuit, mnemonic, args))
        compiled = CompiledOperation(
            circuit=circuit,
            results=results,
            initial_occupancy=occ0,
            operation=operation or "+".join(s[0] for s in program),
            dx=self.tiles.dx,
            dz=self.tiles.dz,
        )
        compiled.compile_seconds = time.perf_counter() - t0
        if simd:
            prof = self.profile
            t0 = time.perf_counter()
            scheduled, report = simd_schedule(
                circuit,
                self.grid,
                width=prof.simd_width,
                mode=prof.simd_mode,
                overhead_us=prof.simd_pass_overhead_us,
            )
            compiled.simd_seconds = time.perf_counter() - t0
            compiled.unscheduled_circuit = circuit
            compiled.circuit = scheduled
            compiled.simd_report = report
        if validate:
            t0 = time.perf_counter()
            compiled.validity = check_circuit(self.grid, compiled.circuit, occ0)
            compiled.validate_seconds = time.perf_counter() - t0
        if estimate:
            t0 = time.perf_counter()
            compiled.resources = estimate_resources(
                self.grid,
                compiled.circuit,
                compiled.operation,
                self.tiles.dx,
                self.tiles.dz,
                simd_report=compiled.simd_report,
            )
            compiled.estimate_seconds = time.perf_counter() - t0
        return compiled

    def _dispatch(self, circuit, mnemonic: str, args) -> InstructionResult:
        ops = self.ops
        table = {
            "PrepareZ": lambda c: ops.prepare_z(circuit, c),
            "PrepareX": lambda c: ops.prepare_x(circuit, c),
            "InjectY": lambda c: ops.inject(circuit, c, "Y"),
            "InjectT": lambda c: ops.inject(circuit, c, "T"),
            "MeasureZ": lambda c: ops.measure(circuit, c, "Z"),
            "MeasureX": lambda c: ops.measure(circuit, c, "X"),
            "PauliX": lambda c: ops.pauli(circuit, c, "X"),
            "PauliY": lambda c: ops.pauli(circuit, c, "Y"),
            "PauliZ": lambda c: ops.pauli(circuit, c, "Z"),
            "Hadamard": lambda c: ops.hadamard(circuit, c),
            "Idle": lambda c: ops.idle(circuit, c),
            "MeasureZZ": lambda a, b: ops.measure_zz(circuit, a, b),
            "MeasureXX": lambda a, b: ops.measure_xx(circuit, a, b),
            "BellPrepare": lambda a, b: ops.bell_prepare(circuit, a, b),
            "BellMeasure": lambda a, b: ops.bell_measure(circuit, a, b),
            "Move": lambda c, d="right": ops.move(circuit, c, d),
            "ExtendSplit": lambda c, d="right": ops.extend_split(circuit, c, d),
            "MergeContract": lambda a, b, k="near": ops.merge_contract(circuit, a, b, k),
            "PatchExtension": lambda c, d="right": ops.patch_extension(circuit, c, d),
        }
        try:
            fn = table[mnemonic]
        except KeyError:
            raise ValueError(
                f"unknown mnemonic {mnemonic!r}; supported: {', '.join(self.MNEMONICS)}"
            ) from None
        sig, lo, hi = self.SIGNATURES[mnemonic]
        if not lo <= len(args) <= hi:
            raise ValueError(
                f"wrong number of arguments for {mnemonic!r}: got {len(args)}, "
                f"expected {mnemonic}{sig}"
            )
        return fn(*args)

    def simulate(
        self,
        compiled: CompiledOperation,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
    ) -> RunResult:
        """Replay a compiled operation on the stabilizer backend.

        ``seed`` is anything ``numpy.random.default_rng`` accepts; use
        :func:`repro.sim.batch.per_shot_seed` to reproduce one shot of a
        batched run.
        """
        interp = CircuitInterpreter(self.grid, seed=seed)
        return interp.run(compiled.circuit, compiled.initial_occupancy)

    def simulate_shots(
        self,
        compiled: CompiledOperation,
        n_shots: int,
        seed: int | None = 0,
        forced_outcomes: dict | None = None,
        independent_streams: bool = True,
        noise: NoiseModel | None = None,
        noise_seed: int | None = None,
        shot_offset: int = 0,
        injections: list | None = None,
    ) -> BatchResult:
        """Replay a compiled operation across a whole batch of Monte-Carlo shots.

        Runs on the packed batched backend (:mod:`repro.sim.batch`): outcome
        bitmaps, determinism flags, and quasi-probability weights come back
        as per-shot arrays.  With ``independent_streams`` (default) shot
        ``k`` reproduces ``simulate`` seeded with the per-shot stream
        ``per_shot_seed(seed, shot_offset + k)`` exactly; turn it off for
        maximum throughput when only batch statistics matter.

        ``noise`` (a :class:`~repro.sim.noise.NoiseModel`) injects
        hardware-calibrated Pauli channels into the replay; ``injections``
        adds deterministic :class:`~repro.sim.batch.PauliInjection` faults
        at fixed instruction positions; see
        :meth:`~repro.sim.batch.BatchRunner.run_shots`.
        """
        runner = BatchRunner(self.grid)
        return runner.run_shots(
            compiled.circuit,
            compiled.initial_occupancy,
            n_shots,
            seed=seed,
            forced_outcomes=forced_outcomes,
            independent_streams=independent_streams,
            noise=noise,
            noise_seed=noise_seed,
            shot_offset=shot_offset,
            injections=injections,
        )
