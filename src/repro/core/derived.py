"""The derived instruction set of Table 3.

These could be built from Table 1 instructions, but TISCC "implements them
more efficiently in terms of primitive operations by exploiting commutation
of stabilizers" — e.g. Extend-Split fuses a Prepare X with the following
Measure ZZ into a single time-step because the |+> state need not be
fault-tolerantly encoded before the joint measurement (App. A).
"""

from __future__ import annotations

from repro.code import patch_ops
from repro.core.instructions import InstructionResult, InstructionSet
from repro.hardware.circuit import HardwareCircuit

__all__ = ["DerivedInstructions", "TABLE3"]

#: Table 3 rows: operation -> (tiles in/out, logical time-steps).
TABLE3: dict[str, tuple[str, int]] = {
    "BellPrepare": ("2/2", 1),
    "BellMeasure": ("2/2", 1),
    "ExtendSplit": ("2/2", 1),
    "MergeContract": ("2/2", 1),
    "Move": ("2/2", 1),
    "PatchContraction": ("2/1", 0),
    "PatchExtension": ("1/2", 1),
}


class DerivedInstructions(InstructionSet):
    """Table 3 operations on a tile grid (extends the Table 1 set)."""

    # -------------------------------------------------------- Bell states
    def bell_prepare(self, circuit: HardwareCircuit, coord_a, coord_b) -> InstructionResult:
        """Initialize a Bell state on two adjacent uninitialized tiles (1 step).

        Both tiles are prepared transversally in the basis fixed by the
        joint measurement (|+> pairs for a ZZ seam, |0> for XX), then merged
        and split in a single logical time-step — the preparations fuse with
        the surgery (App. A).
        """
        orientation, first, second = self.tiles.orientation_between(coord_a, coord_b)
        self.tiles.require_uninitialized(first)
        self.tiles.require_uninitialized(second)
        basis = "X" if orientation == "horizontal" else "Z"
        lq_a = self.tiles.new_patch(first)
        lq_b = self.tiles.new_patch(second)
        lq_a.transversal_prepare(circuit, basis)
        lq_b.transversal_prepare(circuit, basis)
        lq_a.initialized = lq_b.initialized = True
        mr = patch_ops.merge(circuit, lq_a, lq_b, orientation, rounds=self.rounds)
        sr = patch_ops.split(circuit, mr)
        self.tiles[first].patch = sr.left
        self.tiles[second].patch = sr.right
        self.tiles[first].timesteps_used += 1
        self.tiles[second].timesteps_used += 1

        def joint_value(result) -> int:
            return mr.outcome_sign(result)

        def conjugate_value(result) -> int:
            v = 1
            for label in sr.frame_labels:
                v *= result.sign(label)
            return v

        return InstructionResult(
            "BellPrepare",
            (first, second),
            1,
            value=joint_value,
            labels={"joint": mr.joint_labels, "seam": sr.frame_labels,
                    "orientation": orientation},
            frames=[("conjugate_pair", conjugate_value)],
        )

    def bell_measure(self, circuit: HardwareCircuit, coord_a, coord_b) -> InstructionResult:
        """Destructive Bell-basis measurement of two adjacent tiles (1 step).

        The joint XX/ZZ comes from a merge-split; the complementary joint
        operator is then read from transversal single-qubit measurements of
        both patches.  Both tiles end uninitialized.
        """
        orientation, first, second = self.tiles.orientation_between(coord_a, coord_b)
        joint = self.measure_joint(circuit, first, second)
        comp_basis = "X" if orientation == "horizontal" else "Z"
        ma = self.measure(circuit, first, comp_basis)
        mb = self.measure(circuit, second, comp_basis)
        frame = joint.frames[0][1]

        def complementary_value(result) -> int:
            # X_A X_B (or Z_A Z_B) needs the split's seam frame folded in.
            return ma.value(result) * mb.value(result) * frame(result)

        return InstructionResult(
            "BellMeasure",
            (first, second),
            1,
            value=joint.value,
            labels={"joint": joint.labels, "a": ma.labels, "b": mb.labels,
                    "orientation": orientation},
            frames=[("complementary", complementary_value)],
        )

    # ------------------------------------------------- extension family
    def patch_extension(
        self, circuit: HardwareCircuit, coord, direction="right"
    ) -> InstructionResult:
        """Extend a one-tile patch onto the neighbouring tile (1 step)."""
        lq = self.tiles.require_initialized(coord)
        orientation = "horizontal" if direction in ("right",) else "vertical"
        other = self.tiles.neighbors(coord)["right" if orientation == "horizontal" else "down"]
        self.tiles.require_uninitialized(other)
        mr = patch_ops.extend_patch(circuit, lq, orientation, rounds=self.rounds)
        self.tiles[coord].patch = mr.merged
        self.tiles[other].patch = mr.merged
        self.tiles[coord].timesteps_used += 1
        self.tiles[other].timesteps_used += 1
        res = InstructionResult("PatchExtension", (coord, other), 1)
        res.labels["merge_result"] = mr
        return res

    def patch_contraction(
        self, circuit: HardwareCircuit, ext_result: InstructionResult, keep: str = "near"
    ) -> InstructionResult:
        """Contract a two-tile patch back onto one tile (0 steps)."""
        mr = ext_result.labels["merge_result"]
        coord_near, coord_far = ext_result.tiles
        lq, sr = patch_ops.contract_patch(circuit, mr, keep=keep)
        keep_coord = coord_near if keep == "near" else coord_far
        drop_coord = coord_far if keep == "near" else coord_near
        self.tiles[keep_coord].patch = lq
        self.tiles[drop_coord].patch = None
        return InstructionResult(
            "PatchContraction", (keep_coord,), 0, labels={"seam": sr.frame_labels}
        )

    def move(self, circuit: HardwareCircuit, coord, direction="right") -> InstructionResult:
        """Move a patch to the adjacent tile: extension + contraction (1 step)."""
        ext = self.patch_extension(circuit, coord, direction)
        contraction = self.patch_contraction(circuit, ext, keep="far")
        return InstructionResult(
            "Move",
            (coord, contraction.tiles[0]),
            1,
            labels={"extension": ext.labels, "contraction": contraction.labels},
        )

    def extend_split(self, circuit: HardwareCircuit, coord, direction="right") -> InstructionResult:
        """Prepare X on the neighbour fused with Measure ZZ (1 step, App. A).

        Implemented as a patch extension followed by a split: the fresh
        column/row plays the role of the |+> patch, so the joint outcome is
        available after a single time-step.
        """
        ext = self.patch_extension(circuit, coord, direction)
        mr = ext.labels["merge_result"]
        sr = patch_ops.split(circuit, mr)
        near, far = ext.tiles
        self.tiles[near].patch = sr.left
        self.tiles[far].patch = sr.right

        def value(result) -> int:
            return mr.outcome_sign(result)

        def frame_sign(result) -> int:
            v = 1
            for label in sr.frame_labels:
                v *= result.sign(label)
            return v

        return InstructionResult(
            "ExtendSplit",
            (near, far),
            1,
            value=value,
            labels={"joint": mr.joint_labels, "seam": sr.frame_labels},
            frames=[("conjugate_pair", frame_sign)],
        )

    def merge_contract(
        self, circuit: HardwareCircuit, coord_a, coord_b, keep="near"
    ) -> InstructionResult:
        """Measure ZZ/XX fused with measuring one patch out (1 step, App. A)."""
        orientation, first, second = self.tiles.orientation_between(coord_a, coord_b)
        lq_a = self.tiles.require_initialized(first)
        lq_b = self.tiles.require_initialized(second)
        mr = patch_ops.merge(circuit, lq_a, lq_b, orientation, rounds=self.rounds)
        lq, sr = patch_ops.contract_patch(circuit, mr, keep=keep)
        keep_coord = first if keep == "near" else second
        drop_coord = second if keep == "near" else first
        self.tiles[keep_coord].patch = lq
        self.tiles[drop_coord].patch = None
        self.tiles[first].timesteps_used += 1
        self.tiles[second].timesteps_used += 1

        def value(result) -> int:
            return mr.outcome_sign(result)

        return InstructionResult(
            "MergeContract",
            (keep_coord,),
            1,
            value=value,
            labels={"joint": mr.joint_labels, "seam": sr.frame_labels},
        )
