"""The paper's primary contribution: the tile-based lattice-surgery compiler.

Implements the local lattice-surgery instruction set of Table 1 acting on
logical tiles (:mod:`repro.core.instructions`), the derived instruction set
of Table 3 (:mod:`repro.core.derived`), long-range CNOT via Bell chains
(§2.1, :mod:`repro.core.router`), and the top-level :class:`TISCC` compiler
facade (:mod:`repro.core.compiler`).
"""

from repro.core.tiles import Tile, TileGrid
from repro.core.compiler import TISCC, CompiledOperation

__all__ = ["Tile", "TileGrid", "TISCC", "CompiledOperation"]
