"""The local lattice-surgery instruction set of Table 1.

Every instruction acts on (and returns) one or two logical tiles.  Logical
time-steps follow Table 1: Prepare X/Z and Idle take 1 step (dt rounds of
error correction), Measure XX/ZZ takes 1 step (merge for dt rounds, split
for free thanks to the ancilla strip, fn 7), and the transversal
instructions take 0 steps.  Entangling gates are *not* in the set —
entangling operations are realized via the entangling measurements
Measure XX/ZZ (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.code import patch_ops
from repro.core.tiles import TileGrid
from repro.hardware.circuit import HardwareCircuit

__all__ = ["InstructionResult", "InstructionSet", "TABLE1"]

#: Table 1 rows: instruction -> (tiles in/out, logical time-steps).
TABLE1: dict[str, tuple[int, int]] = {
    "PrepareX": (1, 1),
    "PrepareZ": (1, 1),
    "InjectY": (1, 0),
    "InjectT": (1, 0),
    "MeasureX": (1, 0),
    "MeasureZ": (1, 0),
    "PauliX": (1, 0),
    "PauliY": (1, 0),
    "PauliZ": (1, 0),
    "Hadamard": (1, 0),
    "Idle": (1, 1),
    "MeasureXX": (2, 1),
    "MeasureZZ": (2, 1),
}


@dataclass
class InstructionResult:
    """Outcome bookkeeping for one executed instruction.

    ``value`` maps a simulator :class:`~repro.sim.interpreter.RunResult` to
    the instruction's logical measurement outcome (+/-1), where applicable.
    ``frames`` lists (tile, pauli) frame corrections conditioned on the run
    (functions of the result), per §4.5.
    """

    name: str
    tiles: tuple[tuple[int, int], ...]
    logical_timesteps: int
    value: Callable | None = None
    labels: dict = field(default_factory=dict)
    frames: list = field(default_factory=list)


class InstructionSet:
    """Executes Table 1 instructions on a :class:`TileGrid`."""

    def __init__(self, tiles: TileGrid, rounds: int | None = None):
        self.tiles = tiles
        #: Rounds per logical time-step (default dt = max(dx, dz), §2.2).
        self.rounds = rounds if rounds is not None else max(tiles.dx, tiles.dz)

    def _book(self, name: str, *coords) -> None:
        steps = TABLE1[name][1]
        for coord in coords:
            self.tiles[coord].timesteps_used += steps

    # ------------------------------------------------------------- 1 tile
    def prepare_z(self, circuit: HardwareCircuit, coord) -> InstructionResult:
        """Initialize an uninitialized tile to |0> fault-tolerantly (1 step)."""
        self.tiles.require_uninitialized(coord)
        lq = self.tiles.new_patch(coord)
        lq.prepare(circuit, basis="Z", rounds=self.rounds)
        self._book("PrepareZ", coord)
        return InstructionResult("PrepareZ", (coord,), 1)

    def prepare_x(self, circuit: HardwareCircuit, coord) -> InstructionResult:
        """Initialize an uninitialized tile to |+> fault-tolerantly (1 step)."""
        self.tiles.require_uninitialized(coord)
        lq = self.tiles.new_patch(coord)
        lq.prepare(circuit, basis="X", rounds=self.rounds)
        self._book("PrepareX", coord)
        return InstructionResult("PrepareX", (coord,), 1)

    def inject(self, circuit: HardwareCircuit, coord, which: str) -> InstructionResult:
        """Inject |Y> or |T> non-fault-tolerantly (0 steps)."""
        self.tiles.require_uninitialized(coord)
        lq = self.tiles.new_patch(coord)
        lq.inject_state(circuit, which, rounds=1)
        self._book(f"Inject{which}", coord)
        return InstructionResult(f"Inject{which}", (coord,), 0)

    def measure(self, circuit: HardwareCircuit, coord, basis: str) -> InstructionResult:
        """Measure a tile in the X/Z basis and make it uninitialized (0 steps)."""
        lq = self.tiles.require_initialized(coord)
        op = lq.logical_x if basis == "X" else lq.logical_z
        support = dict(op.pauli.ops)
        corrections = list(op.corrections)
        site_of = {ij: lq.layout.data_site(*ij) for ij in lq.data_ions}
        labels = lq.transversal_measure(circuit, basis=basis)

        def value(result) -> int:
            v = 1
            for ij, label in labels.items():
                if site_of[ij] in support:
                    v *= result.sign(label)
            for label in corrections:
                v *= result.sign(label)
            return v

        self._book(f"Measure{basis}", coord)
        return InstructionResult(
            f"Measure{basis}", (coord,), 0, value=value, labels=dict(labels)
        )

    def pauli(self, circuit: HardwareCircuit, coord, which: str) -> InstructionResult:
        """Apply logical Pauli X/Y/Z (0 steps)."""
        lq = self.tiles.require_initialized(coord)
        lq.apply_pauli(circuit, which)
        self._book(f"Pauli{which}", coord)
        return InstructionResult(f"Pauli{which}", (coord,), 0)

    def hadamard(self, circuit: HardwareCircuit, coord) -> InstructionResult:
        """Transversal Hadamard; leaves a rotated patch (0 steps, fn 4)."""
        lq = self.tiles.require_initialized(coord)
        lq.transversal_hadamard(circuit)
        self._book("Hadamard", coord)
        return InstructionResult("Hadamard", (coord,), 0)

    def idle(self, circuit: HardwareCircuit, coord) -> InstructionResult:
        """dt rounds of error correction (1 step)."""
        lq = self.tiles.require_initialized(coord)
        lq.idle(circuit, rounds=self.rounds)
        self._book("Idle", coord)
        return InstructionResult("Idle", (coord,), 1)

    # ------------------------------------------------------------ 2 tiles
    def measure_joint(
        self, circuit: HardwareCircuit, coord_a, coord_b
    ) -> InstructionResult:
        """Measure XX (vertical neighbours) or ZZ (horizontal) — 1 step.

        Merge for one logical time-step, then split; the split's seam
        outcomes become a Pauli-frame entry relating the two tiles (§4.5).
        """
        orientation, first, second = self.tiles.orientation_between(coord_a, coord_b)
        lq_a = self.tiles.require_initialized(first)
        lq_b = self.tiles.require_initialized(second)
        mr = patch_ops.merge(circuit, lq_a, lq_b, orientation, rounds=self.rounds)
        sr = patch_ops.split(circuit, mr)
        self.tiles[first].patch = sr.left
        self.tiles[second].patch = sr.right
        name = "MeasureZZ" if orientation == "horizontal" else "MeasureXX"

        def value(result) -> int:
            return mr.outcome_sign(result)

        def frame_sign(result) -> int:
            v = 1
            for label in sr.frame_labels:
                v *= result.sign(label)
            return v

        self._book(name, first, second)
        return InstructionResult(
            name,
            (first, second),
            1,
            value=value,
            labels={"joint": mr.joint_labels, "seam": sr.frame_labels},
            frames=[("conjugate_pair", frame_sign)],
        )

    def measure_zz(self, circuit, coord_a, coord_b) -> InstructionResult:
        res = self.measure_joint(circuit, coord_a, coord_b)
        if res.name != "MeasureZZ":
            raise ValueError("MeasureZZ requires horizontally-adjacent tiles (§2.3)")
        return res

    def measure_xx(self, circuit, coord_a, coord_b) -> InstructionResult:
        res = self.measure_joint(circuit, coord_a, coord_b)
        if res.name != "MeasureXX":
            raise ValueError("MeasureXX requires vertically-adjacent tiles (§2.3)")
        return res
