"""Logical tiles: the fundamental entities of the fault-tolerant layer (§2.3).

A logical tile is "an abstraction of the hardware area capable of supporting
a single surface code patch encoding one logical qubit": 2*ceil((dz+1)/2)
unit rows by 2*ceil((dx+1)/2) unit columns of hardware.  Tiles are
*initialized* when an operable surface-code patch occupies them and
*uninitialized* otherwise; Table 1 instructions toggle this status.  Tiles —
not patches — are the units of placement and scheduling (§2.1): the
:class:`TileGrid` tracks which tiles are free or busy and maps tile
coordinates onto grid origins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.code.logical_qubit import LogicalQubit
from repro.code.patch_layout import tile_unit_cols, tile_unit_rows
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.hardware.profile import HardwareProfile, get_profile

__all__ = ["Tile", "TileGrid"]


@dataclass
class Tile:
    """One logical tile at tile coordinate (row, col)."""

    coord: tuple[int, int]
    origin: tuple[int, int]  # hardware-unit origin
    patch: LogicalQubit | None = None
    #: Logical time-step counter: advanced by the instructions acting here.
    timesteps_used: int = 0

    @property
    def initialized(self) -> bool:
        return self.patch is not None and self.patch.initialized


class TileGrid:
    """A rectangular array of logical tiles over one GridManager.

    All tiles share the same code distances, so tile (R, C) has its hardware
    unit origin at (R * tile_rows, C * tile_cols) — vertically and
    horizontally adjacent tiles are exactly merge-compatible (§2.3).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        dx: int,
        dz: int,
        grid: GridManager | None = None,
        profile: HardwareProfile | str | None = None,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("need at least one tile")
        self.rows = rows
        self.cols = cols
        self.dx = dx
        self.dz = dz
        self.tile_rows = tile_unit_rows(dz)
        self.tile_cols = tile_unit_cols(dx)
        if grid is not None and profile is not None and grid.profile != get_profile(profile):
            raise ValueError("explicit grid and profile disagree; pass one or the other")
        self.grid = grid or GridManager(
            get_profile(profile), rows * self.tile_rows, cols * self.tile_cols
        )
        self.model = HardwareModel(self.grid)
        self.tiles: dict[tuple[int, int], Tile] = {}
        for r in range(rows):
            for c in range(cols):
                tile = Tile(
                    coord=(r, c), origin=(r * self.tile_rows, c * self.tile_cols)
                )
                # Uninitialized tiles hold their (unprepared) ions from the
                # start, so the occupancy snapshot handed to the simulator
                # precedes all compiled instructions.
                tile.patch = LogicalQubit(
                    self.grid, self.model, dx, dz, tile.origin,
                    name=f"t{r},{c}",
                )
                self.tiles[(r, c)] = tile

    def __getitem__(self, coord: tuple[int, int]) -> Tile:
        try:
            return self.tiles[coord]
        except KeyError:
            raise KeyError(f"no tile at {coord} in {self.rows}x{self.cols} grid") from None

    def new_patch(self, coord: tuple[int, int], name: str | None = None) -> LogicalQubit:
        """Claim the patch of an uninitialized tile (ions already parked)."""
        tile = self[coord]
        if tile.initialized:
            raise ValueError(f"tile {coord} already holds an initialized patch")
        if tile.patch is None:
            # The tile's original patch moved away (e.g. a Move instruction);
            # rebuild a registry over whatever ions are parked here now.
            patch = LogicalQubit(
                self.grid,
                self.model,
                self.dx,
                self.dz,
                tile.origin,
                name=name or f"t{coord[0]},{coord[1]}",
                place_ions=False,
            )
            for (i, j), site in patch.layout.data_sites().items():
                ion = self.grid.ion_at(site)
                if ion is None:
                    raise ValueError(
                        f"tile {coord} lost its data ion at site {site}; "
                        "load ions before claiming the tile"
                    )
                patch.data_ions[(i, j)] = ion
            for plaq in patch.plaquettes:
                ion = self.grid.ion_at(plaq.home)
                if ion is None:
                    raise ValueError(f"tile {coord} lost its measure ion at {plaq.home}")
                patch.measure_ions[plaq.face] = ion
            tile.patch = patch
        return tile.patch

    def require_initialized(self, coord: tuple[int, int]) -> LogicalQubit:
        tile = self[coord]
        if not tile.initialized:
            raise ValueError(f"tile {coord} is not initialized")
        assert tile.patch is not None
        return tile.patch

    def require_uninitialized(self, coord: tuple[int, int]) -> Tile:
        tile = self[coord]
        if tile.initialized:
            raise ValueError(f"tile {coord} must be uninitialized")
        return tile

    def neighbors(self, coord: tuple[int, int]) -> dict[str, tuple[int, int]]:
        r, c = coord
        out = {}
        if r > 0:
            out["up"] = (r - 1, c)
        if r < self.rows - 1:
            out["down"] = (r + 1, c)
        if c > 0:
            out["left"] = (r, c - 1)
        if c < self.cols - 1:
            out["right"] = (r, c + 1)
        return out

    def orientation_between(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> tuple[str, tuple[int, int], tuple[int, int]]:
        """('horizontal'|'vertical', first, second) for adjacent tiles."""
        (ra, ca), (rb, cb) = a, b
        if ra == rb and abs(ca - cb) == 1:
            return ("horizontal", a if ca < cb else b, b if ca < cb else a)
        if ca == cb and abs(ra - rb) == 1:
            return ("vertical", a if ra < rb else b, b if ra < rb else a)
        raise ValueError(f"tiles {a} and {b} are not adjacent")

    def occupancy_snapshot(self) -> dict[int, int]:
        """Site -> ion map for simulator replay (take before compiling)."""
        return self.grid.occupancy()
