"""Multi-tile routines: lattice-surgery CNOT and Bell chains (§2.1).

The CNOT between a control and target tile goes through an intermediate
ancilla tile (Horsman et al. protocol): prepare the ancilla in |+>, measure
Z_C Z_A (m1), measure X_A X_T (m2), measure the ancilla in Z (m3); the
Heisenberg flow gives CNOT up to the Pauli frame

    Z on control iff m2 = -1,      X on target iff m1 * m3 = -1.

"Long-range operations between remote patches can be conveniently
implemented in just two time steps using parallel local tile-based
operations": step one creates a chain of local Bell states along a path of
tiles, step two performs Bell measurements along the chain, propagating the
entanglement to the chain ends.  :func:`bell_chain` implements exactly
that, returning the accumulated frame signs of the end-to-end Bell pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.derived import DerivedInstructions
from repro.hardware.circuit import HardwareCircuit

__all__ = [
    "CnotResult",
    "lattice_surgery_cnot",
    "lattice_surgery_cnot_program",
    "BellChainResult",
    "bell_chain",
]


def lattice_surgery_cnot_program(
    control: tuple[int, int] = (0, 0),
    target: tuple[int, int] = (1, 1),
    ancilla: tuple[int, int] = (0, 1),
) -> list[tuple]:
    """The CNOT as a mnemonic program for :meth:`repro.core.compiler.TISCC.compile`.

    The step list mirrors :func:`lattice_surgery_cnot` on a 2x2 tile grid
    (control/ancilla horizontally adjacent, ancilla/target vertically): it
    is the multi-tile workload of the resource sweeps and the compile
    benchmark (``tiscc compile --op CNOT``).  Frame bookkeeping (which
    measurement signs owe which Pauli corrections) needs the callable
    plumbing of :func:`lattice_surgery_cnot`; this program only compiles
    the identical hardware circuit.
    """
    return [
        ("PrepareZ", control),
        ("PrepareZ", target),
        ("PrepareX", ancilla),
        ("MeasureZZ", control, ancilla),
        ("MeasureXX", ancilla, target),
        ("MeasureZ", ancilla),
    ]


@dataclass
class CnotResult:
    """Frame bookkeeping of a lattice-surgery CNOT."""

    control: tuple[int, int]
    target: tuple[int, int]
    ancilla: tuple[int, int]
    logical_timesteps: int
    #: result -> True when a Z correction is owed on the control.
    z_on_control: Callable
    #: result -> True when an X correction is owed on the target.
    x_on_target: Callable


def lattice_surgery_cnot(
    ops: DerivedInstructions,
    circuit: HardwareCircuit,
    control: tuple[int, int],
    target: tuple[int, int],
    ancilla: tuple[int, int],
) -> CnotResult:
    """CNOT(control -> target) via an ancilla tile.

    The ancilla must be horizontally adjacent to the control (for the ZZ
    merge) and vertically adjacent to the target (for the XX merge), i.e.
    the three tiles form an L (the diagonal-neighbour protocol of §2.1).
    Takes 3 logical time-steps as written (prepare + two joint
    measurements); the preparation can fuse with the first merge via
    Extend-Split, and the paper's two-step figure assumes such fusions.
    """
    orient_ca = ops.tiles.orientation_between(control, ancilla)[0]
    orient_at = ops.tiles.orientation_between(ancilla, target)[0]
    if orient_ca != "horizontal" or orient_at != "vertical":
        raise ValueError(
            "need control-ancilla horizontal (ZZ) and ancilla-target vertical (XX)"
        )
    ops.prepare_x(circuit, ancilla)
    m1 = ops.measure_zz(circuit, control, ancilla)
    m2 = ops.measure_xx(circuit, ancilla, target)
    m3 = ops.measure(circuit, ancilla, "Z")
    # Merge-split joint measurements leave the pair a seam frame (§4.5): the
    # ZZ step's X-type frame s1 enters the control's Z correction and the XX
    # step's Z-type frame s2 enters the target's X correction:
    #   X_C -> s1 * m2 * X_C X_T     Z_T -> m1 * m3 * s2 * Z_C Z_T.
    s1 = m1.frames[0][1]
    s2 = m2.frames[0][1]

    def z_on_control(result) -> bool:
        return s1(result) * m2.value(result) == -1

    def x_on_target(result) -> bool:
        return m1.value(result) * m3.value(result) * s2(result) == -1

    return CnotResult(
        control=control,
        target=target,
        ancilla=ancilla,
        logical_timesteps=3,
        z_on_control=z_on_control,
        x_on_target=x_on_target,
    )


@dataclass
class BellChainResult:
    """End-to-end Bell pair created along a path of tiles (2 time-steps)."""

    ends: tuple[tuple[int, int], tuple[int, int]]
    logical_timesteps: int
    #: result -> sign s such that X_end1 X_end2 = s.
    xx_sign: Callable
    #: result -> sign s such that Z_end1 Z_end2 = s.
    zz_sign: Callable
    pair_results: list = field(default_factory=list)
    swap_results: list = field(default_factory=list)


def bell_chain(
    ops: DerivedInstructions,
    circuit: HardwareCircuit,
    path: list[tuple[int, int]],
) -> BellChainResult:
    """Entangle the two ends of ``path`` (even length) in two time-steps.

    Step 1: Bell pairs on (path[0], path[1]), (path[2], path[3]), ... in
    parallel.  Step 2: Bell measurements on the interior junctions
    (path[1], path[2]), ... — entanglement swapping.  The end-to-end XX and
    ZZ values are the products of all measured pair values, every one of
    which is tracked to a set of measurement labels.
    """
    if len(path) < 2 or len(path) % 2 != 0:
        raise ValueError("bell_chain needs an even number of tiles (pairs)")
    pair_results = []
    for k in range(0, len(path), 2):
        pair_results.append(ops.bell_prepare(circuit, path[k], path[k + 1]))
    swap_results = []
    for k in range(1, len(path) - 1, 2):
        swap_results.append(ops.bell_measure(circuit, path[k], path[k + 1]))

    def xx_sign(result) -> int:
        s = 1
        for pr in pair_results:
            if pr.labels["orientation"] == "vertical":
                s *= pr.value(result)  # the merge measured XX directly
            else:
                s *= pr.frames[0][1](result)  # XX is the seam's conjugate frame
        for sw in swap_results:
            s *= _xx_of(sw, result)
        return s

    def zz_sign(result) -> int:
        s = 1
        for pr in pair_results:
            if pr.labels["orientation"] == "vertical":
                s *= pr.frames[0][1](result)
            else:
                s *= pr.value(result)
        for sw in swap_results:
            s *= _zz_of(sw, result)
        return s

    return BellChainResult(
        ends=(path[0], path[-1]),
        logical_timesteps=2,
        xx_sign=xx_sign,
        zz_sign=zz_sign,
        pair_results=pair_results,
        swap_results=swap_results,
    )


def _xx_of(bell_measure_result, result) -> int:
    """X_a X_b value of a Bell measurement (joint for XX seams, frame else)."""
    if bell_measure_result.name != "BellMeasure":
        raise ValueError("expected a BellMeasure result")
    if bell_measure_result.labels["orientation"] == "vertical":
        return bell_measure_result.value(result)
    return bell_measure_result.frames[0][1](result)


def _zz_of(bell_measure_result, result) -> int:
    if bell_measure_result.name != "BellMeasure":
        raise ValueError("expected a BellMeasure result")
    if bell_measure_result.labels["orientation"] == "vertical":
        return bell_measure_result.frames[0][1](result)
    return bell_measure_result.value(result)
