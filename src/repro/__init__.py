"""repro: a Python reproduction of TISCC (LeBlond et al., SC-W 2023).

The Trapped-Ion Surface Code Compiler generates hardware-level circuits and
resource estimates for surface-code patch operations on trapped-ion
processors, and verifies them with a quasi-Clifford simulator.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the reproduced
tables and figures.

Quickstart::

    from repro import TISCC
    compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=2)
    compiled = compiler.compile([
        ("PrepareZ", (0, 0)),
        ("PrepareZ", (0, 1)),
        ("MeasureZZ", (0, 0), (0, 1)),
    ])
    print(compiled.resources.row())
    result = compiler.simulate(compiled, seed=1)
    print("ZZ outcome:", compiled.results[-1].value(result))

Noise & decoding::

    from repro import MemoryExperiment, NoiseModel
    experiment = MemoryExperiment(distance=3, basis="Z")
    report = experiment.run(1000, noise=NoiseModel.preset("near_term"), seed=1)
    print(f"logical error rate {report.logical_error_rate:.4f} "
          f"(raw {report.raw_error_rate:.4f})")

``NoiseModel`` presets (``ideal`` / ``near_term`` / ``projected``) derive
per-operation Pauli channel probabilities from a few physical parameters
and the :data:`~repro.hardware.model.GATE_TIMES_US` durations (longer
operations dephase more); ``MemoryExperiment`` decodes every shot with a
registered decoder (``get_decoder("union_find" | "union_find_unweighted"
| "lookup")``) — by default the weighted union-find over the DEM-built
matching graph, whose edges carry log-likelihood weights from the noise
model's mechanism rates.  The ``tiscc lfr --decoder`` CLI subcommand and
``examples/threshold_sweep.py`` sweep distances, physical rates, and
decoders through the same pipeline.

Fast sampling path::

    dem = experiment.detector_error_model(NoiseModel.uniform(1e-3))
    report = experiment.run(100_000, noise=NoiseModel.uniform(1e-3), engine="frame")

``experiment.detector_error_model`` folds the compiled Clifford schedule
and a noise model into a Stim-style :class:`DetectorErrorModel` (one
Pauli-frame walk, deduplicated mechanisms), and ``engine="frame"`` samples
detection events from it with no tableau at all — orders of magnitude
faster, cross-validated against the packed-tableau engine by the
equivalence test suite.  See ``tiscc dem`` and
``examples/fast_sampling.py``.

Hardware profiles::

    from repro import HardwareProfile, TISCC, logical_error_sweep
    profile = HardwareProfile.load("my_trap.toml")   # or get_profile("slow_junction")
    compiled = TISCC(dx=3, dz=3, profile=profile).compile([("PrepareZ", (0, 0))])
    reports = logical_error_sweep([3, 5], rates=[1e-3],
                                  profile=["baseline", "slow_junction"])

Every calibration constant (gate-time table, shuttling and junction
durations, zone pitch, noise presets) lives in a declarative
:class:`~repro.hardware.profile.HardwareProfile` — validated, frozen, and
fingerprinted so results from different hardware never share a cache
entry.  Ship-with profiles: ``baseline`` (the paper's Table 5
calibrations), ``slow_junction``, ``fast_projected``; ``tiscc profiles
list`` shows them and ``--profile NAME|PATH`` threads one (or several,
as a sweep axis) through every CLI subcommand.  Module-level constants
(:data:`~repro.hardware.model.GATE_TIMES_US`, ...) remain as read views
of the default profile; mutating them is deprecated in favour of
defining a profile.
"""

from repro.core.compiler import TISCC, CompiledOperation
from repro.core.tiles import TileGrid
from repro.code.logical_qubit import LogicalQubit
from repro.code.arrangements import Arrangement
from repro.decode import (
    Decoder,
    LookupDecoder,
    MemoryExperiment,
    UnionFindDecoder,
    UnweightedUnionFindDecoder,
    available_decoders,
    get_decoder,
)
from repro.estimator.sweep import logical_error_sweep, sweep_all, sweep_operation
from repro.hardware.grid import GridManager, grid_for_patch
from repro.hardware.model import HardwareModel, GATE_TIMES_US
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.profile import (
    DEFAULT_PROFILE,
    HardwareProfile,
    ProfileError,
    available_profiles,
    get_profile,
    register_profile,
)
from repro.sim.noise import NOISE_PRESETS, NoiseModel, NoiseParams
from repro.sim.dem import DetectorErrorModel, DemExtractionError
from repro.sim.frame import FrameSampler, FrameSamples

__version__ = "1.4.0"

__all__ = [
    "TISCC",
    "CompiledOperation",
    "TileGrid",
    "LogicalQubit",
    "Arrangement",
    "GridManager",
    "grid_for_patch",
    "HardwareModel",
    "HardwareCircuit",
    "GATE_TIMES_US",
    "HardwareProfile",
    "ProfileError",
    "DEFAULT_PROFILE",
    "get_profile",
    "register_profile",
    "available_profiles",
    "logical_error_sweep",
    "sweep_operation",
    "sweep_all",
    "MemoryExperiment",
    "Decoder",
    "get_decoder",
    "available_decoders",
    "UnionFindDecoder",
    "UnweightedUnionFindDecoder",
    "LookupDecoder",
    "NoiseModel",
    "NoiseParams",
    "NOISE_PRESETS",
    "DetectorErrorModel",
    "DemExtractionError",
    "FrameSampler",
    "FrameSamples",
    "__version__",
]
