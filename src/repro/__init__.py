"""repro: a Python reproduction of TISCC (LeBlond et al., SC-W 2023).

The Trapped-Ion Surface Code Compiler generates hardware-level circuits and
resource estimates for surface-code patch operations on trapped-ion
processors, and verifies them with a quasi-Clifford simulator.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the reproduced
tables and figures.

Quickstart::

    from repro import TISCC
    compiler = TISCC(dx=3, dz=3, tile_rows=1, tile_cols=2)
    compiled = compiler.compile([
        ("PrepareZ", (0, 0)),
        ("PrepareZ", (0, 1)),
        ("MeasureZZ", (0, 0), (0, 1)),
    ])
    print(compiled.resources.row())
    result = compiler.simulate(compiled, seed=1)
    print("ZZ outcome:", compiled.results[-1].value(result))
"""

from repro.core.compiler import TISCC, CompiledOperation
from repro.core.tiles import TileGrid
from repro.code.logical_qubit import LogicalQubit
from repro.code.arrangements import Arrangement
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel, GATE_TIMES_US
from repro.hardware.circuit import HardwareCircuit

__version__ = "1.0.0"

__all__ = [
    "TISCC",
    "CompiledOperation",
    "TileGrid",
    "LogicalQubit",
    "Arrangement",
    "GridManager",
    "HardwareModel",
    "HardwareCircuit",
    "GATE_TIMES_US",
    "__version__",
]
