"""Merge, Split, Patch Extension, Patch Contraction (Tables 2 and 3).

Lattice-surgery geometry (§2.3): patches sit on adjacent logical tiles with
an ancillary strip between them — one column/row of seam data qubits for odd
code distances, two for even (so the face checkerboards of the two patches
stay aligned across the seam).  Using the strip,

* a *merge* preps the seam qubits (|+> for a horizontal/ZZ seam, |0> for a
  vertical/XX seam), then measures the merged patch's stabilizers for a
  logical time-step.  The joint-operator outcome is the product of the
  first-round outcomes of the merged-patch Z faces (horizontal) / X faces
  (vertical) between the two default-edge representatives — "operator
  movement" in the sense of §4.5;
* a *split* transversally measures the seam qubits in the merge basis; the
  post-split boundary-stabilizer values are *inferred* from the pre-split
  weight-4 outcomes and the seam measurements, which is exactly why the
  ancillary strip makes Measure XX/ZZ a one-time-step instruction
  (paper footnote 7);
* *extension* is a merge whose far side is freshly prepared instead of an
  existing patch (preserving the encoded state, 1 step), and *contraction*
  transversally measures the far side away (0 steps), pushing the measured
  row/column outcomes onto the surviving logical operator's ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit, TrackedOperator
from repro.code.stabilizer_circuits import RoundRecord
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.relocation import RelocationError, relocate_ion

__all__ = [
    "MergeResult",
    "SplitResult",
    "merge",
    "split",
    "extend_patch",
    "contract_patch",
]


@dataclass
class MergeResult:
    """Outcome bookkeeping of a merge (or extension)."""

    merged: LogicalQubit
    orientation: str
    #: (dxA or dzA, seam width, dxB or dzB) along the merge axis.
    sizes: tuple[int, int, int]
    #: Merged-coordinate (i, j) of the seam data qubits.
    seam_positions: list[tuple[int, int]] = field(default_factory=list)
    #: Labels whose sign-product is the raw joint XX/ZZ outcome.
    joint_labels: list[str] = field(default_factory=list)
    #: Ledger corrections inherited from the two input patches.
    inherited_corrections: list[str] = field(default_factory=list)
    records: list[RoundRecord] = field(default_factory=list)

    def outcome_sign(self, result) -> int:
        """The measured joint-operator eigenvalue for a simulation result."""
        sign = 1
        for label in self.joint_labels + self.inherited_corrections:
            sign *= result.sign(label)
        return sign


@dataclass
class SplitResult:
    """Outcome bookkeeping of a split (or contraction)."""

    left: LogicalQubit
    right: LogicalQubit
    #: Seam measurement labels, keyed by merged-coordinate position.
    seam_labels: dict[tuple[int, int], str] = field(default_factory=dict)
    #: Sign-product of these labels relates X_A X_B (or Z_A Z_B) to the
    #: pre-split joint logical (§4.5 Pauli-frame correction).
    frame_labels: list[str] = field(default_factory=list)


def _require_mergeable(lq_a: LogicalQubit, lq_b: LogicalQubit, orientation: str) -> int:
    if lq_a.arrangement is not Arrangement.STANDARD or lq_b.arrangement is not Arrangement.STANDARD:
        raise ValueError("merge is implemented for the standard arrangement (§4.4)")
    if orientation == "horizontal":
        if lq_a.dz != lq_b.dz:
            raise ValueError("horizontally merged patches need equal dz")
        seam = lq_a.layout.tile_cols - lq_a.dx
        expect = (lq_a.layout.origin[0], lq_a.layout.origin[1] + lq_a.layout.tile_cols)
        if lq_b.layout.origin != expect:
            raise ValueError(f"patch B must sit on the adjacent tile at {expect}")
    elif orientation == "vertical":
        if lq_a.dx != lq_b.dx:
            raise ValueError("vertically merged patches need equal dx")
        seam = lq_a.layout.tile_rows - lq_a.dz
        expect = (lq_a.layout.origin[0] + lq_a.layout.tile_rows, lq_a.layout.origin[1])
        if lq_b.layout.origin != expect:
            raise ValueError(f"patch B must sit on the adjacent tile at {expect}")
    else:
        raise ValueError("orientation must be 'horizontal' or 'vertical'")
    return seam


def _staff_measure_ions(
    circuit: HardwareCircuit,
    lq: LogicalQubit,
    retired: list[int],
) -> None:
    """Fill ``lq.measure_ions`` for every plaquette home.

    Preference order: an ion already parked at the home; a retired measure
    ion from a superseded face set, relocated by scheduled moves (stale
    parked ions would otherwise block corridors and pockets); a freshly
    loaded ion as a last resort.
    """
    grid = lq.grid
    homes = [p.home for p in lq.plaquettes]
    home_set = set(homes)
    pool = [
        ion
        for ion in dict.fromkeys(retired)
        if ion in grid.ions() and grid.site_of(ion) not in home_set
    ]
    unfilled = []
    for plaq in lq.plaquettes:
        ion = grid.ion_at(plaq.home)
        if ion is not None:
            lq.measure_ions[plaq.face] = ion
        else:
            unfilled.append(plaq)
    for plaq in unfilled:
        target = plaq.home
        tr, tc = grid.coords(target)
        best = None
        for ion in sorted(pool, key=lambda k: _manhattan(grid, k, tr, tc)):
            try:
                path = grid.route(grid.site_of(ion), target)
                grid.schedule_route(circuit, ion, path, t_min=grid.now)
            except ValueError:
                try:
                    relocate_ion(grid, circuit, ion, target)
                except RelocationError:
                    continue
            best = ion
            break
        if best is not None:
            pool.remove(best)
            lq.measure_ions[plaq.face] = best
        else:
            lq.measure_ions[plaq.face] = grid.load_ion(
                circuit, target, f"{lq.name}:m{plaq.face}"
            )


def _manhattan(grid, ion: int, tr: int, tc: int) -> int:
    r, c = grid.coords(grid.site_of(ion))
    return abs(r - tr) + abs(c - tc)


def _evacuate_stale_ions(
    circuit: HardwareCircuit, lq: "LogicalQubit | list[LogicalQubit]", candidates: list[int]
) -> None:
    """Park leftover ions away from the patches' working areas.

    Any retired ion still sitting on a pocket, corridor, or home of an
    active face set would deadlock subsequent rounds of error correction,
    so it is relocated (with step-aside maneuvers) to the nearest free zone
    outside every listed patch's working area — typically an unused
    boundary corridor or the ancilla strip.
    """
    lqs = lq if isinstance(lq, list) else [lq]
    grid = lqs[0].grid
    used: set[int] = set()
    keep: set[int] = set()
    for one in lqs:
        used |= set(one.data_ion_at())
        for plaq in one.plaquettes:
            used |= plaq.all_sites()
            used.add(plaq.home)
        keep |= set(one.measure_ions.values()) | set(one.data_ions.values())
    free_zones = [s for s in grid.zone_sites() if s not in used]
    for ion in candidates:
        if ion in keep or ion not in grid.ions():
            continue
        site = grid.site_of(ion)
        if site not in used:
            continue
        r, c = grid.coords(site)
        for target in sorted(
            free_zones,
            key=lambda s: abs(grid.coords(s)[0] - r) + abs(grid.coords(s)[1] - c),
        ):
            if grid.ion_at(target) is not None:
                continue
            try:
                relocate_ion(grid, circuit, ion, target)
                break
            except RelocationError:
                continue
        else:
            raise RuntimeError(
                f"stale ion {ion} at site {site} cannot be evacuated"
            )
    # Evacuations may have displaced active measure ions whose return path
    # was momentarily sealed; walk them back to their homes.
    for one in lqs:
        home_of = {one.measure_ions[p.face]: p.home for p in one.plaquettes}
        for ion, home in home_of.items():
            if grid.site_of(ion) != home:
                relocate_ion(grid, circuit, ion, home)


def _build_merged(
    circuit: HardwareCircuit,
    lq_a: LogicalQubit,
    orientation: str,
    seam: int,
    far_extent: int,
    retired: list[int],
) -> tuple[LogicalQubit, list[tuple[int, int]]]:
    """Construct the merged LogicalQubit skeleton and staff its ions."""
    grid, model = lq_a.grid, lq_a.model
    if orientation == "horizontal":
        dx_m, dz_m = lq_a.dx + seam + far_extent, lq_a.dz
    else:
        dx_m, dz_m = lq_a.dx, lq_a.dz + seam + far_extent
    merged = LogicalQubit(
        grid,
        model,
        dx_m,
        dz_m,
        lq_a.layout.origin,
        Arrangement.STANDARD,
        name=f"{lq_a.name}+",
        place_ions=False,
    )
    seam_positions = []
    near = lq_a.dx if orientation == "horizontal" else lq_a.dz
    for (i, j), site in sorted(merged.layout.data_sites().items()):
        along = j if orientation == "horizontal" else i
        if near <= along < near + seam:
            seam_positions.append((i, j))
        merged.data_ions[(i, j)] = grid.ensure_ion(circuit, site, f"{merged.name}:d{i},{j}")
    _staff_measure_ions(circuit, merged, retired)
    return merged, seam_positions


def _joint_operator_faces(
    merged: LogicalQubit, orientation: str, near: int, seam: int
) -> list[tuple[int, int]]:
    """Faces whose product telescopes one default edge onto the other.

    For a horizontal merge, Z_col0 * Z_col(near+seam) equals the product of
    all merged-patch Z faces with face column in [0, near+seam); similarly
    with rows and X faces for vertical merges.  Verified operator identity,
    see tests.
    """
    letter = "Z" if orientation == "horizontal" else "X"
    out = []
    for plaq in merged.plaquettes:
        fi, fj = plaq.face
        along = fj if orientation == "horizontal" else fi
        if plaq.pauli == letter and 0 <= along < near + seam:
            out.append(plaq.face)
    return out


def merge(
    circuit: HardwareCircuit,
    lq_a: LogicalQubit,
    lq_b: LogicalQubit,
    orientation: str,
    rounds: int | None = None,
) -> MergeResult:
    """Merge two initialized patches (Table 2; 1 logical time-step).

    Horizontal merges measure Z_A Z_B, vertical merges X_A X_B (§2.3: with
    logical Z vertical, "vertical (horizontal) merges ... correspond with
    XX (ZZ) measurements").
    """
    if not (lq_a.initialized and lq_b.initialized):
        raise ValueError("merge requires two initialized patches")
    seam = _require_mergeable(lq_a, lq_b, orientation)
    near = lq_a.dx if orientation == "horizontal" else lq_a.dz
    far = lq_b.dx if orientation == "horizontal" else lq_b.dz

    retired = list(lq_a.measure_ions.values()) + list(lq_b.measure_ions.values())
    merged, seam_positions = _build_merged(circuit, lq_a, orientation, seam, far, retired)
    # Any parked ion left over from earlier surgery inside the merged
    # footprint would deadlock the merged rounds.
    _evacuate_stale_ions(circuit, merged, list(merged.grid.ions()))
    # Seam qubits: |+> so the joint X row stays definite across a ZZ seam,
    # |0> so the joint Z column stays definite across an XX seam.
    prep = merged.model.prepare_x if orientation == "horizontal" else merged.model.prepare_z
    for pos in seam_positions:
        prep(circuit, merged.data_ions[pos])
    merged.initialized = True

    rounds = merged.dt if rounds is None else rounds
    records = merged.idle(circuit, rounds=rounds)

    faces = _joint_operator_faces(merged, orientation, near, seam)
    first = records[0].outcome_labels
    joint_labels = [first[f] for f in faces]
    inherited = list(lq_a.logical_z.corrections + lq_b.logical_z.corrections
                     if orientation == "horizontal"
                     else lq_a.logical_x.corrections + lq_b.logical_x.corrections)

    # The merged patch inherits A's representatives: the default-edge column
    # (or row) of the merged layout coincides with A's.
    merged.logical_z = TrackedOperator(
        merged.layout.logical_z(), list(lq_a.logical_z.corrections)
    )
    merged.logical_x = TrackedOperator(
        merged.layout.logical_x(), list(lq_a.logical_x.corrections)
    )
    lq_a.initialized = False
    lq_b.initialized = False
    return MergeResult(
        merged=merged,
        orientation=orientation,
        sizes=(near, seam, far),
        seam_positions=seam_positions,
        joint_labels=joint_labels,
        inherited_corrections=inherited,
        records=records,
    )


def split(circuit: HardwareCircuit, mr: MergeResult) -> SplitResult:
    """Split a merged patch back into its two halves (Table 2; 0 steps).

    Measures the seam data qubits transversally in the merge basis.  The
    post-split boundary stabilizers are known from pre-split outcomes plus
    the seam measurements (fn 7), so no further rounds are needed.
    """
    merged = mr.merged
    near, seam, far = mr.sizes
    basis = "X" if mr.orientation == "horizontal" else "Z"
    measure = merged.model.measure_x if basis == "X" else merged.model.measure_z

    seam_labels = {}
    for pos in mr.seam_positions:
        _, label = measure(circuit, merged.data_ions[pos])
        seam_labels[pos] = label

    grid, model = merged.grid, merged.model
    origin = merged.layout.origin
    if mr.orientation == "horizontal":
        origin_b = (origin[0], origin[1] + near + seam)
        dims_a, dims_b = (near, merged.dz), (far, merged.dz)
    else:
        origin_b = (origin[0] + near + seam, origin[1])
        dims_a, dims_b = (merged.dx, near), (merged.dx, far)

    retired = list(merged.measure_ions.values())

    def rebuild(name, org, dims, col_off, row_off):
        lq = LogicalQubit(
            grid, model, dims[0], dims[1], org, Arrangement.STANDARD,
            name=name, place_ions=False,
        )
        for (i, j) in lq.layout.data_sites():
            lq.data_ions[(i, j)] = merged.data_ions[(i + row_off, j + col_off)]
        _staff_measure_ions(circuit, lq, retired)
        lq.initialized = True
        return lq

    if mr.orientation == "horizontal":
        lq_a = rebuild("split_a", origin, dims_a, 0, 0)
        lq_b = rebuild("split_b", origin_b, dims_b, near + seam, 0)
        # X_A X_B = X_merged * (seam row-0 X outcomes).
        frame_positions = [(0, j) for (i, j) in mr.seam_positions if i == 0]
    else:
        lq_a = rebuild("split_a", origin, dims_a, 0, 0)
        lq_b = rebuild("split_b", origin_b, dims_b, 0, near + seam)
        frame_positions = [(i, 0) for (i, j) in mr.seam_positions if j == 0]

    # Each half keeps the merged ledgers on the operator its edge inherits.
    lq_a.logical_z = TrackedOperator(lq_a.layout.logical_z(), list(mr.merged.logical_z.corrections))
    lq_a.logical_x = TrackedOperator(lq_a.layout.logical_x(), list(mr.merged.logical_x.corrections))
    lq_b.logical_z = TrackedOperator(lq_b.layout.logical_z())
    lq_b.logical_x = TrackedOperator(lq_b.layout.logical_x())

    merged.initialized = False
    _evacuate_stale_ions(circuit, [lq_a, lq_b], retired)
    return SplitResult(
        left=lq_a,
        right=lq_b,
        seam_labels=seam_labels,
        frame_labels=[seam_labels[p] for p in frame_positions],
    )


def extend_patch(
    circuit: HardwareCircuit,
    lq: LogicalQubit,
    orientation: str = "horizontal",
    rounds: int | None = None,
) -> MergeResult:
    """Patch Extension (Table 3): 1 -> 2 tiles, preserving the state; 1 step.

    The far tile's data qubits and the seam are prepared fresh in the basis
    that leaves the extended logical operator's value unchanged (|+> for a
    rightward extension of the X row, |0> for a downward extension of the Z
    column).
    """
    if not lq.initialized:
        raise ValueError("cannot extend an uninitialized patch")
    if lq.arrangement is not Arrangement.STANDARD:
        raise ValueError("extension is implemented for the standard arrangement")
    if orientation == "horizontal":
        seam = lq.layout.tile_cols - lq.dx
        near, far = lq.dx, lq.dx
    else:
        seam = lq.layout.tile_rows - lq.dz
        near, far = lq.dz, lq.dz

    retired = list(lq.measure_ions.values())
    merged, seam_positions = _build_merged(circuit, lq, orientation, seam, far, retired)
    _evacuate_stale_ions(circuit, merged, list(merged.grid.ions()))
    prep = merged.model.prepare_x if orientation == "horizontal" else merged.model.prepare_z
    new_positions = list(seam_positions)
    for (i, j) in merged.layout.data_sites():
        along = j if orientation == "horizontal" else i
        if along >= near + seam:
            new_positions.append((i, j))
    for pos in sorted(set(new_positions)):
        prep(circuit, merged.data_ions[pos])
    merged.initialized = True

    rounds = merged.dt if rounds is None else rounds
    records = merged.idle(circuit, rounds=rounds)

    merged.logical_z = TrackedOperator(
        merged.layout.logical_z(), list(lq.logical_z.corrections)
    )
    merged.logical_x = TrackedOperator(
        merged.layout.logical_x(), list(lq.logical_x.corrections)
    )
    lq.initialized = False
    faces = _joint_operator_faces(merged, orientation, near, seam)
    first = records[0].outcome_labels
    return MergeResult(
        merged=merged,
        orientation=orientation,
        sizes=(near, seam, far),
        seam_positions=seam_positions,
        joint_labels=[first[f] for f in faces],
        records=records,
    )


def contract_patch(
    circuit: HardwareCircuit,
    mr: MergeResult,
    keep: str = "near",
) -> tuple[LogicalQubit, SplitResult]:
    """Patch Contraction (Table 3): 2 -> 1 tiles, preserving the state; 0 steps.

    Transversally measures the discarded half plus the seam in the merge
    basis; the surviving patch's extended logical operator picks up the
    measured row/column outcome signs on its ledger.
    """
    merged = mr.merged
    near, seam, far = mr.sizes
    basis = "X" if mr.orientation == "horizontal" else "Z"
    measure = merged.model.measure_x if basis == "X" else merged.model.measure_z
    if keep not in ("near", "far"):
        raise ValueError("keep must be 'near' or 'far'")

    def discard(pos) -> bool:
        i, j = pos
        along = j if mr.orientation == "horizontal" else i
        return along >= near if keep == "near" else along < near + seam

    labels: dict[tuple[int, int], str] = {}
    for pos in sorted(merged.layout.data_sites()):
        if discard(pos):
            _, label = measure(circuit, merged.data_ions[pos])
            labels[pos] = label

    grid, model = merged.grid, merged.model
    origin = merged.layout.origin
    if mr.orientation == "horizontal":
        dims = (near, merged.dz) if keep == "near" else (far, merged.dz)
        org = origin if keep == "near" else (origin[0], origin[1] + near + seam)
        off = (0, 0) if keep == "near" else (0, near + seam)
        frame = [labels[(0, j)] for (i, j) in labels if i == 0]
    else:
        dims = (merged.dx, near) if keep == "near" else (merged.dx, far)
        org = origin if keep == "near" else (origin[0] + near + seam, origin[1])
        off = (0, 0) if keep == "near" else (near + seam, 0)
        frame = [labels[(i, 0)] for (i, j) in labels if j == 0]

    lq = LogicalQubit(
        grid, model, dims[0], dims[1], org, Arrangement.STANDARD,
        name=f"{merged.name}~", place_ions=False,
    )
    for (i, j) in lq.layout.data_sites():
        lq.data_ions[(i, j)] = merged.data_ions[(i + off[0], j + off[1])]
    _staff_measure_ions(circuit, lq, list(merged.measure_ions.values()))
    _evacuate_stale_ions(circuit, lq, list(merged.measure_ions.values()))
    lq.initialized = True

    # The operator running along the contraction axis loses the measured
    # sites: its ledger grows by the measured default-edge outcomes.  When
    # the far half survives, the cross-axis operator must additionally be
    # *moved* from the near default edge to the far one, picking up the
    # joint-face outcome signs (operator movement, §4.5).
    moved = [] if keep == "near" else list(mr.joint_labels)
    if mr.orientation == "horizontal":
        lq.logical_z = TrackedOperator(
            lq.layout.logical_z(), list(merged.logical_z.corrections) + moved
        )
        lq.logical_x = TrackedOperator(
            lq.layout.logical_x(), list(merged.logical_x.corrections) + frame
        )
    else:
        lq.logical_x = TrackedOperator(
            lq.layout.logical_x(), list(merged.logical_x.corrections) + moved
        )
        lq.logical_z = TrackedOperator(
            lq.layout.logical_z(), list(merged.logical_z.corrections) + frame
        )
    merged.initialized = False
    sr = SplitResult(left=lq, right=lq, seam_labels=labels, frame_labels=frame)
    return lq, sr
