"""Pauli-string algebra with exact phase tracking.

A :class:`PauliString` is a tensor product of single-qubit Paulis over an
arbitrary set of hashable qubit keys (we use qsite indices), together with a
global phase ``i^k``.  Phases matter: logical Y operators are built as
``i * X_L * Z_L`` and corner movements multiply logical operators by
stabilizers, so sign bookkeeping must be exact for the §4 verification.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

__all__ = ["PauliString"]

# Single-qubit products: (left, right) -> (i-power, result or None for identity)
_MUL: dict[tuple[str, str], tuple[int, str | None]] = {
    ("X", "X"): (0, None),
    ("Y", "Y"): (0, None),
    ("Z", "Z"): (0, None),
    ("X", "Y"): (1, "Z"),
    ("Y", "X"): (3, "Z"),
    ("Y", "Z"): (1, "X"),
    ("Z", "Y"): (3, "X"),
    ("Z", "X"): (1, "Y"),
    ("X", "Z"): (3, "Y"),
}


class PauliString:
    """Immutable Pauli string ``i^phase * prod_j P_j``.

    ``ops`` maps qubit key -> 'X' | 'Y' | 'Z' (identity factors are absent);
    ``phase`` is the exponent of ``i`` modulo 4.
    """

    __slots__ = ("_ops", "_phase")

    def __init__(self, ops: Mapping[Hashable, str] | None = None, phase: int = 0):
        clean: dict[Hashable, str] = {}
        for key, p in (ops or {}).items():
            if p == "I":
                continue
            if p not in ("X", "Y", "Z"):
                raise ValueError(f"invalid Pauli letter {p!r} on qubit {key!r}")
            clean[key] = p
        self._ops = clean
        self._phase = phase % 4

    # ---------------------------------------------------------- constructors
    @classmethod
    def identity(cls) -> "PauliString":
        return cls({}, 0)

    @classmethod
    def single(cls, key: Hashable, p: str, phase: int = 0) -> "PauliString":
        return cls({key: p}, phase)

    @classmethod
    def from_label(cls, label: str, keys: Iterable[Hashable], phase: int = 0) -> "PauliString":
        keys = list(keys)
        if len(label) != len(keys):
            raise ValueError("label length must match number of keys")
        return cls({k: p for k, p in zip(keys, label) if p != "I"}, phase)

    # -------------------------------------------------------------- queries
    @property
    def ops(self) -> dict[Hashable, str]:
        return dict(self._ops)

    @property
    def phase(self) -> int:
        return self._phase

    @property
    def sign(self) -> complex:
        return (1, 1j, -1, -1j)[self._phase]

    @property
    def support(self) -> frozenset:
        return frozenset(self._ops)

    @property
    def weight(self) -> int:
        return len(self._ops)

    @property
    def is_identity(self) -> bool:
        return not self._ops

    @property
    def is_hermitian(self) -> bool:
        return self._phase % 2 == 0

    def get(self, key: Hashable) -> str:
        return self._ops.get(key, "I")

    def __getitem__(self, key: Hashable) -> str:
        return self.get(key)

    # -------------------------------------------------------------- algebra
    def __mul__(self, other: "PauliString") -> "PauliString":
        """Operator product ``self @ other`` (self applied on the left)."""
        if not isinstance(other, PauliString):
            return NotImplemented
        ops = dict(self._ops)
        phase = self._phase + other._phase
        for key, p in other._ops.items():
            cur = ops.pop(key, None)
            if cur is None:
                ops[key] = p
            else:
                extra, res = _MUL[(cur, p)]
                phase += extra
                if res is not None:
                    ops[key] = res
        return PauliString(ops, phase)

    def __neg__(self) -> "PauliString":
        return PauliString(self._ops, self._phase + 2)

    def times_i(self) -> "PauliString":
        return PauliString(self._ops, self._phase + 1)

    def conjugate_sign(self) -> "PauliString":
        """Hermitian conjugate (inverts the i-phase, Paulis are self-adjoint)."""
        return PauliString(self._ops, -self._phase)

    def commutes_with(self, other: "PauliString") -> bool:
        anti = 0
        small, big = (
            (self._ops, other._ops)
            if len(self._ops) <= len(other._ops)
            else (other._ops, self._ops)
        )
        for key, p in small.items():
            q = big.get(key)
            if q is not None and q != p:
                anti ^= 1
        return anti == 0

    def restricted(self, keys: Iterable[Hashable]) -> "PauliString":
        keyset = set(keys)
        return PauliString({k: p for k, p in self._ops.items() if k in keyset}, self._phase)

    def without(self, keys: Iterable[Hashable]) -> "PauliString":
        keyset = set(keys)
        return PauliString({k: p for k, p in self._ops.items() if k not in keyset}, self._phase)

    def relabel(self, mapping: Mapping[Hashable, Hashable]) -> "PauliString":
        """Rename qubit keys; keys absent from ``mapping`` are kept."""
        return PauliString({mapping.get(k, k): p for k, p in self._ops.items()}, self._phase)

    # ------------------------------------------------------------- plumbing
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return self._ops == other._ops and self._phase == other._phase

    def equals_up_to_sign(self, other: "PauliString") -> bool:
        return self._ops == other._ops

    def __hash__(self) -> int:
        return hash((frozenset(self._ops.items()), self._phase))

    def __repr__(self) -> str:
        pre = {0: "+", 1: "+i", 2: "-", 3: "-i"}[self._phase]
        if not self._ops:
            return f"{pre}I"
        body = " ".join(
            f"{p}[{k}]" for k, p in sorted(self._ops.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{pre}{body}"
