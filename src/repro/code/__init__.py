"""Surface-code patch layer: plaquettes, logical qubits, patch operations.

Implements the paper's §2: the logical tile / patch abstraction
(:class:`~repro.code.logical_qubit.LogicalQubit`), the four canonical
stabilizer arrangements (Fig 2), primitive patch operations (Table 2),
explicit Z/N-pattern syndrome-extraction circuits (§3.3, Fig 6), corner
movement (§2.5, Fig 3) and movement-only patch translation (Fig 4).
"""

from repro.code.pauli import PauliString
from repro.code.plaquette import Plaquette
from repro.code.patch_layout import PatchLayout, Arrangement
from repro.code.logical_qubit import LogicalQubit

__all__ = ["PauliString", "Plaquette", "PatchLayout", "Arrangement", "LogicalQubit"]
