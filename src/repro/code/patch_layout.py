"""Mapping a surface-code patch onto the trapped-ion grid (paper §3.1, Fig 1).

Geometry (frozen spec, see DESIGN.md): a patch with X/Z code distances
``dx``/``dz`` anchored at a tile origin places

* data qubit (i, j), 0 <= i < dz (rows), 0 <= j < dx (cols), on the centre
  (O) site of a horizontal segment: relative fine coords ``(4i, 4j + 2)``;
* face (fi, fj), fi in [-1, dz-1], fj in [-1, dx-1], with corner data
  ``a=(fi,fj)  b=(fi,fj+1)  c=(fi+1,fj)  d=(fi+1,fj+1)`` (clipped to the
  patch); the measure ion gates each corner from the pocket M site flanking
  that data qubit (``a/c`` from the east pocket, ``b/d`` from the west), so
  every pocket hangs off one of the face's two junctions
  ``J_N = (4fi, 4fj+4)`` and ``J_S = (4fi+4, 4fj+4)``;
* interior and left/right boundary faces own the vertical three-zone segment
  between their junctions as a private corridor and park their measure ion
  at its centre; top boundary faces park in their ``d`` pocket and bottom
  faces just south of their junction.

A logical tile is ``2*ceil((dz+1)/2)`` unit rows by ``2*ceil((dx+1)/2)``
unit columns (§2.3): one ancilla strip right/below the patch for odd
distances, two for even — two because a seam between even-distance patches
needs an even column offset to keep the face checkerboards of the two
patches aligned.
"""

from __future__ import annotations

from repro.code.arrangements import Arrangement
from repro.code.pauli import PauliString
from repro.code.plaquette import Plaquette
from repro.hardware.grid import GridManager

__all__ = ["PatchLayout", "tile_unit_rows", "tile_unit_cols"]


def tile_unit_rows(dz: int) -> int:
    """Hardware-unit rows of a logical tile: 2 * ceil((dz+1)/2) (§2.3)."""
    return 2 * ((dz + 2) // 2)


def tile_unit_cols(dx: int) -> int:
    return 2 * ((dx + 2) // 2)


class PatchLayout:
    """Pure geometry of one patch: data sites, faces, routing infrastructure.

    ``origin`` is the (unit_row, unit_col) of the patch's top-left hardware
    unit.  ``PatchLayout`` performs no scheduling and owns no ions — that is
    :class:`~repro.code.logical_qubit.LogicalQubit`'s job.
    """

    def __init__(
        self,
        grid: GridManager,
        dx: int,
        dz: int,
        origin: tuple[int, int] = (0, 0),
        arrangement: Arrangement = Arrangement.STANDARD,
    ):
        if dx < 2 or dz < 2:
            raise ValueError("code distances below 2 are not supported")
        self.grid = grid
        self.dx = dx
        self.dz = dz
        self.origin = origin
        self.arrangement = arrangement
        self._or = 4 * origin[0]
        self._oc = 4 * origin[1]
        # Fail fast if the tile does not fit on the grid.
        self._site(4 * (dz - 1), 4 * dx)
        self._site(4 * dz - 1, 0)

    # ------------------------------------------------------------ site math
    def _site(self, rel_r: int, rel_c: int) -> int:
        return self.grid.index(self._or + rel_r, self._oc + rel_c)

    def data_site(self, i: int, j: int) -> int:
        if not (0 <= i < self.dz and 0 <= j < self.dx):
            raise ValueError(f"data index ({i}, {j}) outside {self.dz}x{self.dx} patch")
        return self._site(4 * i, 4 * j + 2)

    def data_sites(self) -> dict[tuple[int, int], int]:
        return {
            (i, j): self.data_site(i, j)
            for i in range(self.dz)
            for j in range(self.dx)
        }

    @property
    def n_data(self) -> int:
        return self.dx * self.dz

    @property
    def tile_rows(self) -> int:
        return tile_unit_rows(self.dz)

    @property
    def tile_cols(self) -> int:
        return tile_unit_cols(self.dx)

    # ---------------------------------------------------------------- faces
    def face_exists(self, fi: int, fj: int) -> bool:
        arr = self.arrangement
        interior_i = 0 <= fi <= self.dz - 2
        interior_j = 0 <= fj <= self.dx - 2
        if interior_i and interior_j:
            return True
        letter = arr.face_letter(fi, fj)
        if fi == -1 and interior_j:
            return letter == arr.boundary_letter("top")
        if fi == self.dz - 1 and interior_j:
            return letter == arr.boundary_letter("bottom")
        if fj == -1 and interior_i:
            return letter == arr.boundary_letter("left")
        if fj == self.dx - 1 and interior_i:
            return letter == arr.boundary_letter("right")
        return False

    def face_letter(self, fi: int, fj: int) -> str:
        return self.arrangement.face_letter(fi, fj)

    def face_coords(self) -> list[tuple[int, int]]:
        return [
            (fi, fj)
            for fi in range(-1, self.dz)
            for fj in range(-1, self.dx)
            if self.face_exists(fi, fj)
        ]

    def _corners(self, fi: int, fj: int) -> dict[str, tuple[int, int]]:
        candidates = {
            "a": (fi, fj),
            "b": (fi, fj + 1),
            "c": (fi + 1, fj),
            "d": (fi + 1, fj + 1),
        }
        return {
            label: (i, j)
            for label, (i, j) in candidates.items()
            if 0 <= i < self.dz and 0 <= j < self.dx
        }

    def _pocket(self, label: str, fi: int, fj: int) -> int:
        rel_r = 4 * fi if label in ("a", "b") else 4 * fi + 4
        rel_c = 4 * fj + 3 if label in ("a", "c") else 4 * fj + 5
        return self._site(rel_r, rel_c)

    def build_plaquette(self, fi: int, fj: int) -> Plaquette:
        """Resolve face (fi, fj) into a :class:`Plaquette` with routing infra."""
        if not self.face_exists(fi, fj):
            raise ValueError(f"face ({fi}, {fj}) does not exist in this arrangement")
        return self._resolve_plaquette(fi, fj, self.face_letter(fi, fj))

    def build_boundary_plaquette(self, fi: int, fj: int, letter: str) -> Plaquette:
        """Resolve a boundary face regardless of the current arrangement.

        Corner movement (§2.5) measures boundary stabilizers that do not yet
        belong to the patch's face set; this constructor supplies their
        geometry with an explicitly chosen letter.
        """
        on_boundary = fi in (-1, self.dz - 1) or fj in (-1, self.dx - 1)
        if not on_boundary:
            raise ValueError("corner movement can only add boundary stabilizers (§2.5)")
        return self._resolve_plaquette(fi, fj, letter)

    def _resolve_plaquette(self, fi: int, fj: int, letter: str) -> Plaquette:
        corners = self._corners(fi, fj)
        data_sites = {lab: self.data_site(i, j) for lab, (i, j) in corners.items()}
        pockets = {lab: self._pocket(lab, fi, fj) for lab in corners}

        labels = frozenset(corners)
        graph: dict[int, list[int]] = {}

        def link(u: int, v: int) -> None:
            graph.setdefault(u, []).append(v)
            graph.setdefault(v, []).append(u)

        if labels == {"c", "d"}:  # top boundary face
            j_s = self._site(4 * fi + 4, 4 * fj + 4)
            link(pockets["c"], j_s)
            link(pockets["d"], j_s)
            home = pockets["d"]
        elif labels == {"a", "b"}:  # bottom boundary face
            j_n = self._site(4 * fi, 4 * fj + 4)
            park = self._site(4 * fi + 1, 4 * fj + 4)
            link(pockets["a"], j_n)
            link(pockets["b"], j_n)
            link(park, j_n)
            home = park
        elif labels in ({"b", "d"}, {"a", "c"}, {"a", "b", "c", "d"}):
            # left boundary, right boundary, or interior: private corridor.
            j_n = self._site(4 * fi, 4 * fj + 4)
            j_s = self._site(4 * fi + 4, 4 * fj + 4)
            m_n = self._site(4 * fi + 1, 4 * fj + 4)
            hm = self._site(4 * fi + 2, 4 * fj + 4)
            m_s = self._site(4 * fi + 3, 4 * fj + 4)
            link(j_n, m_n)
            link(m_n, hm)
            link(hm, m_s)
            link(m_s, j_s)
            for lab in labels & {"a", "b"}:
                link(pockets[lab], j_n)
            for lab in labels & {"c", "d"}:
                link(pockets[lab], j_s)
            home = hm
        else:
            raise ValueError(f"unsupported corner combination {sorted(labels)}")

        return Plaquette(
            face=(fi, fj),
            pauli=letter,
            corners=corners,
            data_sites=data_sites,
            pockets=pockets,
            home=home,
            graph=graph,
        )

    def plaquettes(self) -> list[Plaquette]:
        return [self.build_plaquette(fi, fj) for fi, fj in self.face_coords()]

    # ------------------------------------------------------------- logicals
    def logical_vertical(self, col: int = 0) -> PauliString:
        """Default-edge vertical logical (letter set by the arrangement)."""
        letter = self.arrangement.vertical_letter
        return PauliString({self.data_site(i, col): letter for i in range(self.dz)})

    def logical_horizontal(self, row: int = 0) -> PauliString:
        letter = self.arrangement.horizontal_letter
        return PauliString({self.data_site(row, j): letter for j in range(self.dx)})

    def logical_z(self) -> PauliString:
        """The logical Z (wherever it runs in this arrangement)."""
        if self.arrangement.vertical_letter == "Z":
            return self.logical_vertical()
        return self.logical_horizontal()

    def logical_x(self) -> PauliString:
        if self.arrangement.vertical_letter == "X":
            return self.logical_vertical()
        return self.logical_horizontal()

    # ------------------------------------------------------------ rendering
    def render_ascii(self) -> str:
        """Fig 1-style map of the tile: site kinds, data qubits, face homes."""
        rows = 4 * self.tile_rows + 1
        cols = 4 * self.tile_cols + 1
        canvas = [[" "] * cols for _ in range(rows)]
        for r in range(rows):
            for c in range(cols):
                if r % 4 == 0 and c % 4 == 0:
                    canvas[r][c] = "J"
                elif r % 4 == 0 and c % 4 != 0:
                    canvas[r][c] = "O" if c % 4 == 2 else "M"
                elif c % 4 == 0:
                    canvas[r][c] = "O" if r % 4 == 2 else "M"
        for (i, j), _site in self.data_sites().items():
            canvas[4 * i][4 * j + 2] = "D"
        for plaq in self.plaquettes():
            r, c = self.grid.coords(plaq.home)
            canvas[r - self._or][c - self._oc] = plaq.pauli.lower()
        return "\n".join("".join(row) for row in canvas)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PatchLayout dx={self.dx} dz={self.dz} origin={self.origin} "
            f"{self.arrangement.name}>"
        )
