"""Corner movement: boundary-stabilizer deformation (paper §2.5, Fig 3).

"Methods are implemented within TISCC to deform patches by adding and
removing boundary stabilizers ... a given boundary stabilizer is added by
finding (and removing or replacing) the existing stabilizers and logical
operators that anti-commute with it.  Any logical operator with support on
the added stabilizer is also updated in favor of its lower-weight
counterpart. ... Where necessary, TISCC also handles the measurement and/or
preparation of corner qubits as needed to maintain a valid single-qubit
patch."

The engine implements exactly that gauge-fixing algebra:

* :func:`add_boundary_stabilizer` measures one new weight-2 boundary face:
  the unique (possibly combined) anticommuting generator is removed,
  anticommuting logical representatives are repaired with it, and logicals
  are reduced in favour of lower weight — every sign correction lands on
  the operators' ledgers (§4.5 post-processing);
* :func:`extend_logical_operator_clockwise` measures the sequence of
  boundary faces that re-gauges one edge, moving that corner one notch;
* :func:`flip_patch` performs the four clockwise corner movements of Fig 3
  (standard -> flipped, rotated -> rotated-flipped), preserving the state.

Deformations that would require measuring a logical operator — the paper's
caution that "not all valid patch deformations can be implemented
fault-tolerantly" — first attempt the corner-qubit measure-out/re-prepare
escape hatch and otherwise raise :class:`DeformationError`.
"""

from __future__ import annotations


from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit, TrackedOperator, _symplectic
from repro.code.pauli import PauliString
from repro.code.patch_ops import _evacuate_stale_ions, _staff_measure_ions
from repro.code.plaquette import Plaquette
from repro.hardware.circuit import HardwareCircuit
from repro.util.gf2 import gf2_in_rowspace

__all__ = [
    "DeformationError",
    "DeformationSession",
    "add_boundary_stabilizer",
    "extend_logical_operator_clockwise",
    "flip_patch",
]


class DeformationError(RuntimeError):
    """The requested deformation cannot preserve the encoded logical qubit."""


def _key(p: PauliString) -> frozenset:
    return frozenset(p.ops.items())


class DeformationSession:
    """Signed-stabilizer bookkeeping across one deformation.

    Every generator carries the measurement labels whose sign-product gives
    its current value; products of generators concatenate label lists.
    Seeded from the patch's most recent round of error correction.  Measure
    ions freed by removed faces go into ``free_ions`` for reuse.
    """

    def __init__(self, lq: LogicalQubit):
        self.lq = lq
        self.labels: dict[frozenset, list[str]] = {}
        self.free_ions: list[int] = []
        if lq.round_records:
            last = lq.round_records[-1].outcome_labels
            for plaq in lq.plaquettes:
                if plaq.face in last:
                    self.labels[_key(plaq.stabilizer())] = [last[plaq.face]]

    def labels_for(self, stab: PauliString) -> list[str]:
        return list(self.labels.get(_key(stab), []))

    def record(self, stab: PauliString, labels: list[str]) -> None:
        self.labels[_key(stab)] = list(labels)

    def release_face_ion(self, removed: PauliString) -> None:
        """If the removed generator was a canonical face, free its ion."""
        for plaq in self.lq.plaquettes:
            if _key(plaq.stabilizer()) == _key(removed):
                ion = self.lq.measure_ions.pop(plaq.face, None)
                if ion is not None:
                    self.free_ions.append(ion)
                return


def _measure_new_face(
    session: DeformationSession,
    circuit: HardwareCircuit,
    plaq: Plaquette,
) -> str:
    """Schedule one syndrome measurement of a single new boundary face."""
    lq = session.lq
    grid = lq.grid
    ion = grid.ion_at(plaq.home)
    if ion is not None and ion in set(lq.measure_ions.values()):
        pass  # an active face already parks here — cannot happen for new faces
    if ion is None:
        while session.free_ions:
            k = session.free_ions.pop(0)
            try:
                path = grid.route(grid.site_of(k), plaq.home)
            except ValueError:
                session.free_ions.append(k)
                break
            grid.schedule_route(circuit, k, path, t_min=grid.now)
            ion = k
            break
        if ion is None:
            ion = grid.load_ion(circuit, plaq.home, f"{lq.name}:m{plaq.face}")
    record = lq.scheduler.schedule_round(
        circuit, [plaq], {plaq.face: ion}, lq.data_ion_at(), t_min=grid.now
    )
    lq.measure_ions[plaq.face] = ion
    return record.outcome_labels[plaq.face]


def add_boundary_stabilizer(
    session: DeformationSession,
    circuit: HardwareCircuit,
    fi: int,
    fj: int,
    letter: str | None = None,
) -> PauliString:
    """Measure a new weight-2 boundary stabilizer at face slot (fi, fj)."""
    lq = session.lq
    layout = lq.layout
    letter = layout.face_letter(fi, fj) if letter is None else letter
    plaq = layout.build_boundary_plaquette(fi, fj, letter)
    new_stab = plaq.stabilizer()
    if any(_key(s) == _key(new_stab) for s in lq.stabilizers):
        return new_stab  # already a generator

    anti = [s for s in lq.stabilizers if not s.commutes_with(new_stab)]
    if not anti:
        if _implied_by_group(lq, new_stab):
            # Dependent on the current generators: measuring it is harmless
            # (deterministic outcome); record the label, keep the rank.
            label = _measure_new_face(session, circuit, plaq)
            session.record(new_stab, [label])
            return new_stab
        anti = _corner_qubit_escape(session, circuit, plaq, new_stab, letter)

    removed = anti[0]
    removed_labels = session.labels_for(removed)
    session.release_face_ion(removed)
    keep = [s for s in lq.stabilizers if s.commutes_with(new_stab)]
    for other_stab in anti[1:]:
        combined = PauliString((other_stab * removed).ops)
        keep.append(combined)
        session.record(combined, session.labels_for(other_stab) + removed_labels)
    lq.stabilizers = keep

    for attr in ("logical_x", "logical_z"):
        op: TrackedOperator = getattr(lq, attr)
        if not op.pauli.commutes_with(new_stab):
            repaired = TrackedOperator(
                PauliString((op.pauli * removed).ops),
                op.corrections + removed_labels,
            )
            lq.deformation_log.append((f"repair {attr}", op.pauli, repaired.pauli))
            setattr(lq, attr, repaired)

    label = _measure_new_face(session, circuit, plaq)
    lq.stabilizers.append(new_stab)
    session.record(new_stab, [label])

    for attr in ("logical_x", "logical_z"):
        op = getattr(lq, attr)
        if op.pauli.support & new_stab.support:
            reduced_pauli = PauliString((op.pauli * new_stab).ops)
            if len(reduced_pauli.ops) < len(op.pauli.ops):
                reduced = TrackedOperator(reduced_pauli, op.corrections + [label])
                lq.deformation_log.append((f"reduce {attr}", op.pauli, reduced.pauli))
                setattr(lq, attr, reduced)
    return new_stab


def _implied_by_group(lq: LogicalQubit, stab: PauliString) -> bool:
    sites = lq.data_sites_present()
    mat = _symplectic(lq.stabilizers, sites)
    row = _symplectic([stab], sites)[0]
    return gf2_in_rowspace(mat, row)


def _corner_qubit_escape(
    session: DeformationSession,
    circuit: HardwareCircuit,
    plaq: Plaquette,
    new_stab: PauliString,
    letter: str,
) -> list[PauliString]:
    """Measure-out/re-prepare a corner qubit so the new face can attach.

    When no generator anticommutes with the new face, the face equals a
    logical representative modulo stabilizers; measuring it would collapse
    the encoded qubit.  Removing a corner data qubit (measured in the
    complementary basis) and re-preparing it in the face's basis re-attaches
    the face to the bulk (§2.5 corner-qubit handling).
    """
    lq = session.lq
    conflicted = [
        name
        for name, op in (("X", lq.logical_x), ("Z", lq.logical_z))
        if not op.pauli.commutes_with(new_stab)
    ]
    if not conflicted:
        raise DeformationError(
            f"face {plaq.face} is already implied by the stabilizer group; "
            "measuring it is redundant"
        )
    other = "Z" if letter == "X" else "X"
    for _corner_label, ij in sorted(plaq.corners.items()):
        try:
            lq.measure_out_data_qubit(circuit, ij, other)
        except RuntimeError:
            continue  # this corner's removal would hit a logical; try the other
        site = lq.layout.data_site(*ij)
        ion = lq.grid.ion_at(site)
        lq.data_ions[ij] = ion
        prep = lq.model.prepare_x if letter == "X" else lq.model.prepare_z
        prep(circuit, ion)
        single = PauliString({site: letter})
        lq.stabilizers.append(single)
        session.record(single, [])
        anti = [s for s in lq.stabilizers if not s.commutes_with(new_stab)]
        if anti:
            return anti
    raise DeformationError(
        f"adding face {plaq.face} would measure logical {'/'.join(conflicted)}; "
        "this deformation cannot preserve the encoded state (§2.5)"
    )


def extend_logical_operator_clockwise(
    session: DeformationSession,
    circuit: HardwareCircuit,
    edge: str,
) -> list[PauliString]:
    """Move the corner at the clockwise start of ``edge`` by one notch.

    Measures, in order, the boundary faces the offset-toggled arrangement
    hosts on that edge — "the sequence of boundary stabilizers that need to
    be measured in order to accomplish the desired movement".
    """
    lq = session.lq
    added = []
    for fi, fj, letter in _edge_targets(lq, edge):
        added.append(add_boundary_stabilizer(session, circuit, fi, fj, letter))
    return added


def _edge_targets(lq: LogicalQubit, edge: str) -> list[tuple[int, int, str]]:
    target = lq.arrangement.after_flip_patch()
    want = target.boundary_letter(edge)
    out = []
    if edge in ("top", "bottom"):
        fi = -1 if edge == "top" else lq.dz - 1
        for fj in range(0, lq.dx - 1):
            if target.face_letter(fi, fj) == want:
                out.append((fi, fj, want))
    elif edge in ("left", "right"):
        fj = -1 if edge == "left" else lq.dx - 1
        for fi in range(0, lq.dz - 1):
            if target.face_letter(fi, fj) == want:
                out.append((fi, fj, want))
    else:
        raise ValueError(edge)
    return out


def flip_patch(lq: LogicalQubit, circuit: HardwareCircuit) -> DeformationSession:
    """Flip Patch (Fig 3): four clockwise corner movements.

    Standard -> flipped or rotated -> rotated-flipped ("the only
    arrangements from which it was implemented", §4.3).  Face additions that
    transiently conflict are deferred and retried, so the edges interleave
    the way the four corner movements of Fig 3 do.
    """
    if lq.arrangement not in (Arrangement.STANDARD, Arrangement.ROTATED):
        raise ValueError("Flip Patch starts from the standard or rotated arrangement")
    if not lq.initialized:
        raise ValueError("cannot flip an uninitialized patch")
    session = DeformationSession(lq)

    pending = [
        t for edge in ("top", "right", "bottom", "left") for t in _edge_targets(lq, edge)
    ]
    while pending:
        progressed = False
        failures = []
        for fi, fj, letter in pending:
            try:
                add_boundary_stabilizer(session, circuit, fi, fj, letter)
                progressed = True
            except DeformationError as exc:
                failures.append(((fi, fj, letter), exc))
            except KeyError as exc:  # corner re-prep left a face unschedulable
                failures.append(
                    ((fi, fj, letter), DeformationError(f"face infrastructure lost: {exc}"))
                )
        pending = [t for t, _ in failures]
        if pending and not progressed:
            raise DeformationError(
                f"flip patch stuck; remaining faces {[t[:2] for t in pending]}: "
                f"{failures[0][1]}"
            )

    _finalize_arrangement(lq, circuit, lq.arrangement.after_flip_patch(), session)
    return session


def _finalize_arrangement(
    lq: LogicalQubit,
    circuit: HardwareCircuit,
    target: Arrangement,
    session: DeformationSession,
) -> None:
    """Re-label the patch to ``target`` and re-staff measure ions.

    Verifies that every canonical face of the target arrangement lies in
    the GF(2) span of the deformed generator set, so subsequent rounds of
    error correction measure operators with definite values.
    """
    from repro.code.patch_layout import PatchLayout

    sites = lq.data_sites_present()
    mat = _symplectic(lq.stabilizers, sites)
    layout = PatchLayout(lq.grid, lq.dx, lq.dz, lq.layout.origin, target)
    for fi, fj in layout.face_coords():
        stab = layout.build_plaquette(fi, fj).stabilizer()
        row = _symplectic([stab], sites)[0]
        if not gf2_in_rowspace(mat, row):
            # Not yet established (corner qubits were re-prepared along the
            # way).  Measuring it in the next round is benign exactly when it
            # cannot disturb the tracked logical representatives.
            if not (
                stab.commutes_with(lq.logical_x.pauli)
                and stab.commutes_with(lq.logical_z.pauli)
            ):
                raise DeformationError(
                    f"target face ({fi},{fj}) would disturb a logical operator"
                )

    lq.layout = layout
    lq.plaquettes = layout.plaquettes()
    lq.stabilizers = [p.stabilizer() for p in lq.plaquettes]
    retired = list(dict.fromkeys(list(lq.measure_ions.values()) + session.free_ions))
    lq.measure_ions = {}
    _staff_measure_ions(circuit, lq, retired)
    _evacuate_stale_ions(circuit, lq, retired)


