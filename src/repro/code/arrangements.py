"""The four canonical stabilizer arrangements (paper Fig 2).

Every arrangement is parameterized by two bits:

* ``letter_swap`` — X and Z roles exchanged at every face (what a transversal
  Hadamard does in place, §2.4);
* ``boundary_offset`` — the weight-2 boundary faces shifted one notch along
  each edge (what Flip Patch's four clockwise corner movements do, §2.5; the
  interior checkerboard is untouched, since corner movement "cannot add
  stabilizers other than boundary stabilizers").

Consistency checks reproduced from the paper:

* Standard --transversal H--> Rotated (swap toggles, Fig 2a->2b);
* Standard --Flip Patch--> Flipped (offset toggles, Fig 3);
* Flip Patch then transversal H --> Rotated-Flipped (§3.3);
* Standard --Move Right + Swap Left--> Rotated-Flipped: the one-column
  lattice-surgery shift re-anchors the checkerboard (swap toggles) *and*
  shifts the boundary faces (offset toggles) (Fig 4).

The letter of the logical operator that runs vertically follows from the
boundary types: Z for Standard/Rotated-Flipped, X for Rotated/Flipped.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Arrangement"]


class Arrangement(Enum):
    """Canonical (boundary_offset, letter_swap) combinations of Fig 2."""

    STANDARD = (0, 0)
    ROTATED = (0, 1)
    FLIPPED = (1, 0)
    ROTATED_FLIPPED = (1, 1)

    @property
    def boundary_offset(self) -> int:
        return self.value[0]

    @property
    def letter_swap(self) -> int:
        return self.value[1]

    @classmethod
    def from_bits(cls, boundary_offset: int, letter_swap: int) -> "Arrangement":
        return cls((boundary_offset % 2, letter_swap % 2))

    # ------------------------------------------------------- transformations
    def after_transversal_hadamard(self) -> "Arrangement":
        """Transversal H swaps every face's letter in place (§2.4, fn 4)."""
        return Arrangement.from_bits(self.boundary_offset, self.letter_swap ^ 1)

    def after_flip_patch(self) -> "Arrangement":
        """Flip Patch shifts the boundary faces one notch (§2.5, Fig 3)."""
        return Arrangement.from_bits(self.boundary_offset ^ 1, self.letter_swap)

    def after_column_shift(self) -> "Arrangement":
        """Move Right + Swap Left toggles both bits (Fig 4)."""
        return Arrangement.from_bits(self.boundary_offset ^ 1, self.letter_swap ^ 1)

    # ------------------------------------------------------------ structure
    def face_letter(self, fi: int, fj: int) -> str:
        """Checkerboard letter of face (fi, fj); independent of the offset."""
        base_is_z = (fi + fj) % 2 == 0
        if self.letter_swap:
            base_is_z = not base_is_z
        return "Z" if base_is_z else "X"

    @property
    def vertical_letter(self) -> str:
        """Letter of the logical operator running vertically (column-wise)."""
        if self.boundary_offset == 0:
            return "X" if self.letter_swap else "Z"
        return "Z" if self.letter_swap else "X"

    @property
    def horizontal_letter(self) -> str:
        return "X" if self.vertical_letter == "Z" else "Z"

    def boundary_letter(self, edge: str) -> str:
        """Letter a weight-2 face on ``edge`` must carry.

        A boundary face's letter is forced by the interior checkerboard (it
        overlaps two interior faces in one qubit each), and an edge hosts
        exactly the candidate faces whose forced letter matches the logical
        operator terminating there: the vertical logical on top/bottom, the
        horizontal one on left/right.  This letter-matching rule subsumes
        the per-edge alternation offsets for all distance parities
        (including the d=2 codes of §4.3).
        """
        if edge in ("top", "bottom"):
            return self.vertical_letter
        if edge in ("left", "right"):
            return self.horizontal_letter
        raise ValueError(edge)
