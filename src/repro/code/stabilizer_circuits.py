"""Explicit X/Z stabilizer circuit scheduling (paper §3.3, Fig 6).

Each plaquette is serviced by one mobile syndrome measure qubit that travels
to a gate pocket adjacent to each of its data qubits, in the order given by
the Z pattern (Z faces) or N pattern (X faces) — the two patterns prevent a
single measure-qubit error from becoming two data errors parallel to the
same-type logical operator (hook-error alignment, §3.3).

A round is scheduled in four data-interaction layers, globally synchronized
across plaquettes (each data qubit is touched by at most one face per
layer — this is what the Z/N pairing guarantees).  Within a layer, faces are
scheduled with a deferral worklist: a face whose next pocket is still
parked-on by another face's measure ion is retried after that ion departs.
Contention for shared junctions is resolved by the grid's junction calendar,
which serializes the crossings and counts the conflicts (§3.3).

Native interaction circuits (verified exactly in tests):

* Z face:  prep |+>_m;  per data:  ZZ(m,d), Z_{-pi/4}(m), Z_{-pi/4}(d)
  (= CZ up to phase);  finally measure X_m  — measures the Z-parity.
* X face:  same with the data qubit conjugated by Hadamards, fused to
  Z_{pi/2}(d), Y_{pi/4}(d), ZZ, Z_{-pi/4}(m), Z_{pi/4}(d), Y_{pi/4}(d)
  — measures the X-parity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.code.plaquette import Plaquette
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, SiteBlockedError
from repro.hardware.model import HardwareModel

__all__ = ["SyndromeScheduler", "RoundRecord"]


@dataclass
class RoundRecord:
    """Bookkeeping for one round of error correction over a patch."""

    outcome_labels: dict[tuple[int, int], str] = field(default_factory=dict)
    t_start: float = 0.0
    t_end: float = 0.0
    junction_conflicts: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


#: Timing slack for template-replay eligibility (matches the validity EPS).
_EPS = 1e-9


class SyndromeScheduler:
    """Schedules rounds of syndrome extraction for sets of plaquettes."""

    #: Class-wide default for QEC-round template replay (see
    #: :meth:`schedule_rounds`); tests and benchmarks flip it to compare
    #: against the round-by-round legacy path.
    template_replay: bool = True

    def __init__(self, grid: GridManager, model: HardwareModel):
        self.grid = grid
        self.model = model

    # ----------------------------------------------------------- interaction
    def _interaction(
        self,
        circuit: HardwareCircuit,
        plaq: Plaquette,
        m_ion: int,
        d_ion: int,
    ) -> None:
        model = self.model
        if plaq.pauli == "Z":
            model.zz(circuit, m_ion, d_ion)
            model.native1(circuit, "Z_-pi/4", m_ion)
            model.native1(circuit, "Z_-pi/4", d_ion)
        else:
            model.native1(circuit, "Z_pi/2", d_ion)
            model.native1(circuit, "Y_pi/4", d_ion)
            model.zz(circuit, m_ion, d_ion)
            model.native1(circuit, "Z_-pi/4", m_ion)
            model.native1(circuit, "Z_pi/4", d_ion)
            model.native1(circuit, "Y_pi/4", d_ion)

    # ------------------------------------------------------------- worklist
    def _sidestep(self, circuit: HardwareCircuit, jobs: deque, t_floor: float) -> bool:
        """Break an occupancy cycle by parking one blocked ion off to the side.

        Two measure ions can need to swap places across a junction (e.g. an
        interior face's a->b transition against a top face leaving home).
        The interior ion retreats one hop into a free site of its own face
        graph — preferably its private corridor — freeing the contested
        pocket.  Returns True when a sidestep was scheduled.
        """
        for ion, target, plaq, _after in jobs:
            cur = self.grid.site_of(ion)
            pockets = set(plaq.pockets.values())
            candidates = sorted(plaq.graph) + []
            # Prefer non-pocket (corridor/park) sites.
            candidates.sort(key=lambda s: (s in pockets, s))
            for s in candidates:
                if s in (cur, target) or not self.grid.is_zone(s):
                    continue
                if self.grid.ion_at(s) is not None:
                    continue
                try:
                    hop_path = plaq.path(cur, s)
                except ValueError:
                    continue
                if len(hop_path) > 3:  # only one hop (possibly across a junction)
                    continue
                self.grid.schedule_route(circuit, ion, hop_path, t_min=t_floor)
                return True
        return False

    def _drain(
        self,
        circuit: HardwareCircuit,
        jobs: deque,
        t_floor: float,
    ) -> None:
        """Run (ion, target_site, plaquette, after_arrival) jobs with deferral."""
        stalls = 0
        sidesteps = 0
        while jobs:
            ion, target, plaq, after = jobs.popleft()
            cur = self.grid.site_of(ion)
            try:
                path = plaq.path(cur, target)
                self.grid.schedule_route(circuit, ion, path, t_min=t_floor)
            except SiteBlockedError:
                jobs.append((ion, target, plaq, after))
                stalls += 1
                if stalls > len(jobs):
                    if self._sidestep(circuit, jobs, t_floor):
                        sidesteps += 1
                        stalls = 0
                        if sidesteps <= 4 * len(jobs) + 8:
                            continue
                    blockers = {j[1]: self.grid.ion_at(j[1]) for j in jobs}
                    raise RuntimeError(
                        f"syndrome schedule deadlock; blocked targets: {blockers}"
                    ) from None
                continue
            stalls = 0
            if after is not None:
                after()

    # ----------------------------------------------------------------- round
    def schedule_round(
        self,
        circuit: HardwareCircuit,
        plaquettes: list[Plaquette],
        measure_ions: dict[tuple[int, int], int],
        data_ion_at: dict[int, int],
        t_min: float = 0.0,
    ) -> RoundRecord:
        """One round of error correction over ``plaquettes``.

        ``measure_ions`` maps face coords to the measure ion (which must be
        parked at the face's home site); ``data_ion_at`` maps data qsites to
        data ions.  Returns the per-face measurement labels.
        """
        grid = self.grid
        record = RoundRecord(t_start=t_min)
        conflicts_before = grid.junction_conflicts

        all_ions = [measure_ions[p.face] for p in plaquettes]
        all_ions += [data_ion_at[s] for p in plaquettes for s in p.data_sites.values()]
        all_ions = sorted(set(all_ions))

        # Phase 0: prepare every measure ion in |+> at its parking site.
        for plaq in plaquettes:
            m = measure_ions[plaq.face]
            if grid.site_of(m) != plaq.home:
                raise ValueError(
                    f"measure ion of face {plaq.face} is not parked at home "
                    f"({grid.site_of(m)} != {plaq.home})"
                )
            self.model.prepare_x(circuit, m, t_min=t_min)

        # Phases 1-4: pattern layers, globally synchronized.  A face that
        # finishes its visits early returns home in the following layer so
        # that its final pocket is free for later visitors (weight-2 faces
        # share pockets with their interior neighbours).
        last_layer = {p.face: max(l for l, _ in p.visits()) for p in plaquettes}
        go_home: deque = deque()
        t_floor = t_min
        for layer in range(1, 5):
            jobs: deque = deque(go_home)
            go_home = deque()
            for plaq in plaquettes:
                for visit_layer, corner in plaq.visits():
                    if visit_layer != layer:
                        continue
                    m = measure_ions[plaq.face]
                    d = data_ion_at[plaq.data_sites[corner]]

                    def hook(plaq=plaq, m=m, d=d) -> None:
                        self._interaction(circuit, plaq, m, d)

                    jobs.append((m, plaq.pockets[corner], plaq, hook))
            self._drain(circuit, jobs, t_floor)
            for plaq in plaquettes:
                if last_layer[plaq.face] == layer:
                    go_home.append((measure_ions[plaq.face], plaq.home, plaq, None))
            t_floor = max(grid.ion_ready(ion) for ion in all_ions)

        # Phase 5: remaining homeward moves, then measure in the X basis.
        self._drain(circuit, go_home, t_floor)

        for plaq in plaquettes:
            m = measure_ions[plaq.face]
            _, label = self.model.measure_x(circuit, m)
            record.outcome_labels[plaq.face] = label

        record.t_end = max(grid.ion_ready(ion) for ion in all_ions)
        record.junction_conflicts = grid.junction_conflicts - conflicts_before
        return record

    def schedule_rounds(
        self,
        circuit: HardwareCircuit,
        plaquettes: list[Plaquette],
        measure_ions: dict[tuple[int, int], int],
        data_ion_at: dict[int, int],
        rounds: int,
        t_min: float = 0.0,
    ) -> list[RoundRecord]:
        """``rounds`` rounds of error correction, template-replayed when safe.

        Every round of syndrome extraction over a fixed plaquette set is a
        time-shifted copy of the previous one, provided the round starts in
        a *steady state*: every measure ion parked at home and no scheduled
        history (ion clocks, site/junction calendars) extending past the
        round's start time.  When those conditions hold — verified against
        :attr:`GridManager.t_horizon` before compiling and against the ion
        positions after — one round is compiled as a template and the
        remaining ``rounds - 1`` are replayed by a vectorized time-offset +
        measurement-relabel (:meth:`HardwareCircuit.replay_block`), instead
        of re-walking the plaquette schedules.  The emitted instruction
        stream is identical to the round-by-round path (locked down by
        tests); set :attr:`template_replay` to ``False`` to force the
        legacy loop.
        """
        grid = self.grid
        records: list[RoundRecord] = []
        t = t_min
        r = 0
        ions: set[int] | None = None
        while r < rounds:
            eligible = (
                self.template_replay and rounds - r >= 2 and t + _EPS >= grid.t_horizon
            )
            if eligible:
                if ions is None:
                    ions = set(measure_ions.values())
                    ions.update(
                        data_ion_at[s] for p in plaquettes for s in p.data_sites.values()
                    )
                pos_before = {i: grid.site_of(i) for i in ions}
                ready_before = {i: grid.ion_ready(i) for i in ions}
            start = len(circuit)
            delays_before = grid.site_delays
            rec = self.schedule_round(circuit, plaquettes, measure_ions, data_ion_at, t)
            records.append(rec)
            t = rec.t_end
            r += 1
            if eligible:
                # The round is a reusable template only in *steady state*:
                # every ion back where it started with its clock advanced by
                # exactly the round duration, so the next round's schedule is
                # this one shifted.  A round entered from a non-steady state
                # (round 1 after a preparation or a merge) is still usable
                # when its only entry-dependence is the known transient —
                # data ions whose first visit is an X face open with a
                # rotation pair anchored to their own free time — which
                # :meth:`_transform_override` re-anchors per replica.
                delta = rec.t_end - rec.t_start
                assert ions is not None
                home_again = all(grid.site_of(i) == pos_before[i] for i in ions)
                steady = home_again and delta > 0 and all(
                    abs(grid.ion_ready(i) - ready_before[i] - delta) <= _EPS
                    for i in ions
                )
                override = None
                if not steady and home_again and delta > 0:
                    override = self._transform_override(
                        circuit, (start, len(circuit)), data_ion_at,
                        ready_before, delta, t
                    )
                if steady or override is not None:
                    records.extend(
                        self._replay_rounds(
                            circuit,
                            ions,
                            template=rec,
                            block=(start, len(circuit)),
                            copies=rounds - r,
                            site_delays=grid.site_delays - delays_before,
                            override=None if steady else override,
                        )
                    )
                    r = rounds
        return records

    def _transform_override(
        self,
        circuit: HardwareCircuit,
        block: tuple[int, int],
        data_ion_at: dict[int, int],
        ready_before: dict[int, float],
        delta: float,
        t_end: float,
    ):
        """Re-anchoring data for replaying a *transient* first round.

        A freshly entered round differs from the steady-state rounds that
        follow it in exactly one way: a data ion whose first visit is an
        X-face interaction opens with single-qubit rotations scheduled at
        its own entry clock (``max(0, ready)`` anchoring), while every
        other row's time is a function of the round start.  In round
        ``k + 1`` those prefix rows start at the ion's end-of-round-``k``
        clock instead.  This analysis finds every such prefix chain in the
        template block and returns ``(block_positions, first-replica
        times)`` for :meth:`HardwareCircuit.replay_block`, or ``None`` when
        any of the safety conditions fails (in which case the caller simply
        compiles the next round and templates from there):

        * prefix chains consist of single-site rows on non-moving data
          ions, exactly continuing the ion's entry clock, and terminate at
          a two-site row (an ion that never interacts would re-anchor by
          its chain length, not by the round duration);
        * every re-anchored chain still finishes before the interaction
          that absorbs it (``max`` keeps resolving to the measure-ion
          side), and before every measure ion's phase-0 preparation ends
          (so no layer barrier can resolve to a re-anchored clock).
        """
        start, stop = block
        cols = circuit.columns()
        site0 = cols.site0[start:stop].tolist()
        site1 = cols.site1[start:stop].tolist()
        ts = cols.t[start:stop].tolist()
        durs = cols.duration[start:stop].tolist()
        two_site = (cols.nsites[start:stop] == 2).tolist()
        grid = self.grid
        t_start = t_end - delta

        entry_of = {}
        for site, ion in data_ion_at.items():
            ready = ready_before.get(ion)
            if ready is not None:
                entry_of[site] = (ion, ready)
        # One walk over the block: grow each data site's entry-anchored
        # prefix chain until a mismatching or two-site row absorbs it, and
        # in parallel measure every *non-data* site's round-start-anchored
        # opening chain (the measure ions' phase-0 preparations).
        chain: dict[int, list[int]] = {}  # data site -> chain positions
        clock: dict[int, float] = {}  # data site -> continued entry clock
        absorbed: dict[int, float] = {}  # data site -> absorbing row start
        phase0: dict[int, float] = {}  # non-data site -> t_min-anchored end
        phase0_done: set[int] = set()
        for p in range(len(ts)):
            sites = (site0[p], site1[p]) if two_site[p] else (site0[p],)
            for s in sites:
                info = entry_of.get(s)
                if info is None:
                    if s in phase0_done:
                        continue
                    expected = phase0.get(s, t_start)
                    if not two_site[p] and ts[p] == expected:
                        phase0[s] = ts[p] + durs[p]
                    else:
                        phase0_done.add(s)
                    continue
                if s in absorbed:
                    continue
                expected = clock.get(s, info[1])
                if not two_site[p] and ts[p] == expected:
                    chain.setdefault(s, []).append(p)
                    clock[s] = ts[p] + durs[p]
                else:
                    absorbed[s] = ts[p]  # first non-chain row touching s
        if not chain or not phase0:
            return None  # no recognizable transient to re-anchor
        # No re-anchored chain may outlast the earliest measure-ion
        # preparation, or a layer barrier (max over ion clocks) could
        # resolve to a re-anchored clock and shift the whole layer.
        phase0_floor = min(phase0.values())
        positions: list[int] = []
        times: list[float] = []
        for s, rows in chain.items():
            absorb = absorbed.get(s)
            if absorb is None:
                return None  # chain never interacts: re-anchoring diverges
            ion = entry_of[s][0]
            new_clock = grid.ion_ready(ion)  # end-of-template clock
            if clock[s] > phase0_floor + _EPS:
                return None
            for p in rows:
                positions.append(p)
                times.append(new_clock)
                new_clock += durs[p]
            if new_clock > absorb + delta + _EPS:
                return None  # the absorbing max() would flip sides
            if new_clock > phase0_floor + delta + _EPS:
                return None
        return (
            np.array(positions, dtype=np.int64),
            np.array(times, dtype=np.float64),
        )

    def _replay_rounds(
        self,
        circuit: HardwareCircuit,
        ions: set[int],
        template: RoundRecord,
        block: tuple[int, int],
        copies: int,
        site_delays: int,
        override: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> list[RoundRecord]:
        """Replay ``copies`` rounds from a compiled template block.

        Replicates the instruction slice with vectorized time offsets and
        fresh measurement labels (re-anchoring any transient prefix rows
        via ``override``), then advances the grid's bookkeeping (ion
        clocks, parked-since stamps, junction-conflict and site-delay
        counters) exactly as the round-by-round path would have.
        """
        if copies < 1:
            return []
        delta = template.t_end - template.t_start
        label_maps = circuit.replay_block(
            block[0], block[1], copies, delta, override=override
        )
        records = []
        for k, relabel in enumerate(label_maps, start=1):
            records.append(
                RoundRecord(
                    outcome_labels={
                        face: relabel[label]
                        for face, label in template.outcome_labels.items()
                    },
                    t_start=template.t_start + k * delta,
                    t_end=template.t_end + k * delta,
                    junction_conflicts=template.junction_conflicts,
                )
            )
        self.grid.shift_ions(ions, copies * delta)
        self.grid.junction_conflicts += copies * template.junction_conflicts
        self.grid.site_delays += copies * site_delays
        return records
