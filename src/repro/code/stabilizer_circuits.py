"""Explicit X/Z stabilizer circuit scheduling (paper §3.3, Fig 6).

Each plaquette is serviced by one mobile syndrome measure qubit that travels
to a gate pocket adjacent to each of its data qubits, in the order given by
the Z pattern (Z faces) or N pattern (X faces) — the two patterns prevent a
single measure-qubit error from becoming two data errors parallel to the
same-type logical operator (hook-error alignment, §3.3).

A round is scheduled in four data-interaction layers, globally synchronized
across plaquettes (each data qubit is touched by at most one face per
layer — this is what the Z/N pairing guarantees).  Within a layer, faces are
scheduled with a deferral worklist: a face whose next pocket is still
parked-on by another face's measure ion is retried after that ion departs.
Contention for shared junctions is resolved by the grid's junction calendar,
which serializes the crossings and counts the conflicts (§3.3).

Native interaction circuits (verified exactly in tests):

* Z face:  prep |+>_m;  per data:  ZZ(m,d), Z_{-pi/4}(m), Z_{-pi/4}(d)
  (= CZ up to phase);  finally measure X_m  — measures the Z-parity.
* X face:  same with the data qubit conjugated by Hadamards, fused to
  Z_{pi/2}(d), Y_{pi/4}(d), ZZ, Z_{-pi/4}(m), Z_{pi/4}(d), Y_{pi/4}(d)
  — measures the X-parity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.code.plaquette import Plaquette
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager, SiteBlockedError
from repro.hardware.model import HardwareModel

__all__ = ["SyndromeScheduler", "RoundRecord"]


@dataclass
class RoundRecord:
    """Bookkeeping for one round of error correction over a patch."""

    outcome_labels: dict[tuple[int, int], str] = field(default_factory=dict)
    t_start: float = 0.0
    t_end: float = 0.0
    junction_conflicts: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class SyndromeScheduler:
    """Schedules rounds of syndrome extraction for sets of plaquettes."""

    def __init__(self, grid: GridManager, model: HardwareModel):
        self.grid = grid
        self.model = model

    # ----------------------------------------------------------- interaction
    def _interaction(
        self,
        circuit: HardwareCircuit,
        plaq: Plaquette,
        m_ion: int,
        d_ion: int,
    ) -> None:
        model = self.model
        if plaq.pauli == "Z":
            model.zz(circuit, m_ion, d_ion)
            model.native1(circuit, "Z_-pi/4", m_ion)
            model.native1(circuit, "Z_-pi/4", d_ion)
        else:
            model.native1(circuit, "Z_pi/2", d_ion)
            model.native1(circuit, "Y_pi/4", d_ion)
            model.zz(circuit, m_ion, d_ion)
            model.native1(circuit, "Z_-pi/4", m_ion)
            model.native1(circuit, "Z_pi/4", d_ion)
            model.native1(circuit, "Y_pi/4", d_ion)

    # ------------------------------------------------------------- worklist
    def _sidestep(self, circuit: HardwareCircuit, jobs: deque, t_floor: float) -> bool:
        """Break an occupancy cycle by parking one blocked ion off to the side.

        Two measure ions can need to swap places across a junction (e.g. an
        interior face's a->b transition against a top face leaving home).
        The interior ion retreats one hop into a free site of its own face
        graph — preferably its private corridor — freeing the contested
        pocket.  Returns True when a sidestep was scheduled.
        """
        for ion, target, plaq, _after in jobs:
            cur = self.grid.site_of(ion)
            pockets = set(plaq.pockets.values())
            candidates = sorted(plaq.graph) + []
            # Prefer non-pocket (corridor/park) sites.
            candidates.sort(key=lambda s: (s in pockets, s))
            for s in candidates:
                if s in (cur, target) or not self.grid.is_zone(s):
                    continue
                if self.grid.ion_at(s) is not None:
                    continue
                try:
                    hop_path = plaq.path(cur, s)
                except ValueError:
                    continue
                if len(hop_path) > 3:  # only one hop (possibly across a junction)
                    continue
                self.grid.schedule_route(circuit, ion, hop_path, t_min=t_floor)
                return True
        return False

    def _drain(
        self,
        circuit: HardwareCircuit,
        jobs: deque,
        t_floor: float,
    ) -> None:
        """Run (ion, target_site, plaquette, after_arrival) jobs with deferral."""
        stalls = 0
        sidesteps = 0
        while jobs:
            ion, target, plaq, after = jobs.popleft()
            cur = self.grid.site_of(ion)
            try:
                path = plaq.path(cur, target)
                self.grid.schedule_route(circuit, ion, path, t_min=t_floor)
            except SiteBlockedError:
                jobs.append((ion, target, plaq, after))
                stalls += 1
                if stalls > len(jobs):
                    if self._sidestep(circuit, jobs, t_floor):
                        sidesteps += 1
                        stalls = 0
                        if sidesteps <= 4 * len(jobs) + 8:
                            continue
                    blockers = {j[1]: self.grid.ion_at(j[1]) for j in jobs}
                    raise RuntimeError(
                        f"syndrome schedule deadlock; blocked targets: {blockers}"
                    ) from None
                continue
            stalls = 0
            if after is not None:
                after()

    # ----------------------------------------------------------------- round
    def schedule_round(
        self,
        circuit: HardwareCircuit,
        plaquettes: list[Plaquette],
        measure_ions: dict[tuple[int, int], int],
        data_ion_at: dict[int, int],
        t_min: float = 0.0,
    ) -> RoundRecord:
        """One round of error correction over ``plaquettes``.

        ``measure_ions`` maps face coords to the measure ion (which must be
        parked at the face's home site); ``data_ion_at`` maps data qsites to
        data ions.  Returns the per-face measurement labels.
        """
        grid = self.grid
        record = RoundRecord(t_start=t_min)
        conflicts_before = grid.junction_conflicts

        all_ions = [measure_ions[p.face] for p in plaquettes]
        all_ions += [data_ion_at[s] for p in plaquettes for s in p.data_sites.values()]
        all_ions = sorted(set(all_ions))

        # Phase 0: prepare every measure ion in |+> at its parking site.
        for plaq in plaquettes:
            m = measure_ions[plaq.face]
            if grid.site_of(m) != plaq.home:
                raise ValueError(
                    f"measure ion of face {plaq.face} is not parked at home "
                    f"({grid.site_of(m)} != {plaq.home})"
                )
            self.model.prepare_x(circuit, m, t_min=t_min)

        # Phases 1-4: pattern layers, globally synchronized.  A face that
        # finishes its visits early returns home in the following layer so
        # that its final pocket is free for later visitors (weight-2 faces
        # share pockets with their interior neighbours).
        last_layer = {p.face: max(l for l, _ in p.visits()) for p in plaquettes}
        go_home: deque = deque()
        t_floor = t_min
        for layer in range(1, 5):
            jobs: deque = deque(go_home)
            go_home = deque()
            for plaq in plaquettes:
                for visit_layer, corner in plaq.visits():
                    if visit_layer != layer:
                        continue
                    m = measure_ions[plaq.face]
                    d = data_ion_at[plaq.data_sites[corner]]

                    def hook(plaq=plaq, m=m, d=d) -> None:
                        self._interaction(circuit, plaq, m, d)

                    jobs.append((m, plaq.pockets[corner], plaq, hook))
            self._drain(circuit, jobs, t_floor)
            for plaq in plaquettes:
                if last_layer[plaq.face] == layer:
                    go_home.append((measure_ions[plaq.face], plaq.home, plaq, None))
            t_floor = max(grid.ion_ready(ion) for ion in all_ions)

        # Phase 5: remaining homeward moves, then measure in the X basis.
        self._drain(circuit, go_home, t_floor)

        for plaq in plaquettes:
            m = measure_ions[plaq.face]
            _, label = self.model.measure_x(circuit, m)
            record.outcome_labels[plaq.face] = label

        record.t_end = max(grid.ion_ready(ion) for ion in all_ions)
        record.junction_conflicts = grid.junction_conflicts - conflicts_before
        return record

    def schedule_rounds(
        self,
        circuit: HardwareCircuit,
        plaquettes: list[Plaquette],
        measure_ions: dict[tuple[int, int], int],
        data_ion_at: dict[int, int],
        rounds: int,
        t_min: float = 0.0,
    ) -> list[RoundRecord]:
        records = []
        t = t_min
        for _ in range(rounds):
            rec = self.schedule_round(circuit, plaquettes, measure_ions, data_ion_at, t)
            records.append(rec)
            t = rec.t_end
        return records
