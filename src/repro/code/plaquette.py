"""Stabilizer plaquettes and their hardware footprint.

A :class:`Plaquette` "primarily tracks the grid indices (qsites) occupied by
the qubits supported by a stabilizer plaquette" (paper App. B).  Here it also
carries the face's syndrome-extraction infrastructure: the parking site of
its mobile measure qubit, the gate pocket next to each data qubit, and the
private corridor sites used to travel between pockets — everything the
Z/N-pattern scheduler (§3.3, Fig 6) needs.

Corner labels follow Fig 6: ``a`` = NW, ``b`` = NE, ``c`` = SW, ``d`` = SE.
The Z pattern visits ``a, b, c, d``; the N pattern visits ``a, c, b, d``.
Missing corners (weight-2 boundary faces) keep their layer slots, so all
plaquettes of a patch stay layer-synchronized.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.code.pauli import PauliString

__all__ = ["Plaquette", "Z_PATTERN", "N_PATTERN"]

#: Measurement patterns (§3.3): corner visit order per layer.
Z_PATTERN = ("a", "b", "c", "d")
N_PATTERN = ("a", "c", "b", "d")


@dataclass
class Plaquette:
    """One stabilizer face, fully resolved onto grid qsites.

    ``face`` is the face coordinate (fi, fj) in patch-relative face space;
    ``pauli`` its stabilizer letter; ``corners`` maps present corner labels
    to data-qubit (i, j) indices; ``data_sites``/``pockets`` map the same
    labels to the data qsite and the measure-ion gate position; ``home`` is
    the measure ion's parking site; ``graph`` is the local adjacency of its
    infrastructure sites used to route between pockets.
    """

    face: tuple[int, int]
    pauli: str
    corners: dict[str, tuple[int, int]]
    data_sites: dict[str, int]
    pockets: dict[str, int]
    home: int
    graph: dict[int, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pauli not in ("X", "Z"):
            raise ValueError(f"plaquette letter must be X or Z, got {self.pauli!r}")
        if not self.corners:
            raise ValueError("a plaquette needs at least one corner")
        if set(self.corners) != set(self.data_sites) or set(self.corners) != set(self.pockets):
            raise ValueError("corners, data_sites and pockets must agree on labels")

    # -------------------------------------------------------------- algebra
    @property
    def weight(self) -> int:
        return len(self.corners)

    @property
    def pattern(self) -> tuple[str, ...]:
        """Measure-qubit visit order: Z faces use the Z pattern, X the N (§3.3)."""
        return Z_PATTERN if self.pauli == "Z" else N_PATTERN

    def stabilizer(self) -> PauliString:
        """The face's stabilizer as a Pauli string over data qsites."""
        return PauliString({site: self.pauli for site in self.data_sites.values()})

    def visits(self) -> list[tuple[int, str]]:
        """(layer, corner) pairs in execution order; layers are 1-based."""
        return [
            (layer, corner)
            for layer, corner in enumerate(self.pattern, start=1)
            if corner in self.corners
        ]

    # -------------------------------------------------------------- routing
    def path(self, src: int, dst: int) -> list[int]:
        """Shortest path from src to dst through this face's private sites.

        The face graph is immutable, so results are memoized — syndrome
        rounds re-request the same pocket-to-pocket hops every round.
        """
        cache = getattr(self, "_path_cache", None)
        if cache is None:
            cache = self._path_cache = {}
        hit = cache.get((src, dst))
        if hit is not None:
            return hit
        out = self._path_uncached(src, dst)
        cache[(src, dst)] = out
        return out

    def _path_uncached(self, src: int, dst: int) -> list[int]:
        if src == dst:
            return [src]
        prev: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self.graph.get(cur, ()):
                if nxt in prev:
                    continue
                prev[nxt] = cur
                if nxt == dst:
                    out = [dst]
                    while out[-1] != src:
                        out.append(prev[out[-1]])
                    return out[::-1]
                queue.append(nxt)
        raise ValueError(f"no route {src} -> {dst} within plaquette {self.face}")

    def all_sites(self) -> set[int]:
        """Every qsite this face's infrastructure can touch (incl. junctions)."""
        sites = set(self.graph)
        for adj in self.graph.values():
            sites.update(adj)
        sites.update(self.data_sites.values())
        return sites

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Plaquette {self.pauli}{self.face} w{self.weight} home={self.home}>"
