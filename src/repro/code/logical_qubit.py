"""LogicalQubit: a surface-code patch and its primitive operations (Table 2).

"LogicalQubit: Constructed by requesting Plaquettes from the GridManager.
Provides functions to compile the patch-level operations ... Manages its
Plaquettes, parity check matrix, and logical operators by updating them when
necessary and testing validity." (paper App. B)

The class owns

* the patch geometry (:class:`~repro.code.patch_layout.PatchLayout`) and its
  resolved plaquettes,
* the explicit stabilizer generator list (kept as Pauli strings; during
  corner movements it deviates from the canonical layout),
* the default-edge logical operators with their *sign-correction ledgers*:
  measurement labels whose outcome signs multiply the raw expectation value
  of the current operator representative (§4.5 post-processing), and
* the data/measure ion registries on the grid.

Primitives implemented here: transversal Prepare/Measure/Hadamard, Inject
Y/T, Pauli X/Y/Z, and Idle (Table 2).  Merge/Split live in
:mod:`repro.code.patch_ops`, corner movement in :mod:`repro.code.corner`,
and Move Right / Swap Left in :mod:`repro.code.translation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.code.arrangements import Arrangement
from repro.code.patch_layout import PatchLayout
from repro.code.pauli import PauliString
from repro.code.plaquette import Plaquette
from repro.code.stabilizer_circuits import RoundRecord, SyndromeScheduler
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.hardware.model import HardwareModel
from repro.util.gf2 import gf2_in_rowspace, gf2_rank

__all__ = ["LogicalQubit", "TrackedOperator"]

_ROTATION_FOR = {"X": "X_pi/2", "Y": "Y_pi/2", "Z": "Z_pi/2"}


@dataclass
class TrackedOperator:
    """A logical operator representative plus its outcome-sign ledger.

    ``pauli`` is the current Pauli-string representative over data qsites;
    ``corrections`` lists measurement labels whose +/-1 outcome signs must
    multiply the raw simulated expectation of ``pauli`` to recover the value
    of the *original* logical operator (§4.5: operator deformation/movement
    tracking for classical post-processing).
    """

    pauli: PauliString
    corrections: list[str] = field(default_factory=list)

    def multiplied_by(self, stab: PauliString, label: str | None = None) -> "TrackedOperator":
        new = self.pauli * stab
        if new.phase % 2 != 0:
            raise ValueError("logical operator update lost hermiticity")
        corr = list(self.corrections)
        if label is not None:
            corr.append(label)
        return TrackedOperator(new, corr)


def _symplectic(paulis: list[PauliString], site_order: list[int]) -> np.ndarray:
    """Stack Pauli strings as GF(2) symplectic rows [x-part | z-part]."""
    idx = {s: k for k, s in enumerate(site_order)}
    n = len(site_order)
    mat = np.zeros((len(paulis), 2 * n), dtype=np.uint8)
    for r, p in enumerate(paulis):
        for site, letter in p.ops.items():
            k = idx[site]
            if letter in ("X", "Y"):
                mat[r, k] = 1
            if letter in ("Z", "Y"):
                mat[r, n + k] = 1
    return mat


class LogicalQubit:
    """One surface-code patch with dx columns and dz rows of data qubits."""

    def __init__(
        self,
        grid: GridManager,
        model: HardwareModel,
        dx: int,
        dz: int,
        origin: tuple[int, int] = (0, 0),
        arrangement: Arrangement = Arrangement.STANDARD,
        name: str = "q",
        place_ions: bool = True,
    ):
        self.grid = grid
        self.model = model
        self.name = name
        self.scheduler = SyndromeScheduler(grid, model)
        self.layout = PatchLayout(grid, dx, dz, origin, arrangement)
        self.plaquettes: list[Plaquette] = self.layout.plaquettes()
        self.stabilizers: list[PauliString] = [p.stabilizer() for p in self.plaquettes]

        self.logical_x = TrackedOperator(self.layout.logical_x())
        self.logical_z = TrackedOperator(self.layout.logical_z())
        #: Deformation log: (description, old pauli, new pauli) tuples (§4.5).
        self.deformation_log: list[tuple[str, PauliString, PauliString]] = []

        self.data_ions: dict[tuple[int, int], int] = {}
        self.measure_ions: dict[tuple[int, int], int] = {}
        self.initialized = False
        self.round_records: list[RoundRecord] = []

        if place_ions:
            self.place_ions()

    # -------------------------------------------------------------- plumbing
    @property
    def dx(self) -> int:
        return self.layout.dx

    @property
    def dz(self) -> int:
        return self.layout.dz

    @property
    def arrangement(self) -> Arrangement:
        return self.layout.arrangement

    @property
    def dt(self) -> int:
        """Default rounds per logical time-step: max(dx, dz)."""
        return max(self.dx, self.dz)

    def place_ions(self) -> None:
        """Park data ions on data sites and measure ions at face homes."""
        if self.data_ions:
            raise RuntimeError("ions already placed")
        for (i, j), site in self.layout.data_sites().items():
            existing = self.grid.ion_at(site)
            self.data_ions[(i, j)] = (
                existing
                if existing is not None
                else self.grid.add_ion(site, f"{self.name}:d{i},{j}")
            )
        for plaq in self.plaquettes:
            existing = self.grid.ion_at(plaq.home)
            self.measure_ions[plaq.face] = (
                existing
                if existing is not None
                else self.grid.add_ion(plaq.home, f"{self.name}:m{plaq.face}")
            )

    def data_ion_at(self) -> dict[int, int]:
        """data qsite -> ion, for the syndrome scheduler."""
        return {
            self.layout.data_site(i, j): ion for (i, j), ion in self.data_ions.items()
        }

    def data_sites_present(self) -> list[int]:
        """Sorted qsites of data qubits currently part of the patch."""
        return sorted(self.layout.data_site(i, j) for (i, j) in self.data_ions)

    def data_site_of(self, ij: tuple[int, int]) -> int:
        return self.layout.data_site(*ij)

    def all_ions(self) -> list[int]:
        return sorted(set(self.data_ions.values()) | set(self.measure_ions.values()))

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Parity-check validity: commutation, rank, logical independence."""
        sites = self.data_sites_present()
        n = len(sites)
        for i, s1 in enumerate(self.stabilizers):
            for s2 in self.stabilizers[i + 1 :]:
                if not s1.commutes_with(s2):
                    raise AssertionError(f"stabilizers anticommute: {s1} vs {s2}")
        lx, lz = self.logical_x.pauli, self.logical_z.pauli
        for s in self.stabilizers:
            if not s.commutes_with(lx) or not s.commutes_with(lz):
                raise AssertionError(f"logical operator anticommutes with {s}")
        if lx.commutes_with(lz):
            raise AssertionError("logical X and Z must anticommute")
        mat = _symplectic(self.stabilizers, sites)
        rank = gf2_rank(mat)
        if rank != n - 1:
            raise AssertionError(f"stabilizer rank {rank} != n_data - 1 = {n - 1}")
        for label, op in (("X", lx), ("Z", lz)):
            row = _symplectic([op], sites)[0]
            if gf2_in_rowspace(mat, row):
                raise AssertionError(f"logical {label} lies in the stabilizer group")

    def parity_check_matrix(self) -> np.ndarray:
        return _symplectic(self.stabilizers, self.data_sites_present())

    # -------------------------------------------------- Table 2: transversal
    def transversal_prepare(self, circuit: HardwareCircuit, basis: str = "Z") -> None:
        """Prepare every data qubit in |0> (basis Z) or |+> (basis X); 0 steps."""
        prep = self.model.prepare_z if basis == "Z" else self.model.prepare_x
        if basis not in ("Z", "X"):
            raise ValueError("transversal preparation basis must be 'Z' or 'X'")
        for ion in self.data_ions.values():
            prep(circuit, ion)

    def transversal_measure(
        self, circuit: HardwareCircuit, basis: str = "Z"
    ) -> dict[tuple[int, int], str]:
        """Measure every data qubit in the X/Z basis; tile becomes uninitialized."""
        if basis not in ("Z", "X"):
            raise ValueError("transversal measurement basis must be 'Z' or 'X'")
        measure = self.model.measure_z if basis == "Z" else self.model.measure_x
        labels = {}
        for ij, ion in sorted(self.data_ions.items()):
            _, label = measure(circuit, ion)
            labels[ij] = label
        self.initialized = False
        return labels

    def transversal_hadamard(self, circuit: HardwareCircuit) -> None:
        """Transversal H; swaps X/Z roles, leaving the rotated arrangement (fn 4)."""
        for ion in self.data_ions.values():
            self.model.hadamard(circuit, ion)
        self._set_arrangement(self.arrangement.after_transversal_hadamard())
        # Per-qubit H maps the X-string <-> Z-string representatives in place.
        old_x, old_z = self.logical_x, self.logical_z
        self.logical_x = TrackedOperator(
            PauliString({s: "X" for s in old_z.pauli.ops}), old_z.corrections
        )
        self.logical_z = TrackedOperator(
            PauliString({s: "Z" for s in old_x.pauli.ops}), old_x.corrections
        )

    def _set_arrangement(self, arrangement: Arrangement) -> None:
        """Rebuild layout/plaquettes; measure-ion homes are position-invariant."""
        self.layout = PatchLayout(
            self.grid, self.dx, self.dz, self.layout.origin, arrangement
        )
        old_faces = set(self.measure_ions)
        self.plaquettes = self.layout.plaquettes()
        new_faces = {p.face for p in self.plaquettes}
        if old_faces != new_faces:
            raise RuntimeError(
                "arrangement change moved plaquette positions; "
                "measure ions must be re-homed explicitly"
            )
        self.stabilizers = [p.stabilizer() for p in self.plaquettes]

    # ------------------------------------------------------ Table 2: paulis
    def apply_pauli(self, circuit: HardwareCircuit, which: str) -> None:
        """Apply logical X/Y/Z via physical pi/2 rotations on the support."""
        if which in ("X", "Z"):
            op = (self.logical_x if which == "X" else self.logical_z).pauli
        elif which == "Y":
            op = (self.logical_x.pauli * self.logical_z.pauli).times_i()
            if op.phase % 2 != 0:
                raise AssertionError("logical Y is not Hermitian")
        else:
            raise ValueError("which must be 'X', 'Y' or 'Z'")
        for site, letter in sorted(op.ops.items()):
            ion = self.grid.ion_at(site)
            if ion is None:
                raise RuntimeError(f"no ion at data site {site}")
            self.model.native1(circuit, _ROTATION_FOR[letter], ion)

    def logical_y(self) -> TrackedOperator:
        op = (self.logical_x.pauli * self.logical_z.pauli).times_i()
        return TrackedOperator(op, self.logical_x.corrections + self.logical_z.corrections)

    # ------------------------------------------------------- Table 2: idle
    def idle(
        self, circuit: HardwareCircuit, rounds: int | None = None, t_min: float | None = None
    ) -> list[RoundRecord]:
        """``rounds`` (default dt) rounds of error correction; 1 logical step."""
        rounds = self.dt if rounds is None else rounds
        t = self.grid.now if t_min is None else t_min
        records = self.scheduler.schedule_rounds(
            circuit,
            self.plaquettes,
            self.measure_ions,
            self.data_ion_at(),
            rounds,
            t_min=t,
        )
        self.round_records.extend(records)
        return records

    # --------------------------------------------------- Table 2: prepare
    def prepare(
        self, circuit: HardwareCircuit, basis: str = "Z", rounds: int | None = None
    ) -> list[RoundRecord]:
        """Fault-tolerant Prepare Z/X: transversal prep then one logical step."""
        self.transversal_prepare(circuit, basis)
        self.initialized = True
        self.logical_x = TrackedOperator(self.layout.logical_x())
        self.logical_z = TrackedOperator(self.layout.logical_z())
        return self.idle(circuit, rounds)

    # ----------------------------------------------------- Table 2: inject
    def inject_state(
        self, circuit: HardwareCircuit, which: str, rounds: int = 1
    ) -> list[RoundRecord]:
        """Inject Y/T non-fault-tolerantly (Table 1: 0 logical time-steps).

        The corner (0,0) data qubit is prepared in |+i> (Y) or |T> = T|+>
        (T, the single non-Clifford gate of §4.1); the rest of column 0 is
        prepared in the vertical logical's basis and all remaining qubits in
        the horizontal logical's basis, then one round of syndrome
        extraction projects into the code space with the encoded state.
        """
        if which not in ("Y", "T"):
            raise ValueError("inject_state supports 'Y' or 'T'")
        v_basis = self.layout.arrangement.vertical_letter
        h_basis = self.layout.arrangement.horizontal_letter
        for (i, j), ion in sorted(self.data_ions.items()):
            if (i, j) == (0, 0):
                if which == "Y":
                    self.model.prepare_y(circuit, ion)
                else:
                    self.model.prepare_x(circuit, ion)
                    self.model.t_gate(circuit, ion)
            elif j == 0:
                (self.model.prepare_z if v_basis == "Z" else self.model.prepare_x)(
                    circuit, ion
                )
            else:
                (self.model.prepare_z if h_basis == "Z" else self.model.prepare_x)(
                    circuit, ion
                )
        self.initialized = True
        self.logical_x = TrackedOperator(self.layout.logical_x())
        self.logical_z = TrackedOperator(self.layout.logical_z())
        return self.idle(circuit, rounds)

    # ------------------------------------------------------------- mutation
    def measure_out_data_qubit(
        self,
        circuit: HardwareCircuit,
        ij: tuple[int, int],
        basis: str,
    ) -> str:
        """Measure one data qubit out of the patch (corner removal, §2.5).

        Gauge-fixes the stabilizer set: generators anticommuting with the
        measured single-qubit operator are pairwise multiplied so only one
        remains, which is dropped; logical operators are repaired with that
        generator and, if supported on the qubit, reduced by the measured
        operator with the outcome label pushed onto their ledger.
        """
        site = self.layout.data_site(*ij)
        meas_op = PauliString({site: basis})
        anti = [s for s in self.stabilizers if not s.commutes_with(meas_op)]
        keep = [s for s in self.stabilizers if s.commutes_with(meas_op)]
        removed: PauliString | None = None
        if anti:
            removed = anti[0]
            keep.extend(anti[0] * other for other in anti[1:])
        self.stabilizers = keep

        ion = self.data_ions.pop(ij)
        measure = {"Z": self.model.measure_z, "X": self.model.measure_x, "Y": self.model.measure_y}
        _, label = measure[basis](circuit, ion)

        for attr in ("logical_x", "logical_z"):
            op: TrackedOperator = getattr(self, attr)
            if not op.pauli.commutes_with(meas_op):
                if removed is None:
                    raise RuntimeError(
                        f"{attr} anticommutes with measured {basis}({ij}) and no "
                        "stabilizer can repair it — invalid deformation"
                    )
                repaired = op.multiplied_by(removed)
                self.deformation_log.append((f"repair {attr}", op.pauli, repaired.pauli))
                setattr(self, attr, repaired)
                op = repaired
            if site in op.pauli.support:
                # Factor the measured operator out: L = B_site * L'.
                reduced = op.multiplied_by(meas_op, label)
                self.deformation_log.append((f"reduce {attr}", op.pauli, reduced.pauli))
                setattr(self, attr, reduced)
        return label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LogicalQubit {self.name} dx={self.dx} dz={self.dz} "
            f"{self.arrangement.name} init={self.initialized}>"
        )
