"""Move Right and Swap Left: patch translation (paper §2.5, Fig 4).

*Move Right* is a verified primitive that performs a one-column move
operation to the right: the patch extends by one data column into its
ancilla strip (new column prepared in |+>, extended stabilizers measured
for a logical time-step) and the left-most column is measured away.  It
"requires a tile to borrow a column from the tile to the right of itself to
support syndrome measurement qubits for the resultant boundary stabilizers"
(fn 10) — the extended patch's right-boundary corridors fall on the next
tile's first column.

*Swap Left* then translates the patch back onto its original tile using ion
movement alone: every data ion shifts one unit column west (effectively
swapping the data columns with the ancilla strip), and the right-boundary
measure ions walk around the patch to become the new left-boundary ions.

The composition maps Standard -> Rotated-Flipped (or Rotated -> Flipped) in
one logical time-step on a single tile: the one-column shift re-anchors the
face checkerboard (letters swap) *and* shifts the boundary faces (offset
toggles) — see :class:`~repro.code.arrangements.Arrangement`.
"""

from __future__ import annotations

from repro.code.arrangements import Arrangement
from repro.code.logical_qubit import LogicalQubit, TrackedOperator
from repro.code.patch_ops import _staff_measure_ions
from repro.code.stabilizer_circuits import RoundRecord
from repro.hardware.relocation import RelocationError, relocate_ion
from repro.hardware.circuit import HardwareCircuit

__all__ = ["move_right", "swap_left", "move_right_swap_left"]


def move_right(
    circuit: HardwareCircuit,
    lq: LogicalQubit,
    rounds: int | None = None,
) -> tuple[LogicalQubit, list[RoundRecord]]:
    """One-column lattice-surgery shift to the right (1 logical time-step).

    Returns the shifted patch, which occupies unit columns origin+1 ..
    origin+dx and sits in the arrangement with both bits toggled
    (Standard -> Rotated-Flipped).
    """
    if not lq.initialized:
        raise ValueError("cannot move an uninitialized patch")
    if lq.arrangement not in (Arrangement.STANDARD, Arrangement.ROTATED):
        raise ValueError("move_right starts from the standard or rotated arrangement")
    grid, model = lq.grid, lq.model
    origin = lq.layout.origin
    rounds = lq.dt if rounds is None else rounds

    # Extend one column into the ancilla strip: widths dx+1 (parity changes,
    # the layout constructor handles even widths).
    ext = LogicalQubit(
        grid, model, lq.dx + 1, lq.dz, origin, lq.arrangement,
        name=f"{lq.name}>", place_ions=False,
    )
    for (i, j), site in sorted(ext.layout.data_sites().items()):
        ext.data_ions[(i, j)] = grid.ensure_ion(circuit, site, f"{ext.name}:d{i},{j}")
    _staff_measure_ions(circuit, ext, list(lq.measure_ions.values()))
    h_letter = lq.arrangement.horizontal_letter
    prep = model.prepare_x if h_letter == "X" else model.prepare_z
    for i in range(ext.dz):
        prep(circuit, ext.data_ions[(i, lq.dx)])
    ext.initialized = True
    records = ext.idle(circuit, rounds=rounds)

    # Move the cross-axis logical off column 0 before measuring it away:
    # column 0 -> column 1 picks up the fj=0 face outcomes (§4.5 operator
    # movement), the measurement itself adds the (0,0) outcome to the
    # horizontal logical.
    v_letter = lq.arrangement.vertical_letter
    first = records[0].outcome_labels
    move_labels = [
        first[p.face]
        for p in ext.plaquettes
        if p.pauli == v_letter and p.face[1] == 0
    ]
    basis = h_letter
    measure = model.measure_x if basis == "X" else model.measure_z
    col0_labels = {}
    for i in range(ext.dz):
        _, label = measure(circuit, ext.data_ions[(i, 0)])
        col0_labels[i] = label

    shifted = LogicalQubit(
        grid, model, lq.dx, lq.dz, (origin[0], origin[1] + 1),
        lq.arrangement.after_column_shift(),
        name=f"{lq.name}'", place_ions=False,
    )
    for (i, j) in shifted.layout.data_sites():
        shifted.data_ions[(i, j)] = ext.data_ions[(i, j + 1)]
    _staff_measure_ions(circuit, shifted, list(ext.measure_ions.values()))
    shifted.initialized = True

    if v_letter == "Z":
        shifted.logical_z = TrackedOperator(
            shifted.layout.logical_z(), lq.logical_z.corrections + move_labels
        )
        shifted.logical_x = TrackedOperator(
            shifted.layout.logical_x(), lq.logical_x.corrections + [col0_labels[0]]
        )
    else:
        shifted.logical_x = TrackedOperator(
            shifted.layout.logical_x(), lq.logical_x.corrections + move_labels
        )
        shifted.logical_z = TrackedOperator(
            shifted.layout.logical_z(), lq.logical_z.corrections + [col0_labels[0]]
        )
    lq.initialized = False
    return shifted, records


def swap_left(circuit: HardwareCircuit, lq: LogicalQubit) -> LogicalQubit:
    """Translate the patch one unit column west by ion movement alone.

    Zero logical time-steps — only movement.  Order of operations matters:
    measure ions are re-staffed onto the final face set's homes *before* the
    data lockstep (their long routes go around the patch through the ancilla
    strip, stepping parked ions aside); stale ions on future data sites are
    evacuated into unused corridor segments; finally every data ion shifts
    one unit column west (O -> M -> junction crossing -> M -> O) in
    west-first lockstep, with pocket-parked ions stepping aside as needed.
    """
    if not lq.initialized:
        raise ValueError("cannot swap an uninitialized patch")
    grid, model = lq.grid, lq.model
    origin = lq.layout.origin
    if origin[1] < 1:
        raise ValueError("no tile column to the left to swap into")

    final = LogicalQubit(
        grid, model, lq.dx, lq.dz, (origin[0], origin[1] - 1), lq.arrangement,
        name=f"{lq.name}<", place_ions=False,
    )
    target_data_sites = set(final.layout.data_sites().values())
    used: set[int] = set(target_data_sites)
    for plaq in final.plaquettes:
        used |= plaq.all_sites()
        used.add(plaq.home)
    live = set(lq.data_ions.values()) | set(lq.measure_ions.values())
    free_zones = [s for s in grid.zone_sites() if s not in used]

    def evacuate(ion: int) -> None:
        r, c = grid.coords(grid.site_of(ion))
        for candidate in sorted(
            free_zones,
            key=lambda s: abs(grid.coords(s)[0] - r) + abs(grid.coords(s)[1] - c),
        ):
            if grid.ion_at(candidate) is not None:
                continue
            try:
                relocate_ion(grid, circuit, ion, candidate)
                return
            except RelocationError:
                continue
        raise RuntimeError(f"cannot evacuate stale ion {ion}")

    # 1. Clear future data sites of measured-out leftovers.
    for site in sorted(target_data_sites):
        stale = grid.ion_at(site)
        if stale is not None and stale not in live:
            evacuate(stale)

    # 2. Re-staff measure ions onto the final homes while corridors are open.
    _staff_measure_ions(circuit, final, list(lq.measure_ions.values()))

    # 3. Evacuate leftover measure ions from the final working area.
    staffed = set(final.measure_ions.values())
    for ion in list(lq.measure_ions.values()):
        if ion in staffed or ion not in grid.ions():
            continue
        if grid.site_of(ion) in used:
            evacuate(ion)

    # 4. West-first lockstep shift of every data ion by one unit column.
    for (i, j), ion in sorted(lq.data_ions.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        r, c = grid.coords(grid.site_of(ion))
        relocate_ion(grid, circuit, ion, grid.index(r, c - 4))

    for (i, j) in final.layout.data_sites():
        final.data_ions[(i, j)] = lq.data_ions[(i, j)]
    final.initialized = True
    final.logical_x = TrackedOperator(final.layout.logical_x(), lq.logical_x.corrections)
    final.logical_z = TrackedOperator(final.layout.logical_z(), lq.logical_z.corrections)
    lq.initialized = False
    return final

def move_right_swap_left(
    circuit: HardwareCircuit,
    lq: LogicalQubit,
    rounds: int | None = None,
) -> tuple[LogicalQubit, list[RoundRecord]]:
    """Fig 4: Move Right then Swap Left — arrangement map on one tile.

    Standard -> Rotated-Flipped (shown in Fig 4) or Rotated -> Flipped, in
    one logical time-step, ending on the original tile.
    """
    shifted, records = move_right(circuit, lq, rounds=rounds)
    final = swap_left(circuit, shifted)
    return final, records
