"""Hardware-calibrated Pauli noise channels for the batched sampler.

Maps a small set of physical error-rate parameters onto the native
instruction stream of a compiled :class:`~repro.hardware.circuit.HardwareCircuit`:

* every single-qubit native gate is followed by a depolarizing channel of
  probability ``p1``,
* every ``ZZ`` entangler is followed by a two-qubit depolarizing channel of
  probability ``p2``,
* ``Prepare_Z`` mis-prepares (X flip) with probability ``p_prep``,
* ``Measure_Z`` records the wrong outcome with probability ``p_meas``
  (classical readout flip; the post-measurement state is untouched), and
* when a dephasing time ``t2_us`` is set, every gate and transport
  operation *and* every idle gap between operations contributes a Z error
  with probability ``0.5 * (1 - exp(-duration / t2_us))`` — the duration
  comes from the time-resolved instruction itself, so transport (``Move``,
  junction hops) and the 2 ms ``ZZ`` are automatically weighted by the
  :class:`~repro.hardware.model.HardwareModel` timings of Table 5.
  ``Prepare_Z``/``Measure_Z`` take no duration dephasing of their own:
  preparation leaves no coherence to dephase and a Z error after the
  measurement projection is unobservable — their imperfections are the
  ``p_prep``/``p_meas`` channels (other qubits still accrue the wait as
  idle-gap dephasing).

Channels are injected by :class:`~repro.sim.batch.BatchRunner` as vectorized
masked Pauli layers over the :class:`~repro.sim.packed.PackedTableau` batch
axis: one uniform draw per channel application selects the per-shot error
masks, and the masked ``pauli_x/y/z`` column updates apply them to all shots
at once, so noisy sampling keeps the packed engine's throughput.

Zero-probability channels draw no randomness at all, so a
:class:`NoiseModel` whose rates are all zero reproduces the ideal engine
shot-for-shot (property-tested in ``tests/test_noise_and_decode.py``).

Presets (named after trapped-ion hardware regimes)::

    NoiseModel.preset("ideal")       # all rates zero
    NoiseModel.preset("near_term")   # today's trapped-ion error rates
    NoiseModel.preset("projected")   # an order of magnitude better

``NoiseModel.uniform(p)`` gives the single-knob model used by threshold
sweeps, and ``model.scaled(f)`` scales every rate for parametric studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.hardware.model import SINGLE_QUBIT_GATES
from repro.hardware.profile import DEFAULT_PROFILE, HardwareProfile, get_profile
from repro.sim.packed import PackedTableau

__all__ = ["NoiseParams", "NoiseModel", "IdleClock", "NOISE_PRESETS"]


@dataclass(frozen=True)
class NoiseParams:
    """Physical error-rate parameters of a trapped-ion processor.

    Probabilities are per operation; ``t2_us`` is the memory dephasing time
    constant in microseconds (``None`` disables duration-derived dephasing).
    """

    name: str = "custom"
    p1: float = 0.0
    p2: float = 0.0
    p_prep: float = 0.0
    p_meas: float = 0.0
    t2_us: float | None = None

    def __post_init__(self) -> None:
        for field_name in ("p1", "p2", "p_prep", "p_meas"):
            p = getattr(self, field_name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{field_name}={p} is not a probability")
        if self.t2_us is not None and self.t2_us <= 0:
            raise ValueError(f"t2_us={self.t2_us} must be positive (or None)")

    def scaled(self, factor: float) -> "NoiseParams":
        """Scale every error rate by ``factor`` (T2 shrinks by the factor)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            name=f"{self.name}*{factor:g}",
            p1=min(1.0, self.p1 * factor),
            p2=min(1.0, self.p2 * factor),
            p_prep=min(1.0, self.p_prep * factor),
            p_meas=min(1.0, self.p_meas * factor),
            t2_us=None if self.t2_us is None or factor == 0 else self.t2_us / factor,
        )


def _presets_of(profile: HardwareProfile) -> dict[str, NoiseParams]:
    """Materialize a profile's declared noise presets as ``NoiseParams``."""
    return {
        name: NoiseParams(name=name, **profile.preset_params(name))
        for name in profile.preset_names
    }


#: Named parameter sets of the default hardware profile.  ``near_term``
#: mirrors demonstrated trapped-ion fidelities (two-qubit ~99.8%, SPAM
#: ~99.7%, seconds-scale T2); ``projected`` is the order-of-magnitude
#: improvement architecture studies assume.  Other profiles declare their
#: own sets — use ``NoiseModel.preset(name, profile=...)``.
NOISE_PRESETS: dict[str, NoiseParams] = _presets_of(DEFAULT_PROFILE)


class NoiseModel:
    """Applies Pauli channels derived from :class:`NoiseParams` to a batch.

    All application methods are vectorized over the batch axis and draw from
    the generator they are handed (the batch runner keeps a dedicated noise
    stream so ideal replays are unaffected).  Channels with probability zero
    return without consuming randomness.
    """

    def __init__(self, params: NoiseParams):
        self.params = params

    # ------------------------------------------------------------- factories
    @classmethod
    def preset(
        cls, name: str, profile: "HardwareProfile | str | None" = None
    ) -> "NoiseModel":
        """Named preset, resolved against ``profile`` (default profile if None)."""
        presets = (
            NOISE_PRESETS if profile is None else _presets_of(get_profile(profile))
        )
        try:
            return cls(presets[name])
        except KeyError:
            raise ValueError(
                f"unknown noise preset {name!r}; choose from {sorted(presets)}"
            ) from None

    @classmethod
    def uniform(cls, p: float, name: str | None = None) -> "NoiseModel":
        """Single-knob model: every per-operation probability equals ``p``.

        No duration-derived dephasing — the one parameter *is* the physical
        error rate, which is what distance/rate threshold sweeps vary.
        """
        return cls(
            NoiseParams(
                name=name or f"uniform(p={p:g})", p1=p, p2=p, p_prep=p, p_meas=p
            )
        )

    def scaled(self, factor: float) -> "NoiseModel":
        return NoiseModel(self.params.scaled(factor))

    # ------------------------------------------------------------ properties
    @property
    def name(self) -> str:
        return self.params.name

    @property
    def is_trivial(self) -> bool:
        """True when no channel can ever fire (the ideal model)."""
        p = self.params
        return (
            p.p1 == 0.0
            and p.p2 == 0.0
            and p.p_prep == 0.0
            and p.p_meas == 0.0
            and p.t2_us is None
        )

    @property
    def tracks_idle(self) -> bool:
        """True when idle gaps between operations must be dephased."""
        return self.params.t2_us is not None

    def dephasing_probability(self, duration_us: float) -> float:
        """Z-error probability accumulated over ``duration_us`` of memory."""
        if self.params.t2_us is None or duration_us <= 0:
            return 0.0
        return -0.5 * float(np.expm1(-duration_us / self.params.t2_us))

    # ------------------------------------------------------------- channels
    @staticmethod
    def _dephase(tab: PackedTableau, q: int, p: float, rng: np.random.Generator) -> None:
        if p <= 0:
            return
        mask = rng.random(tab.batch) < p
        if mask.any():
            tab.pauli_z(q, mask=mask)

    @staticmethod
    def _depolarize_1q(
        tab: PackedTableau, q: int, p: float, rng: np.random.Generator
    ) -> None:
        if p <= 0:
            return
        u = rng.random(tab.batch)
        if not (u < p).any():
            return
        # One uniform draw per shot: [0, p) is split evenly between X, Y, Z.
        x = u < p / 3
        y = (u >= p / 3) & (u < 2 * p / 3)
        z = (u >= 2 * p / 3) & (u < p)
        if x.any():
            tab.pauli_x(q, mask=x)
        if y.any():
            tab.pauli_y(q, mask=y)
        if z.any():
            tab.pauli_z(q, mask=z)

    @staticmethod
    def _depolarize_2q(
        tab: PackedTableau, a: int, b: int, p: float, rng: np.random.Generator
    ) -> None:
        if p <= 0:
            return
        u = rng.random(tab.batch)
        err = u < p
        if not err.any():
            return
        # Map the erring shots' uniforms onto the 15 non-identity two-qubit
        # Paulis: k in 1..15, qubit a gets Pauli k >> 2, qubit b gets k & 3
        # (0 = I, 1 = X, 2 = Y, 3 = Z).
        k = np.where(err, 1 + (u * (15 / p)).astype(np.int64), 0)
        for qubit, letter_of in ((a, k >> 2), (b, k & 3)):
            for letter, apply in ((1, tab.pauli_x), (2, tab.pauli_y), (3, tab.pauli_z)):
                mask = err & (letter_of == letter)
                if mask.any():
                    apply(qubit, mask=mask)

    # ----------------------------------------------------------- application
    def apply_operation_noise(
        self,
        tab: PackedTableau,
        name: str,
        duration: float,
        qubits: list[int],
        rng: np.random.Generator,
    ) -> None:
        """Post-operation noise for one instruction, over the whole batch.

        ``name``/``duration`` are the instruction's gate name and length in
        µs (the duration drives the dephasing contribution), ``qubits`` the
        tableau qubits it resolved to — taken straight from the circuit's
        columns, no Instruction object required.
        """
        p = self.params
        if name in SINGLE_QUBIT_GATES:
            self._depolarize_1q(tab, qubits[0], p.p1, rng)
        elif name == "ZZ":
            self._depolarize_2q(tab, qubits[0], qubits[1], p.p2, rng)
        elif name == "Prepare_Z":
            # Mis-preparation: |1> instead of |0> with probability p_prep.
            if p.p_prep > 0:
                mask = rng.random(tab.batch) < p.p_prep
                if mask.any():
                    tab.pauli_x(qubits[0], mask=mask)
            return  # a fresh |0>/|1> has no coherence to dephase
        elif name == "Measure_Z":
            return  # readout flips are applied to the record, not the state
        p_z = self.dephasing_probability(duration)
        for q in qubits:
            self._dephase(tab, q, p_z, rng)

    def flip_outcomes(
        self, outcomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Classical readout flips: XOR a Bernoulli(p_meas) vector in place."""
        if self.params.p_meas > 0:
            flips = rng.random(outcomes.shape[0]) < self.params.p_meas
            outcomes ^= flips.astype(outcomes.dtype)
        return outcomes

    def apply_idle_dephasing(
        self,
        tab: PackedTableau,
        q: int,
        gap_us: float,
        rng: np.random.Generator,
    ) -> None:
        """Memory error for a qubit that sat idle for ``gap_us`` microseconds."""
        self._dephase(tab, q, self.dephasing_probability(gap_us), rng)

    def idle_clock(self, n_qubits: int, track_rows: bool = False) -> "IdleClock | None":
        """An :class:`IdleClock` for this model, or None when t2 is off."""
        return IdleClock(n_qubits, track_rows) if self.tracks_idle else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.params
        t2 = "None" if p.t2_us is None else f"{p.t2_us:g}us"
        return (
            f"<NoiseModel {p.name}: p1={p.p1:g} p2={p.p2:g} "
            f"p_prep={p.p_prep:g} p_meas={p.p_meas:g} t2={t2}>"
        )


class IdleClock:
    """The single definition of idle-gap accounting over a scheduled circuit.

    Both consumers of idle dephasing — the batched sampler
    (:meth:`repro.sim.batch.BatchRunner.run_shots`) and the fault-site
    enumerator (:func:`repro.sim.dem.enumerate_fault_sites`) — must derive
    identical gap durations from the circuit's *scheduled* start/end times:
    the compacted times after SIMD beam-pass rescheduling, or the tiled
    times of a replayed round, never a nominal uncompacted schedule.  Each
    used to carry its own busy-until bookkeeping; this helper is the one
    shared implementation, so the replay and SIMD paths cannot drift.

    A gap exists when an instruction starts strictly after the qubit's last
    busy end, and its duration is exactly ``start - busy_end`` in the
    circuit's own float arithmetic (no rounding, no epsilon) — the DEM
    extractor's bit-identity guarantees depend on this.

    ``track_rows`` additionally records which row last made each qubit busy
    (``-1`` before any) — the gap provenance the periodic DEM extractor
    needs to recompute idle durations at tiled time offsets.
    """

    __slots__ = ("busy_until", "last_row")

    def __init__(self, n_qubits: int, track_rows: bool = False) -> None:
        self.busy_until = np.zeros(n_qubits)
        self.last_row: list[int] | None = [-1] * n_qubits if track_rows else None

    def gap_before(self, q: int, start: float) -> float:
        """Idle duration qubit ``q`` accrued before ``start`` (<= 0: none)."""
        return start - self.busy_until[q]

    def mark_busy(self, qubits, end: float, row: int = -1) -> None:
        """Record that ``qubits`` were driven until ``end`` by ``row``."""
        busy = self.busy_until
        for q in qubits:
            busy[q] = end
        rows = self.last_row
        if rows is not None:
            for q in qubits:
                rows[q] = row
