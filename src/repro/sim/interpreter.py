"""Replays TISCC hardware circuits on a quantum-state backend.

The hardware-model half of the ORQCS substitute (§4): instructions act on
*qsites* of the trapped-ion grid, so the interpreter tracks which ion sits
where at every point in time (Move updates the occupancy) and resolves each
gate's qsites to the ions — and hence tableau qubits — they hold.

Non-Clifford ``Z_pi/8`` gates are replaced per-shot by one Clifford sampled
from the quasi-probability decomposition of the T-gate channel, with the
shot weight adjusted (§4.1); see :mod:`repro.sim.quasi`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.code.pauli import PauliString
from repro.hardware.circuit import HardwareCircuit
from repro.hardware.grid import GridManager
from repro.sim.gates import NON_CLIFFORD_GATES, apply_to_tableau
from repro.sim.quasi import QuasiCliffordSampler
from repro.sim.tableau import StabilizerTableau

__all__ = [
    "CircuitInterpreter",
    "RunResult",
    "init_run_state",
    "resolve_qubits",
    "apply_load",
    "apply_move",
]


def init_run_state(
    circuit: HardwareCircuit, initial_occupancy: dict[int, int]
) -> tuple[dict[int, int], dict[int, int], int]:
    """Validated starting state for a circuit replay, shared by both engines.

    Returns ``(occupancy, ion_index, n_qubits)`` where ``n_qubits`` reserves
    one tableau slot per initial ion plus one per Load pseudo-instruction.
    """
    ions = sorted(set(initial_occupancy.values()))
    if len(ions) != len(initial_occupancy):
        raise ValueError("occupancy maps two sites to one ion")
    ion_index = {ion: k for k, ion in enumerate(ions)}
    n_loads = circuit.count("Load")
    return dict(initial_occupancy), ion_index, max(1, len(ions) + n_loads)


def resolve_qubits(
    name: str,
    sites: tuple[int, ...],
    occupancy: dict[int, int],
    ion_index: dict[int, int],
) -> list[int]:
    """Tableau qubits an instruction acts on, given the current occupancy.

    Shared by the single-shot interpreter, the batched runner, and the DEM
    extraction walks so the hardware-model semantics (Move destinations may
    be empty, Load targets must be) cannot diverge between the engines.
    Takes the columnar row fields directly — no Instruction object needed.
    """
    qubits = []
    for site in sites:
        if name == "Move" and site == sites[1]:
            continue  # move destination need not be occupied
        if name == "Load":
            continue  # load target must be *empty*
        ion = occupancy.get(site)
        if ion is None:
            text = " ".join([name, *map(str, sites)])
            raise ValueError(f"instruction {text!r} targets empty qsite {site}")
        qubits.append(ion_index[ion])
    return qubits


def apply_load(
    site: int, occupancy: dict[int, int], ion_index: dict[int, int], n_slots: int
) -> None:
    """Allocate a fresh ion for a Load pseudo-instruction (shared semantics)."""
    if site in occupancy:
        raise ValueError(f"Load onto occupied qsite {site}")
    new_ion = (max(ion_index) + 1) if ion_index else 0
    while new_ion in ion_index:
        new_ion += 1
    ion_index[new_ion] = len(ion_index)
    if ion_index[new_ion] >= n_slots:
        raise ValueError("more Load instructions than tableau slots")
    occupancy[site] = new_ion


def apply_move(src: int, dst: int, occupancy: dict[int, int]) -> None:
    """Relocate the ion for a Move pseudo-instruction (shared semantics)."""
    if dst in occupancy:
        raise ValueError(f"move into occupied qsite {dst}")
    occupancy[dst] = occupancy.pop(src)


@dataclass
class RunResult:
    """Outcome of replaying one circuit (one Monte-Carlo shot).

    ``tableau`` holds the final state; ``ion_index`` maps ion id -> tableau
    qubit; ``occupancy`` maps qsite -> ion at the end of the circuit.
    ``weight`` is the quasi-probability shot weight (1.0 for pure Clifford
    circuits).  ``outcomes`` maps measurement labels to 0/1 and
    ``deterministic`` records which of those were forced by the state.
    """

    tableau: StabilizerTableau
    ion_index: dict[int, int]
    occupancy: dict[int, int]
    outcomes: dict[str, int] = field(default_factory=dict)
    deterministic: dict[str, bool] = field(default_factory=dict)
    weight: float = 1.0
    generator_snapshots: list[tuple[float, list[PauliString]]] = field(default_factory=list)

    def qubit_of_site(self, site: int) -> int:
        """Tableau qubit currently held at a qsite."""
        ion = self.occupancy.get(site)
        if ion is None:
            raise KeyError(f"no ion at qsite {site} at end of circuit")
        return self.ion_index[ion]

    def expectation(self, pauli_over_sites: PauliString) -> int:
        """<P> for a Pauli string keyed by qsites (end-of-circuit occupancy)."""
        index_of = {
            site: self.qubit_of_site(site) for site in pauli_over_sites.support
        }
        return self.tableau.expectation(pauli_over_sites, index_of)

    def expectation_over_ions(self, pauli_over_ions: PauliString) -> int:
        index_of = {ion: self.ion_index[ion] for ion in pauli_over_ions.support}
        return self.tableau.expectation(pauli_over_ions, index_of)

    def sign(self, label: str) -> int:
        """Measurement outcome as a +/-1 eigenvalue sign."""
        return 1 - 2 * self.outcomes[label]


class CircuitInterpreter:
    """Executes hardware circuits against a stabilizer tableau.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts — an int,
    ``None``, or a ``SeedSequence``.  To reproduce shot ``k`` of a batched
    :class:`~repro.sim.batch.BatchRunner` run, seed with
    :func:`repro.sim.batch.per_shot_seed(seed, k) <repro.sim.batch.per_shot_seed>`.
    """

    def __init__(
        self,
        grid: GridManager,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
    ):
        self.grid = grid
        self.rng = np.random.default_rng(seed)
        self.sampler = QuasiCliffordSampler()

    def run(
        self,
        circuit: HardwareCircuit,
        initial_occupancy: dict[int, int],
        forced_outcomes: dict[str, int] | None = None,
        snapshot_times: list[float] | None = None,
        initial_state: RunResult | None = None,
    ) -> RunResult:
        """Replay ``circuit`` from a site -> ion occupancy map.

        ``forced_outcomes`` pins specific measurement labels (for branch
        verification); ``snapshot_times`` records stabilizer generators right
        after the last instruction starting at-or-before each time (the §4.3
        layer-by-layer check).  ``initial_state`` continues from a previous
        run's tableau (occupancy is taken from it).
        """
        forced = forced_outcomes or {}
        if initial_state is not None:
            tableau = initial_state.tableau.copy()
            ion_index = dict(initial_state.ion_index)
            occupancy = dict(initial_state.occupancy)
            weight = initial_state.weight
            outcomes = dict(initial_state.outcomes)
            deterministic = dict(initial_state.deterministic)
        else:
            occupancy, ion_index, n_qubits = init_run_state(circuit, initial_occupancy)
            tableau = StabilizerTableau(n_qubits)
            weight = 1.0
            outcomes = {}
            deterministic = {}

        snaps: list[tuple[float, list[PauliString]]] = []
        pending = sorted(snapshot_times or [])

        cols = circuit.sorted_columns()
        names, sites_of, labels = cols.names, cols.sites, cols.labels
        starts = cols.t.tolist()
        n_rows = cols.n
        for idx in range(n_rows):
            name = names[idx]
            sites = sites_of[idx]
            qubits = resolve_qubits(name, sites, occupancy, ion_index)

            if name == "Load":
                apply_load(sites[0], occupancy, ion_index, tableau.n)
            elif name == "Move":
                apply_move(sites[0], sites[1], occupancy)
            elif name == "Prepare_Z":
                tableau.reset(qubits[0], self.rng)
            elif name == "Measure_Z":
                label = labels.get(idx) or f"m?{idx}"
                outcome, det = tableau.measure(
                    qubits[0], self.rng, forced.get(label)
                )
                outcomes[label] = outcome
                deterministic[label] = det
            elif name in NON_CLIFFORD_GATES:
                gate, w = self.sampler.sample(name, self.rng)
                weight *= w
                if gate is not None:
                    apply_to_tableau(tableau, gate, tuple(qubits))
            else:
                apply_to_tableau(tableau, name, tuple(qubits))

            while pending and (idx + 1 == n_rows or starts[idx + 1] > pending[0]):
                snaps.append((pending.pop(0), tableau.stabilizer_generators()))

        result = RunResult(
            tableau=tableau,
            ion_index=ion_index,
            occupancy=occupancy,
            outcomes=outcomes,
            deterministic=deterministic,
            weight=weight,
            generator_snapshots=snaps,
        )
        return result
