"""Quasi-Clifford simulation of TISCC hardware circuits (ORQCS substitute).

The paper verifies compiled circuits with the Oak Ridge Quasi-Clifford
Simulator (ORQCS, §4): a parser and hardware model that interprets TISCC
circuits — gates acting on qsites of the trapped-ion grid — as unitaries on
a quantum state, returning Pauli-string expectation values, simulated
measurement outcomes, and per-layer stabilizer generators.  ORQCS is not
public, so this package re-implements the same interface:

* :mod:`repro.sim.tableau` — vectorized Aaronson-Gottesman stabilizer tableau;
* :mod:`repro.sim.packed` — the same tableau bit-packed 64 qubits per
  ``uint64`` word with a leading batch axis, evolving a whole batch of
  shots at once (the high-throughput backend);
* :mod:`repro.sim.dense` — exact statevector reference for small systems;
* :mod:`repro.sim.gates` — the native-gate semantics shared by the backends;
* :mod:`repro.sim.parser` — text-format circuit parser;
* :mod:`repro.sim.interpreter` — replays circuits one shot at a time,
  tracking ion movement;
* :mod:`repro.sim.batch` — the batched shot engine: replays one compiled
  circuit across all shots in single vectorized passes, returning per-shot
  outcome bitmaps, determinism flags, and quasi-probability weights;
* :mod:`repro.sim.quasi` — quasi-probability Monte Carlo over Clifford
  channels for the non-Clifford ``Z_pi/8`` gate (§4.1);
* :mod:`repro.sim.dem` — detector-error-model extraction: one Pauli-frame
  walk of a compiled circuit folds a noise model into deduplicated error
  mechanisms (probability, detector footprint, observable mask);
* :mod:`repro.sim.frame` — the tableau-free fast sampling path: detection
  events and logical flips drawn straight from a DEM as bit-packed XORs
  over sampled mechanisms.

The three state backends are interchangeable and cross-validated: random
Clifford circuits drive :class:`StabilizerTableau`, :class:`PackedTableau`,
and :class:`DenseSimulator` through identical trajectories (forced
measurement outcomes) and must agree on stabilizer generators, outcomes,
determinism flags, and expectation values; ``PackedTableau`` additionally
round-trips losslessly through ``from_tableau``/``to_tableau``.  For bulk
sampling (quasi-probability T-gate estimates, logical-error statistics) use
:meth:`repro.core.compiler.TISCC.simulate_shots` or
:class:`~repro.sim.batch.BatchRunner` directly — orders of magnitude more
shots/second than looping :class:`CircuitInterpreter`.
"""

from repro.sim.tableau import StabilizerTableau
from repro.sim.packed import PackedTableau, apply_packed, pack_bits, unpack_bits
from repro.sim.dense import DenseSimulator
from repro.sim.parser import parse_circuit
from repro.sim.interpreter import CircuitInterpreter, RunResult
from repro.sim.batch import BatchRunner, BatchResult, PauliInjection, per_shot_seed
from repro.sim.quasi import QuasiCliffordSampler, channel_decomposition
from repro.sim.dem import (
    DemExtractionError,
    DetectorErrorModel,
    FaultSite,
    FaultTable,
    build_dem,
    dem_structure_key,
    extract_dem,
    extract_fault_table,
)
from repro.sim.frame import FrameSampler, FrameSamples

__all__ = [
    "StabilizerTableau",
    "PackedTableau",
    "apply_packed",
    "pack_bits",
    "unpack_bits",
    "DenseSimulator",
    "parse_circuit",
    "CircuitInterpreter",
    "RunResult",
    "BatchRunner",
    "BatchResult",
    "PauliInjection",
    "per_shot_seed",
    "QuasiCliffordSampler",
    "channel_decomposition",
    "DemExtractionError",
    "DetectorErrorModel",
    "FaultSite",
    "FaultTable",
    "build_dem",
    "dem_structure_key",
    "extract_dem",
    "extract_fault_table",
    "FrameSampler",
    "FrameSamples",
]
