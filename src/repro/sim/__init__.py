"""Quasi-Clifford simulation of TISCC hardware circuits (ORQCS substitute).

The paper verifies compiled circuits with the Oak Ridge Quasi-Clifford
Simulator (ORQCS, §4): a parser and hardware model that interprets TISCC
circuits — gates acting on qsites of the trapped-ion grid — as unitaries on
a quantum state, returning Pauli-string expectation values, simulated
measurement outcomes, and per-layer stabilizer generators.  ORQCS is not
public, so this package re-implements the same interface:

* :mod:`repro.sim.tableau` — vectorized Aaronson-Gottesman stabilizer tableau;
* :mod:`repro.sim.dense` — exact statevector reference for small systems;
* :mod:`repro.sim.gates` — the native-gate semantics shared by both backends;
* :mod:`repro.sim.parser` — text-format circuit parser;
* :mod:`repro.sim.interpreter` — replays circuits, tracking ion movement;
* :mod:`repro.sim.quasi` — quasi-probability Monte Carlo over Clifford
  channels for the non-Clifford ``Z_pi/8`` gate (§4.1).
"""

from repro.sim.tableau import StabilizerTableau
from repro.sim.dense import DenseSimulator
from repro.sim.parser import parse_circuit
from repro.sim.interpreter import CircuitInterpreter, RunResult
from repro.sim.quasi import QuasiCliffordSampler, channel_decomposition

__all__ = [
    "StabilizerTableau",
    "DenseSimulator",
    "parse_circuit",
    "CircuitInterpreter",
    "RunResult",
    "QuasiCliffordSampler",
    "channel_decomposition",
]
